// Figure 6: configuring the single-node query-answering algorithm.
//  (a) sigmoid fit of median priority-queue size vs initial BSF — printed.
//  (b) query-answering time as the threshold division factor varies
//      (1..64); the paper finds 16 best for Seismic.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

struct Fig06State {
  std::unique_ptr<Index> index;
  SeriesCollection queries{1};
  ThresholdModel model;
};

Fig06State& State() {
  static Fig06State& state = *new Fig06State();
  if (state.index == nullptr) {
    const SeriesCollection& data =
        bench::CachedDataset("Seismic", bench::Scaled(30000), 256, 1);
    state.index = std::make_unique<Index>(Index::Build(
        SeriesCollection(data), bench::DefaultIndexOptions(256)));
    state.queries = bench::MixedQueries(data, 32, 5);
    QueryOptions qo;
    qo.num_threads = 2;
    const auto samples =
        CollectCalibrationSamples(*state.index, state.queries, qo);
    std::vector<double> bsf, sizes;
    for (const auto& s : samples) {
      bsf.push_back(s.initial_bsf);
      sizes.push_back(s.median_pq_size);
    }
    if (state.model.Calibrate(bsf, sizes).ok()) {
      const SigmoidParams& p = state.model.sigmoid();
      std::printf(
          "=== Figure 6a: sigmoid fit of median PQ size vs initial BSF ===\n"
          "f(Z) = %.2f + (%.2f - %.2f) / (1 + %.3f * exp(-%.3f (Z - %.3f)))\n"
          "rmse = %.2f leaves over %zu calibration queries\n\n",
          p.m, p.M, p.m, p.b, p.c, p.d, state.model.rmse(), samples.size());
    }
  }
  return state;
}

// Figure 6b: per-query TH = sigmoid prediction / factor.
void BM_Fig06_DivisionFactor(benchmark::State& bench_state) {
  Fig06State& st = State();
  const double factor = static_cast<double>(bench_state.range(0));
  for (auto _ : bench_state) {
    for (size_t q = 0; q < st.queries.size(); ++q) {
      QueryOptions qo;
      qo.num_threads = 4;
      const PreparedQuery prepared =
          PrepareQuery(st.queries.data(q), st.index->config(), qo);
      QueryExecution exec(st.index.get(), prepared, qo);
      const float initial = exec.SeedInitialBsf();
      if (st.model.calibrated()) {
        ThresholdModel scaled = st.model;
        scaled.set_division_factor(factor);
        exec.set_queue_threshold(scaled.PredictThreshold(initial));
      }
      exec.Run();
      benchmark::DoNotOptimize(exec.results().Threshold());
    }
  }
  bench_state.counters["factor"] = factor;
  bench_state.counters["queries"] = static_cast<double>(st.queries.size());
}

BENCHMARK(BM_Fig06_DivisionFactor)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace odyssey

ODYSSEY_BENCH_MAIN();
