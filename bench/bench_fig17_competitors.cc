// Figure 17d: Odyssey (WORK-STEAL-PREDICT with EQUALLY-SPLIT,
// DENSITY-AWARE, and FULL replication) against the competitors: DMESSI,
// DMESSI-SW-BSF and DPiSAX, on Seismic. Expected shape: DMESSI worst by a
// wide margin (the paper: Odyssey up to 6.6x faster), DMESSI-SW-BSF and
// DPiSAX in between, Odyssey FULL fastest, DENSITY-AWARE >= EQUALLY-SPLIT.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

const SeriesCollection& Data() {
  return bench::CachedDataset("Seismic", bench::Scaled(24000), 256, 39);
}

CostModel& SharedCostModel() {
  static CostModel& model = *new CostModel();
  static bool initialized = false;
  if (!initialized) {
    bench::CalibrateModels(Data(), bench::DefaultIndexOptions(256), 12, 41,
                           &model, nullptr);
    initialized = true;
  }
  return model;
}

enum class System {
  kDMessi,
  kDMessiSwBsf,
  kDpisax,
  kOdysseyEquallySplit,
  kOdysseyDensityAware,
  kOdysseyFull,
};

OdysseyOptions MakeSystemOptions(System system, int nodes) {
  const SeriesCollection& data = Data();
  QueryOptions qo;
  qo.num_threads = 2;
  const IndexOptions index_options = bench::DefaultIndexOptions(256);
  switch (system) {
    case System::kDMessi:
      return MakeDMessiOptions(nodes, index_options, qo, false);
    case System::kDMessiSwBsf:
      return MakeDMessiOptions(nodes, index_options, qo, true);
    case System::kDpisax:
      return MakeDpisaxOptions(data, nodes, index_options, qo);
    case System::kOdysseyEquallySplit: {
      OdysseyOptions options = bench::ClusterOptions(
          256, nodes, nodes, SchedulingPolicy::kPredictDynamic, true);
      options.cost_model = &SharedCostModel();
      return options;
    }
    case System::kOdysseyDensityAware: {
      OdysseyOptions options = bench::ClusterOptions(
          256, nodes, nodes, SchedulingPolicy::kPredictDynamic, true);
      options.partitioning = PartitioningScheme::kDensityAware;
      options.cost_model = &SharedCostModel();
      return options;
    }
    case System::kOdysseyFull: {
      OdysseyOptions options = bench::ClusterOptions(
          256, nodes, 1, SchedulingPolicy::kPredictDynamic, true);
      options.cost_model = &SharedCostModel();
      return options;
    }
  }
  return {};
}

void RunSystem(benchmark::State& state, System system, int nodes) {
  const SeriesCollection& data = Data();
  // A harder batch than the other figures: one third of the queries are
  // unrelated to the data (low pruning), the regime where BSF sharing and
  // load balancing separate the systems (as on the paper's real Seismic).
  WorkloadOptions wl;
  wl.count = 32;
  wl.min_noise = 0.1;
  wl.max_noise = 2.0;
  wl.unrelated_fraction = 0.33;
  wl.seed = 43;
  const SeriesCollection queries = GenerateQueries(data, wl);
  OdysseyCluster cluster(data, MakeSystemOptions(system, nodes));
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    state.counters["bsf_updates"] = static_cast<double>(report.bsf_updates);
    state.counters["steals"] = report.total_steals();
  }
  state.counters["nodes"] = nodes;
}

void RegisterAll() {
  const struct {
    const char* name;
    System system;
  } kSystems[] = {
      {"DMESSI", System::kDMessi},
      {"DMESSI-SW-BSF", System::kDMessiSwBsf},
      {"DPiSAX", System::kDpisax},
      {"odyssey-equally-split", System::kOdysseyEquallySplit},
      {"odyssey-density-aware", System::kOdysseyDensityAware},
      {"odyssey-full-replication", System::kOdysseyFull},
  };
  for (const auto& system : kSystems) {
    for (int nodes : {2, 4, 8}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig17d_Competitors/") + system.name +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [=](benchmark::State& s) { RunSystem(s, system.system, nodes); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
