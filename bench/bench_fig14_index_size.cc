// Figure 14: total index size per dataset and replication strategy on 8
// nodes. The benchmark time is the distributed index-build time; the
// counters report the index footprint (the figure's quantity) and the raw
// data footprint. Expected shape: index size is small relative to the data
// and grows with the replication degree; FULL on the larger datasets hits
// the (simulated) memory limitation.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

constexpr int kNodes = 8;

void RunIndexSize(benchmark::State& state, const std::string& dataset,
                  size_t length, size_t series, int groups) {
  // Simulated memory limitation: replicating the two largest stand-ins in
  // full exceeds the per-node budget, as in the paper's figure.
  const double per_node_bytes = static_cast<double>(series) *
                                static_cast<double>(length) * sizeof(float) /
                                static_cast<double>(groups);
  const double budget =
      0.6 * static_cast<double>(bench::Scaled(40000)) * 256 * sizeof(float);
  if (per_node_bytes > budget) {
    state.SkipWithError("Memory Limitation (simulated per-node budget)");
    return;
  }
  const SeriesCollection& data =
      bench::CachedDataset(dataset, series, length, 25);
  for (auto _ : state) {
    OdysseyOptions options = bench::ClusterOptions(
        length, kNodes, groups, SchedulingPolicy::kStatic, false,
        /*threads_per_node=*/4);
    OdysseyCluster cluster(data, options);
    state.counters["index_MB"] =
        static_cast<double>(cluster.total_index_bytes()) / (1024.0 * 1024.0);
    state.counters["data_MB"] =
        static_cast<double>(cluster.total_data_bytes()) / (1024.0 * 1024.0);
    state.counters["index_s"] = cluster.index_seconds();
  }
  state.counters["repl_degree"] = kNodes / groups;
}

void RegisterAll() {
  const struct {
    const char* name;
    size_t length;
    size_t series;
  } kDatasets[] = {
      {"Random", 256, bench::Scaled(16000)},
      {"Seismic", 256, bench::Scaled(16000)},
      {"Astro", 256, bench::Scaled(16000)},
      {"Sift", 128, bench::Scaled(32000)},
      {"Yan-TtI", 200, bench::Scaled(20000)},
      {"Deep", 96, bench::Scaled(40000)},
  };
  const struct {
    const char* name;
    int groups;
  } kStrategies[] = {{"EQUALLY-SPLIT", kNodes},
                     {"PARTIAL-4", 4},
                     {"PARTIAL-2", 2},
                     {"FULL", 1}};
  for (const auto& dataset : kDatasets) {
    for (const auto& strategy : kStrategies) {
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig14_IndexSize/") + dataset.name + "/" +
           strategy.name)
              .c_str(),
          [=](benchmark::State& s) {
            RunIndexSize(s, dataset.name, dataset.length, dataset.series,
                         strategy.groups);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
