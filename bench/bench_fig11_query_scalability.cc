// Figure 11: query-answering scalability as the number of queries grows
// (Random dataset, WORK-STEAL).
//  (a) FULL replication, 1-8 nodes: the time to answer j*Q queries on j
//      nodes should stay roughly flat (near-perfect scaling).
//  (b) PARTIAL-2, 2-8 nodes.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

const SeriesCollection& Data() {
  return bench::CachedDataset("Random", bench::Scaled(24000), 256, 11);
}

void RunScalability(benchmark::State& state, int nodes, int groups,
                    int queries) {
  const SeriesCollection& data = Data();
  const SeriesCollection batch = bench::MixedQueries(data, queries, 13);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, SchedulingPolicy::kDynamic, /*worksteal=*/true);
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(batch);
    benchmark::DoNotOptimize(report.answers.size());
  }
  state.counters["nodes"] = nodes;
  state.counters["queries"] = queries;
}

void RegisterAll() {
  for (int nodes : {1, 2, 4, 8}) {
    for (int queries : {25, 50, 100, 200}) {
      benchmark::RegisterBenchmark(
          ("BM_Fig11a_FULL/queries:" + std::to_string(queries) +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [nodes, queries](benchmark::State& s) {
            RunScalability(s, nodes, /*groups=*/1, queries);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
  for (int nodes : {2, 4, 8}) {
    for (int queries : {25, 50, 100, 200}) {
      benchmark::RegisterBenchmark(
          ("BM_Fig11b_PARTIAL2/queries:" + std::to_string(queries) +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [nodes, queries](benchmark::State& s) {
            RunScalability(s, nodes, /*groups=*/2, queries);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
