// Figure 4: linear regression between a query's initial BSF and its
// execution time (Seismic). Prints the fitted regression and benchmarks
// query execution by initial-BSF quartile — the paper's correlation shows
// up as monotonically increasing per-quartile times.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

struct Fig04State {
  const SeriesCollection* data = nullptr;
  std::unique_ptr<Index> index;
  SeriesCollection queries{1};
  std::vector<CalibrationSample> samples;
  CostModel model;
};

Fig04State& State() {
  static Fig04State& state = *new Fig04State();
  if (state.index == nullptr) {
    state.data = &bench::CachedDataset("Seismic", bench::Scaled(30000), 256, 1);
    state.index = std::make_unique<Index>(Index::Build(
        SeriesCollection(*state.data), bench::DefaultIndexOptions(256)));
    state.queries = bench::MixedQueries(*state.data, 48, 3);
    QueryOptions qo;
    qo.num_threads = 2;
    state.samples =
        CollectCalibrationSamples(*state.index, state.queries, qo);
    std::vector<double> bsf, secs;
    for (const auto& s : state.samples) {
      bsf.push_back(s.initial_bsf);
      secs.push_back(s.exec_seconds);
    }
    if (state.model.Fit(bsf, secs).ok()) {
      std::printf(
          "=== Figure 4: execution-time regression (Seismic stand-in) ===\n"
          "time[s] ~ %.6f * initialBSF %+.6f   R^2 = %.3f over %zu queries\n\n",
          state.model.regression().slope(),
          state.model.regression().intercept(),
          state.model.regression().r_squared(), state.samples.size());
    }
  }
  return state;
}

// Re-runs the queries of one initial-BSF quartile; per-quartile mean time
// must increase with the quartile (the figure's upward-sloping cloud).
void BM_Fig04_QuartileTime(benchmark::State& bench_state) {
  Fig04State& st = State();
  const int quartile = static_cast<int>(bench_state.range(0));
  std::vector<size_t> order(st.samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return st.samples[a].initial_bsf < st.samples[b].initial_bsf;
  });
  const size_t per = order.size() / 4;
  const size_t begin = quartile * per;
  const size_t end = (quartile == 3) ? order.size() : begin + per;
  double mean_bsf = 0.0;
  for (auto _ : bench_state) {
    for (size_t i = begin; i < end; ++i) {
      QueryOptions qo;
      qo.num_threads = 2;
      const PreparedQuery prepared =
          PrepareQuery(st.queries.data(order[i]), st.index->config(), qo);
      QueryExecution exec(st.index.get(), prepared, qo);
      mean_bsf += exec.SeedInitialBsf();
      exec.Run();
      benchmark::DoNotOptimize(exec.results().Threshold());
    }
  }
  bench_state.counters["queries"] = static_cast<double>(end - begin);
  bench_state.counters["mean_initial_bsf"] =
      mean_bsf / static_cast<double>(end - begin);
  bench_state.counters["predicted_s"] = st.model.fitted()
      ? st.model.PredictSeconds(mean_bsf / static_cast<double>(end - begin))
      : 0.0;
}

BENCHMARK(BM_Fig04_QuartileTime)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace odyssey

ODYSSEY_BENCH_MAIN();
