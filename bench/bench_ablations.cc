// Ablations of the design choices the paper fixes after internal
// experiments (see DESIGN.md §4):
//   - Nsend, the RS-batches given away per steal (paper fixes 4, §3.2.2)
//   - Nsb, the number of RS-batches (paper: best at #worker-threads, §3.2.1)
//   - HelpTH, the helper-thread cap per batch (§3.2.1)
//   - BSF sharing on/off (paper §3.4: "critical for performance")
//   - SIMD vs scalar distance kernels (the MESSI heritage)
//   - leaf capacity of the index tree

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/distance/euclidean.h"

namespace odyssey {
namespace {

const SeriesCollection& Data() {
  return bench::CachedDataset("Seismic", bench::Scaled(24000), 256, 61);
}

// A skewed batch (a few very hard queries at the end) — the regime where
// stealing and sharing decisions matter.
SeriesCollection SkewedQueries(const SeriesCollection& data, size_t count,
                               uint64_t seed) {
  WorkloadOptions wl;
  wl.count = count;
  wl.min_noise = 0.05;
  wl.max_noise = 0.5;
  wl.unrelated_fraction = 0.15;
  wl.seed = seed;
  return GenerateQueries(data, wl);
}

void BM_Ablation_Nsend(benchmark::State& state) {
  const SeriesCollection& data = Data();
  const SeriesCollection queries = SkewedQueries(data, 24, 63);
  OdysseyOptions options = bench::ClusterOptions(
      256, 8, 1, SchedulingPolicy::kDynamic, true, /*threads=*/1);
  options.worksteal.nsend = static_cast<int>(state.range(0));
  options.query_options.num_batches = 16;
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    state.counters["steals"] = report.total_steals();
  }
  state.counters["nsend"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Ablation_Nsend)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_Ablation_NumBatches(benchmark::State& state) {
  const SeriesCollection& data = Data();
  const SeriesCollection queries = bench::MixedQueries(data, 16, 65);
  const Index index =
      Index::Build(SeriesCollection(data), bench::DefaultIndexOptions(256));
  const size_t batches = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    for (size_t q = 0; q < queries.size(); ++q) {
      QueryOptions qo;
      qo.num_threads = 4;
      qo.num_batches = batches;
      const PreparedQuery prepared =
          PrepareQuery(queries.data(q), index.config(), qo);
      QueryExecution exec(&index, prepared, qo);
      exec.SeedInitialBsf();
      exec.Run();
      benchmark::DoNotOptimize(exec.results().Threshold());
    }
  }
  state.counters["Nsb"] = static_cast<double>(batches);
}
BENCHMARK(BM_Ablation_NumBatches)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_Ablation_HelpThreshold(benchmark::State& state) {
  const SeriesCollection& data = Data();
  const SeriesCollection queries = bench::MixedQueries(data, 16, 67);
  const Index index =
      Index::Build(SeriesCollection(data), bench::DefaultIndexOptions(256));
  for (auto _ : state) {
    for (size_t q = 0; q < queries.size(); ++q) {
      QueryOptions qo;
      qo.num_threads = 4;
      qo.help_threshold = static_cast<int>(state.range(0));
      const PreparedQuery prepared =
          PrepareQuery(queries.data(q), index.config(), qo);
      QueryExecution exec(&index, prepared, qo);
      exec.SeedInitialBsf();
      exec.Run();
      benchmark::DoNotOptimize(exec.results().Threshold());
    }
  }
  state.counters["HelpTH"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Ablation_HelpThreshold)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_Ablation_BsfSharing(benchmark::State& state) {
  const bool share = state.range(0) != 0;
  const SeriesCollection& data = Data();
  const SeriesCollection queries = bench::MixedQueries(data, 24, 69);
  // EQUALLY-SPLIT is where sharing matters most: without it, nodes whose
  // chunk lacks the neighborhood prune poorly (Section 3.4).
  OdysseyOptions options = bench::ClusterOptions(
      256, 8, 8, SchedulingPolicy::kStatic, false);
  options.share_bsf = share;
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    state.counters["bsf_updates"] = static_cast<double>(report.bsf_updates);
  }
  state.counters["sharing"] = share ? 1.0 : 0.0;
}
BENCHMARK(BM_Ablation_BsfSharing)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_Ablation_LeafCapacity(benchmark::State& state) {
  const SeriesCollection& data = Data();
  const SeriesCollection queries = bench::MixedQueries(data, 16, 71);
  IndexOptions index_options = bench::DefaultIndexOptions(256);
  index_options.leaf_capacity = static_cast<size_t>(state.range(0));
  BuildTimings timings;
  ThreadPool pool(4);
  const Index index = Index::Build(SeriesCollection(data), index_options,
                                   &pool, &timings);
  for (auto _ : state) {
    for (size_t q = 0; q < queries.size(); ++q) {
      QueryOptions qo;
      qo.num_threads = 4;
      const PreparedQuery prepared =
          PrepareQuery(queries.data(q), index.config(), qo);
      QueryExecution exec(&index, prepared, qo);
      exec.SeedInitialBsf();
      exec.Run();
      benchmark::DoNotOptimize(exec.results().Threshold());
    }
  }
  state.counters["leaf_capacity"] = static_cast<double>(state.range(0));
  state.counters["build_s"] = timings.index_seconds();
  state.counters["leaves"] =
      static_cast<double>(index.tree().ComputeStats().leaves);
}
BENCHMARK(BM_Ablation_LeafCapacity)
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

void BM_Ablation_DistanceKernel(benchmark::State& state) {
  const bool simd = state.range(0) != 0;
  const SeriesCollection& data = Data();
  const SeriesCollection queries = bench::MixedQueries(data, 4, 73);
  double checksum = 0.0;
  for (auto _ : state) {
    for (size_t q = 0; q < queries.size(); ++q) {
      for (size_t i = 0; i < data.size(); ++i) {
        checksum += simd ? SquaredEuclidean(queries.data(q), data.data(i), 256)
                         : SquaredEuclideanScalar(queries.data(q),
                                                  data.data(i), 256);
      }
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.counters["simd"] = simd ? 1.0 : 0.0;
  state.counters["avx2_active"] = HasAvx2Kernels() ? 1.0 : 0.0;
}
BENCHMARK(BM_Ablation_DistanceKernel)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1)->UseRealTime();

}  // namespace
}  // namespace odyssey

ODYSSEY_BENCH_MAIN();
