// Figure 18: 10-NN query answering (Random) across replication strategies
// and node counts. Expected shape: same trends as 1-NN (more nodes and
// more replication => faster), at uniformly higher cost than 1-NN.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

void RunKnn(benchmark::State& state, int nodes, int groups, int k) {
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(24000), 256, 45);
  const SeriesCollection queries = bench::MixedQueries(data, 25, 47);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  options.query_options.k = k;
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    benchmark::DoNotOptimize(report.answers.size());
  }
  state.counters["nodes"] = nodes;
  state.counters["k"] = k;
}

void RegisterAll() {
  const struct {
    const char* name;
    int groups;  // -1 = equally split
  } kStrategies[] = {{"EQUALLY-SPLIT", -1},
                     {"PARTIAL-4", 4},
                     {"PARTIAL-2", 2},
                     {"FULL", 1}};
  for (const auto& strategy : kStrategies) {
    for (int nodes : {1, 2, 4, 8}) {
      const int groups = strategy.groups < 0 ? nodes : strategy.groups;
      if (!bench::ValidLayout(nodes, groups)) continue;
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig18_10NN/") + strategy.name +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [=](benchmark::State& s) { RunKnn(s, nodes, groups, 10); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
  // The paper varies k in 1..20; a small k-sweep on the FULL/4-node layout
  // shows the cost growth with k.
  for (int k : {1, 5, 10, 20}) {
    benchmark::RegisterBenchmark(
        ("BM_Fig18_kSweep_FULL_n4/k:" + std::to_string(k)).c_str(),
        [=](benchmark::State& s) { RunKnn(s, 4, 1, k); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
