#ifndef ODYSSEY_BENCH_BENCH_COMMON_H_
#define ODYSSEY_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "src/baselines/dmessi.h"
#include "src/baselines/dpisax.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/registry.h"
#include "src/dataset/workload.h"

namespace odyssey {
namespace bench {

/// Global scale knob: ODYSSEY_BENCH_SCALE multiplies dataset/query sizes
/// (default 1.0). The reproduction sizes are chosen so the full suite runs
/// in minutes on a laptop; raise the scale on a bigger machine.
inline double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("ODYSSEY_BENCH_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
  }();
  return scale <= 0.0 ? 1.0 : scale;
}

inline size_t Scaled(size_t base) {
  const double s = static_cast<double>(base) * BenchScale();
  return s < 64.0 ? 64 : static_cast<size_t>(s);
}

/// Default iSAX geometry used across benches (16 segments, like MESSI).
inline IndexOptions DefaultIndexOptions(size_t length) {
  IndexOptions options;
  options.config = IsaxConfig(length, 16);
  options.leaf_capacity = 128;
  return options;
}

/// What actually produced a dataset the benches run on: "file" only when
/// the real archive was successfully ingested (never when ingestion fell
/// back to the generator). Keyed per CachedDataset entry and filled by it.
inline std::map<std::string, const char*>& DatasetSourceRegistry() {
  static std::map<std::string, const char*>& sources =
      *new std::map<std::string, const char*>();
  return sources;
}

/// The source label CachedDataset recorded for `name` — "file" or
/// "synthetic". Defaults to "synthetic" before any CachedDataset call.
inline const char* DatasetSource(const std::string& name) {
  for (const auto& [key, source] : DatasetSourceRegistry()) {
    if (key.rfind(name + "/", 0) == 0) return source;
  }
  return "synthetic";
}

/// A cached dataset, loaded or generated once per process (benchmark cases
/// share it). When ODYSSEY_DATA_DIR holds a real archive for `name`, the
/// first `count` series are ingested from it (memory-mapped, z-normalized
/// on ingest); otherwise the synthetic stand-in generator runs. An archive
/// that cannot be ingested (e.g. its series length differs from what the
/// bench asks for) degrades to the generator with a one-line notice.
inline const SeriesCollection& CachedDataset(const std::string& name,
                                             size_t count, size_t length,
                                             uint64_t seed) {
  static std::map<std::string, std::unique_ptr<SeriesCollection>>& cache =
      *new std::map<std::string, std::unique_ptr<SeriesCollection>>();
  const std::string key = name + "/" + std::to_string(count) + "/" +
                          std::to_string(length) + "/" + std::to_string(seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const char* source = "synthetic";
    SeriesCollection data = [&]() -> SeriesCollection {
      const std::string file = FindDatasetFile(name);
      if (!file.empty()) {
        IngestOptions ingest;
        ingest.length = length;
        ingest.max_series = count;
        StatusOr<SeriesCollection> real = IngestFile(file, ingest);
        // A short archive falls back too: silently running a scaling
        // bench's 384k-series point on a 100k-series file would plot the
        // same truncated dataset at every upper point.
        if (real.ok() && real->size() == count) {
          source = "file";
          return std::move(real).value();
        }
        std::fprintf(stderr,
                     "bench: cannot ingest %s (%s); falling back to the "
                     "synthetic stand-in\n",
                     file.c_str(),
                     real.ok() ? ("archive has only " +
                                  std::to_string(real->size()) + " of the " +
                                  std::to_string(count) +
                                  " requested series")
                                     .c_str()
                               : real.status().ToString().c_str());
      }
      if (name == "Random") return GenerateRandomWalk(count, length, seed);
      if (name == "Seismic") return GenerateSeismicLike(count, length, seed);
      if (name == "Astro") return GenerateAstroLike(count, length, seed);
      if (name == "Deep") return GenerateEmbeddingLike(count, length, 256, seed);
      if (name == "Sift") return GenerateEmbeddingLike(count, length, 512, seed);
      if (name == "Yan-TtI") return GenerateCrossModalLike(count, length, seed);
      return GenerateRandomWalk(count, length, seed);
    }();
    DatasetSourceRegistry()[key] = source;
    it = cache.emplace(key, std::make_unique<SeriesCollection>(std::move(data)))
             .first;
  }
  return *it->second;
}

/// A mixed-difficulty query batch against `data` (the paper's Seismic-style
/// batches: most queries resemble archived data, a few are hard).
inline SeriesCollection MixedQueries(const SeriesCollection& data,
                                     size_t count, uint64_t seed) {
  WorkloadOptions wl;
  wl.count = count;
  wl.min_noise = 0.05;
  wl.max_noise = 2.0;
  wl.unrelated_fraction = 0.1;
  wl.seed = seed;
  return GenerateQueries(data, wl);
}

/// Calibrates a cost model + threshold model on a single-node probe index
/// (what the paper does once per dataset). Returns false when too few
/// samples could be collected.
inline bool CalibrateModels(const SeriesCollection& data,
                            const IndexOptions& index_options,
                            size_t train_queries, uint64_t seed,
                            CostModel* cost_model,
                            ThresholdModel* threshold_model) {
  const Index probe = Index::Build(SeriesCollection(data), index_options);
  const SeriesCollection train = MixedQueries(data, train_queries, seed);
  QueryOptions qo;
  qo.num_threads = 2;
  const auto samples = CollectCalibrationSamples(probe, train, qo);
  std::vector<double> bsf, secs, sizes;
  for (const auto& s : samples) {
    bsf.push_back(s.initial_bsf);
    secs.push_back(s.exec_seconds);
    sizes.push_back(s.median_pq_size);
  }
  bool ok = true;
  if (cost_model != nullptr) ok &= cost_model->Fit(bsf, secs).ok();
  if (threshold_model != nullptr) {
    ok &= threshold_model->Calibrate(bsf, sizes).ok();
  }
  return ok;
}

/// Standard Odyssey options for cluster benches.
inline OdysseyOptions ClusterOptions(size_t length, int nodes, int groups,
                                     SchedulingPolicy policy, bool worksteal,
                                     int threads_per_node = 2) {
  OdysseyOptions options;
  options.num_nodes = nodes;
  options.num_groups = groups;
  options.index_options = DefaultIndexOptions(length);
  options.build_threads_per_node = threads_per_node;
  options.scheduling = policy;
  options.worksteal.enabled = worksteal;
  options.query_options.num_threads = threads_per_node;
  return options;
}

/// True when PARTIAL-groups is a valid layout over `nodes`.
inline bool ValidLayout(int nodes, int groups) {
  return groups >= 1 && groups <= nodes && nodes % groups == 0;
}

/// Machine-readable results for every bench target: when
/// ODYSSEY_BENCH_JSON_DIR is set and the caller passed no --benchmark_out
/// flag of their own, appends `--benchmark_out=<dir>/<target>.json
/// --benchmark_out_format=json` to the argument vector (the library's
/// BENCHMARK_OUT env default is read at static-init time, before main, so
/// flag injection is the only reliable hook). Merge the per-target files
/// with bench/aggregate.py for run-over-run diffs. Call before
/// benchmark::Initialize — custom mains call this directly; flag-only
/// targets use ODYSSEY_BENCH_MAIN().
inline void WireJsonOutput(int* argc, char*** argv) {
  const char* dir = std::getenv("ODYSSEY_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  for (int i = 1; i < *argc; ++i) {
    if (std::string((*argv)[i]).rfind("--benchmark_out=", 0) == 0) return;
  }
  // The library std::exit(1)s on an unopenable output file; create the
  // directory up front so a fresh checkout needs no manual mkdir.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string target((*argv)[0]);
  const size_t slash = target.find_last_of('/');
  if (slash != std::string::npos) target = target.substr(slash + 1);
  // Static storage: the strings must stay alive for the library to read
  // (Initialize keeps pointers into argv).
  static std::vector<std::string> storage(*argv, *argv + *argc);
  storage.push_back("--benchmark_out=" + std::string(dir) + "/" + target +
                    ".json");
  storage.push_back("--benchmark_out_format=json");
  static std::vector<char*> args;
  args.clear();
  for (std::string& s : storage) args.push_back(s.data());
  *argc = static_cast<int>(args.size());
  *argv = args.data();
}

}  // namespace bench
}  // namespace odyssey

/// Drop-in BENCHMARK_MAIN() replacement with the JSON wiring above.
#define ODYSSEY_BENCH_MAIN()                                              \
  int main(int argc, char** argv) {                                       \
    ::odyssey::bench::WireJsonOutput(&argc, &argv);                       \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)

#endif  // ODYSSEY_BENCH_BENCH_COMMON_H_
