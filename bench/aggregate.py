#!/usr/bin/env python3
"""Merge per-target Google Benchmark JSON dumps into one file, and diff runs.

Workflow:
    mkdir -p bench-json
    ODYSSEY_BENCH_JSON_DIR=bench-json ./build/bench_distance_kernels
    ODYSSEY_BENCH_JSON_DIR=bench-json ./build/bench_fig10_scheduling
    ...
    python3 bench/aggregate.py bench-json -o BENCH_main.json

    # after a change, in a second directory:
    python3 bench/aggregate.py bench-json-new -o BENCH_pr.json
    python3 bench/aggregate.py --diff BENCH_main.json BENCH_pr.json

The merged file maps target name -> {context, benchmarks}; --diff prints
per-benchmark real_time ratios (new / old) so perf-tracked PRs can show
run-over-run numbers without bespoke parsing.
"""

import argparse
import json
import pathlib
import re
import sys


def merge(directory: pathlib.Path) -> dict:
    merged = {}
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            print(f"warning: skipping {path}: {e}", file=sys.stderr)
            continue
        if "benchmarks" not in data:
            print(f"warning: skipping {path}: no 'benchmarks' key",
                  file=sys.stderr)
            continue
        merged[path.stem] = data
    return merged


def flatten(merged: dict) -> dict:
    """target/benchmark-name -> real_time (ns-normalized)."""
    out = {}
    for target, data in merged.items():
        unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
        for bm in data.get("benchmarks", []):
            if bm.get("run_type") == "aggregate":
                continue
            scale = unit_ns.get(bm.get("time_unit", "ns"), 1.0)
            out[f"{target}/{bm['name']}"] = bm.get("real_time", 0.0) * scale
    return out


def align(entries: dict, marker: str) -> dict:
    """Keep only names containing `marker`, with the marker spliced out.

    Two align() projections of the same run line up panels that differ only
    by the marker (e.g. `...PerQuery256/3/4` vs `...Batched256/3/4` both
    become `...256/3/4`), so --diff can gate one benchmark family against
    another — the batched-vs-per-query win condition — instead of only
    old-run vs new-run of the same name.
    """
    return {name.replace(marker, "", 1): v
            for name, v in entries.items() if marker in name}


def diff(old_path: pathlib.Path, new_path: pathlib.Path,
         fail_above: float | None = None,
         fail_filter: str = "",
         align_markers: tuple[str, str] | None = None) -> int:
    old = flatten(json.loads(old_path.read_text()))
    new = flatten(json.loads(new_path.read_text()))
    if align_markers is not None:
        old = align(old, align_markers[0])
        new = align(new, align_markers[1])
    common = sorted(set(old) & set(new))
    if not common:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1
    width = max(len(name) for name in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {'old_ms':>10}  {'new_ms':>10}  ratio")
    for name in common:
        o, n = old[name], new[name]
        ratio = n / o if o > 0 else float("inf")
        flag = "  <-- " + ("slower" if ratio > 1.10 else "faster") \
            if abs(ratio - 1.0) > 0.10 else ""
        print(f"{name:<{width}}  {o / 1e6:>10.3f}  {n / 1e6:>10.3f}  "
              f"{ratio:>5.2f}{flag}")
        if (fail_above is not None and ratio > fail_above
                and re.search(fail_filter, name)):
            regressions.append((name, ratio))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in {old_path.name}: {len(only_old)} benchmarks")
    if only_new:
        print(f"only in {new_path.name}: {len(only_new)} benchmarks")
    if fail_above is not None:
        # A gated benchmark that vanished from the new run (renamed target,
        # bench that failed to register) must not slip past the gate as a
        # no-op: a regression could hide behind a rename.
        for name in only_old:
            if re.search(fail_filter, name):
                regressions.append((name, float("nan")))
                print(f"gated benchmark missing from {new_path.name}: {name}",
                      file=sys.stderr)
    if regressions:
        scope = f" matching '{fail_filter}'" if fail_filter else ""
        print(f"\nFAIL: {len(regressions)} benchmark(s){scope} regressed "
              f"beyond {fail_above:.2f}x or went missing:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}  {ratio:.2f}x", file=sys.stderr)
        return 2
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*",
                        help="directory of per-target JSON dumps to merge, "
                             "or (with --diff) two merged files")
    parser.add_argument("-o", "--output", default="BENCH_merged.json",
                        help="merged output path (default: %(default)s)")
    parser.add_argument("--diff", action="store_true",
                        help="compare two merged files instead of merging")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="RATIO",
                        help="with --diff: exit non-zero when any common "
                             "benchmark's new/old real-time ratio exceeds "
                             "RATIO (e.g. 1.10 gates >10%% regressions, the "
                             "PR gate for the build-time series)")
    parser.add_argument("--fail-filter", default="", metavar="REGEX",
                        help="with --fail-above: only benchmarks whose "
                             "target/name matches REGEX (re.search; plain "
                             "substrings work unchanged) count as gate "
                             "failures (e.g. 'Build' to gate only the "
                             "build-time series); all ratios are still "
                             "printed")
    parser.add_argument("--align", nargs=2, metavar=("OLD_MARK", "NEW_MARK"),
                        default=None,
                        help="with --diff: compare across benchmark families "
                             "instead of across runs — keep only old-file "
                             "names containing OLD_MARK and new-file names "
                             "containing NEW_MARK, splice the markers out, "
                             "and diff what lines up (e.g. --align PerQuery "
                             "Batched on one merged run gates batched "
                             "kernels against their per-query twins)")
    args = parser.parse_args()

    if args.diff:
        if len(args.inputs) != 2:
            parser.error("--diff needs exactly two merged files (old new)")
        return diff(pathlib.Path(args.inputs[0]), pathlib.Path(args.inputs[1]),
                    args.fail_above, args.fail_filter,
                    tuple(args.align) if args.align else None)

    if len(args.inputs) != 1:
        parser.error("merge mode needs exactly one input directory")
    directory = pathlib.Path(args.inputs[0])
    if not directory.is_dir():
        parser.error(f"{directory} is not a directory")
    merged = merge(directory)
    if not merged:
        print(f"no benchmark JSON files found in {directory}", file=sys.stderr)
        return 1
    pathlib.Path(args.output).write_text(json.dumps(merged, indent=2) + "\n")
    print(f"merged {len(merged)} targets "
          f"({sum(len(d['benchmarks']) for d in merged.values())} benchmarks) "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `aggregate.py --diff a b | head`
        sys.exit(0)
