// Figure 16: replication strategies with WORK-STEAL-PREDICT on the other
// real datasets (Astro, Deep, Sift, Yan-TtI), 100 queries. The paper shows
// the same trend as Seismic (Figure 15a): more replication => faster query
// answering, consistently across datasets.
//
// With ODYSSEY_DATA_DIR pointing at the real archives (astro.raw,
// deep.fvecs, sift.fvecs/.bvecs, yan-tti.raw — see README "On-disk dataset
// formats"), each case runs on the genuine data, ingested through the
// memory-mapped loader with z-normalization; otherwise the synthetic
// stand-ins run. Each result row is labeled "file" or "synthetic".

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

void RunDataset(benchmark::State& state, const std::string& dataset,
                size_t length, size_t series, int nodes, int groups) {
  const SeriesCollection& data =
      bench::CachedDataset(dataset, series, length, 33);
  const SeriesCollection queries = bench::MixedQueries(data, 25, 35);
  OdysseyOptions options = bench::ClusterOptions(
      length, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    benchmark::DoNotOptimize(report.answers.size());
  }
  state.counters["nodes"] = nodes;
  state.SetLabel(bench::DatasetSource(dataset));
}

void RegisterAll() {
  const struct {
    const char* name;
    size_t length;
    size_t series;
  } kDatasets[] = {
      {"Astro", 256, bench::Scaled(16000)},
      {"Deep", 96, bench::Scaled(40000)},
      {"Sift", 128, bench::Scaled(32000)},
      {"Yan-TtI", 200, bench::Scaled(20000)},
  };
  const struct {
    const char* name;
    int groups;  // -1 = equally split
  } kStrategies[] = {{"EQUALLY-SPLIT", -1}, {"PARTIAL-4", 4}, {"PARTIAL-2", 2}};
  for (const auto& dataset : kDatasets) {
    for (const auto& strategy : kStrategies) {
      for (int nodes : {2, 4, 8}) {
        const int groups = strategy.groups < 0 ? nodes : strategy.groups;
        if (!bench::ValidLayout(nodes, groups)) continue;
        benchmark::RegisterBenchmark(
            (std::string("BM_Fig16/") + dataset.name + "/" + strategy.name +
             "/nodes:" + std::to_string(nodes))
                .c_str(),
            [=](benchmark::State& s) {
              RunDataset(s, dataset.name, dataset.length, dataset.series,
                         nodes, groups);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
