// Figure 13: query throughput (queries/second) as the number of nodes
// grows (Random, FULL replication, WORK-STEAL). Expected shape: throughput
// increases close to linearly with nodes for all batch sizes.
//
// Executor panels (ISSUE 5):
//   BM_Fig13b_Executor/{pooled,legacy} — the persistent per-node executor
//     (query phases as pool tasks, zero thread creation) against the
//     per-query-spawn baseline, same cluster shape; counters record the
//     throughput and the per-batch thread-spawn count of each mode.
//   BM_Fig13c_StreamOverlap/inflight:{1,2,4} — AnswerStream online
//     admission: each query summarized at its arrival time, dispatched
//     immediately, nodes running up to `inflight` queries concurrently on
//     their pools; counters record throughput, prep-overlap seconds and
//     the in-flight high-water mark.
//   BM_Fig13d_BatchedScoring/{batched,perquery} — grouped multi-query leaf
//     scans (ODYSSEY_BATCHED_SCORING path) against the per-query scans of
//     the same batch on the same cluster; counters record throughput plus
//     the batched-kernel call count and the candidate reloads the grouped
//     scan avoided (scan_stats). The gated win condition lives in the
//     kernel bench (BM_MultiQuery*); this panel shows the end-to-end
//     effect with real index leaves. CI aligns each batched panel with its
//     perquery twin and gates both workloads (correlated and mixed) at
//     ratio 1.00 — the mixed-batch gate this PR closes.
//   BM_Fig13d_Donation/mixed/{on,off} — the batched/work-steal cluster
//     with grouped-scan steal donation toggled; counters record the
//     donated-slice traffic (scan_stats::BatchesDonated and the series
//     mass behind it) so a recorded run proves donation actually moved
//     work, not just that the toggle parses.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/summary_stats.h"

namespace odyssey {
namespace {

void RunThroughput(benchmark::State& state, int nodes, int queries) {
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(24000), 256, 21);
  const SeriesCollection batch = bench::MixedQueries(data, queries, 23);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, /*groups=*/1, SchedulingPolicy::kDynamic, true);
  OdysseyCluster cluster(data, options);
  double seconds = 0.0;
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(batch);
    seconds = report.query_seconds;
  }
  state.counters["nodes"] = nodes;
  state.counters["throughput_qps"] =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
}

void RunExecutorPanel(benchmark::State& state, bool pooled) {
  // Light queries on purpose: the panel measures the per-query *executor*
  // overhead (spawn/join vs pooled epochs), so the fixed costs must not
  // drown in index-scan time.
  const int queries = 400;
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(3000), 256, 21);
  const SeriesCollection batch = bench::MixedQueries(data, queries, 25);
  OdysseyOptions options = bench::ClusterOptions(
      256, /*nodes=*/4, /*groups=*/1, SchedulingPolicy::kDynamic, true,
      /*threads_per_node=*/4);
  options.use_executor = pooled;
  OdysseyCluster cluster(data, options);
  // Warm-up: the pooled mode creates its persistent executors on the first
  // batch; the panel measures steady-state answering.
  cluster.AnswerBatch(batch);
  double seconds = 0.0;
  uint64_t spawned = 0;
  for (auto _ : state) {
    const uint64_t before = executor_stats::ThreadsSpawned();
    const BatchReport report = cluster.AnswerBatch(batch);
    seconds = report.query_seconds;
    spawned = executor_stats::ThreadsSpawned() - before;
  }
  state.counters["throughput_qps"] =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  // Pooled steady state: 0. Legacy: num_threads per query (plus steals).
  state.counters["threads_spawned_per_batch"] =
      static_cast<double>(spawned);
}

void RunStreamOverlap(benchmark::State& state, int inflight) {
  const int queries = 100;
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(12000), 256, 21);
  const SeriesCollection batch = bench::MixedQueries(data, queries, 27);
  OdysseyOptions options = bench::ClusterOptions(
      256, /*nodes=*/4, /*groups=*/1, SchedulingPolicy::kDynamic, true,
      /*threads_per_node=*/4);
  options.stream_max_inflight = inflight;
  OdysseyCluster cluster(data, options);
  // A steady trickle: arrivals spaced so preparation genuinely interleaves
  // with execution instead of bursting at t=0.
  std::vector<double> arrivals(batch.size());
  for (size_t q = 0; q < batch.size(); ++q) {
    arrivals[q] = 2e-4 * static_cast<double>(q);
  }
  double seconds = 0.0, overlap = 0.0;
  int hwm = 0;
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerStream(batch, arrivals);
    seconds = report.query_seconds;
    overlap = report.prep_overlap_seconds;
    hwm = report.queries_in_flight_hwm;
  }
  state.counters["throughput_qps"] =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  state.counters["prep_overlap_s"] = overlap;
  state.counters["inflight_hwm"] = hwm;
}

// A monitoring-style workload: a few query templates, each issued several
// times with small jitter (the same event matched against the archive by
// many stations / repeated alert rules). Co-resident variants of one
// template walk the same hot leaves, which is exactly the sharing the
// grouped leaf scan amortizes; the `mixed` variant keeps the diverse
// Seismic-style batch where sharing is incidental.
SeriesCollection CorrelatedQueries(const SeriesCollection& data, int templates,
                                   int repeats, uint64_t seed) {
  const SeriesCollection base =
      bench::MixedQueries(data, static_cast<size_t>(templates), seed);
  SeriesCollection out(data.length());
  Rng rng(seed + 1);
  for (int t = 0; t < templates; ++t) {
    for (int r = 0; r < repeats; ++r) {
      float* q = out.AppendUninitialized(1);
      const float* src = base.data(static_cast<size_t>(t));
      for (size_t i = 0; i < data.length(); ++i) {
        q[i] = src[i] + 0.05f * static_cast<float>(rng.NextGaussian());
      }
    }
  }
  return out;
}

void RunBatchedScoringPanel(benchmark::State& state, bool batched,
                            bool correlated, bool donation) {
  const int queries = 64;
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(12000), 256, 21);
  const SeriesCollection batch =
      correlated ? CorrelatedQueries(data, /*templates=*/8, /*repeats=*/8, 29)
                 : bench::MixedQueries(data, queries, 29);
  // Static scheduling delivers each node's whole share up front, so the
  // grouped mode can admit up to num_threads co-resident queries per node
  // and scan shared leaves once per group.
  OdysseyOptions options = bench::ClusterOptions(
      256, /*nodes=*/2, /*groups=*/1, SchedulingPolicy::kStatic, true,
      /*threads_per_node=*/4);
  options.batched_scoring = batched;
  options.steal_donation = donation;
  OdysseyCluster cluster(data, options);
  cluster.AnswerBatch(batch);  // Warm-up: persistent executors, page cache.
  double seconds = 0.0;
  uint64_t calls = 0, saved = 0, donated = 0, donated_series = 0;
  uint64_t multi_calls = 0, multi_lanes = 0;
  for (auto _ : state) {
    const uint64_t calls_before = scan_stats::BatchedScoreCalls();
    const uint64_t saved_before = scan_stats::SeriesLoadsSaved();
    const uint64_t donated_before = scan_stats::BatchesDonated();
    const uint64_t donated_series_before = scan_stats::DonatedSeriesScanned();
    const uint64_t multi_calls_before = scan_stats::MultiScoreCalls();
    const uint64_t multi_lanes_before = scan_stats::MultiScoreLanes();
    const BatchReport report = cluster.AnswerBatch(batch);
    seconds = report.query_seconds;
    calls = scan_stats::BatchedScoreCalls() - calls_before;
    saved = scan_stats::SeriesLoadsSaved() - saved_before;
    donated = scan_stats::BatchesDonated() - donated_before;
    donated_series = scan_stats::DonatedSeriesScanned() - donated_series_before;
    multi_calls = scan_stats::MultiScoreCalls() - multi_calls_before;
    multi_lanes = scan_stats::MultiScoreLanes() - multi_lanes_before;
  }
  state.counters["throughput_qps"] =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  state.counters["batched_calls"] = static_cast<double>(calls);
  state.counters["loads_saved"] = static_cast<double>(saved);
  state.counters["batches_donated"] = static_cast<double>(donated);
  state.counters["donated_series"] = static_cast<double>(donated_series);
  // Mixed batches route most leaves through the lone-survivor deferral
  // queue rather than the interleaved batched kernel; these two counters
  // make that visible (lanes/call is the achieved packing density).
  state.counters["multi_calls"] = static_cast<double>(multi_calls);
  state.counters["multi_lanes"] = static_cast<double>(multi_lanes);
}

void RegisterAll() {
  for (int queries : {25, 50, 100, 200}) {
    for (int nodes : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark(
          ("BM_Fig13_Throughput/queries:" + std::to_string(queries) +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [nodes, queries](benchmark::State& s) {
            RunThroughput(s, nodes, queries);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
  for (bool pooled : {true, false}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Fig13b_Executor/") + (pooled ? "pooled" : "legacy"))
            .c_str(),
        [pooled](benchmark::State& s) { RunExecutorPanel(s, pooled); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
  for (int inflight : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("BM_Fig13c_StreamOverlap/inflight:" + std::to_string(inflight))
            .c_str(),
        [inflight](benchmark::State& s) { RunStreamOverlap(s, inflight); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
  for (bool correlated : {true, false}) {
    for (bool batched : {true, false}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig13d_BatchedScoring/") +
           (correlated ? "correlated/" : "mixed/") +
           (batched ? "batched" : "perquery"))
              .c_str(),
          [batched, correlated](benchmark::State& s) {
            RunBatchedScoringPanel(s, batched, correlated,
                                   /*donation=*/true);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
  // Donation on/off, same batched work-steal cluster on the mixed batch:
  // the ratio shows what the slice handoff buys end-to-end, the counters
  // prove slices actually moved in the recorded run.
  for (bool donation : {true, false}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Fig13d_Donation/mixed/") + (donation ? "on" : "off"))
            .c_str(),
        [donation](benchmark::State& s) {
          RunBatchedScoringPanel(s, /*batched=*/true, /*correlated=*/false,
                                 donation);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
