// Figure 13: query throughput (queries/second) as the number of nodes
// grows (Random, FULL replication, WORK-STEAL). Expected shape: throughput
// increases close to linearly with nodes for all batch sizes.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

void RunThroughput(benchmark::State& state, int nodes, int queries) {
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(24000), 256, 21);
  const SeriesCollection batch = bench::MixedQueries(data, queries, 23);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, /*groups=*/1, SchedulingPolicy::kDynamic, true);
  OdysseyCluster cluster(data, options);
  double seconds = 0.0;
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(batch);
    seconds = report.query_seconds;
  }
  state.counters["nodes"] = nodes;
  state.counters["throughput_qps"] =
      seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
}

void RegisterAll() {
  for (int queries : {25, 50, 100, 200}) {
    for (int nodes : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark(
          ("BM_Fig13_Throughput/queries:" + std::to_string(queries) +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [nodes, queries](benchmark::State& s) {
            RunThroughput(s, nodes, queries);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
