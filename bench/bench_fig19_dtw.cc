// Figure 19: DTW query answering with 5% warping (Random) across
// replication strategies and node counts, plus a warping-window sweep
// (the paper varies 1%-15%). Expected shape: DTW costs more than
// Euclidean, and the usual replication/node trends hold.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"
#include "src/distance/dtw.h"

namespace odyssey {
namespace {

constexpr size_t kLength = 128;  // DTW is O(n*w); a shorter series keeps the
                                 // reproduction fast while preserving shape.

void RunDtw(benchmark::State& state, int nodes, int groups, double warping) {
  const SeriesCollection& data =
      bench::CachedDataset("Random", bench::Scaled(12000), kLength, 49);
  const SeriesCollection queries = bench::MixedQueries(data, 15, 51);
  OdysseyOptions options = bench::ClusterOptions(
      kLength, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  options.query_options.use_dtw = true;
  options.query_options.dtw_window =
      WarpingWindowFromFraction(kLength, warping);
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    benchmark::DoNotOptimize(report.answers.size());
  }
  state.counters["nodes"] = nodes;
  state.counters["window_pts"] =
      static_cast<double>(options.query_options.dtw_window);
}

void RegisterAll() {
  const struct {
    const char* name;
    int groups;  // -1 = equally split
  } kStrategies[] = {{"EQUALLY-SPLIT", -1},
                     {"PARTIAL-4", 4},
                     {"PARTIAL-2", 2},
                     {"FULL", 1}};
  for (const auto& strategy : kStrategies) {
    for (int nodes : {1, 2, 4, 8}) {
      const int groups = strategy.groups < 0 ? nodes : strategy.groups;
      if (!bench::ValidLayout(nodes, groups)) continue;
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig19_DTW5pct/") + strategy.name +
           "/nodes:" + std::to_string(nodes))
              .c_str(),
          [=](benchmark::State& s) { RunDtw(s, nodes, groups, 0.05); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
  for (double warping : {0.01, 0.05, 0.10, 0.15}) {
    benchmark::RegisterBenchmark(
        ("BM_Fig19_WarpSweep_FULL_n4/warp_pct:" +
         std::to_string(static_cast<int>(warping * 100)))
            .c_str(),
        [=](benchmark::State& s) { RunDtw(s, 4, 1, warping); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
