// Table 1: the datasets of the evaluation. Prints the registry (paper size
// vs. reproduction stand-in size) and benchmarks materializing each
// dataset, verifying every dataset used by the figure benches is available
// and correctly shaped. With ODYSSEY_DATA_DIR set, file-backed specs ingest
// the real archives (memory-mapped, z-normalized on ingest) instead of
// running the generators, and the bench reports the ingest bandwidth.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

void BM_Table1_Load(benchmark::State& state, const std::string& name) {
  const StatusOr<DatasetSpec> spec =
      Table1Dataset(name, 0.25 * bench::BenchScale());
  ODYSSEY_CHECK_MSG(spec.ok(), spec.status().ToString().c_str());
  for (auto _ : state) {
    StatusOr<SeriesCollection> data = spec->Load(/*seed=*/1);
    ODYSSEY_CHECK_MSG(data.ok(), data.status().ToString().c_str());
    benchmark::DoNotOptimize(data->data(0));
    state.counters["series"] = static_cast<double>(data->size());
    state.counters["length"] = static_cast<double>(data->length());
    state.counters["MB"] =
        static_cast<double>(data->MemoryBytes()) / (1024.0 * 1024.0);
  }
  state.SetLabel(spec->file_backed() ? "file" : "synthetic");
}

void RegisterAll() {
  for (const auto& spec : Table1Datasets()) {
    benchmark::RegisterBenchmark(("BM_Table1_Load/" + spec.name).c_str(),
                                 [name = spec.name](benchmark::State& s) {
                                   BM_Table1_Load(s, name);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::bench::WireJsonOutput(&argc, &argv);
  std::printf(
      "=== Table 1: datasets (paper -> reproduction) ===\n"
      "%-10s %14s %8s %10s   %s\n",
      "dataset", "paper #series", "length", "repro #", "source");
  for (const auto& spec : odyssey::Table1Datasets()) {
    std::printf("%-10s %14zu %8zu %10zu   %s\n", spec.name.c_str(),
                spec.paper_count, spec.length, spec.count,
                spec.description.c_str());
  }
  std::printf("\n");
  odyssey::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
