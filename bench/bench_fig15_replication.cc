// Figure 15: Odyssey's replication strategies with WORK-STEAL-PREDICT on
// Seismic, for a small (a, c) and a large (b, d) query workload.
//  (a)/(b) query-answering time vs nodes: more replication => faster.
//  (c)/(d) total time (index build + queries): for few queries the build
//          cost of FULL dominates (EQUALLY-SPLIT wins); for many queries
//          it is amortized (FULL wins) — the paper's central trade-off.
//  (e)     build time + transient bundle bytes, shared-chunk vs legacy
//          per-node-copy build: FULL/PARTIAL-k replicas indexing one
//          immutable bundle per group cut both by ~replication_degree().
//  (f)     streaming build from disk with/without the double-buffered
//          overlap pipeline: pull of chunk i+1 hidden behind the
//          summarize+partition of chunk i (overlap_s counter). The win
//          tracks how IO-bound the pulls are — on a page-cache-warm
//          archive (CI), the pull is mostly z-normalization CPU and the
//          overlap_s counter is the interesting output; on cold spinning
//          storage the hidden seconds come off the wall clock.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <system_error>

#include "bench/bench_common.h"
#include "src/common/summary_stats.h"
#include "src/dataset/file_io.h"

namespace odyssey {
namespace {

const SeriesCollection& Data() {
  return bench::CachedDataset("Seismic", bench::Scaled(24000), 256, 27);
}

CostModel& SharedCostModel() {
  static CostModel& model = *new CostModel();
  static bool initialized = false;
  if (!initialized) {
    bench::CalibrateModels(Data(), bench::DefaultIndexOptions(256), 12, 29,
                           &model, nullptr);
    initialized = true;
  }
  return model;
}

void RunReplication(benchmark::State& state, int nodes, int groups,
                    int queries, bool include_index_time) {
  const SeriesCollection& data = Data();
  const SeriesCollection batch = bench::MixedQueries(data, queries, 31);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  options.cost_model = &SharedCostModel();
  for (auto _ : state) {
    // Total time includes stage 1-2 (partition + build), so the cluster is
    // constructed inside the timed region for (c)/(d).
    if (include_index_time) {
      OdysseyCluster cluster(data, options);
      const BatchReport report = cluster.AnswerBatch(batch);
      state.counters["index_s"] = cluster.index_seconds();
      state.counters["query_s"] = report.query_seconds;
    } else {
      state.PauseTiming();
      OdysseyCluster cluster(data, options);
      state.ResumeTiming();
      const BatchReport report = cluster.AnswerBatch(batch);
      state.counters["query_s"] = report.query_seconds;
    }
  }
  state.counters["nodes"] = nodes;
}

// (e): stage 1+2 only (no queries) — wall build time plus the transient
// bundle bytes and summary count the build materialized, from the
// build_stats counters (the same ones the shared_chunk_test suite asserts
// once-per-group on).
void RunBuild(benchmark::State& state, int nodes, int groups, bool shared) {
  const SeriesCollection& data = Data();
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  options.share_chunks = shared;
  for (auto _ : state) {
    build_stats::Reset();
    OdysseyCluster cluster(data, options);
    state.counters["build_s"] =
        cluster.partition_seconds() + cluster.index_seconds();
    state.counters["transient_chunk_bytes"] =
        static_cast<double>(build_stats::ChunkBytes());
    state.counters["summaries"] =
        static_cast<double>(build_stats::SummariesBuilt());
    state.counters["bundles"] = static_cast<double>(build_stats::ChunksBuilt());
  }
  state.counters["nodes"] = nodes;
}

// (f): streaming IngestAndBuild from an on-disk archive, with and without
// the double-buffered ingest overlap. The archive is the bench dataset
// dumped once to a temp file, so the pulls are real disk reads.
void RunStreamingBuild(benchmark::State& state, int nodes, int groups,
                       bool overlap) {
  // Per-process name (two users / concurrent runners must not collide on a
  // shared /tmp), written once and removed at exit.
  static const std::string path = [] {
    std::string p = (std::filesystem::temp_directory_path() /
                     ("odyssey_bench_fig15_stream." +
                      std::to_string(::getpid()) + ".raw"))
                        .string();
    const Status written = WriteRawFloats(Data(), p);
    if (!written.ok()) {
      std::fprintf(stderr, "bench: %s\n", written.ToString().c_str());
      p.clear();
      return p;
    }
    std::atexit([] {
      std::error_code ec;
      std::filesystem::remove(
          std::filesystem::temp_directory_path() /
              ("odyssey_bench_fig15_stream." + std::to_string(::getpid()) +
               ".raw"),
          ec);
    });
    return p;
  }();
  if (path.empty()) {
    state.SkipWithError("cannot write streaming archive");
    return;
  }
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  options.overlap_ingest = overlap;
  IngestOptions ingest;
  ingest.length = 256;
  ingest.chunk_size = 4096;
  for (auto _ : state) {
    StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path, ingest);
    if (!source.ok()) {
      state.SkipWithError(source.status().ToString().c_str());
      return;
    }
    auto cluster = OdysseyCluster::IngestAndBuild(*source, options);
    if (!cluster.ok()) {
      state.SkipWithError(cluster.status().ToString().c_str());
      return;
    }
    state.counters["ingest_s"] = (*cluster)->ingest_seconds();
    state.counters["overlap_s"] = (*cluster)->overlap_seconds();
    state.counters["build_s"] =
        (*cluster)->partition_seconds() + (*cluster)->index_seconds();
  }
  state.counters["nodes"] = nodes;
}

void RegisterAll() {
  const struct {
    const char* name;
    int min_nodes;
    int groups;  // -1 = equally split (groups == nodes)
  } kStrategies[] = {
      {"EQUALLY-SPLIT", 1, -1}, {"PARTIAL-4", 4, 4}, {"PARTIAL-2", 2, 2},
      {"FULL", 1, 1}};
  const struct {
    const char* figure;
    int queries;
    bool total;
  } kPanels[] = {{"BM_Fig15a_QueryTime_smallQ", 16, false},
                 {"BM_Fig15b_QueryTime_largeQ", 96, false},
                 {"BM_Fig15c_TotalTime_smallQ", 16, true},
                 {"BM_Fig15d_TotalTime_largeQ", 96, true}};
  for (const auto& panel : kPanels) {
    for (const auto& strategy : kStrategies) {
      for (int nodes : {1, 2, 4, 8}) {
        const int groups = strategy.groups < 0 ? nodes : strategy.groups;
        if (!bench::ValidLayout(nodes, groups) || nodes < strategy.min_nodes) {
          continue;
        }
        benchmark::RegisterBenchmark(
            (std::string(panel.figure) + "/" + strategy.name +
             "/nodes:" + std::to_string(nodes))
                .c_str(),
            [=](benchmark::State& s) {
              RunReplication(s, nodes, groups, panel.queries, panel.total);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseRealTime();
      }
    }
  }
  // (e) build-only series: shared bundle vs legacy per-node copies.
  for (const auto& strategy : kStrategies) {
    for (int nodes : {2, 4, 8}) {
      const int groups = strategy.groups < 0 ? nodes : strategy.groups;
      if (!bench::ValidLayout(nodes, groups) || nodes < strategy.min_nodes) {
        continue;
      }
      for (const bool shared : {true, false}) {
        benchmark::RegisterBenchmark(
            (std::string("BM_Fig15e_Build/") + strategy.name + "/nodes:" +
             std::to_string(nodes) + (shared ? "/shared" : "/legacy"))
                .c_str(),
            [=](benchmark::State& s) { RunBuild(s, nodes, groups, shared); })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseRealTime();
      }
    }
  }
  // (f) streaming build: double-buffered ingest overlap on/off (FULL over 4
  // nodes — the shape whose build the sharing helps most).
  for (const bool overlap : {true, false}) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Fig15f_StreamingBuild/FULL/nodes:4/overlap:") +
         (overlap ? "on" : "off"))
            .c_str(),
        [=](benchmark::State& s) { RunStreamingBuild(s, 4, 1, overlap); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
