// Figure 15: Odyssey's replication strategies with WORK-STEAL-PREDICT on
// Seismic, for a small (a, c) and a large (b, d) query workload.
//  (a)/(b) query-answering time vs nodes: more replication => faster.
//  (c)/(d) total time (index build + queries): for few queries the build
//          cost of FULL dominates (EQUALLY-SPLIT wins); for many queries
//          it is amortized (FULL wins) — the paper's central trade-off.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

const SeriesCollection& Data() {
  return bench::CachedDataset("Seismic", bench::Scaled(24000), 256, 27);
}

CostModel& SharedCostModel() {
  static CostModel& model = *new CostModel();
  static bool initialized = false;
  if (!initialized) {
    bench::CalibrateModels(Data(), bench::DefaultIndexOptions(256), 12, 29,
                           &model, nullptr);
    initialized = true;
  }
  return model;
}

void RunReplication(benchmark::State& state, int nodes, int groups,
                    int queries, bool include_index_time) {
  const SeriesCollection& data = Data();
  const SeriesCollection batch = bench::MixedQueries(data, queries, 31);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, SchedulingPolicy::kPredictDynamic, true);
  options.cost_model = &SharedCostModel();
  for (auto _ : state) {
    // Total time includes stage 1-2 (partition + build), so the cluster is
    // constructed inside the timed region for (c)/(d).
    if (include_index_time) {
      OdysseyCluster cluster(data, options);
      const BatchReport report = cluster.AnswerBatch(batch);
      state.counters["index_s"] = cluster.index_seconds();
      state.counters["query_s"] = report.query_seconds;
    } else {
      state.PauseTiming();
      OdysseyCluster cluster(data, options);
      state.ResumeTiming();
      const BatchReport report = cluster.AnswerBatch(batch);
      state.counters["query_s"] = report.query_seconds;
    }
  }
  state.counters["nodes"] = nodes;
}

void RegisterAll() {
  const struct {
    const char* name;
    int min_nodes;
    int groups;  // -1 = equally split (groups == nodes)
  } kStrategies[] = {
      {"EQUALLY-SPLIT", 1, -1}, {"PARTIAL-4", 4, 4}, {"PARTIAL-2", 2, 2},
      {"FULL", 1, 1}};
  const struct {
    const char* figure;
    int queries;
    bool total;
  } kPanels[] = {{"BM_Fig15a_QueryTime_smallQ", 16, false},
                 {"BM_Fig15b_QueryTime_largeQ", 96, false},
                 {"BM_Fig15c_TotalTime_smallQ", 16, true},
                 {"BM_Fig15d_TotalTime_largeQ", 96, true}};
  for (const auto& panel : kPanels) {
    for (const auto& strategy : kStrategies) {
      for (int nodes : {1, 2, 4, 8}) {
        const int groups = strategy.groups < 0 ? nodes : strategy.groups;
        if (!bench::ValidLayout(nodes, groups) || nodes < strategy.min_nodes) {
          continue;
        }
        benchmark::RegisterBenchmark(
            (std::string(panel.figure) + "/" + strategy.name +
             "/nodes:" + std::to_string(nodes))
                .c_str(),
            [=](benchmark::State& s) {
              RunReplication(s, nodes, groups, panel.queries, panel.total);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->UseRealTime();
      }
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
