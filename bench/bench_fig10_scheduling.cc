// Figure 10: Odyssey's scheduling algorithms on Seismic.
//  (a) FULL replication, 1-8 nodes
//  (b) PARTIAL-2 replication, 2-8 nodes
// Policies: STATIC, DYNAMIC, PREDICT-ST-UNSORTED, PREDICT-ST, PREDICT-DN,
// and WORK-STEAL-PREDICT (PREDICT-DN + work-stealing).
// Expected shape: PREDICT-DN beats STATIC (paper: up to 150%); adding
// work-stealing wins at higher node counts.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

struct PolicyCase {
  const char* name;
  SchedulingPolicy policy;
  bool worksteal;
};

constexpr PolicyCase kPolicies[] = {
    {"static", SchedulingPolicy::kStatic, false},
    {"dynamic", SchedulingPolicy::kDynamic, false},
    {"predict-st-unsorted", SchedulingPolicy::kPredictStaticUnsorted, false},
    {"predict-st", SchedulingPolicy::kPredictStatic, false},
    {"predict-dn", SchedulingPolicy::kPredictDynamic, false},
    {"work-steal-predict", SchedulingPolicy::kPredictDynamic, true},
};

const SeriesCollection& Data() {
  return bench::CachedDataset("Seismic", bench::Scaled(24000), 256, 1);
}

CostModel& SharedCostModel() {
  static CostModel& model = *new CostModel();
  static bool initialized = false;
  if (!initialized) {
    bench::CalibrateModels(Data(), bench::DefaultIndexOptions(256), 12, 7,
                           &model, nullptr);
    initialized = true;
  }
  return model;
}

void RunScheduling(benchmark::State& state, const PolicyCase& policy,
                   int nodes, int groups) {
  const SeriesCollection& data = Data();
  const SeriesCollection queries = bench::MixedQueries(data, 32, 9);
  OdysseyOptions options = bench::ClusterOptions(
      256, nodes, groups, policy.policy, policy.worksteal);
  options.cost_model = &SharedCostModel();
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    state.counters["steals"] = report.total_steals();
    state.counters["sched_ms"] = report.scheduling_seconds * 1e3;
  }
  state.counters["nodes"] = nodes;
}

void RegisterAll() {
  for (const auto& policy : kPolicies) {
    for (int nodes : {1, 2, 4, 8}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig10a_FULL/") + policy.name + "/nodes:" +
           std::to_string(nodes))
              .c_str(),
          [policy, nodes](benchmark::State& s) {
            RunScheduling(s, policy, nodes, /*groups=*/1);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
    for (int nodes : {2, 4, 8}) {
      benchmark::RegisterBenchmark(
          (std::string("BM_Fig10b_PARTIAL2/") + policy.name + "/nodes:" +
           std::to_string(nodes))
              .c_str(),
          [policy, nodes](benchmark::State& s) {
            RunScheduling(s, policy, nodes, /*groups=*/2);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
