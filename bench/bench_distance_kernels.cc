// Microbenchmarks of the runtime-dispatched distance-kernel layer
// (src/distance/simd.h): squared Euclidean, early-abandoning Euclidean,
// LB_Keogh, and banded DTW at each available ISA level on 256-point series
// (the paper's standard series length). The scalar/vector ratio here is the
// acceptance number for SIMD-touching PRs.
//
//   $ ./bench_distance_kernels

#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/distance/dtw.h"
#include "src/distance/lb_keogh.h"
#include "src/distance/simd.h"

namespace odyssey {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kSeries = 4096;

/// A flat pool of random series reused by every case (cache-warm, like the
/// leaf scans of a real query).
const std::vector<float>& Pool() {
  static const std::vector<float>& pool = *new std::vector<float>([] {
    std::vector<float> p(kSeries * kLength);
    Rng rng(97);
    for (auto& x : p) x = static_cast<float>(rng.NextGaussian());
    return p;
  }());
  return pool;
}

const simd::KernelTable* TableForArg(int64_t arg) {
  switch (arg) {
    case 2:
      return simd::Avx2Table();
    case 1:
      return simd::SseTable();
    default:
      return &simd::ScalarTable();
  }
}

void ApplyIsaArgs(benchmark::internal::Benchmark* b) {
  b->Arg(0);
  if (simd::SseTable() != nullptr) b->Arg(1);
  if (simd::Avx2Table() != nullptr) b->Arg(2);
}

void BM_SquaredEuclidean256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  const float* query = pool.data();
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < kSeries; ++i) {
      checksum +=
          table->squared_euclidean(query, pool.data() + i * kLength, kLength);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - 1));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_SquaredEuclidean256)->Apply(ApplyIsaArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_SquaredEuclideanEarlyAbandon256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  const float* query = pool.data();
  // A realistic pruning threshold: most candidates abandon part-way, like a
  // leaf scan once a good BSF is known.
  const float threshold =
      table->squared_euclidean(query, pool.data() + kLength, kLength);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < kSeries; ++i) {
      checksum += table->squared_euclidean_early_abandon(
          query, pool.data() + i * kLength, kLength, threshold);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - 1));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_SquaredEuclideanEarlyAbandon256)->Apply(ApplyIsaArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_LbKeogh256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  const Envelope env = BuildEnvelope(pool.data(), kLength, 13);  // 5% warping
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < kSeries; ++i) {
      checksum += table->lb_keogh(env.upper.data(), env.lower.data(),
                                  pool.data() + i * kLength, kLength);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - 1));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_LbKeogh256)->Apply(ApplyIsaArgs)->Unit(benchmark::kMicrosecond);

void BM_Paa256(benchmark::State& state) {
  // The PAA summarization kernel (16 segments, as in MESSI/Odyssey): what
  // PreparedBatch pays once per query. The scalar/vector ratio here is the
  // acceptance number for the summarization kernel.
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  constexpr int kSegments = 16;
  double out[kSegments];
  double checksum = 0.0;
  for (auto _ : state) {
    for (size_t i = 0; i < kSeries; ++i) {
      table->paa(pool.data() + i * kLength, kLength, kSegments, out);
      checksum += out[0];
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kSeries));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_Paa256)->Apply(ApplyIsaArgs)->Unit(benchmark::kMicrosecond);

void BM_DtwRow256(benchmark::State& state) {
  // The DP row kernel in isolation: one full-band row per inner call.
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  std::vector<float> prev(kLength, 1.0f), cur(kLength, 0.0f);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < 512; ++i) {
      checksum += table->dtw_row(pool[i], pool.data() + i * kLength,
                                 prev.data(), cur.data(), 0, kLength - 1);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 511);
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_DtwRow256)->Apply(ApplyIsaArgs)->Unit(benchmark::kMicrosecond);

void BM_SquaredDtw256(benchmark::State& state) {
  // End-to-end banded DTW through the public API (dispatched kernels);
  // ODYSSEY_SIMD=scalar selects the scalar row kernel for comparison.
  const std::vector<float>& pool = Pool();
  const size_t window = WarpingWindowFromFraction(kLength, 0.05);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < 64; ++i) {
      checksum += SquaredDtw(pool.data(), pool.data() + i * kLength, kLength,
                             window);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 63);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_SquaredDtw256)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace odyssey

ODYSSEY_BENCH_MAIN();
