// Microbenchmarks of the runtime-dispatched distance-kernel layer
// (src/distance/simd.h): squared Euclidean, early-abandoning Euclidean,
// LB_Keogh, and banded DTW at each available ISA level on 256-point series
// (the paper's standard series length). The scalar/vector ratio here is the
// acceptance number for SIMD-touching PRs.
//
//   $ ./bench_distance_kernels

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/distance/dtw.h"
#include "src/distance/lb_keogh.h"
#include "src/distance/simd.h"

namespace odyssey {
namespace {

constexpr size_t kLength = 256;
constexpr size_t kSeries = 4096;

/// A flat pool of random series reused by every case (cache-warm, like the
/// leaf scans of a real query).
const std::vector<float>& Pool() {
  static const std::vector<float>& pool = *new std::vector<float>([] {
    std::vector<float> p(kSeries * kLength);
    Rng rng(97);
    for (auto& x : p) x = static_cast<float>(rng.NextGaussian());
    return p;
  }());
  return pool;
}

const simd::KernelTable* TableForArg(int64_t arg) {
  switch (arg) {
    case 3:
      return simd::Avx512Table();
    case 2:
      return simd::Avx2Table();
    case 1:
      return simd::SseTable();
    default:
      return &simd::ScalarTable();
  }
}

void ApplyIsaArgs(benchmark::internal::Benchmark* b) {
  b->Arg(0);
  if (simd::SseTable() != nullptr) b->Arg(1);
  if (simd::Avx2Table() != nullptr) b->Arg(2);
  if (simd::Avx512Table() != nullptr) b->Arg(3);
}

void BM_SquaredEuclidean256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  const float* query = pool.data();
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < kSeries; ++i) {
      checksum +=
          table->squared_euclidean(query, pool.data() + i * kLength, kLength);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - 1));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_SquaredEuclidean256)->Apply(ApplyIsaArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_SquaredEuclideanEarlyAbandon256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  const float* query = pool.data();
  // A realistic pruning threshold: most candidates abandon part-way, like a
  // leaf scan once a good BSF is known.
  const float threshold =
      table->squared_euclidean(query, pool.data() + kLength, kLength);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < kSeries; ++i) {
      checksum += table->squared_euclidean_early_abandon(
          query, pool.data() + i * kLength, kLength, threshold);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - 1));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_SquaredEuclideanEarlyAbandon256)->Apply(ApplyIsaArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_LbKeogh256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  const Envelope env = BuildEnvelope(pool.data(), kLength, 13);  // 5% warping
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < kSeries; ++i) {
      checksum += table->lb_keogh(env.upper.data(), env.lower.data(),
                                  pool.data() + i * kLength, kLength);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - 1));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_LbKeogh256)->Apply(ApplyIsaArgs)->Unit(benchmark::kMicrosecond);

void BM_Paa256(benchmark::State& state) {
  // The PAA summarization kernel (16 segments, as in MESSI/Odyssey): what
  // PreparedBatch pays once per query. The scalar/vector ratio here is the
  // acceptance number for the summarization kernel.
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  constexpr int kSegments = 16;
  double out[kSegments];
  double checksum = 0.0;
  for (auto _ : state) {
    for (size_t i = 0; i < kSeries; ++i) {
      table->paa(pool.data() + i * kLength, kLength, kSegments, out);
      checksum += out[0];
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kSeries));
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_Paa256)->Apply(ApplyIsaArgs)->Unit(benchmark::kMicrosecond);

void BM_DtwRow256(benchmark::State& state) {
  // The DP row kernel in isolation: one full-band row per inner call.
  const simd::KernelTable* table = TableForArg(state.range(0));
  const std::vector<float>& pool = Pool();
  std::vector<float> prev(kLength, 1.0f), cur(kLength, 0.0f);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < 512; ++i) {
      checksum += table->dtw_row(pool[i], pool.data() + i * kLength,
                                 prev.data(), cur.data(), 0, kLength - 1);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 511);
  state.SetLabel(simd::IsaName(table->isa));
}
BENCHMARK(BM_DtwRow256)->Apply(ApplyIsaArgs)->Unit(benchmark::kMicrosecond);

void BM_SquaredDtw256(benchmark::State& state) {
  // End-to-end banded DTW through the public API (dispatched kernels);
  // ODYSSEY_SIMD=scalar selects the scalar row kernel for comparison.
  const std::vector<float>& pool = Pool();
  const size_t window = WarpingWindowFromFraction(kLength, 0.05);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = 1; i < 64; ++i) {
      checksum += SquaredDtw(pool.data(), pool.data() + i * kLength, kLength,
                             window);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() * 63);
  state.SetLabel(simd::IsaName(simd::ActiveIsa()));
}
BENCHMARK(BM_SquaredDtw256)->Unit(benchmark::kMillisecond);

// ------------------------------------------- batched multi-query kernels
//
// The amortization benchmarks behind the batched-scoring path: score every
// pool candidate against Q prepared queries, either as Q independent
// per-query early-abandon scans — query-major, each query sweeping the
// whole pool on its own, exactly like Q separate QueryExecutions scanning
// the same leaves — or as one batched-kernel call per candidate (one
// candidate load serving all Q). Same ISA table, same thresholds,
// bit-identical outputs — the ratio is the amortization the grouped
// leaf-scan path banks. The committed baseline records batched beating the
// per-query scans from Q >= 4 on.

// The multi-query cases run on z-normalized random walks, the paper's data
// model, instead of the i.i.d. pool above. This matters: i.i.d. Gaussian
// series concentrate all pairwise distances around one value, so no
// BSF-style threshold can trigger early abandoning and every scan runs to
// full length — a regime the leaf-scan path never sees. Random walks keep
// the heavy distance spread of real series, where most candidates freeze
// within their first blocks.
const std::vector<float>& WalkPool() {
  static const std::vector<float>& pool = *new std::vector<float>([] {
    std::vector<float> p(kSeries * kLength);
    Rng rng(131);
    for (size_t s = 0; s < kSeries; ++s) {
      float* series = p.data() + s * kLength;
      double level = 0.0, sum = 0.0, sum_sq = 0.0;
      for (size_t i = 0; i < kLength; ++i) {
        level += rng.NextGaussian();
        series[i] = static_cast<float>(level);
        sum += level;
        sum_sq += level * level;
      }
      const double mean = sum / kLength;
      const double var = sum_sq / kLength - mean * mean;
      const double inv_std = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
      for (size_t i = 0; i < kLength; ++i) {
        series[i] = static_cast<float>((series[i] - mean) * inv_std);
      }
    }
    return p;
  }());
  return pool;
}

constexpr int64_t kBatchQ[] = {1, 4, 8, 16};

void ApplyIsaAndQArgs(benchmark::internal::Benchmark* b) {
  std::vector<int64_t> isas{0};
  if (simd::SseTable() != nullptr) isas.push_back(1);
  if (simd::Avx2Table() != nullptr) isas.push_back(2);
  if (simd::Avx512Table() != nullptr) isas.push_back(3);
  for (int64_t isa : isas) {
    for (int64_t q : kBatchQ) b->Args({isa, q});
  }
}

std::string BatchLabel(const simd::KernelTable* table, size_t q_count) {
  return std::string(simd::IsaName(table->isa)) + "/Q=" +
         std::to_string(q_count);
}

// BSF-tight per-query thresholds: each query's nearest-neighbor distance over
// a sampled eighth of the pool. Exact leaf scans only run after the
// approximate phase has seeded a near-optimal BSF, so this — not a loose
// random-pair distance — is the abandonment regime the leaf-scan kernels
// actually see. (For the LB_Keogh cases the same squared-ED minimum stands
// in for the DTW BSF; ED bounds DTW from above, so it is a valid if
// slightly loose BSF.)
std::vector<float> BatchThresholds(const simd::KernelTable* table,
                                   size_t q_count) {
  const std::vector<float>& pool = WalkPool();
  std::vector<float> thresholds(q_count);
  for (size_t q = 0; q < q_count; ++q) {
    float best = std::numeric_limits<float>::infinity();
    for (size_t i = q_count + 1; i < kSeries; i += 8) {
      best = std::min(best, table->squared_euclidean(
                                pool.data() + q * kLength,
                                pool.data() + i * kLength, kLength));
    }
    thresholds[q] = best;
  }
  return thresholds;
}

void BM_MultiQueryEuclideanPerQuery256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const size_t q_count = static_cast<size_t>(state.range(1));
  const std::vector<float>& pool = WalkPool();
  const std::vector<float> thresholds = BatchThresholds(table, q_count);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t q = 0; q < q_count; ++q) {
      const float* query = pool.data() + q * kLength;
      for (size_t i = q_count + 1; i < kSeries; ++i) {
        checksum += table->squared_euclidean_early_abandon(
            query, pool.data() + i * kLength, kLength, thresholds[q]);
      }
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - q_count - 1) *
                          static_cast<int64_t>(q_count));
  state.SetLabel(BatchLabel(table, q_count));
}
BENCHMARK(BM_MultiQueryEuclideanPerQuery256)
    ->Apply(ApplyIsaAndQArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_MultiQueryEuclideanBatched256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const size_t q_count = static_cast<size_t>(state.range(1));
  const size_t stride = simd::BatchStride(q_count);
  const std::vector<float>& pool = WalkPool();
  const std::vector<float> thresholds = BatchThresholds(table, q_count);
  std::vector<float> block(kLength * stride, 0.0f);
  for (size_t q = 0; q < q_count; ++q) {
    for (size_t i = 0; i < kLength; ++i) {
      block[i * stride + q] = pool[q * kLength + i];
    }
  }
  std::vector<float> out(q_count);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = q_count + 1; i < kSeries; ++i) {
      table->batched_squared_euclidean_early_abandon(
          pool.data() + i * kLength, block.data(), kLength, stride, q_count,
          thresholds.data(), out.data());
      checksum += out[0];
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - q_count - 1) *
                          static_cast<int64_t>(q_count));
  state.SetLabel(BatchLabel(table, q_count));
}
BENCHMARK(BM_MultiQueryEuclideanBatched256)
    ->Apply(ApplyIsaAndQArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_MultiQueryLbKeoghPerQuery256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const size_t q_count = static_cast<size_t>(state.range(1));
  const std::vector<float>& pool = WalkPool();
  const std::vector<float> thresholds = BatchThresholds(table, q_count);
  std::vector<Envelope> envelopes;
  for (size_t q = 0; q < q_count; ++q) {
    envelopes.push_back(BuildEnvelope(pool.data() + q * kLength, kLength, 13));
  }
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t q = 0; q < q_count; ++q) {
      const float* upper = envelopes[q].upper.data();
      const float* lower = envelopes[q].lower.data();
      for (size_t i = q_count + 1; i < kSeries; ++i) {
        checksum += table->lb_keogh_early_abandon(
            upper, lower, pool.data() + i * kLength, kLength, thresholds[q]);
      }
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - q_count - 1) *
                          static_cast<int64_t>(q_count));
  state.SetLabel(BatchLabel(table, q_count));
}
BENCHMARK(BM_MultiQueryLbKeoghPerQuery256)
    ->Apply(ApplyIsaAndQArgs)
    ->Unit(benchmark::kMicrosecond);

void BM_MultiQueryLbKeoghBatched256(benchmark::State& state) {
  const simd::KernelTable* table = TableForArg(state.range(0));
  const size_t q_count = static_cast<size_t>(state.range(1));
  const size_t stride = simd::BatchStride(q_count);
  const std::vector<float>& pool = WalkPool();
  const std::vector<float> thresholds = BatchThresholds(table, q_count);
  std::vector<float> upper_block(kLength * stride, 0.0f);
  std::vector<float> lower_block(kLength * stride, 0.0f);
  for (size_t q = 0; q < q_count; ++q) {
    const Envelope env = BuildEnvelope(pool.data() + q * kLength, kLength, 13);
    for (size_t i = 0; i < kLength; ++i) {
      upper_block[i * stride + q] = env.upper[i];
      lower_block[i * stride + q] = env.lower[i];
    }
  }
  std::vector<float> out(q_count);
  float checksum = 0.0f;
  for (auto _ : state) {
    for (size_t i = q_count + 1; i < kSeries; ++i) {
      table->batched_lb_keogh_early_abandon(
          pool.data() + i * kLength, upper_block.data(), lower_block.data(),
          kLength, stride, q_count, thresholds.data(), out.data());
      checksum += out[0];
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSeries - q_count - 1) *
                          static_cast<int64_t>(q_count));
  state.SetLabel(BatchLabel(table, q_count));
}
BENCHMARK(BM_MultiQueryLbKeoghBatched256)
    ->Apply(ApplyIsaAndQArgs)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace odyssey

ODYSSEY_BENCH_MAIN();
