// Figure 12: query-answering time for a fixed batch as the dataset grows,
// for every replication strategy on 8 nodes; configurations whose per-node
// data exceeds the (simulated) memory budget are skipped exactly like the
// paper's "Memory Limitation" annotations.
//  (a) Random (paper: 100-1600 GB)   (b) Yan-TtI (paper: 100-800 GB)
// Expected shape: time grows with data; more replication = faster queries;
// FULL hits the memory wall first.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

constexpr int kNodes = 8;

// Simulated per-node memory budget (the paper's nodes cap at 200 GB; we
// scale to reproduction sizes: budget = half the largest dataset).
double PerNodeBudgetBytes(size_t largest_series, size_t length) {
  return 0.5 * static_cast<double>(largest_series) *
         static_cast<double>(length) * sizeof(float);
}

void RunScaling(benchmark::State& state, const std::string& dataset,
                size_t length, size_t series, size_t largest, int groups) {
  const double per_node_bytes = static_cast<double>(series) *
                                static_cast<double>(length) * sizeof(float) /
                                static_cast<double>(groups);
  if (per_node_bytes > PerNodeBudgetBytes(largest, length)) {
    state.SkipWithError("Memory Limitation (simulated per-node budget)");
    return;
  }
  const SeriesCollection& data =
      bench::CachedDataset(dataset, series, length, 17);
  const SeriesCollection queries = bench::MixedQueries(data, 25, 19);
  OdysseyOptions options =
      bench::ClusterOptions(length, kNodes, groups,
                            SchedulingPolicy::kPredictDynamic, true);
  OdysseyCluster cluster(data, options);
  for (auto _ : state) {
    const BatchReport report = cluster.AnswerBatch(queries);
    benchmark::DoNotOptimize(report.answers.size());
  }
  state.counters["series"] = static_cast<double>(series);
  state.counters["repl_degree"] = kNodes / groups;
}

void RegisterFamily(const char* figure, const std::string& dataset,
                    size_t length, const std::vector<size_t>& sizes) {
  const size_t largest = sizes.back();
  const struct {
    const char* name;
    int groups;
  } kStrategies[] = {{"EQUALLY-SPLIT", kNodes},
                     {"PARTIAL-4", 4},
                     {"PARTIAL-2", 2},
                     {"FULL", 1}};
  for (const auto& strategy : kStrategies) {
    for (size_t series : sizes) {
      benchmark::RegisterBenchmark(
          (std::string(figure) + "/" + strategy.name +
           "/series:" + std::to_string(series))
              .c_str(),
          [=](benchmark::State& s) {
            RunScaling(s, dataset, length, series, largest, strategy.groups);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::bench::WireJsonOutput(&argc, &argv);
  using odyssey::bench::Scaled;
  odyssey::RegisterFamily("BM_Fig12a_Random", "Random", 256,
                          {Scaled(8000), Scaled(16000), Scaled(32000),
                           Scaled(64000)});
  odyssey::RegisterFamily("BM_Fig12b_YanTtI", "Yan-TtI", 200,
                          {Scaled(8000), Scaled(16000), Scaled(32000)});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
