// Figure 17(a-c): index-construction scalability with EQUALLY-SPLIT.
//  (a) index time vs dataset size (Deep stand-in, 16 nodes): linear in
//      data, with the buffer/tree breakdown reported.
//  (b) index time vs node count (full dataset): near-linear speedup.
//  (c) dataset size and node count scaled together (Random): flat times
//      (the paper's "perfect scalability").

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"

namespace odyssey {
namespace {

void RunIndexBuild(benchmark::State& state, const std::string& dataset,
                   size_t length, size_t series, int nodes) {
  const SeriesCollection& data =
      bench::CachedDataset(dataset, series, length, 37);
  for (auto _ : state) {
    OdysseyOptions options = bench::ClusterOptions(
        length, nodes, /*groups=*/nodes, SchedulingPolicy::kStatic, false,
        /*threads_per_node=*/2);
    OdysseyCluster cluster(data, options);
    state.counters["buffer_s"] = cluster.max_buffer_seconds();
    state.counters["tree_s"] = cluster.max_tree_seconds();
    state.counters["partition_s"] = cluster.partition_seconds();
  }
  state.counters["series"] = static_cast<double>(series);
  state.counters["nodes"] = nodes;
}

void RegisterAll() {
  // (a) size sweep on 16 nodes.
  for (size_t series :
       {bench::Scaled(25000), bench::Scaled(50000), bench::Scaled(75000),
        bench::Scaled(100000)}) {
    benchmark::RegisterBenchmark(
        ("BM_Fig17a_DeepSizeSweep/series:" + std::to_string(series)).c_str(),
        [series](benchmark::State& s) {
          RunIndexBuild(s, "Deep", 96, series, 16);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
  // (b) node sweep on the full stand-in.
  for (int nodes : {2, 4, 8, 16}) {
    benchmark::RegisterBenchmark(
        ("BM_Fig17b_DeepNodeSweep/nodes:" + std::to_string(nodes)).c_str(),
        [nodes](benchmark::State& s) {
          RunIndexBuild(s, "Deep", 96, bench::Scaled(100000), nodes);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
  // (c) data and nodes scale together (Random).
  for (int factor : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("BM_Fig17c_RandomScaleTogether/factor:" + std::to_string(factor))
            .c_str(),
        [factor](benchmark::State& s) {
          RunIndexBuild(s, "Random", 256, bench::Scaled(12000) * factor,
                        factor);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace odyssey

int main(int argc, char** argv) {
  odyssey::RegisterAll();
  odyssey::bench::WireJsonOutput(&argc, &argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
