// Index persistence: snapshot a built index to disk and reload it in a
// (conceptually) new process. Because loading is bit-identical to building
// (replica determinism), a loaded index remains a valid work-stealing
// replica of any node that indexed the same chunk — so a restarted node
// can rejoin its replication group without re-summarizing its data.

#include <cmath>
#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/index/query_engine.h"
#include "src/index/serialize.h"

int main() {
  using namespace odyssey;

  const SeriesCollection data = GenerateSeismicLike(30000, 256, 31);
  IndexOptions options;
  options.config = IsaxConfig(256, 16);
  options.leaf_capacity = 128;

  Stopwatch watch;
  ThreadPool pool(4);
  BuildTimings timings;
  const Index built =
      Index::Build(SeriesCollection(data), options, &pool, &timings);
  std::printf("built index over %zu series in %.3f s\n", data.size(),
              timings.index_seconds());

  const std::string path = "/tmp/odyssey_example_index.odix";
  watch.Restart();
  ODYSSEY_CHECK_OK(SaveIndexToFile(built, path));
  std::printf("saved to %s in %.3f s\n", path.c_str(),
              watch.ElapsedSeconds());

  watch.Restart();
  StatusOr<Index> loaded = LoadIndexFromFile(path);
  ODYSSEY_CHECK_MSG(loaded.ok(), loaded.status().ToString().c_str());
  std::printf("loaded in %.3f s (%zu series, %zu root subtrees)\n",
              watch.ElapsedSeconds(), loaded->data().size(),
              loaded->tree().root_count());

  // Answer a few queries on the loaded index; both indexes must agree.
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.0, 33);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.num_threads = 4;
    // One prepared artifact serves both indexes (as replicas share one in
    // the distributed path).
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), built.config(), qo);
    QueryExecution from_build(&built, prepared, qo);
    from_build.SeedInitialBsf();
    from_build.Run();
    QueryExecution from_load(&*loaded, prepared, qo);
    from_load.SeedInitialBsf();
    from_load.Run();
    const Neighbor a = from_build.results().SortedResults()[0];
    const Neighbor b = from_load.results().SortedResults()[0];
    std::printf("  query %zu: built -> (%u, %.4f), loaded -> (%u, %.4f)\n", q,
                a.id, std::sqrt(a.squared_distance), b.id,
                std::sqrt(b.squared_distance));
    ODYSSEY_CHECK(a.id == b.id);
  }
  std::remove(path.c_str());
  std::printf("loaded index answers identically — a valid replica.\n");
  return 0;
}
