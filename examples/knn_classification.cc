// k-NN classification over a distributed index (the paper motivates batch
// query answering with exactly this downstream task: "a batch of queries,
// e.g., originating from a k-NN classification task").
//
// We synthesize a labeled collection (each series belongs to one of several
// latent pattern classes), index it with Odyssey, answer one batch of
// unlabeled queries with exact 10-NN, and classify by majority vote.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "src/common/math_utils.h"
#include "src/common/rng.h"
#include "src/core/driver.h"
#include "src/dataset/series_collection.h"

namespace {

constexpr size_t kLength = 128;
constexpr int kClasses = 6;

// A class is a smooth random prototype; members are noisy copies. The
// prototype dictionary is fixed (seed 99) so train and test share classes.
std::vector<float> ClassPrototypes() {
  odyssey::Rng rng(99);
  std::vector<float> prototypes(kClasses * kLength);
  for (int c = 0; c < kClasses; ++c) {
    double acc = 0.0;
    for (size_t t = 0; t < kLength; ++t) {
      acc += rng.NextGaussian();
      prototypes[c * kLength + t] = static_cast<float>(acc);
    }
    odyssey::ZNormalize(prototypes.data() + c * kLength, kLength);
  }
  return prototypes;
}

odyssey::SeriesCollection MakeLabeled(size_t count, std::vector<int>* labels,
                                      double noise, uint64_t seed) {
  odyssey::Rng rng(seed);
  const std::vector<float> prototypes = ClassPrototypes();
  odyssey::SeriesCollection out(kLength);
  float* dst = out.AppendUninitialized(count);
  labels->resize(count);
  for (size_t i = 0; i < count; ++i) {
    const int c = static_cast<int>(rng.NextBounded(kClasses));
    (*labels)[i] = c;
    for (size_t t = 0; t < kLength; ++t) {
      dst[i * kLength + t] =
          prototypes[c * kLength + t] +
          static_cast<float>(noise * rng.NextGaussian());
    }
    odyssey::ZNormalize(dst + i * kLength, kLength);
  }
  return out;
}

}  // namespace

int main() {
  using namespace odyssey;

  std::vector<int> train_labels, test_labels;
  const SeriesCollection train = MakeLabeled(30000, &train_labels, 0.6, 3);
  const SeriesCollection test = MakeLabeled(200, &test_labels, 0.9, 5);
  std::printf("train: %zu series, %d classes; test: %zu queries\n",
              train.size(), kClasses, test.size());

  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;  // FULL replication: fastest query answering
  options.index_options.config = IsaxConfig(kLength, 16);
  options.index_options.leaf_capacity = 128;
  options.build_threads_per_node = 4;
  options.query_options.num_threads = 2;
  options.query_options.k = 10;  // exact 10-NN per query
  OdysseyCluster cluster(train, options);

  const BatchReport report = cluster.AnswerBatch(test);
  std::printf("answered %zu x 10-NN queries in %.3f s\n", test.size(),
              report.query_seconds);

  int correct = 0;
  for (size_t q = 0; q < test.size(); ++q) {
    std::map<int, int> votes;
    for (const Neighbor& n : report.answers[q]) {
      ++votes[train_labels[n.id]];
    }
    int best_class = -1, best_votes = -1;
    for (const auto& [cls, v] : votes) {
      if (v > best_votes) {
        best_votes = v;
        best_class = cls;
      }
    }
    correct += (best_class == test_labels[q]);
  }
  std::printf("10-NN majority-vote accuracy: %.1f%% (%d/%zu)\n",
              100.0 * correct / test.size(), correct, test.size());
  std::printf("(labels are latent prototypes + noise; exact k-NN recovers "
              "them almost perfectly)\n");
  return 0;
}
