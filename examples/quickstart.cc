// Quickstart: build a distributed Odyssey deployment over a synthetic
// random-walk collection, answer a small query batch exactly, and print the
// nearest neighbors.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines of logic:
// dataset generation, cluster construction (PARTIAL-2 replication over 4
// simulated nodes), batch answering with the paper's best scheduler
// (PREDICT-DN + work-stealing), and result/reporting accessors.

#include <cmath>
#include <cstdio>

#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"

int main() {
  using namespace odyssey;

  // 1. A collection of 20,000 z-normalized random-walk series of length 128
  //    (the paper's synthetic "Random" dataset, scaled down).
  const SeriesCollection data = GenerateRandomWalk(20000, 128, /*seed=*/1);
  std::printf("dataset: %zu series of length %zu\n", data.size(),
              data.length());

  // 2. An Odyssey deployment: 4 system nodes in 2 replication groups
  //    (PARTIAL-2), 2 search threads per node, iSAX with 16 segments.
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options.config = IsaxConfig(data.length(), /*segments=*/16);
  options.index_options.leaf_capacity = 128;
  options.build_threads_per_node = 4;
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);
  std::printf("cluster: %s over %d nodes, index built in %.3f s "
              "(buffers %.3f s + trees %.3f s)\n",
              cluster.layout().ToString().c_str(), cluster.num_nodes(),
              cluster.index_seconds(), cluster.max_buffer_seconds(),
              cluster.max_tree_seconds());

  // 3. A mixed-difficulty batch of 20 queries.
  WorkloadOptions workload;
  workload.count = 20;
  workload.min_noise = 0.1;
  workload.max_noise = 2.0;
  workload.seed = 7;
  const SeriesCollection queries = GenerateQueries(data, workload);

  // 4. Exact 1-NN answers for the whole batch.
  const BatchReport report = cluster.AnswerBatch(queries);
  std::printf("answered %zu queries in %.3f s (%zu messages, %d steals)\n",
              queries.size(), report.query_seconds, report.messages_sent,
              report.total_steals());
  for (size_t q = 0; q < report.answers.size(); ++q) {
    const Neighbor& nn = report.answers[q][0];
    std::printf("  query %2zu -> series %6u at distance %.4f\n", q, nn.id,
                std::sqrt(nn.squared_distance));
  }
  return 0;
}
