// Seismic monitoring scenario (the paper's motivating Seismic workload):
// an observatory archives instrument recordings and analysts look up the
// most similar historical records for each new event — some events resemble
// thousands of archived traces (easy queries), others are rare (hard
// queries). This skew is exactly what Odyssey's prediction-based scheduling
// and work-stealing are built for.
//
// The example builds the same archive under three deployments and compares
// their query-answering times on one mixed batch:
//   1. EQUALLY-SPLIT  (no replication, no stealing possible)
//   2. FULL + STATIC  (replicated, naive scheduling)
//   3. FULL + WORK-STEAL-PREDICT (the paper's best configuration)

#include <cstdio>

#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"

namespace {

odyssey::BatchReport RunDeployment(const char* label,
                                   const odyssey::SeriesCollection& archive,
                                   const odyssey::SeriesCollection& queries,
                                   int num_groups,
                                   odyssey::SchedulingPolicy policy,
                                   bool worksteal,
                                   const odyssey::CostModel* cost_model) {
  odyssey::OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = num_groups;
  options.index_options.config =
      odyssey::IsaxConfig(archive.length(), /*segments=*/16);
  options.index_options.leaf_capacity = 128;
  options.build_threads_per_node = 4;
  options.scheduling = policy;
  options.worksteal.enabled = worksteal;
  options.query_options.num_threads = 2;
  options.cost_model = cost_model;
  odyssey::OdysseyCluster cluster(archive, options);
  // Answer twice and report the warm run: the first batch pays one-time
  // allocation/page-fault costs that would obscure the comparison.
  cluster.AnswerBatch(queries);
  const odyssey::BatchReport report = cluster.AnswerBatch(queries);
  std::printf("  %-28s index %.3f s   queries %.3f s   steals %d\n", label,
              cluster.index_seconds(), report.query_seconds,
              report.total_steals());
  return report;
}

}  // namespace

int main() {
  using namespace odyssey;

  // The archive: 40,000 seismic-like traces of 256 samples.
  const SeriesCollection archive = GenerateSeismicLike(40000, 256, 11);
  std::printf("archive: %zu traces of length %zu\n\n", archive.size(),
              archive.length());

  // Incoming events: mostly matches of archived activity, with a couple of
  // rare (hard) events at the end of the batch — the worst case for naive
  // schedulers.
  WorkloadOptions workload;
  workload.count = 48;
  workload.min_noise = 0.05;
  workload.max_noise = 1.0;
  workload.unrelated_fraction = 0.25;
  workload.seed = 13;
  const SeriesCollection events = GenerateQueries(archive, workload);

  // Calibrate the execution-time predictor on a handful of training events
  // (Figure 4's regression), using a single-node probe index.
  IndexOptions probe_options;
  probe_options.config = IsaxConfig(archive.length(), 16);
  probe_options.leaf_capacity = 128;
  const Index probe = Index::Build(SeriesCollection(archive), probe_options);
  QueryOptions calib;
  calib.num_threads = 2;
  const SeriesCollection train = GenerateQueries(
      archive, {.count = 16, .min_noise = 0.05, .max_noise = 2.0,
                .unrelated_fraction = 0.1, .seed = 17});
  std::vector<double> bsf, secs;
  for (const auto& s : CollectCalibrationSamples(probe, train, calib)) {
    bsf.push_back(s.initial_bsf);
    secs.push_back(s.exec_seconds);
  }
  CostModel cost_model;
  if (!cost_model.Fit(bsf, secs).ok()) {
    std::printf("calibration failed; estimates fall back to initial BSF\n");
  } else {
    std::printf("cost model: time ~ %.4f * initialBSF %+.4f  (R^2 = %.3f)\n\n",
                cost_model.regression().slope(),
                cost_model.regression().intercept(),
                cost_model.regression().r_squared());
  }

  // Warm-up deployment: pays the process-wide one-time costs (page faults,
  // allocator growth) so the printed comparison is apples-to-apples.
  {
    OdysseyOptions warmup;
    warmup.num_nodes = 4;
    warmup.num_groups = 1;
    warmup.index_options.config = IsaxConfig(archive.length(), 16);
    warmup.index_options.leaf_capacity = 128;
    warmup.build_threads_per_node = 4;
    OdysseyCluster(archive, warmup);
  }

  std::printf("deployments (4 nodes, 2 search threads each):\n");
  RunDeployment("EQUALLY-SPLIT", archive, events, /*groups=*/4,
                SchedulingPolicy::kStatic, false, nullptr);
  RunDeployment("FULL + STATIC", archive, events, /*groups=*/1,
                SchedulingPolicy::kStatic, false, nullptr);
  RunDeployment("FULL + WORK-STEAL-PREDICT", archive, events, /*groups=*/1,
                SchedulingPolicy::kPredictDynamic, true, &cost_model);
  std::printf(
      "\nExpected shape (paper Figs. 10 & 15): replication + prediction +\n"
      "stealing give the lowest query time; EQUALLY-SPLIT builds fastest\n"
      "but answers slowest on skewed batches.\n");
  return 0;
}
