// Ingesting a real on-disk archive into an Odyssey cluster, end to end:
//
//   1. open the archive through the memory-mapped ingestion layer
//      (MappedFile + SeriesIngestor: format detection, header validation,
//      z-normalization on ingest),
//   2. stream it into a cluster with OdysseyCluster::IngestAndBuild — the
//      coordinator's transient heap is one bounded chunk at a time, never
//      the whole archive,
//   3. answer a query batch against the built index.
//
// Usage:
//   ingest_real_dataset                        self-contained demo: writes a
//                                              small raw-float archive to
//                                              /tmp and ingests it
//   ingest_real_dataset <path> [length]        ingest your own archive
//                                              (.fvecs/.bvecs/.bin by
//                                              extension; raw floats need
//                                              the series length argument)
//   ingest_real_dataset --make-fixtures <dir>  write the small fixture set
//                                              (seismic.raw, astro.bin,
//                                              deep.fvecs, sift.bvecs,
//                                              yan-tti.raw) used by CI's
//                                              ODYSSEY_DATA_DIR sanitizer
//                                              run, then exit

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/core/driver.h"
#include "src/dataset/file_io.h"
#include "src/dataset/generators.h"
#include "src/dataset/ingest.h"
#include "src/dataset/workload.h"

namespace {

using namespace odyssey;

/// Un-normalizes a generated collection (scale + shift) so the fixture
/// exercises z-normalize-on-ingest the way a real archive would.
SeriesCollection Denormalize(const SeriesCollection& data, float scale,
                             float shift) {
  SeriesCollection out(data.length());
  out.Reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<float> row(data.length());
    for (size_t t = 0; t < data.length(); ++t) {
      row[t] = shift + scale * data.data(i)[t];
    }
    out.Append(row.data());
  }
  return out;
}

int MakeFixtures(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const std::string base = dir + "/";
  ODYSSEY_CHECK_OK(WriteRawFloats(
      Denormalize(GenerateSeismicLike(512, 256, 1), 12.0f, 300.0f),
      base + "seismic.raw"));
  ODYSSEY_CHECK_OK(WriteCollection(
      Denormalize(GenerateAstroLike(512, 256, 2), 50.0f, -10.0f),
      base + "astro.bin"));
  ODYSSEY_CHECK_OK(WriteFvecs(
      Denormalize(GenerateEmbeddingLike(512, 96, 16, 3), 4.0f, 0.0f),
      base + "deep.fvecs"));
  // SIFT descriptors really are bytes in [0, 255].
  ODYSSEY_CHECK_OK(WriteBvecs(
      Denormalize(GenerateEmbeddingLike(512, 128, 16, 4), 40.0f, 128.0f),
      base + "sift.bvecs"));
  ODYSSEY_CHECK_OK(WriteRawFloats(
      Denormalize(GenerateCrossModalLike(512, 200, 5), 2.0f, 1.0f),
      base + "yan-tti.raw"));
  std::printf("wrote fixtures: seismic.raw astro.bin deep.fvecs sift.bvecs "
              "yan-tti.raw under %s\n", dir.c_str());
  std::printf("try: ODYSSEY_DATA_DIR=%s ./bench_table1_datasets\n",
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  size_t length = 0;
  if (argc >= 3 && std::string(argv[1]) == "--make-fixtures") {
    return MakeFixtures(argv[2]);
  }
  if (argc >= 2) {
    path = argv[1];
    if (argc >= 3) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(argv[2], &end, 10);
      if (end == argv[2] || *end != '\0' || parsed == 0 ||
          argv[2][0] == '-') {
        std::fprintf(stderr,
                     "invalid series length '%s' (expected a positive "
                     "integer)\n",
                     argv[2]);
        return 1;
      }
      length = static_cast<size_t>(parsed);
    }
  } else {
    // Self-contained demo: fabricate a small un-normalized seismic archive.
    path = "/tmp/odyssey_example_seismic.raw";
    length = 256;
    ODYSSEY_CHECK_OK(WriteRawFloats(
        Denormalize(GenerateSeismicLike(8000, length, 7), 15.0f, 120.0f),
        path));
    std::printf("no archive given; wrote a demo archive to %s\n",
                path.c_str());
  }

  IngestOptions options;
  options.length = length;       // required for raw floats, validated else
  options.chunk_size = 2048;     // bounded transient heap per pull
  options.znormalize = true;     // iSAX assumes N(0,1) input

  StatusOr<SeriesIngestor> probe = SeriesIngestor::Open(path, options);
  ODYSSEY_CHECK_MSG(probe.ok(), probe.status().ToString().c_str());
  std::printf(
      "archive: %s\n  format=%s length=%zu series=%zu io=%s chunk=%zu "
      "(max %.1f MiB of series heap per pull)\n",
      path.c_str(), DataFormatToString(probe->format()), probe->length(),
      probe->total_series(), probe->using_mmap() ? "mmap" : "buffered",
      options.chunk_size,
      static_cast<double>(options.chunk_size * probe->length() *
                          sizeof(float)) /
          (1024.0 * 1024.0));

  OdysseyOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.num_groups = 2;  // PARTIAL-2 replication
  cluster_options.index_options.config =
      IsaxConfig(probe->length(), 16);
  cluster_options.build_threads_per_node = 4;
  cluster_options.query_options.num_threads = 4;

  Stopwatch watch;
  StatusOr<std::unique_ptr<OdysseyCluster>> cluster =
      OdysseyCluster::IngestAndBuild(*probe, cluster_options);
  ODYSSEY_CHECK_MSG(cluster.ok(), cluster.status().ToString().c_str());
  std::printf(
      "built a %d-node cluster in %.3f s (ingest %.3f s, partition %.3f s, "
      "index %.3f s)\n",
      (*cluster)->num_nodes(), watch.ElapsedSeconds(),
      (*cluster)->ingest_seconds(), (*cluster)->partition_seconds(),
      (*cluster)->index_seconds());

  // Queries come from a fresh (bit-identical) pass over the same archive:
  // on a real deployment the query series arrive from clients, but reusing
  // the ingest path shows the reader is re-entrant.
  options.max_series = 10;
  StatusOr<SeriesCollection> query_seed = IngestFile(path, options);
  ODYSSEY_CHECK_MSG(query_seed.ok(), query_seed.status().ToString().c_str());
  const SeriesCollection queries =
      GenerateUniformQueries(*query_seed, 10, 0.25, 99);

  const BatchReport report = (*cluster)->AnswerBatch(queries);
  std::printf("answered %zu queries in %.3f s:\n", report.answers.size(),
              report.query_seconds);
  for (size_t q = 0; q < report.answers.size(); ++q) {
    const Neighbor& nn = report.answers[q][0];
    std::printf("  query %zu -> series %u at distance %.4f\n", q, nn.id,
                std::sqrt(nn.squared_distance));
  }
  if (argc < 2) std::remove(path.c_str());
  return 0;
}
