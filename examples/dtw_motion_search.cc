// DTW similarity search (the paper's Section-4 extension): searching a
// library of motion-like patterns for a query that is temporally misaligned
// with its true match. Under Euclidean distance the shifted match looks
// far away; under DTW with a small warping window it is found immediately —
// while the search stays exact thanks to the LB_Keogh-based lower bounds.

#include <cmath>
#include <cstdio>

#include "src/common/math_utils.h"
#include "src/common/rng.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/distance/dtw.h"

namespace {

constexpr size_t kLength = 128;

// Time-shifts a series by `shift` points (cyclic), then re-normalizes.
odyssey::SeriesCollection ShiftQueries(const odyssey::SeriesCollection& data,
                                       size_t count, size_t shift,
                                       uint64_t seed) {
  odyssey::Rng rng(seed);
  odyssey::SeriesCollection out(kLength);
  float* dst = out.AppendUninitialized(count);
  for (size_t q = 0; q < count; ++q) {
    const size_t src = rng.NextBounded(data.size());
    for (size_t t = 0; t < kLength; ++t) {
      dst[q * kLength + t] = data.data(src)[(t + shift) % kLength] +
                             static_cast<float>(0.05 * rng.NextGaussian());
    }
    odyssey::ZNormalize(dst + q * kLength, kLength);
  }
  return out;
}

double MeanNnDistance(const odyssey::BatchReport& report) {
  double total = 0.0;
  for (const auto& answer : report.answers) {
    total += std::sqrt(answer[0].squared_distance);
  }
  return total / static_cast<double>(report.answers.size());
}

}  // namespace

int main() {
  using namespace odyssey;

  const SeriesCollection library = GenerateSeismicLike(20000, kLength, 21);
  const SeriesCollection queries = ShiftQueries(library, 20, /*shift=*/4, 23);
  std::printf("library: %zu patterns; queries: %zu time-shifted probes\n\n",
              library.size(), queries.size());

  OdysseyOptions base;
  base.num_nodes = 4;
  base.num_groups = 2;
  base.index_options.config = IsaxConfig(kLength, 16);
  base.index_options.leaf_capacity = 128;
  base.build_threads_per_node = 4;
  base.query_options.num_threads = 2;

  // The same index answers both distance types — only the query options
  // change (the paper: "no changes are required in the index structure").
  OdysseyCluster cluster(library, base);

  std::printf("%-24s %-14s %s\n", "distance", "mean NN dist", "query time");
  {
    const BatchReport ed = cluster.AnswerBatch(queries);
    std::printf("%-24s %-14.4f %.3f s\n", "Euclidean", MeanNnDistance(ed),
                ed.query_seconds);
  }
  for (double warp : {0.01, 0.05, 0.10}) {
    OdysseyOptions options = base;
    options.query_options.use_dtw = true;
    options.query_options.dtw_window =
        WarpingWindowFromFraction(kLength, warp);
    OdysseyCluster dtw_cluster(library, options);
    const BatchReport report = dtw_cluster.AnswerBatch(queries);
    char label[32];
    std::snprintf(label, sizeof(label), "DTW %.0f%% warping", warp * 100.0);
    std::printf("%-24s %-14.4f %.3f s\n", label, MeanNnDistance(report),
                report.query_seconds);
  }
  std::printf(
      "\nExpected shape: DTW shrinks the nearest-neighbor distance of the\n"
      "shifted probes dramatically (the match is re-aligned), at a higher\n"
      "query cost that grows with the warping window (paper Fig. 19).\n");
  return 0;
}
