#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "src/baselines/dmessi.h"
#include "src/baselines/dpisax.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

using testing_utils::BruteForceKnn;
using testing_utils::BruteForceKnnDtw;
using testing_utils::NearlyEqual;

IndexOptions TestIndexOptions(size_t length = 64) {
  IndexOptions options;
  options.config = IsaxConfig(length, 8);
  options.leaf_capacity = 32;
  return options;
}

void ExpectAnswersMatchBruteForce(const SeriesCollection& data,
                                  const SeriesCollection& queries,
                                  const BatchReport& report, int k,
                                  const std::string& label) {
  ASSERT_EQ(report.answers.size(), queries.size()) << label;
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnn(data, queries.data(q), k);
    const QueryAnswer& got = report.answers[q];
    ASSERT_EQ(got.size(), expected.size()) << label << " query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(NearlyEqual(got[i].squared_distance,
                              expected[i].squared_distance))
          << label << " query " << q << " rank " << i << ": got "
          << got[i].squared_distance << " want "
          << expected[i].squared_distance;
    }
  }
}

// ----------------------------------------------------------- MergeAnswers

TEST(MergeAnswersTest, DeduplicatesByIdKeepingBestDistance) {
  const std::vector<Neighbor> candidates = {
      {5.0f, 1}, {3.0f, 2}, {4.0f, 1}, {1.0f, 3}, {2.0f, 2}};
  const QueryAnswer merged = MergeAnswers(candidates, 10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 3u);
  EXPECT_EQ(merged[0].squared_distance, 1.0f);
  EXPECT_EQ(merged[1].id, 2u);
  EXPECT_EQ(merged[1].squared_distance, 2.0f);
  EXPECT_EQ(merged[2].id, 1u);
  EXPECT_EQ(merged[2].squared_distance, 4.0f);
}

TEST(MergeAnswersTest, TruncatesToK) {
  std::vector<Neighbor> candidates;
  for (uint32_t i = 0; i < 20; ++i) {
    candidates.push_back({static_cast<float>(i), i});
  }
  EXPECT_EQ(MergeAnswers(candidates, 5).size(), 5u);
  EXPECT_TRUE(MergeAnswers({}, 5).empty());
}

// ------------------------------------------------- Distributed exactness

struct ClusterCase {
  const char* name;
  int nodes;
  int groups;
  SchedulingPolicy policy;
  bool worksteal;
  PartitioningScheme partitioning;
};

class DistributedExactnessTest : public ::testing::TestWithParam<ClusterCase> {
};

TEST_P(DistributedExactnessTest, MatchesBruteForce) {
  const ClusterCase param = GetParam();
  const SeriesCollection data = GenerateSeismicLike(2400, 64, 51);
  WorkloadOptions wl;
  wl.count = 16;
  wl.min_noise = 0.1;
  wl.max_noise = 2.5;
  wl.seed = 53;
  const SeriesCollection queries = GenerateQueries(data, wl);

  OdysseyOptions options;
  options.num_nodes = param.nodes;
  options.num_groups = param.groups;
  options.partitioning = param.partitioning;
  options.index_options = TestIndexOptions();
  options.build_threads_per_node = 2;
  options.scheduling = param.policy;
  options.worksteal.enabled = param.worksteal;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, param.name);
  EXPECT_GT(report.query_seconds, 0.0);
  EXPECT_EQ(report.node_stats.size(), static_cast<size_t>(param.nodes));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistributedExactnessTest,
    ::testing::Values(
        ClusterCase{"n1_full_static", 1, 1, SchedulingPolicy::kStatic, false,
                    PartitioningScheme::kEquallySplit},
        ClusterCase{"n2_full_dynamic_ws", 2, 1, SchedulingPolicy::kDynamic,
                    true, PartitioningScheme::kEquallySplit},
        ClusterCase{"n4_full_predictdn_ws", 4, 1,
                    SchedulingPolicy::kPredictDynamic, true,
                    PartitioningScheme::kEquallySplit},
        ClusterCase{"n4_full_predictst", 4, 1, SchedulingPolicy::kPredictStatic,
                    false, PartitioningScheme::kEquallySplit},
        ClusterCase{"n4_full_predictst_unsorted", 4, 1,
                    SchedulingPolicy::kPredictStaticUnsorted, false,
                    PartitioningScheme::kEquallySplit},
        ClusterCase{"n4_partial2_predictdn_ws", 4, 2,
                    SchedulingPolicy::kPredictDynamic, true,
                    PartitioningScheme::kEquallySplit},
        ClusterCase{"n4_split_static", 4, 4, SchedulingPolicy::kStatic, false,
                    PartitioningScheme::kEquallySplit},
        ClusterCase{"n4_split_densityaware", 4, 4, SchedulingPolicy::kStatic,
                    false, PartitioningScheme::kDensityAware},
        ClusterCase{"n4_partial2_shuffle_ws", 4, 2,
                    SchedulingPolicy::kPredictDynamic, true,
                    PartitioningScheme::kRandomShuffle},
        ClusterCase{"n6_partial3_dynamic_ws", 6, 3, SchedulingPolicy::kDynamic,
                    true, PartitioningScheme::kDensityAware}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(DistributedKnnTest, TenNnMatchesBruteForceAcrossReplication) {
  const SeriesCollection data = GenerateRandomWalk(1600, 64, 55);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.5, 57);
  for (int groups : {1, 2, 4}) {
    OdysseyOptions options;
    options.num_nodes = 4;
    options.num_groups = groups;
    options.index_options = TestIndexOptions();
    options.build_threads_per_node = 2;
    options.query_options.num_threads = 2;
    options.query_options.k = 10;
    OdysseyCluster cluster(data, options);
    const BatchReport report = cluster.AnswerBatch(queries);
    ExpectAnswersMatchBruteForce(data, queries, report, 10,
                                 "PARTIAL-" + std::to_string(groups));
  }
}

TEST(DistributedDtwTest, MatchesBruteForceDtw) {
  const SeriesCollection data = GenerateSeismicLike(900, 64, 59);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 61);
  const size_t window = WarpingWindowFromFraction(64, 0.05);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.build_threads_per_node = 2;
  options.query_options.num_threads = 2;
  options.query_options.use_dtw = true;
  options.query_options.dtw_window = window;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  ASSERT_EQ(report.answers.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto expected = BruteForceKnnDtw(data, queries.data(q), 1, window);
    ASSERT_EQ(report.answers[q].size(), 1u);
    EXPECT_TRUE(NearlyEqual(report.answers[q][0].squared_distance,
                            expected[0].squared_distance))
        << "query " << q;
  }
}

TEST(DistributedTest, ReusingClusterAcrossBatchesStaysExact) {
  const SeriesCollection data = GenerateRandomWalk(1200, 64, 63);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);
  for (uint64_t seed : {65u, 67u, 69u}) {
    const SeriesCollection queries =
        GenerateUniformQueries(data, 5, 1.0, seed);
    const BatchReport report = cluster.AnswerBatch(queries);
    ExpectAnswersMatchBruteForce(data, queries, report, 1,
                                 "batch seed " + std::to_string(seed));
  }
}

TEST(DistributedTest, WorkStealingActuallyHappensOnSkewedBatch) {
  // A batch whose last queries are much harder than the rest, dispatched
  // un-sorted (plain DYNAMIC): the early-finishing nodes must steal.
  const SeriesCollection data = GenerateSeismicLike(6000, 64, 71);
  SeriesCollection queries(64);
  {
    const SeriesCollection easy = GenerateUniformQueries(data, 12, 0.05, 73);
    WorkloadOptions hard_wl;
    hard_wl.count = 2;
    hard_wl.unrelated_fraction = 1.0;
    hard_wl.seed = 75;
    const SeriesCollection hard = GenerateQueries(data, hard_wl);
    for (size_t i = 0; i < easy.size(); ++i) queries.Append(easy.data(i));
    for (size_t i = 0; i < hard.size(); ++i) queries.Append(hard.data(i));
  }
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;  // FULL: everyone can steal from everyone
  options.index_options = TestIndexOptions();
  options.build_threads_per_node = 2;
  options.scheduling = SchedulingPolicy::kDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 1;
  options.query_options.num_batches = 16;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "skewed");
  EXPECT_GT(report.steal_requests, 0u);
}

TEST(DistributedTest, ReportAccountsForIndexAndMemory) {
  const SeriesCollection data = GenerateRandomWalk(1000, 64, 77);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  OdysseyCluster cluster(data, options);
  EXPECT_GE(cluster.partition_seconds(), 0.0);
  EXPECT_GT(cluster.index_seconds(), 0.0);
  EXPECT_GT(cluster.total_index_bytes(), 0u);
  // PARTIAL-2 over 4 nodes stores the dataset twice.
  const size_t raw = data.size() * 64 * sizeof(float);
  EXPECT_GE(cluster.total_data_bytes(), 2 * raw);
  EXPECT_LT(cluster.total_data_bytes(), 3 * raw);
}

TEST(DistributedTest, ReplicationDegreeScalesStoredData) {
  const SeriesCollection data = GenerateRandomWalk(800, 64, 79);
  size_t previous = 0;
  for (int groups : {4, 2, 1}) {  // increasing replication
    OdysseyOptions options;
    options.num_nodes = 4;
    options.num_groups = groups;
    options.index_options = TestIndexOptions();
    OdysseyCluster cluster(data, options);
    EXPECT_GT(cluster.total_data_bytes(), previous);
    previous = cluster.total_data_bytes();
  }
}

TEST(DistributedTest, ThresholdAndCostModelsIntegrate) {
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 81);
  const SeriesCollection train = GenerateUniformQueries(data, 12, 1.5, 83);
  // Calibrate both models on a single-node index.
  const Index probe = Index::Build(SeriesCollection(data), TestIndexOptions());
  QueryOptions calib_options;
  calib_options.num_threads = 2;
  const auto samples = CollectCalibrationSamples(probe, train, calib_options);
  std::vector<double> bsf, secs, sizes;
  for (const auto& s : samples) {
    bsf.push_back(s.initial_bsf);
    secs.push_back(s.exec_seconds);
    sizes.push_back(s.median_pq_size);
  }
  CostModel cost_model;
  ASSERT_TRUE(cost_model.Fit(bsf, secs).ok());
  ThresholdModel threshold_model;
  ASSERT_TRUE(threshold_model.Calibrate(bsf, sizes).ok());

  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.cost_model = &cost_model;
  options.threshold_model = &threshold_model;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 1.5, 85);
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "with models");
}

// ---------------------------------------------------------------- Baselines

TEST(BaselinesTest, DMessiMatchesBruteForce) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 87);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 1.5, 89);
  QueryOptions qo;
  qo.num_threads = 2;
  OdysseyCluster cluster(
      data, MakeDMessiOptions(4, TestIndexOptions(), qo, /*swbsf=*/false));
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "DMESSI");
  // DMESSI exchanges no BSF messages.
  EXPECT_EQ(report.bsf_updates, 0u);
  EXPECT_EQ(report.steal_requests, 0u);
}

TEST(BaselinesTest, DMessiSwBsfMatchesBruteForceAndShares) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 91);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 1.5, 93);
  QueryOptions qo;
  qo.num_threads = 2;
  OdysseyCluster cluster(
      data, MakeDMessiOptions(4, TestIndexOptions(), qo, /*swbsf=*/true));
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "DMESSI-SW-BSF");
  EXPECT_GT(report.bsf_updates, 0u);
}

TEST(BaselinesTest, DpisaxPartitionIsValidAndSkewed) {
  const SeriesCollection data = GenerateEmbeddingLike(2000, 64, 8, 95);
  const IsaxConfig config(64, 8);
  const auto chunks = DpisaxPartition(data, 4, config, 0.2, 97);
  ASSERT_EQ(chunks.size(), 4u);
  std::set<uint32_t> seen;
  for (const auto& chunk : chunks) {
    EXPECT_FALSE(chunk.empty());
    for (uint32_t id : chunk) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), data.size());
}

TEST(DistributedTest, StealAccountingIsConsistent) {
  // Every RS-batch a victim gives away is run by exactly one thief: the
  // cluster-wide given-away and stolen-run counters must match.
  const SeriesCollection data = GenerateSeismicLike(4000, 64, 161);
  SeriesCollection queries(64);
  {
    const SeriesCollection easy = GenerateUniformQueries(data, 10, 0.05, 163);
    WorkloadOptions hard_wl;
    hard_wl.count = 2;
    hard_wl.unrelated_fraction = 1.0;
    hard_wl.seed = 165;
    const SeriesCollection hard = GenerateQueries(data, hard_wl);
    for (size_t i = 0; i < easy.size(); ++i) queries.Append(easy.data(i));
    for (size_t i = 0; i < hard.size(); ++i) queries.Append(hard.data(i));
  }
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 1;
  options.query_options.num_batches = 16;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  int given = 0, run = 0, succeeded = 0, attempted = 0;
  for (const auto& stats : report.node_stats) {
    given += stats.batches_given_away;
    run += stats.batches_stolen_run;
    succeeded += stats.successful_steals;
    attempted += stats.steal_attempts;
  }
  EXPECT_EQ(given, run);
  EXPECT_LE(succeeded, attempted);
  EXPECT_EQ(report.steal_requests, static_cast<size_t>(attempted));
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "steal accounting");
}

TEST(DistributedTest, NoRawSeriesEverCrossTheWire) {
  // Structural audit of the "no data moves" claim: the only message type
  // that carries payload beyond scalars is kLocalAnswer (distance, id)
  // pairs and kStealReply (batch ids) — both O(1) per entry, independent
  // of the series length. Run a steal-heavy batch and check the message
  // counters exist for exactly the protocol's types.
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 167);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.5, 169);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.worksteal.enabled = true;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "wire audit");
  // Messages were exchanged, and the Message struct itself cannot carry a
  // float* or SeriesCollection — checked at compile time by its definition;
  // here we just confirm the protocol actually ran.
  EXPECT_GT(report.messages_sent, 0u);
}

TEST(PartitioningTest, DensityAwareRebalancesPathologicalSkew) {
  // Every series identical => a single summarization buffer. Step 6 of the
  // DENSITY-AWARE flowchart must still spread the load across chunks.
  SeriesCollection data(64);
  const SeriesCollection seeded = GenerateRandomWalk(1, 64, 171);
  for (int i = 0; i < 1000; ++i) data.Append(seeded.data(0));
  const IsaxConfig config(64, 8);
  DensityAwareOptions density;
  density.lambda = 0;  // disable pre-splitting: force the rebalancing path
  const auto chunks =
      PartitionSeries(data, 4, PartitioningScheme::kDensityAware, config, 173,
                      nullptr, density);
  size_t total = 0;
  for (const auto& chunk : chunks) {
    EXPECT_GT(chunk.size(), 100u);  // no starving chunk
    total += chunk.size();
  }
  EXPECT_EQ(total, 1000u);
}

TEST(BaselinesTest, DpisaxMatchesBruteForce) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 99);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 1.5, 101);
  QueryOptions qo;
  qo.num_threads = 2;
  OdysseyCluster cluster(
      data, MakeDpisaxOptions(data, 4, TestIndexOptions(), qo));
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectAnswersMatchBruteForce(data, queries, report, 1, "DPiSAX");
}

}  // namespace
}  // namespace odyssey
