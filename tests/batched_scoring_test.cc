// Tests for the batched multi-query scoring path (ISSUE 7): the batched
// kernel family's bit-identity contract (out[q] == the per-query *scalar*
// early-abandon kernel, bit for bit, on every available ISA tier, across
// lengths, group sizes, subnormals and misaligned inputs), the scan_stats
// amortization counters, GroupedQueryExecution answer equivalence against
// independent per-query executions (ED, DTW, k-NN), and the
// ODYSSEY_BATCHED_SCORING driver path through AnswerBatch/AnswerStream.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <vector>

#include "src/common/summary_stats.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "src/distance/simd.h"
#include "src/index/builder.h"
#include "src/index/query_engine.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

using simd::BatchStride;
using simd::KernelTable;
using testing_utils::NearlyEqual;

std::vector<const KernelTable*> AllTables() {
  std::vector<const KernelTable*> tables{&simd::ScalarTable()};
  if (simd::SseTable() != nullptr) tables.push_back(simd::SseTable());
  if (simd::Avx2Table() != nullptr) tables.push_back(simd::Avx2Table());
  if (simd::Avx512Table() != nullptr) tables.push_back(simd::Avx512Table());
  return tables;
}

uint32_t BitsOf(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

// Random points salted with the values FP kernels get wrong first: zeros of
// both signs and subnormals.
std::vector<float> RandomSeries(size_t n, std::mt19937* rng) {
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::uniform_int_distribution<int> pick(0, 19);
  std::vector<float> out(n);
  for (size_t i = 0; i < n; ++i) {
    switch (pick(*rng)) {
      case 0: out[i] = 0.0f; break;
      case 1: out[i] = -0.0f; break;
      case 2: out[i] = 1e-42f; break;   // subnormal
      case 3: out[i] = -1e-42f; break;  // subnormal
      default: out[i] = dist(*rng);
    }
  }
  return out;
}

// Shifts `v` into a buffer whose payload starts one float past an
// allocation boundary, so any kernel silently assuming 16/32/64-byte
// alignment faults or misreads.
std::vector<float> MisalignedShadow(const std::vector<float>& v) {
  std::vector<float> shadow(v.size() + 1, 0.0f);
  std::memcpy(shadow.data() + 1, v.data(), v.size() * sizeof(float));
  return shadow;
}

constexpr size_t kLengths[] = {1,  2,  3,  5,   8,   15,  16,  17,  31, 32,
                               33, 48, 63, 64,  65,  100, 127, 128, 129,
                               192, 255, 256};
constexpr size_t kGroupSizes[] = {1, 2, 3, 7, 16};

// Threshold mix per lane: never abandon, abandon partway (half the exact
// distance), and the 0.0 "skip" sentinel the grouped scan uses for members
// filtered out by their summary bound (freezes after the first block).
float MixedThreshold(size_t q, float exact) {
  switch (q % 3) {
    case 0: return 1e30f;
    case 1: return 0.5f * exact;
    default: return 0.0f;
  }
}

TEST(BatchedKernelTest, EuclideanBitIdenticalToScalarPerQueryOnEveryTier) {
  std::mt19937 rng(20230701);
  const KernelTable& scalar = simd::ScalarTable();
  for (size_t n : kLengths) {
    for (size_t q_count : kGroupSizes) {
      const size_t stride = BatchStride(q_count);
      const std::vector<float> candidate = RandomSeries(n, &rng);
      std::vector<std::vector<float>> queries;
      std::vector<float> block(n * stride, 0.0f);
      std::vector<float> thresholds(q_count);
      std::vector<float> want(q_count);
      for (size_t q = 0; q < q_count; ++q) {
        queries.push_back(RandomSeries(n, &rng));
        for (size_t i = 0; i < n; ++i) block[i * stride + q] = queries[q][i];
        const float exact =
            scalar.squared_euclidean(queries[q].data(), candidate.data(), n);
        thresholds[q] = MixedThreshold(q, exact);
        want[q] = scalar.squared_euclidean_early_abandon(
            queries[q].data(), candidate.data(), n, thresholds[q]);
      }
      const std::vector<float> cand_shadow = MisalignedShadow(candidate);
      const std::vector<float> block_shadow = MisalignedShadow(block);
      for (const KernelTable* table : AllTables()) {
        std::vector<float> out(q_count, -1.0f);
        table->batched_squared_euclidean_early_abandon(
            candidate.data(), block.data(), n, stride, q_count,
            thresholds.data(), out.data());
        for (size_t q = 0; q < q_count; ++q) {
          ASSERT_EQ(BitsOf(out[q]), BitsOf(want[q]))
              << simd::IsaName(table->isa) << " n=" << n << " Q=" << q_count
              << " q=" << q;
        }
        std::vector<float> out_shifted(q_count, -1.0f);
        table->batched_squared_euclidean_early_abandon(
            cand_shadow.data() + 1, block_shadow.data() + 1, n, stride,
            q_count, thresholds.data(), out_shifted.data());
        for (size_t q = 0; q < q_count; ++q) {
          ASSERT_EQ(BitsOf(out_shifted[q]), BitsOf(want[q]))
              << simd::IsaName(table->isa) << " misaligned n=" << n
              << " Q=" << q_count << " q=" << q;
        }
      }
    }
  }
}

TEST(BatchedKernelTest, LbKeoghBitIdenticalToScalarPerQueryOnEveryTier) {
  std::mt19937 rng(20230702);
  const KernelTable& scalar = simd::ScalarTable();
  for (size_t n : kLengths) {
    for (size_t q_count : kGroupSizes) {
      const size_t stride = BatchStride(q_count);
      const std::vector<float> candidate = RandomSeries(n, &rng);
      std::vector<std::vector<float>> uppers;
      std::vector<std::vector<float>> lowers;
      std::vector<float> upper_block(n * stride, 0.0f);
      std::vector<float> lower_block(n * stride, 0.0f);
      std::vector<float> thresholds(q_count);
      std::vector<float> want(q_count);
      for (size_t q = 0; q < q_count; ++q) {
        const std::vector<float> a = RandomSeries(n, &rng);
        const std::vector<float> b = RandomSeries(n, &rng);
        std::vector<float> upper(n);
        std::vector<float> lower(n);
        for (size_t i = 0; i < n; ++i) {
          upper[i] = std::max(a[i], b[i]);
          lower[i] = std::min(a[i], b[i]);
          upper_block[i * stride + q] = upper[i];
          lower_block[i * stride + q] = lower[i];
        }
        const float exact =
            scalar.lb_keogh(upper.data(), lower.data(), candidate.data(), n);
        thresholds[q] = MixedThreshold(q, exact);
        want[q] = scalar.lb_keogh_early_abandon(
            upper.data(), lower.data(), candidate.data(), n, thresholds[q]);
        uppers.push_back(std::move(upper));
        lowers.push_back(std::move(lower));
      }
      const std::vector<float> cand_shadow = MisalignedShadow(candidate);
      const std::vector<float> upper_shadow = MisalignedShadow(upper_block);
      const std::vector<float> lower_shadow = MisalignedShadow(lower_block);
      for (const KernelTable* table : AllTables()) {
        std::vector<float> out(q_count, -1.0f);
        table->batched_lb_keogh_early_abandon(
            candidate.data(), upper_block.data(), lower_block.data(), n,
            stride, q_count, thresholds.data(), out.data());
        for (size_t q = 0; q < q_count; ++q) {
          ASSERT_EQ(BitsOf(out[q]), BitsOf(want[q]))
              << simd::IsaName(table->isa) << " n=" << n << " Q=" << q_count
              << " q=" << q;
        }
        std::vector<float> out_shifted(q_count, -1.0f);
        table->batched_lb_keogh_early_abandon(
            cand_shadow.data() + 1, upper_shadow.data() + 1,
            lower_shadow.data() + 1, n, stride, q_count, thresholds.data(),
            out_shifted.data());
        for (size_t q = 0; q < q_count; ++q) {
          ASSERT_EQ(BitsOf(out_shifted[q]), BitsOf(want[q]))
              << simd::IsaName(table->isa) << " misaligned n=" << n
              << " Q=" << q_count << " q=" << q;
        }
      }
    }
  }
}

TEST(BatchedKernelTest, EveryTableCarriesBatchedKernels) {
  for (const KernelTable* table : AllTables()) {
    EXPECT_NE(table->batched_squared_euclidean_early_abandon, nullptr)
        << simd::IsaName(table->isa);
    EXPECT_NE(table->batched_lb_keogh_early_abandon, nullptr)
        << simd::IsaName(table->isa);
  }
  EXPECT_NE(simd::ActiveTable().batched_squared_euclidean_early_abandon,
            nullptr);
  EXPECT_NE(simd::ActiveTable().batched_lb_keogh_early_abandon, nullptr);
}

TEST(ScanStatsTest, CountBatchedScoreTracksCallsAndSavedLoads) {
  scan_stats::Reset();
  EXPECT_EQ(scan_stats::BatchedScoreCalls(), 0u);
  EXPECT_EQ(scan_stats::SeriesLoadsSaved(), 0u);
  scan_stats::CountBatchedScore(5);
  EXPECT_EQ(scan_stats::BatchedScoreCalls(), 1u);
  EXPECT_EQ(scan_stats::SeriesLoadsSaved(), 4u);
  scan_stats::CountBatchedScore(1);  // a group of one saves nothing
  EXPECT_EQ(scan_stats::BatchedScoreCalls(), 2u);
  EXPECT_EQ(scan_stats::SeriesLoadsSaved(), 4u);
  EXPECT_EQ(scan_stats::MultiScoreCalls(), 0u);
  scan_stats::CountMultiScore(3);
  scan_stats::CountMultiScore(4);
  EXPECT_EQ(scan_stats::MultiScoreCalls(), 2u);
  EXPECT_EQ(scan_stats::MultiScoreLanes(), 7u);
  scan_stats::Reset();
  EXPECT_EQ(scan_stats::BatchedScoreCalls(), 0u);
  EXPECT_EQ(scan_stats::MultiScoreCalls(), 0u);
  EXPECT_EQ(scan_stats::MultiScoreLanes(), 0u);
}

// ------------------------------------------- GroupedQueryExecution (direct)

IndexOptions TestIndexOptions(size_t length = 64) {
  IndexOptions options;
  options.config = IsaxConfig(length, 8);
  options.leaf_capacity = 32;
  return options;
}

struct GroupedCase {
  const char* name;
  bool use_dtw;
  int k;
  int num_threads;
};

class GroupedExecutionTest : public ::testing::TestWithParam<GroupedCase> {};

TEST_P(GroupedExecutionTest, MatchesIndependentPerQueryRuns) {
  const GroupedCase mode = GetParam();
  const SeriesCollection data = GenerateSeismicLike(1200, 64, 71);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.5, 72);
  const IndexOptions iopts = TestIndexOptions();
  ThreadPool pool(2);
  const Index index = Index::Build(data, iopts, &pool);

  QueryOptions qopts;
  qopts.num_threads = mode.num_threads;
  qopts.k = mode.k;
  qopts.use_dtw = mode.use_dtw;
  qopts.dtw_window = mode.use_dtw ? WarpingWindowFromFraction(64, 0.05) : 0;
  const PreparedBatch prepared = PrepareBatch(queries, iopts.config, qopts);

  std::vector<std::vector<Neighbor>> want;
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryExecution exec(&index, prepared.query(q), qopts);
    exec.SeedInitialBsf();
    exec.Run(&pool);
    want.push_back(exec.results().SortedResults());
  }

  scan_stats::Reset();
  std::vector<std::unique_ptr<QueryExecution>> execs;
  std::vector<QueryExecution*> members;
  for (size_t q = 0; q < queries.size(); ++q) {
    execs.push_back(std::make_unique<QueryExecution>(
        &index, prepared.query(q), qopts));
    execs.back()->SeedInitialBsf();
    members.push_back(execs.back().get());
  }
  GroupedQueryExecution group(std::move(members));
  group.Run(mode.num_threads > 1 ? &pool : nullptr);
  // Grouped scoring engaged: high-occupancy series go through the
  // interleaved batched kernel (counted with the loads it amortized),
  // low-occupancy ones through the multi-candidate deferral queues. Which
  // side dominates depends on how often the five queries' filters overlap;
  // the run must have exercised at least one of them.
  EXPECT_GT(scan_stats::BatchedScoreCalls() + scan_stats::MultiScoreCalls(),
            0u);
  EXPECT_GT(scan_stats::SeriesLoadsSaved() + scan_stats::MultiScoreLanes(),
            0u);

  for (size_t q = 0; q < queries.size(); ++q) {
    const std::vector<Neighbor> got = execs[q]->results().SortedResults();
    ASSERT_EQ(got.size(), want[q].size()) << mode.name << " query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[q][i].id)
          << mode.name << " query " << q << " rank " << i;
      EXPECT_TRUE(
          NearlyEqual(got[i].squared_distance, want[q][i].squared_distance))
          << mode.name << " query " << q << " rank " << i << ": "
          << got[i].squared_distance << " vs " << want[q][i].squared_distance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, GroupedExecutionTest,
    ::testing::Values(GroupedCase{"ed_1nn", false, 1, 2},
                      GroupedCase{"ed_5nn", false, 5, 2},
                      GroupedCase{"ed_single_thread", false, 1, 1},
                      GroupedCase{"dtw_1nn", true, 1, 2},
                      GroupedCase{"dtw_3nn", true, 3, 2}));

// -------------------------------------------- donation (engine level)

struct DonationCase {
  const char* name;
  bool use_dtw;
  int k;
};

class GroupedDonationTest : public ::testing::TestWithParam<DonationCase> {};

// Forces a mid-scan donation deterministically, even on a one-CPU CI
// runner where a racing helper thread may never be scheduled inside the
// few-millisecond scan window: each member carries a BSF-improvement
// callback, so the first time the exact scan improves any best-so-far the
// scanning thread itself calls StealBatches on every member — which a
// grouped member forwards to DonateBatches, the same path a comms thread
// takes for a remote kStealRequest. The donated slices are then re-scored
// thief-style (a single-member GroupedQueryExecution on the replica's
// bit-identical index, exactly what NodeRuntime::RunStolenWork builds) and
// the merged answer must match an undisturbed grouped run bit for bit.
TEST_P(GroupedDonationTest, DonatedSlicesRescoredByAThiefStayBitIdentical) {
  const DonationCase mode = GetParam();
  const SeriesCollection data = GenerateSeismicLike(4000, 64, 401);
  const SeriesCollection queries = GenerateUniformQueries(data, 4, 1.5, 403);
  const IndexOptions iopts = TestIndexOptions();
  ThreadPool pool(2);
  const Index index = Index::Build(data, iopts, &pool);

  QueryOptions qopts;
  qopts.num_threads = 1;  // single scanner thread...
  qopts.num_batches = 8;  // ...but still eight stealable RS-batch slices
  qopts.k = mode.k;
  qopts.use_dtw = mode.use_dtw;
  qopts.dtw_window = mode.use_dtw ? WarpingWindowFromFraction(64, 0.05) : 0;
  const PreparedBatch prepared = PrepareBatch(queries, iopts.config, qopts);

  // Reference: an undisturbed grouped run — the non-donated answers.
  std::vector<std::vector<Neighbor>> want;
  {
    std::vector<std::unique_ptr<QueryExecution>> execs;
    std::vector<QueryExecution*> members;
    for (size_t q = 0; q < queries.size(); ++q) {
      execs.push_back(std::make_unique<QueryExecution>(
          &index, prepared.query(q), qopts));
      execs.back()->SeedInitialBsf();
      members.push_back(execs.back().get());
    }
    GroupedQueryExecution group(std::move(members));
    group.Run(nullptr);
    for (auto& e : execs) want.push_back(e->results().SortedResults());
  }

  scan_stats::Reset();
  std::vector<std::unique_ptr<QueryExecution>> execs;
  std::vector<QueryExecution*> members;
  auto cells = std::make_unique<std::atomic<float>[]>(queries.size());
  std::vector<std::vector<int>> donated(queries.size());
  bool armed = false;   // seeding also improves BSFs; ignore those
  bool fired = false;   // donate exactly once, at the first mid-scan improve
  const auto steal_mid_scan = [&](float) {
    if (!armed || fired) return;
    fired = true;
    for (size_t m = 0; m < execs.size(); ++m) {
      const std::vector<int> ids = execs[m]->StealBatches(2);
      donated[m].insert(donated[m].end(), ids.begin(), ids.end());
    }
  };
  for (size_t q = 0; q < queries.size(); ++q) {
    cells[q].store(std::numeric_limits<float>::infinity(),
                   std::memory_order_relaxed);
    execs.push_back(std::make_unique<QueryExecution>(
        &index, prepared.query(q), qopts, &cells[q], steal_mid_scan));
    execs.back()->SeedInitialBsf();
    members.push_back(execs.back().get());
  }
  GroupedQueryExecution group(std::move(members));
  armed = true;
  group.Run(nullptr);
  ASSERT_TRUE(fired)
      << mode.name << ": the exact scan never improved a BSF, so the "
      << "donation hook had no trigger — pick a different dataset seed";
  size_t got = 0;
  for (const auto& d : donated) got += d.size();
  ASSERT_GT(got, 0u) << mode.name << ": no slice had remaining work at the "
                     << "first BSF improvement";

  // The donation counters observed the handoff.
  EXPECT_GT(scan_stats::BatchesDonated(), 0u) << mode.name;
  EXPECT_GT(scan_stats::DonatedSeriesScanned(), 0u) << mode.name;

  // Thief side: re-score every donated slice through a single-member
  // group (the grouped kernel family — one live batched lane), then
  // merge with the victim's partial answer.
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<Neighbor> candidates = execs[q]->results().SortedResults();
    if (!donated[q].empty()) {
      QueryExecution thief(&index, prepared.query(q), qopts);
      thief.SeedInitialBsf();
      GroupedQueryExecution wrap({&thief});
      wrap.RunBatchSubset(donated[q], nullptr);
      const std::vector<Neighbor> extra = thief.results().SortedResults();
      candidates.insert(candidates.end(), extra.begin(), extra.end());
    }
    const QueryAnswer merged = MergeAnswers(candidates, qopts.k);
    ASSERT_EQ(merged.size(), want[q].size()) << mode.name << " query " << q;
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].id, want[q][i].id)
          << mode.name << " query " << q << " rank " << i;
      EXPECT_EQ(BitsOf(merged[i].squared_distance),
                BitsOf(want[q][i].squared_distance))
          << mode.name << " query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, GroupedDonationTest,
                         ::testing::Values(DonationCase{"ed_3nn", false, 3},
                                           DonationCase{"dtw_1nn", true, 1}));

// A member whose scan has already covered every work unit has nothing
// left worth donating: DonateBatches returns empty instead of granting a
// slice with zero remaining series.
TEST(GroupedDonationTest, DrainedGroupDonatesNothing) {
  const SeriesCollection data = GenerateSeismicLike(600, 64, 407);
  const SeriesCollection queries = GenerateUniformQueries(data, 3, 1.5, 409);
  const IndexOptions iopts = TestIndexOptions();
  ThreadPool pool(2);
  const Index index = Index::Build(data, iopts, &pool);
  QueryOptions qopts;
  qopts.num_threads = 1;
  qopts.k = 1;
  const PreparedBatch prepared = PrepareBatch(queries, iopts.config, qopts);
  std::vector<std::unique_ptr<QueryExecution>> execs;
  std::vector<QueryExecution*> members;
  for (size_t q = 0; q < queries.size(); ++q) {
    execs.push_back(std::make_unique<QueryExecution>(
        &index, prepared.query(q), qopts));
    execs.back()->SeedInitialBsf();
    members.push_back(execs.back().get());
  }
  GroupedQueryExecution group(std::move(members));
  scan_stats::Reset();
  EXPECT_TRUE(execs[0]->StealBatches(4).empty());  // not built yet: nothing
  group.Run(nullptr);
  // The cursor is past the end: no slice has remaining work to hand over.
  for (auto& e : execs) EXPECT_TRUE(e->StealBatches(4).empty());
  EXPECT_EQ(scan_stats::BatchesDonated(), 0u);
}

// --------------------------------------------------- cluster-level wiring

void ExpectReportsEquivalent(const BatchReport& got, const BatchReport& want,
                             const char* what) {
  ASSERT_EQ(got.answers.size(), want.answers.size()) << what;
  for (size_t q = 0; q < got.answers.size(); ++q) {
    ASSERT_EQ(got.answers[q].size(), want.answers[q].size())
        << what << " query " << q;
    for (size_t i = 0; i < got.answers[q].size(); ++i) {
      EXPECT_EQ(got.answers[q][i].id, want.answers[q][i].id)
          << what << " query " << q << " rank " << i;
      EXPECT_TRUE(NearlyEqual(got.answers[q][i].squared_distance,
                              want.answers[q][i].squared_distance))
          << what << " query " << q << " rank " << i;
    }
  }
}

TEST(BatchedScoringClusterTest, AnswerBatchMatchesPerQueryPath) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 301);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.5, 303);

  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;  // FULL replication
  options.index_options = TestIndexOptions();
  // Static scheduling delivers every assignment up front, so the batched
  // node finds a full group in its queue instead of singletons.
  options.scheduling = SchedulingPolicy::kStatic;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;

  options.batched_scoring = false;
  OdysseyCluster per_query(data, options);
  const BatchReport want = per_query.AnswerBatch(queries);

  options.batched_scoring = true;
  OdysseyCluster batched(data, options);
  scan_stats::Reset();
  const BatchReport got = batched.AnswerBatch(queries);
  // 4 statically-assigned queries per node and max_inflight = num_threads:
  // groups of >= 2 must have formed, so the grouped scan machinery ran —
  // either the interleaved batched kernel (enough survivors per series) or
  // the multi-candidate deferral queues (low occupancy).
  EXPECT_GT(scan_stats::BatchedScoreCalls() + scan_stats::MultiScoreCalls(),
            0u);
  EXPECT_GT(scan_stats::SeriesLoadsSaved() + scan_stats::MultiScoreLanes(),
            0u);

  ExpectReportsEquivalent(got, want, "batch");
}

// The full donation protocol over the wire: a statically-skewed FULL
// cluster (4-vs-3 query split) lets the lighter node finish first and send
// kStealRequests at the heavier node's still-running group, which donates
// untouched (member, batch) slices instead of replying empty. Answers must
// stay bit-identical to a donation-off run (same grouped kernel family on
// both sides of the handoff), and the scan_stats donation counters must
// prove work actually moved. The race needs the thief to request mid-scan,
// so the test loops rounds until a donation lands (accumulating counters);
// answers are checked every round regardless.
TEST(BatchedScoringClusterTest, DonationServesThievesBitIdentically) {
  const SeriesCollection data = GenerateSeismicLike(3000, 64, 331);
  const SeriesCollection queries = GenerateUniformQueries(data, 7, 1.5, 333);

  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;  // FULL: the thief's replica is bit-identical
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kStatic;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;
  options.batched_scoring = true;
  options.worksteal.enabled = true;
  options.worksteal.nsend = 2;

  options.steal_donation = false;
  OdysseyCluster undonated(data, options);
  const BatchReport want = undonated.AnswerBatch(queries);

  options.steal_donation = true;
  OdysseyCluster donating(data, options);
  scan_stats::Reset();
  for (int round = 0; round < 12; ++round) {
    const BatchReport got = donating.AnswerBatch(queries);
    ASSERT_EQ(got.answers.size(), want.answers.size()) << "round " << round;
    for (size_t q = 0; q < got.answers.size(); ++q) {
      ASSERT_EQ(got.answers[q].size(), want.answers[q].size())
          << "round " << round << " query " << q;
      for (size_t i = 0; i < got.answers[q].size(); ++i) {
        EXPECT_EQ(got.answers[q][i].id, want.answers[q][i].id)
            << "round " << round << " query " << q << " rank " << i;
        EXPECT_EQ(BitsOf(got.answers[q][i].squared_distance),
                  BitsOf(want.answers[q][i].squared_distance))
            << "round " << round << " query " << q << " rank " << i;
      }
    }
    if (scan_stats::BatchesDonated() > 0) break;
  }
  EXPECT_GT(scan_stats::BatchesDonated(), 0u);
  EXPECT_GT(scan_stats::DonatedSeriesScanned(), 0u);
}

// Donation off is a hard off switch: grouped members never register as
// steal victims, so thieves get empty replies and the counters stay idle.
TEST(BatchedScoringClusterTest, DonationOffLeavesCountersIdle) {
  const SeriesCollection data = GenerateSeismicLike(1000, 64, 341);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.5, 343);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kStatic;
  options.query_options.num_threads = 2;
  options.batched_scoring = true;
  options.worksteal.enabled = true;
  options.steal_donation = false;
  OdysseyCluster cluster(data, options);
  scan_stats::Reset();
  cluster.AnswerBatch(queries);
  EXPECT_EQ(scan_stats::BatchesDonated(), 0u);
  EXPECT_EQ(scan_stats::DonatedSeriesScanned(), 0u);
}

TEST(BatchedScoringClusterTest, AnswerBatchPerQueryPathLeavesCountersIdle) {
  const SeriesCollection data = GenerateSeismicLike(800, 64, 311);
  const SeriesCollection queries = GenerateUniformQueries(data, 4, 1.5, 313);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.query_options.num_threads = 2;
  options.batched_scoring = false;
  OdysseyCluster cluster(data, options);
  scan_stats::Reset();
  cluster.AnswerBatch(queries);
  EXPECT_EQ(scan_stats::BatchedScoreCalls(), 0u);
  EXPECT_EQ(scan_stats::SeriesLoadsSaved(), 0u);
}

TEST(BatchedScoringClusterTest, AnswerStreamMatchesPerQueryPath) {
  const SeriesCollection data = GenerateSeismicLike(1200, 64, 321);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.5, 323);
  const std::vector<double> arrivals(queries.size(), 0.0);

  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 2;  // EQUALLY-SPLIT: stream admission per node
  options.index_options = TestIndexOptions();
  options.query_options.num_threads = 2;
  options.query_options.k = 2;
  options.stream_max_inflight = 3;

  options.batched_scoring = false;
  OdysseyCluster per_query(data, options);
  const BatchReport want = per_query.AnswerStream(queries, arrivals);

  options.batched_scoring = true;
  OdysseyCluster batched(data, options);
  const BatchReport got = batched.AnswerStream(queries, arrivals);
  // No counter assertion here: BatchedScoreCalls only records series where
  // >= 2 group members survive the per-series filters (singleton survivors
  // take the per-query kernel), and stream grouping depends on arrival
  // timing — a tiny run may legitimately never amortize. The contract under
  // test is that answers match the per-query path regardless.
  ExpectReportsEquivalent(got, want, "stream");
}

}  // namespace
}  // namespace odyssey
