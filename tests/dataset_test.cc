#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "src/common/math_utils.h"
#include "src/dataset/file_io.h"
#include "src/dataset/generators.h"
#include "src/dataset/registry.h"
#include "src/dataset/series_collection.h"
#include "src/dataset/workload.h"

namespace odyssey {
namespace {

TEST(SeriesCollectionTest, AppendAndAccess) {
  SeriesCollection c(4);
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  c.Append(a);
  c.Append(b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.length(), 4u);
  EXPECT_EQ(c.data(0)[0], 1.0f);
  EXPECT_EQ(c.data(1)[3], 8.0f);
  EXPECT_EQ(c.view(1).length, 4u);
  EXPECT_EQ(c.view(1)[2], 7.0f);
}

TEST(SeriesCollectionTest, AppendUninitializedBulk) {
  SeriesCollection c(8);
  float* dst = c.AppendUninitialized(3);
  for (int i = 0; i < 24; ++i) dst[i] = static_cast<float>(i);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.data(2)[7], 23.0f);
}

TEST(SeriesCollectionTest, SubsetPreservesOrderAndContent) {
  SeriesCollection c(2);
  for (int i = 0; i < 10; ++i) {
    const float v[] = {static_cast<float>(i), static_cast<float>(-i)};
    c.Append(v);
  }
  const SeriesCollection sub = c.Subset({7, 1, 3});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.data(0)[0], 7.0f);
  EXPECT_EQ(sub.data(1)[0], 1.0f);
  EXPECT_EQ(sub.data(2)[1], -3.0f);
}

TEST(SeriesCollectionTest, StorageIs64ByteAligned) {
  SeriesCollection c(16);
  c.AppendUninitialized(4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data(0)) % 64, 0u);
}

// ------------------------------------------------------------ Generators

class GeneratorTest
    : public ::testing::TestWithParam<
          SeriesCollection (*)(size_t, size_t, uint64_t)> {};

TEST_P(GeneratorTest, SeriesAreZNormalized) {
  const SeriesCollection data = GetParam()(64, 128, 7);
  ASSERT_EQ(data.size(), 64u);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(Mean(data.data(i), data.length()), 0.0, 1e-4) << i;
    EXPECT_NEAR(StdDev(data.data(i), data.length()), 1.0, 1e-3) << i;
  }
}

TEST_P(GeneratorTest, DeterministicForSeed) {
  const SeriesCollection a = GetParam()(16, 64, 42);
  const SeriesCollection b = GetParam()(16, 64, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t t = 0; t < a.length(); ++t) {
      ASSERT_EQ(a.data(i)[t], b.data(i)[t]);
    }
  }
}

TEST_P(GeneratorTest, SeedChangesOutput) {
  const SeriesCollection a = GetParam()(8, 64, 1);
  const SeriesCollection b = GetParam()(8, 64, 2);
  int same = 0;
  for (size_t t = 0; t < a.length(); ++t) same += (a.data(0)[t] == b.data(0)[t]);
  EXPECT_LT(same, 8);
}

SeriesCollection EmbeddingWrapper(size_t count, size_t length, uint64_t seed) {
  return GenerateEmbeddingLike(count, length, 16, seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(&GenerateRandomWalk, &GenerateSeismicLike,
                      &GenerateAstroLike, &EmbeddingWrapper,
                      &GenerateCrossModalLike),
    [](const auto& info) {
      switch (info.index) {
        case 0: return std::string("RandomWalk");
        case 1: return std::string("SeismicLike");
        case 2: return std::string("AstroLike");
        case 3: return std::string("EmbeddingLike");
        default: return std::string("CrossModalLike");
      }
    });

// -------------------------------------------------------------- Workload

TEST(WorkloadTest, GeneratesRequestedCountZNormalized) {
  const SeriesCollection data = GenerateRandomWalk(100, 96, 3);
  WorkloadOptions options;
  options.count = 25;
  const SeriesCollection queries = GenerateQueries(data, options);
  ASSERT_EQ(queries.size(), 25u);
  EXPECT_EQ(queries.length(), 96u);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_NEAR(Mean(queries.data(q), 96), 0.0, 1e-4);
  }
}

TEST(WorkloadTest, ZeroNoiseQueriesMatchDatasetMembers) {
  const SeriesCollection data = GenerateRandomWalk(50, 64, 3);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 0.0, 9);
  // Every zero-noise query is a re-normalized copy of some member: its
  // nearest neighbor distance must be ~0.
  for (size_t q = 0; q < queries.size(); ++q) {
    float best = 1e30f;
    for (size_t i = 0; i < data.size(); ++i) {
      float sum = 0.0f;
      for (size_t t = 0; t < 64; ++t) {
        const float d = queries.data(q)[t] - data.data(i)[t];
        sum += d * d;
      }
      best = std::min(best, sum);
    }
    EXPECT_LT(best, 1e-6f);
  }
}

TEST(WorkloadTest, NoiseIncreasesNearestNeighborDistance) {
  const SeriesCollection data = GenerateRandomWalk(200, 64, 3);
  const SeriesCollection easy = GenerateUniformQueries(data, 10, 0.05, 9);
  const SeriesCollection hard = GenerateUniformQueries(data, 10, 3.0, 9);
  auto mean_nn = [&](const SeriesCollection& queries) {
    double total = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      float best = 1e30f;
      for (size_t i = 0; i < data.size(); ++i) {
        float sum = 0.0f;
        for (size_t t = 0; t < 64; ++t) {
          const float d = queries.data(q)[t] - data.data(i)[t];
          sum += d * d;
        }
        best = std::min(best, sum);
      }
      total += std::sqrt(best);
    }
    return total / queries.size();
  };
  EXPECT_LT(mean_nn(easy), mean_nn(hard));
}

TEST(WorkloadTest, UnrelatedFractionProducesQueries) {
  const SeriesCollection data = GenerateRandomWalk(50, 64, 3);
  WorkloadOptions options;
  options.count = 10;
  options.unrelated_fraction = 1.0;
  const SeriesCollection queries = GenerateQueries(data, options);
  EXPECT_EQ(queries.size(), 10u);
}

// --------------------------------------------------------------- File IO

TEST(FileIoTest, RoundTrip) {
  const SeriesCollection data = GenerateRandomWalk(20, 32, 5);
  const std::string path = ::testing::TempDir() + "/odyssey_roundtrip.bin";
  ASSERT_TRUE(WriteCollection(data, path).ok());
  StatusOr<SeriesCollection> loaded = ReadCollection(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), data.size());
  ASSERT_EQ(loaded->length(), data.length());
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t t = 0; t < data.length(); ++t) {
      ASSERT_EQ(loaded->data(i)[t], data.data(i)[t]);
    }
  }
  std::remove(path.c_str());
}

TEST(FileIoTest, ReadMissingFileFails) {
  StatusOr<SeriesCollection> result =
      ReadCollection("/nonexistent/odyssey.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(FileIoTest, ReadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/odyssey_badmagic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[16] = {'n', 'o', 'p', 'e'};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  StatusOr<SeriesCollection> result = ReadCollection(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileIoTest, RawFloatsRoundTrip) {
  const SeriesCollection data = GenerateRandomWalk(6, 16, 5);
  const std::string path = ::testing::TempDir() + "/odyssey_raw.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (size_t i = 0; i < data.size(); ++i) {
    std::fwrite(data.data(i), sizeof(float), 16, f);
  }
  std::fclose(f);
  StatusOr<SeriesCollection> loaded = ReadRawFloats(path, 16);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 6u);
  EXPECT_EQ(loaded->data(3)[7], data.data(3)[7]);
  // A length that does not divide the file size is rejected.
  EXPECT_FALSE(ReadRawFloats(path, 17).ok());
  std::remove(path.c_str());
}

// --------------------------------------------------------------- Registry

TEST(RegistryTest, ContainsAllTable1Rows) {
  const auto specs = Table1Datasets();
  ASSERT_EQ(specs.size(), 6u);
  for (const char* name :
       {"Seismic", "Astro", "Deep", "Sift", "Yan-TtI", "Random"}) {
    bool found = false;
    for (const auto& spec : specs) found |= (spec.name == name);
    EXPECT_TRUE(found) << name;
  }
}

TEST(RegistryTest, SpecsMatchPaperLengths) {
  EXPECT_EQ(Table1Dataset("Seismic")->length, 256u);
  EXPECT_EQ(Table1Dataset("Deep")->length, 96u);
  EXPECT_EQ(Table1Dataset("Sift")->length, 128u);
  EXPECT_EQ(Table1Dataset("Yan-TtI")->length, 200u);
}

TEST(RegistryTest, UnknownNameIsNotFoundInEveryBuildMode) {
  const StatusOr<DatasetSpec> spec = Table1Dataset("NoSuchDataset");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, ScaleControlsCount) {
  const DatasetSpec small = *Table1Dataset("Random", 0.01);
  const DatasetSpec big = *Table1Dataset("Random", 0.1);
  EXPECT_LT(small.count, big.count);
  const SeriesCollection data = small.Generate(1);
  EXPECT_EQ(data.size(), small.count);
  EXPECT_EQ(data.length(), small.length);
}

}  // namespace
}  // namespace odyssey
