#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/net/fault_plan.h"
#include "src/net/mailbox.h"
#include "src/net/message.h"
#include "src/net/sim_cluster.h"

namespace odyssey {
namespace {

Message Receive(Mailbox& box) {
  Message m;
  EXPECT_TRUE(box.Receive(&m));
  return m;
}

TEST(MailboxTest, FifoOrder) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MessageType::kAssignQuery;
    m.query_id = i;
    box.Send(std::move(m));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Receive(box).query_id, i);
  }
}

TEST(MailboxTest, TryReceiveOnEmptyReturnsFalse) {
  Mailbox box;
  Message m;
  EXPECT_FALSE(box.TryReceive(&m));
  Message sent;
  sent.type = MessageType::kDone;
  sent.from = 3;
  box.Send(std::move(sent));
  ASSERT_TRUE(box.TryReceive(&m));
  EXPECT_EQ(m.type, MessageType::kDone);
  EXPECT_EQ(m.from, 3);
  EXPECT_FALSE(box.TryReceive(&m));
}

TEST(MailboxTest, BlockingReceiveWakesOnSend) {
  Mailbox box;
  std::thread receiver([&box] {
    Message m;
    ASSERT_TRUE(box.Receive(&m));
    EXPECT_EQ(m.query_id, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Message m;
  m.type = MessageType::kAssignQuery;
  m.query_id = 42;
  box.Send(std::move(m));
  receiver.join();
}

TEST(MailboxTest, ConcurrentProducersLoseNothing) {
  Mailbox box;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message m;
        m.type = MessageType::kBsfUpdate;
        m.from = p;
        m.query_id = i;
        box.Send(std::move(m));
      }
    });
  }
  for (auto& t : producers) t.join();
  std::vector<int> counts(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ++counts[Receive(box).from];
  }
  for (int c : counts) EXPECT_EQ(c, kPerProducer);
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxTest, CloseWakesBlockedReceiverWithClosedStatus) {
  Mailbox box;
  std::thread receiver([&box] {
    Message m;
    // Distinguishable shutdown: a closed mailbox returns false instead of
    // blocking forever or fabricating a message.
    EXPECT_FALSE(box.Receive(&m));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.Close();
  receiver.join();
  EXPECT_TRUE(box.closed());
}

TEST(MailboxTest, CloseDiscardsQueueAndDropsLaterSends) {
  Mailbox box;
  Message m;
  m.type = MessageType::kAssignQuery;
  box.Send(m);
  box.Close();
  EXPECT_EQ(box.size(), 0u);
  box.Send(m);  // silently dropped: the node is dead
  EXPECT_EQ(box.size(), 0u);
  Message out;
  EXPECT_FALSE(box.TryReceive(&out));
  EXPECT_FALSE(box.Receive(&out));
}

TEST(MailboxTest, ReceiveForTimesOutAndReportsClosed) {
  Mailbox box;
  Message m;
  EXPECT_FALSE(box.ReceiveFor(std::chrono::microseconds(500), &m));
  box.Close();
  EXPECT_FALSE(box.ReceiveFor(std::chrono::microseconds(500), &m));
}

TEST(MailboxTest, HeldMessageReleasedAfterLaterArrivals) {
  Mailbox box;
  Message delayed;
  delayed.type = MessageType::kLocalAnswer;
  delayed.query_id = 99;
  box.SendHeld(delayed, /*hold_for=*/2);
  // Not ripe yet: only one arrival (the held one itself) has happened, but
  // size() still accounts for it.
  EXPECT_EQ(box.size(), 1u);
  Message a;
  a.type = MessageType::kAssignQuery;
  a.query_id = 1;
  box.Send(a);
  a.query_id = 2;
  box.Send(a);
  // Two later arrivals: the held message is now ripe and flushed behind
  // them (it "arrived late").
  EXPECT_EQ(Receive(box).query_id, 1);
  EXPECT_EQ(Receive(box).query_id, 2);
  EXPECT_EQ(Receive(box).query_id, 99);
}

TEST(MailboxTest, HeldMessageForceFlushedWhenReceiverWouldBlock) {
  Mailbox box;
  Message delayed;
  delayed.type = MessageType::kLocalAnswer;
  delayed.query_id = 7;
  box.SendHeld(delayed, /*hold_for=*/1000);
  // No later traffic will ever arrive; TryReceive must force-flush the
  // held message rather than strand it (delivery is guaranteed).
  Message m;
  ASSERT_TRUE(box.TryReceive(&m));
  EXPECT_EQ(m.query_id, 7);
}

TEST(MailboxTest, BlockedReceiverForceFlushesHeldInsteadOfWaiting) {
  Mailbox box;
  Message delayed;
  delayed.type = MessageType::kDone;
  delayed.query_id = 13;
  box.SendHeld(delayed, /*hold_for=*/1000000);
  Message m;
  // Blocking Receive with only held traffic must not deadlock.
  ASSERT_TRUE(box.Receive(&m));
  EXPECT_EQ(m.query_id, 13);
}

TEST(SimClusterTest, SendReachesTarget) {
  SimCluster cluster(4);
  Message m;
  m.type = MessageType::kStealRequest;
  m.from = 0;
  cluster.Send(2, std::move(m));
  EXPECT_EQ(cluster.mailbox(2).size(), 1u);
  EXPECT_EQ(cluster.mailbox(1).size(), 0u);
  const Message got = Receive(cluster.mailbox(2));
  EXPECT_EQ(got.type, MessageType::kStealRequest);
  EXPECT_EQ(got.from, 0);
}

TEST(SimClusterTest, BroadcastReachesAllNodesExceptExcluded) {
  SimCluster cluster(4);
  Message m;
  m.type = MessageType::kBsfUpdate;
  m.from = 1;
  cluster.Broadcast(m, /*except=*/1);
  EXPECT_EQ(cluster.mailbox(0).size(), 1u);
  EXPECT_EQ(cluster.mailbox(1).size(), 0u);
  EXPECT_EQ(cluster.mailbox(2).size(), 1u);
  EXPECT_EQ(cluster.mailbox(3).size(), 1u);
  // The coordinator is not part of broadcasts.
  EXPECT_EQ(cluster.mailbox(cluster.coordinator_id()).size(), 0u);
}

TEST(SimClusterTest, CoordinatorHasItsOwnMailbox) {
  SimCluster cluster(2);
  EXPECT_EQ(cluster.coordinator_id(), 2);
  Message m;
  m.type = MessageType::kLocalAnswer;
  m.from = 0;
  m.query_id = 5;
  m.neighbors.push_back({1.5f, 77});
  cluster.Send(cluster.coordinator_id(), std::move(m));
  const Message got = Receive(cluster.mailbox(cluster.coordinator_id()));
  EXPECT_EQ(got.type, MessageType::kLocalAnswer);
  ASSERT_EQ(got.neighbors.size(), 1u);
  EXPECT_EQ(got.neighbors[0].id, 77u);
}

TEST(SimClusterTest, CountsMessagesByType) {
  SimCluster cluster(3);
  Message steal;
  steal.type = MessageType::kStealRequest;
  cluster.Send(0, steal);
  cluster.Send(1, steal);
  Message bsf;
  bsf.type = MessageType::kBsfUpdate;
  cluster.Broadcast(bsf);
  EXPECT_EQ(cluster.messages_sent(), 5u);
  EXPECT_EQ(cluster.messages_sent(MessageType::kStealRequest), 2u);
  EXPECT_EQ(cluster.messages_sent(MessageType::kBsfUpdate), 3u);
  EXPECT_EQ(cluster.messages_sent(MessageType::kDone), 0u);
}

TEST(MessageTest, AllTypesHaveNames) {
  for (MessageType type :
       {MessageType::kAssignQuery, MessageType::kNoMoreQueries,
        MessageType::kQueryRequest, MessageType::kBsfUpdate,
        MessageType::kDone, MessageType::kStealRequest,
        MessageType::kStealReply, MessageType::kLocalAnswer,
        MessageType::kNodeTerminated, MessageType::kShutdown,
        MessageType::kNodeDead, MessageType::kNodeDeadAck,
        MessageType::kRecoverQuery, MessageType::kHeartbeat}) {
    EXPECT_STRNE(MessageTypeToString(type), "Unknown");
  }
}

TEST(FaultInjectorTest, InactivePlanIsPassthrough) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  FaultInjector injector(plan);
  Message m;
  m.type = MessageType::kBsfUpdate;
  m.from = 0;
  const FaultDecision d = injector.Decide(1, m);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.copies, 1);
  EXPECT_EQ(d.hold_for, 0);
  EXPECT_EQ(d.close_node, -1);
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_prob = 0.3;
  plan.delay_prob = 0.3;
  plan.duplicate_prob = 0.2;
  plan.reorder_prob = 0.2;
  FaultInjector a(plan);
  FaultInjector b(plan);
  Message m;
  m.type = MessageType::kBsfUpdate;
  m.from = 2;
  for (int i = 0; i < 200; ++i) {
    const FaultDecision da = a.Decide(i % 4, m);
    const FaultDecision db = b.Decide(i % 4, m);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.copies, db.copies);
    EXPECT_EQ(da.hold_for, db.hold_for);
  }
}

TEST(FaultInjectorTest, ControlPlaneIsReliable) {
  for (MessageType type :
       {MessageType::kShutdown, MessageType::kNodeDead,
        MessageType::kNodeDeadAck, MessageType::kRecoverQuery}) {
    EXPECT_TRUE(FaultInjector::Reliable(type));
  }
  for (MessageType type :
       {MessageType::kAssignQuery, MessageType::kLocalAnswer,
        MessageType::kStealRequest, MessageType::kStealReply,
        MessageType::kBsfUpdate, MessageType::kNodeTerminated}) {
    EXPECT_FALSE(FaultInjector::Reliable(type));
  }
}

TEST(FaultInjectorTest, OnlyBsfUpdatesAreDroppable) {
  EXPECT_TRUE(FaultInjector::Droppable(MessageType::kBsfUpdate));
  for (MessageType type :
       {MessageType::kAssignQuery, MessageType::kNoMoreQueries,
        MessageType::kQueryRequest, MessageType::kLocalAnswer,
        MessageType::kStealRequest, MessageType::kStealReply,
        MessageType::kNodeTerminated, MessageType::kDone}) {
    EXPECT_FALSE(FaultInjector::Droppable(type));
  }
}

TEST(FaultInjectorTest, KillTriggersAfterNthSendAndDropsDeadTraffic) {
  FaultPlan plan;
  plan.seed = 7;
  plan.dead_node = 1;
  plan.kill_after_sends = 3;
  ASSERT_TRUE(plan.active());
  FaultInjector injector(plan);
  Message m;
  m.type = MessageType::kLocalAnswer;
  m.from = 1;
  // First two sends pass untouched.
  EXPECT_EQ(injector.Decide(0, m).close_node, -1);
  EXPECT_EQ(injector.Decide(0, m).close_node, -1);
  EXPECT_FALSE(injector.victim_dead());
  // The third send triggers the kill but is itself still delivered.
  const FaultDecision d = injector.Decide(0, m);
  EXPECT_EQ(d.close_node, 1);
  EXPECT_FALSE(d.drop);
  EXPECT_TRUE(injector.victim_dead());
  // Everything to or from the corpse is dropped from now on.
  EXPECT_TRUE(injector.Decide(0, m).drop);
  Message to_corpse;
  to_corpse.type = MessageType::kAssignQuery;
  to_corpse.from = 2;
  EXPECT_TRUE(injector.Decide(1, to_corpse).drop);
  // Traffic between survivors is untouched (no other faults configured).
  Message between;
  between.type = MessageType::kStealRequest;
  between.from = 2;
  EXPECT_FALSE(injector.Decide(0, between).drop);
}

TEST(SimClusterTest, InjectorKillClosesVictimMailbox) {
  FaultPlan plan;
  plan.seed = 11;
  plan.dead_node = 0;
  plan.kill_after_sends = 1;
  FaultInjector injector(plan);
  SimCluster cluster(2, &injector);
  Message m;
  m.type = MessageType::kLocalAnswer;
  m.from = 0;
  cluster.Send(cluster.coordinator_id(), m);  // victim's first send: kill
  EXPECT_TRUE(cluster.mailbox(0).closed());
  EXPECT_FALSE(cluster.mailbox(1).closed());
  // The triggering message was still delivered.
  EXPECT_EQ(cluster.mailbox(cluster.coordinator_id()).size(), 1u);
}

TEST(SimClusterTest, InjectorDuplicatesAndDelaysDeliverEverything) {
  FaultPlan plan;
  plan.seed = 99;
  plan.duplicate_prob = 0.5;
  plan.delay_prob = 0.5;
  plan.max_delay = 4;
  FaultInjector injector(plan);
  SimCluster cluster(2, &injector);
  constexpr int kSends = 100;
  for (int i = 0; i < kSends; ++i) {
    Message m;
    m.type = MessageType::kStealRequest;
    m.from = 0;
    m.query_id = i;
    cluster.Send(1, m);
  }
  // Every logical message arrives at least once (no drops configured);
  // duplicates may push the count higher.
  std::set<int> seen;
  int received = 0;
  Message m;
  while (cluster.mailbox(1).TryReceive(&m)) {
    seen.insert(m.query_id);
    ++received;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kSends));
  EXPECT_GE(received, kSends);
}

}  // namespace
}  // namespace odyssey
