#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/net/mailbox.h"
#include "src/net/message.h"
#include "src/net/sim_cluster.h"

namespace odyssey {
namespace {

TEST(MailboxTest, FifoOrder) {
  Mailbox box;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MessageType::kAssignQuery;
    m.query_id = i;
    box.Send(std::move(m));
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(box.Receive().query_id, i);
  }
}

TEST(MailboxTest, TryReceiveOnEmptyReturnsFalse) {
  Mailbox box;
  Message m;
  EXPECT_FALSE(box.TryReceive(&m));
  Message sent;
  sent.type = MessageType::kDone;
  sent.from = 3;
  box.Send(std::move(sent));
  ASSERT_TRUE(box.TryReceive(&m));
  EXPECT_EQ(m.type, MessageType::kDone);
  EXPECT_EQ(m.from, 3);
  EXPECT_FALSE(box.TryReceive(&m));
}

TEST(MailboxTest, BlockingReceiveWakesOnSend) {
  Mailbox box;
  std::thread receiver([&box] {
    const Message m = box.Receive();
    EXPECT_EQ(m.query_id, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Message m;
  m.type = MessageType::kAssignQuery;
  m.query_id = 42;
  box.Send(std::move(m));
  receiver.join();
}

TEST(MailboxTest, ConcurrentProducersLoseNothing) {
  Mailbox box;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message m;
        m.type = MessageType::kBsfUpdate;
        m.from = p;
        m.query_id = i;
        box.Send(std::move(m));
      }
    });
  }
  for (auto& t : producers) t.join();
  std::vector<int> counts(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ++counts[box.Receive().from];
  }
  for (int c : counts) EXPECT_EQ(c, kPerProducer);
  EXPECT_EQ(box.size(), 0u);
}

TEST(SimClusterTest, SendReachesTarget) {
  SimCluster cluster(4);
  Message m;
  m.type = MessageType::kStealRequest;
  m.from = 0;
  cluster.Send(2, std::move(m));
  EXPECT_EQ(cluster.mailbox(2).size(), 1u);
  EXPECT_EQ(cluster.mailbox(1).size(), 0u);
  const Message got = cluster.mailbox(2).Receive();
  EXPECT_EQ(got.type, MessageType::kStealRequest);
  EXPECT_EQ(got.from, 0);
}

TEST(SimClusterTest, BroadcastReachesAllNodesExceptExcluded) {
  SimCluster cluster(4);
  Message m;
  m.type = MessageType::kBsfUpdate;
  m.from = 1;
  cluster.Broadcast(m, /*except=*/1);
  EXPECT_EQ(cluster.mailbox(0).size(), 1u);
  EXPECT_EQ(cluster.mailbox(1).size(), 0u);
  EXPECT_EQ(cluster.mailbox(2).size(), 1u);
  EXPECT_EQ(cluster.mailbox(3).size(), 1u);
  // The coordinator is not part of broadcasts.
  EXPECT_EQ(cluster.mailbox(cluster.coordinator_id()).size(), 0u);
}

TEST(SimClusterTest, CoordinatorHasItsOwnMailbox) {
  SimCluster cluster(2);
  EXPECT_EQ(cluster.coordinator_id(), 2);
  Message m;
  m.type = MessageType::kLocalAnswer;
  m.from = 0;
  m.query_id = 5;
  m.neighbors.push_back({1.5f, 77});
  cluster.Send(cluster.coordinator_id(), std::move(m));
  const Message got = cluster.mailbox(cluster.coordinator_id()).Receive();
  EXPECT_EQ(got.type, MessageType::kLocalAnswer);
  ASSERT_EQ(got.neighbors.size(), 1u);
  EXPECT_EQ(got.neighbors[0].id, 77u);
}

TEST(SimClusterTest, CountsMessagesByType) {
  SimCluster cluster(3);
  Message steal;
  steal.type = MessageType::kStealRequest;
  cluster.Send(0, steal);
  cluster.Send(1, steal);
  Message bsf;
  bsf.type = MessageType::kBsfUpdate;
  cluster.Broadcast(bsf);
  EXPECT_EQ(cluster.messages_sent(), 5u);
  EXPECT_EQ(cluster.messages_sent(MessageType::kStealRequest), 2u);
  EXPECT_EQ(cluster.messages_sent(MessageType::kBsfUpdate), 3u);
  EXPECT_EQ(cluster.messages_sent(MessageType::kDone), 0u);
}

TEST(MessageTest, AllTypesHaveNames) {
  for (MessageType type :
       {MessageType::kAssignQuery, MessageType::kNoMoreQueries,
        MessageType::kQueryRequest, MessageType::kBsfUpdate,
        MessageType::kDone, MessageType::kStealRequest,
        MessageType::kStealReply, MessageType::kLocalAnswer,
        MessageType::kNodeTerminated, MessageType::kShutdown}) {
    EXPECT_STRNE(MessageTypeToString(type), "Unknown");
  }
}

}  // namespace
}  // namespace odyssey
