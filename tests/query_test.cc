// Tests for the PreparedQuery pipeline: the batch-level summaries must be
// (a) exactly what the standalone summarization routines produce, (b)
// bit-identical in effect whether an execution uses the batch-shared
// artifact or a freshly prepared one — across ED / DTW / k-NN /
// approximate modes and under work-stealing — and (c) built at most once
// per query per batch across scheduling, replicas and stolen work
// (asserted through the summary_stats counters).

// Installs the counting global operator new from testing_utils.h so the
// hot-path purity tests below can assert zero steady-state allocations.
// Must be defined before any include (one TU per binary may define it).
#define ODYSSEY_TESTING_COUNT_ALLOCATIONS 1

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/hotpath.h"
#include "src/common/summary_stats.h"
#include "src/common/thread_pool.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "src/index/query_engine.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

IndexOptions TestIndexOptions(size_t length = 64) {
  IndexOptions options;
  options.config = IsaxConfig(length, 8);
  options.leaf_capacity = 32;
  return options;
}

// ------------------------------------------------- PreparedQuery contents

TEST(PreparedQueryTest, SummariesMatchStandaloneRoutines) {
  const SeriesCollection queries = GenerateRandomWalk(10, 64, 201);
  const IsaxConfig config(64, 8);
  const size_t window = WarpingWindowFromFraction(64, 0.1);
  for (size_t q = 0; q < queries.size(); ++q) {
    const float* series = queries.data(q);
    const PreparedQuery prepared =
        PreparedQuery::Prepare(series, config, /*build_dtw_envelope=*/true,
                               window);
    EXPECT_EQ(prepared.series(), series);
    EXPECT_EQ(prepared.length(), 64u);
    EXPECT_EQ(prepared.segments(), 8);

    const std::vector<double> paa = ComputePaa(series, config.paa);
    std::vector<uint8_t> sax(config.segments());
    ComputeSax(series, config, sax.data());
    for (int i = 0; i < config.segments(); ++i) {
      EXPECT_EQ(prepared.paa()[i], paa[i]) << "segment " << i;
      EXPECT_EQ(prepared.sax()[i], sax[i]) << "segment " << i;
    }

    ASSERT_TRUE(prepared.has_envelope());
    EXPECT_EQ(prepared.dtw_window(), window);
    const Envelope envelope = BuildEnvelope(series, 64, window);
    ASSERT_EQ(prepared.envelope().length(), envelope.length());
    for (size_t t = 0; t < envelope.length(); ++t) {
      EXPECT_EQ(prepared.envelope().upper[t], envelope.upper[t]);
      EXPECT_EQ(prepared.envelope().lower[t], envelope.lower[t]);
    }
    const EnvelopePaa env_paa = ComputeEnvelopePaa(envelope, config);
    for (int i = 0; i < config.segments(); ++i) {
      EXPECT_EQ(prepared.envelope_paa().upper[i], env_paa.upper[i]);
      EXPECT_EQ(prepared.envelope_paa().lower[i], env_paa.lower[i]);
    }
  }
}

TEST(PreparedQueryTest, EnvelopeAccessorsGatedOnPreparation) {
  const SeriesCollection queries = GenerateRandomWalk(1, 64, 203);
  const PreparedQuery prepared =
      PreparedQuery::Prepare(queries.data(0), IsaxConfig(64, 8));
  EXPECT_FALSE(prepared.has_envelope());
  EXPECT_EQ(prepared.dtw_window(), 0u);
}

TEST(PreparedBatchTest, PooledBuildIsBitIdenticalToSerial) {
  const SeriesCollection queries = GenerateSeismicLike(37, 64, 205);
  const IsaxConfig config(64, 8);
  const size_t window = WarpingWindowFromFraction(64, 0.05);
  ThreadPool pool(4);
  const PreparedBatch pooled =
      PreparedBatch::Prepare(queries, config, true, window, &pool);
  const PreparedBatch serial =
      PreparedBatch::Prepare(queries, config, true, window);
  ASSERT_EQ(pooled.size(), queries.size());
  ASSERT_EQ(serial.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    for (int i = 0; i < config.segments(); ++i) {
      EXPECT_EQ(pooled.query(q).paa()[i], serial.query(q).paa()[i]);
      EXPECT_EQ(pooled.query(q).sax()[i], serial.query(q).sax()[i]);
    }
    for (size_t t = 0; t < 64; ++t) {
      EXPECT_EQ(pooled.query(q).envelope().upper[t],
                serial.query(q).envelope().upper[t]);
      EXPECT_EQ(pooled.query(q).envelope().lower[t],
                serial.query(q).envelope().lower[t]);
    }
  }
}

// ------------------------------------- shared-vs-fresh execution identity

struct ModeCase {
  const char* name;
  bool use_dtw;
  int k;
  bool approximate;
};

class SharedSummaryEquivalenceTest : public ::testing::TestWithParam<ModeCase> {
};

TEST_P(SharedSummaryEquivalenceTest, BatchSharedArtifactIsBitIdentical) {
  const ModeCase mode = GetParam();
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 207);
  const Index index = Index::Build(SeriesCollection(data), TestIndexOptions());
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 209);

  QueryOptions qo;
  qo.num_threads = 2;
  qo.k = mode.k;
  qo.use_dtw = mode.use_dtw;
  qo.dtw_window =
      mode.use_dtw ? WarpingWindowFromFraction(64, 0.05) : 0;
  qo.approximate = mode.approximate;

  // The batch-shared artifacts, built once for all queries...
  const PreparedBatch batch = PrepareBatch(queries, index.config(), qo);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryExecution shared_exec(&index, batch.query(q), qo);
    shared_exec.SeedInitialBsf();
    shared_exec.Run();
    // ... against a per-execution summarization, as the pre-refactor code
    // performed inside every Initialize().
    const PreparedQuery fresh =
        PrepareQuery(queries.data(q), index.config(), qo);
    QueryExecution fresh_exec(&index, fresh, qo);
    fresh_exec.SeedInitialBsf();
    fresh_exec.Run();

    const auto got = shared_exec.results().SortedResults();
    const auto want = fresh_exec.results().SortedResults();
    ASSERT_EQ(got.size(), want.size()) << mode.name << " query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].squared_distance, want[i].squared_distance)
          << mode.name << " query " << q << " rank " << i;
      EXPECT_EQ(got[i].id, want[i].id)
          << mode.name << " query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SharedSummaryEquivalenceTest,
    ::testing::Values(ModeCase{"ed_k1", false, 1, false},
                      ModeCase{"ed_k5", false, 5, false},
                      ModeCase{"dtw_k1", true, 1, false},
                      ModeCase{"dtw_k3", true, 3, false},
                      ModeCase{"approx_k1", false, 1, true},
                      ModeCase{"approx_k10", false, 10, true}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SharedSummaryEquivalenceTest, StolenWorkReusesVictimArtifact) {
  // Victim and thief split the RS-batches of one query. Sharing the
  // victim's prepared artifact must give bit-identical merged answers to
  // both sides preparing their own (the pre-refactor behavior).
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 211);
  const Index index = Index::Build(SeriesCollection(data), TestIndexOptions());
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 2.0, 213);
  QueryOptions qo;
  qo.num_threads = 2;
  qo.num_batches = 8;

  auto run_split = [&](const PreparedQuery& for_victim,
                       const PreparedQuery& for_thief) {
    QueryExecution victim(&index, for_victim, qo);
    QueryExecution thief(&index, for_thief, qo);
    victim.SeedInitialBsf();
    thief.SeedInitialBsf();
    std::vector<int> victim_ids, thief_ids;
    for (int b = 0; b < 8; ++b) {
      (b % 2 == 0 ? victim_ids : thief_ids).push_back(b);
    }
    victim.RunBatchSubset(victim_ids);
    thief.RunBatchSubset(thief_ids);
    std::vector<Neighbor> merged;
    for (const auto& n : victim.results().SortedResults()) merged.push_back(n);
    for (const auto& n : thief.results().SortedResults()) merged.push_back(n);
    return MergeAnswers(merged, qo.k);
  };

  const PreparedBatch batch = PrepareBatch(queries, index.config(), qo);
  for (size_t q = 0; q < queries.size(); ++q) {
    const PreparedQuery fresh_victim =
        PrepareQuery(queries.data(q), index.config(), qo);
    const PreparedQuery fresh_thief =
        PrepareQuery(queries.data(q), index.config(), qo);
    const auto shared = run_split(batch.query(q), batch.query(q));
    const auto fresh = run_split(fresh_victim, fresh_thief);
    ASSERT_EQ(shared.size(), fresh.size()) << "query " << q;
    for (size_t i = 0; i < shared.size(); ++i) {
      EXPECT_EQ(shared[i].squared_distance, fresh[i].squared_distance);
      EXPECT_EQ(shared[i].id, fresh[i].id);
    }
  }
}

// -------------------------------------------- once-per-query-per-batch

TEST(SummarizationCountTest, EdBatchSummarizesOncePerQuery) {
  const SeriesCollection data = GenerateSeismicLike(1200, 64, 215);
  const SeriesCollection queries = GenerateUniformQueries(data, 12, 1.0, 217);
  OdysseyOptions options;
  // FULL replication with stealing and prediction-based dynamic
  // scheduling: the configuration with the most summary consumers — the
  // scheduler's estimation, four replicas, and stolen-work runs.
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);

  summary_stats::Reset();
  const BatchReport report = cluster.AnswerBatch(queries);
  ASSERT_EQ(report.answers.size(), queries.size());
  EXPECT_EQ(summary_stats::PaaCalls(), queries.size());
  EXPECT_EQ(summary_stats::SaxCalls(), queries.size());
  EXPECT_EQ(summary_stats::EnvelopeCalls(), 0u);

  // A second batch prepares again (once per query per batch).
  cluster.AnswerBatch(queries);
  EXPECT_EQ(summary_stats::PaaCalls(), 2 * queries.size());
  EXPECT_EQ(summary_stats::SaxCalls(), 2 * queries.size());
}

TEST(SummarizationCountTest, DtwBatchBuildsOneEnvelopePerQuery) {
  const SeriesCollection data = GenerateSeismicLike(800, 64, 219);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 221);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;
  options.query_options.use_dtw = true;
  options.query_options.dtw_window = WarpingWindowFromFraction(64, 0.05);
  OdysseyCluster cluster(data, options);

  summary_stats::Reset();
  cluster.AnswerBatch(queries);
  EXPECT_EQ(summary_stats::EnvelopeCalls(), queries.size());
  // One PAA for the query itself plus one per envelope band.
  EXPECT_EQ(summary_stats::PaaCalls(), 3 * queries.size());
  EXPECT_EQ(summary_stats::SaxCalls(), queries.size());
}

TEST(SummarizationCountTest, StreamPreparesOncePerQuery) {
  const SeriesCollection data = GenerateRandomWalk(600, 64, 223);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.0, 225);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);

  summary_stats::Reset();
  cluster.AnswerStream(queries, std::vector<double>(queries.size(), 0.0));
  EXPECT_EQ(summary_stats::PaaCalls(), queries.size());
  EXPECT_EQ(summary_stats::SaxCalls(), queries.size());
}

// ------------------------------------------------ distributed equivalence

TEST(DistributedEquivalenceTest, ClusterAnswersMatchSingleIndexPipeline) {
  // The cluster path (prepared batch shared across nodes) must agree with
  // brute force, under the configuration that exercises estimation,
  // replicas and steals at once.
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 227);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.5, 229);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto exact = testing_utils::BruteForceKnn(data, queries.data(q), 3);
    ASSERT_EQ(report.answers[q].size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_TRUE(testing_utils::NearlyEqual(
          report.answers[q][i].squared_distance, exact[i].squared_distance))
          << "query " << q << " rank " << i;
    }
  }
}

// ------------------------------------------------- hot-path purity

// FixedIdSet (the open-addressing set that replaced KnnSet's allocating
// std::unordered_set) must agree with a reference set under a KnnSet-like
// workload: capacity-bounded membership with evictions, dense ids so probe
// chains collide and backward-shift deletion is exercised hard.
TEST(FixedIdSetTest, MatchesReferenceSetUnderEvictionWorkload) {
  std::mt19937 rng(12345);
  for (const size_t capacity : {size_t{1}, size_t{3}, size_t{16}, size_t{100}}) {
    FixedIdSet set(capacity);
    std::unordered_set<uint32_t> ref;
    std::vector<uint32_t> resident;  // for picking random eviction victims
    for (int step = 0; step < 20000; ++step) {
      const uint32_t id = rng() % 512;
      ASSERT_EQ(set.Contains(id), ref.count(id) > 0) << "step " << step;
      if (ref.count(id) == 0) {
        if (ref.size() == capacity) {
          // Full: evict a random resident first, as KnnSet evicts its
          // current worst before admitting a better candidate.
          const size_t v = rng() % resident.size();
          const uint32_t victim = resident[v];
          set.Remove(victim);
          ref.erase(victim);
          resident[v] = resident.back();
          resident.pop_back();
          ASSERT_FALSE(set.Contains(victim)) << "step " << step;
        }
        set.Add(id);
        ref.insert(id);
        resident.push_back(id);
      }
      const uint32_t probe = rng() % 512;
      ASSERT_EQ(set.Contains(probe), ref.count(probe) > 0) << "step " << step;
      ASSERT_EQ(set.size(), ref.size()) << "step " << step;
    }
  }
}

// The counting allocator itself must be live — allocations inside a hot
// region are observed, allocations outside (or under an allowance) are
// not. Without this, the steady-state assertions below could pass
// trivially with a broken counter. Direct operator-new calls are used
// because new-expressions may legally be elided.
TEST(HotPathPurityTest, CountingAllocatorObservesHotRegionAllocations) {
  testing_utils::ResetHotAllocations();
  ::operator delete(::operator new(64));
  EXPECT_EQ(testing_utils::HotAllocations(), 0u) << "counted outside region";
  {
    hotpath::ScopedHotRegion region;
    ::operator delete(::operator new(64));
  }
  EXPECT_EQ(testing_utils::HotAllocations(), 1u) << "missed in-region alloc";
  {
    hotpath::ScopedHotRegion region;
    hotpath::ScopedAllowance allowance;
    ::operator delete(::operator new(64));
  }
  EXPECT_EQ(testing_utils::HotAllocations(), 1u)
      << "allowance did not suppress counting";
  testing_utils::ResetHotAllocations();
}

// The dynamic backstop behind tools/check_hot_paths.py: once the
// thread-local scratch (DTW DP rows, claim snapshots, FixedIdSet heaps)
// has warmed up on the first query, every later query's scoring phases
// must perform zero heap allocations. num_threads = 1 runs all three
// phases inline on the calling thread, so the warm-up deterministically
// heats exactly the thread-locals the steady-state queries use.
TEST(HotPathPurityTest, SteadyStateSingleThreadedRunIsAllocationFree) {
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 401);
  const Index index = Index::Build(SeriesCollection(data), TestIndexOptions());
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 403);

  struct Mode {
    const char* name;
    bool use_dtw;
    int k;
  };
  for (const Mode& mode :
       {Mode{"ed_k1", false, 1}, Mode{"ed_k5", false, 5},
        Mode{"dtw_k3", true, 3}}) {
    QueryOptions qo;
    qo.num_threads = 1;
    qo.k = mode.k;
    qo.use_dtw = mode.use_dtw;
    qo.dtw_window = mode.use_dtw ? WarpingWindowFromFraction(64, 0.05) : 0;
    const PreparedBatch batch = PrepareBatch(queries, index.config(), qo);

    // Warm-up: grows this thread's QueryScratch / DtwScratch high-water
    // marks. Construction of QueryExecution (queues, KnnSet heap) happens
    // outside the hot regions and is allowed to allocate every run.
    {
      QueryExecution warm(&index, batch.query(0), qo);
      warm.SeedInitialBsf();
      warm.Run();
    }

    testing_utils::ResetHotAllocations();
    for (size_t q = 1; q < queries.size(); ++q) {
      QueryExecution exec(&index, batch.query(q), qo);
      exec.SeedInitialBsf();
      exec.Run();
      ASSERT_EQ(exec.results().SortedResults().size(),
                static_cast<size_t>(mode.k))
          << mode.name << " query " << q;
    }
    EXPECT_EQ(testing_utils::HotAllocations(), 0u) << mode.name;
  }
}

}  // namespace
}  // namespace odyssey
