#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/dataset/generators.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/lb_keogh.h"
#include "src/distance/simd.h"
#include "src/isax/isax_word.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

using testing_utils::NearlyEqual;

std::vector<float> RandomSeries(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->NextGaussian());
  return v;
}

// ------------------------------------------------------------- Euclidean

class EuclideanLengthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EuclideanLengthTest, DispatchedMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(n * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<float> a = RandomSeries(&rng, n);
    const std::vector<float> b = RandomSeries(&rng, n);
    const float simd = SquaredEuclidean(a.data(), b.data(), n);
    const float scalar = SquaredEuclideanScalar(a.data(), b.data(), n);
    EXPECT_TRUE(NearlyEqual(simd, scalar)) << simd << " vs " << scalar;
  }
}

TEST_P(EuclideanLengthTest, EarlyAbandonExactBelowThreshold) {
  const size_t n = GetParam();
  Rng rng(n * 13 + 1);
  const std::vector<float> a = RandomSeries(&rng, n);
  const std::vector<float> b = RandomSeries(&rng, n);
  const float exact = SquaredEuclideanScalar(a.data(), b.data(), n);
  const float got = SquaredEuclideanEarlyAbandon(
      a.data(), b.data(), n, exact * 2.0f + 1.0f);
  EXPECT_TRUE(NearlyEqual(got, exact));
}

TEST_P(EuclideanLengthTest, EarlyAbandonReturnsAtLeastThresholdWhenCrossed) {
  const size_t n = GetParam();
  Rng rng(n * 17 + 1);
  const std::vector<float> a = RandomSeries(&rng, n);
  const std::vector<float> b = RandomSeries(&rng, n);
  const float exact = SquaredEuclideanScalar(a.data(), b.data(), n);
  if (exact <= 0.0f) return;
  const float threshold = exact / 2.0f;
  const float got =
      SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, threshold);
  EXPECT_GE(got * (1.0f + 1e-4f), threshold);
}

INSTANTIATE_TEST_SUITE_P(Lengths, EuclideanLengthTest,
                         ::testing::Values(1, 3, 8, 15, 16, 17, 31, 32, 96,
                                           100, 128, 200, 256));

TEST(EuclideanTest, ZeroForIdenticalSeries) {
  Rng rng(1);
  const std::vector<float> a = RandomSeries(&rng, 64);
  EXPECT_EQ(SquaredEuclidean(a.data(), a.data(), 64), 0.0f);
}

TEST(EuclideanTest, KnownValue) {
  const float a[] = {0, 0, 0, 0};
  const float b[] = {1, 2, 3, 4};
  EXPECT_FLOAT_EQ(SquaredEuclidean(a, b, 4), 30.0f);
}

TEST(EuclideanTest, ScalarEarlyAbandonMatchesSimdVariant) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 64;
    const std::vector<float> a = RandomSeries(&rng, n);
    const std::vector<float> b = RandomSeries(&rng, n);
    const float threshold = static_cast<float>(rng.NextDouble() * 200.0);
    const float s =
        SquaredEuclideanEarlyAbandonScalar(a.data(), b.data(), n, threshold);
    const float v =
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, threshold);
    // Both must agree on whether the threshold was crossed, and on the exact
    // value when it was not.
    EXPECT_EQ(s >= threshold, v * (1 + 1e-5f) >= threshold * (1 - 1e-5f))
        << s << " " << v << " thr " << threshold;
    if (s < threshold) {
      EXPECT_TRUE(NearlyEqual(s, v));
    }
  }
}

// ------------------------------------------------------------------- DTW

TEST(DtwTest, WindowZeroEqualsEuclidean) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<float> a = RandomSeries(&rng, 50);
    const std::vector<float> b = RandomSeries(&rng, 50);
    EXPECT_TRUE(NearlyEqual(SquaredDtw(a.data(), b.data(), 50, 0),
                            SquaredEuclideanScalar(a.data(), b.data(), 50)));
  }
}

TEST(DtwTest, NeverExceedsEuclidean) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<float> a = RandomSeries(&rng, 40);
    const std::vector<float> b = RandomSeries(&rng, 40);
    const float ed = SquaredEuclideanScalar(a.data(), b.data(), 40);
    for (size_t w : {1u, 2u, 5u, 39u}) {
      EXPECT_LE(SquaredDtw(a.data(), b.data(), 40, w), ed * (1 + 1e-5f));
    }
  }
}

TEST(DtwTest, MonotoneNonIncreasingInWindow) {
  Rng rng(7);
  const std::vector<float> a = RandomSeries(&rng, 60);
  const std::vector<float> b = RandomSeries(&rng, 60);
  float prev = SquaredDtw(a.data(), b.data(), 60, 0);
  for (size_t w = 1; w <= 10; ++w) {
    const float cur = SquaredDtw(a.data(), b.data(), 60, w);
    EXPECT_LE(cur, prev * (1 + 1e-5f)) << "w=" << w;
    prev = cur;
  }
}

TEST(DtwTest, Symmetric) {
  Rng rng(9);
  const std::vector<float> a = RandomSeries(&rng, 32);
  const std::vector<float> b = RandomSeries(&rng, 32);
  EXPECT_TRUE(NearlyEqual(SquaredDtw(a.data(), b.data(), 32, 4),
                          SquaredDtw(b.data(), a.data(), 32, 4)));
}

TEST(DtwTest, ZeroForIdenticalSeries) {
  Rng rng(11);
  const std::vector<float> a = RandomSeries(&rng, 32);
  EXPECT_EQ(SquaredDtw(a.data(), a.data(), 32, 3), 0.0f);
}

TEST(DtwTest, AlignsShiftedSeries) {
  // A one-step shifted copy should be nearly free under warping but
  // expensive under ED.
  const size_t n = 64;
  std::vector<float> a(n), b(n);
  for (size_t t = 0; t < n; ++t) {
    a[t] = std::sin(0.3 * static_cast<double>(t));
    b[t] = std::sin(0.3 * static_cast<double>(t + 1));
  }
  const float ed = SquaredEuclideanScalar(a.data(), b.data(), n);
  const float dtw = SquaredDtw(a.data(), b.data(), n, 3);
  EXPECT_LT(dtw, ed * 0.2f);
}

TEST(DtwTest, EarlyAbandonExactBelowThreshold) {
  Rng rng(13);
  const std::vector<float> a = RandomSeries(&rng, 48);
  const std::vector<float> b = RandomSeries(&rng, 48);
  const float exact = SquaredDtw(a.data(), b.data(), 48, 5);
  EXPECT_TRUE(NearlyEqual(
      SquaredDtwEarlyAbandon(a.data(), b.data(), 48, 5, exact * 2 + 1),
      exact));
  if (exact > 0) {
    EXPECT_GE(
        SquaredDtwEarlyAbandon(a.data(), b.data(), 48, 5, exact / 2) *
            (1 + 1e-5f),
        exact / 2);
  }
}

TEST(DtwTest, WarpingWindowFromFraction) {
  EXPECT_EQ(WarpingWindowFromFraction(256, 0.0), 0u);
  EXPECT_EQ(WarpingWindowFromFraction(256, 0.05), 13u);  // ceil(12.8)
  EXPECT_EQ(WarpingWindowFromFraction(100, 0.001), 1u);  // min 1
  EXPECT_EQ(WarpingWindowFromFraction(100, 0.15), 15u);
}

// -------------------------------------------------------------- LB_Keogh

TEST(LbKeoghTest, EnvelopeMatchesBruteForce) {
  Rng rng(15);
  const std::vector<float> q = RandomSeries(&rng, 40);
  for (size_t w : {0u, 1u, 3u, 10u, 39u, 100u}) {
    const Envelope env = BuildEnvelope(q.data(), q.size(), w);
    for (size_t i = 0; i < q.size(); ++i) {
      const size_t lo = (i >= w) ? i - w : 0;
      const size_t hi = std::min(q.size() - 1, i + w);
      float mx = -1e30f, mn = 1e30f;
      for (size_t j = lo; j <= hi; ++j) {
        mx = std::max(mx, q[j]);
        mn = std::min(mn, q[j]);
      }
      ASSERT_EQ(env.upper[i], mx) << "w=" << w << " i=" << i;
      ASSERT_EQ(env.lower[i], mn) << "w=" << w << " i=" << i;
    }
  }
}

TEST(LbKeoghTest, LowerBoundsDtw) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 48;
    const size_t w = 1 + rng.NextBounded(8);
    const std::vector<float> q = RandomSeries(&rng, n);
    const std::vector<float> c = RandomSeries(&rng, n);
    const Envelope env = BuildEnvelope(q.data(), n, w);
    const float lb = SquaredLbKeogh(env, c.data());
    const float dtw = SquaredDtw(q.data(), c.data(), n, w);
    EXPECT_LE(lb, dtw * (1 + 1e-5f) + 1e-6f)
        << "trial " << trial << " w=" << w;
  }
}

TEST(LbKeoghTest, ZeroWhenCandidateInsideEnvelope) {
  Rng rng(19);
  const std::vector<float> q = RandomSeries(&rng, 32);
  const Envelope env = BuildEnvelope(q.data(), 32, 2);
  // The query itself always lies inside its own envelope.
  EXPECT_EQ(SquaredLbKeogh(env, q.data()), 0.0f);
}

TEST(LbKeoghTest, EarlyAbandonConsistent) {
  Rng rng(21);
  const std::vector<float> q = RandomSeries(&rng, 32);
  const std::vector<float> c = RandomSeries(&rng, 32);
  const Envelope env = BuildEnvelope(q.data(), 32, 2);
  const float exact = SquaredLbKeogh(env, c.data());
  EXPECT_TRUE(NearlyEqual(
      SquaredLbKeoghEarlyAbandon(env, c.data(), exact * 2 + 1), exact));
  if (exact > 0) {
    EXPECT_GE(SquaredLbKeoghEarlyAbandon(env, c.data(), exact / 2),
              exact / 2 * (1 - 1e-5f));
  }
}

// Pipeline property: summary filter -> LB_Keogh -> DTW must be a chain of
// lower bounds on real data (the exactness invariant of the DTW extension).
TEST(LbKeoghTest, BoundChainOnRealisticData) {
  const SeriesCollection data = GenerateSeismicLike(100, 64, 23);
  const SeriesCollection queries = GenerateSeismicLike(5, 64, 29);
  const size_t w = WarpingWindowFromFraction(64, 0.05);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Envelope env = BuildEnvelope(queries.data(qi), 64, w);
    for (size_t i = 0; i < data.size(); ++i) {
      const float lb = SquaredLbKeogh(env, data.data(i));
      const float dtw = SquaredDtw(queries.data(qi), data.data(i), 64, w);
      ASSERT_LE(lb, dtw * (1 + 1e-5f) + 1e-6f);
    }
  }
}

// ----------------------------------------------------- SIMD kernel layer
// Property tests of the runtime-dispatched kernel tables against the scalar
// reference: every available vector ISA, every length in [1, 256] (covering
// all non-multiple-of-8/16 remainders), plus subnormal inputs.

std::vector<const simd::KernelTable*> VectorTables() {
  std::vector<const simd::KernelTable*> tables;
  if (simd::SseTable() != nullptr) tables.push_back(simd::SseTable());
  if (simd::Avx2Table() != nullptr) tables.push_back(simd::Avx2Table());
  if (simd::Avx512Table() != nullptr) tables.push_back(simd::Avx512Table());
  return tables;
}

TEST(SimdKernelTest, ActiveTableIsBestAvailable) {
  const simd::KernelTable& active = simd::ActiveTable();
  EXPECT_EQ(&active, &simd::ActiveTable());  // stable across calls
  if (std::getenv("ODYSSEY_SIMD") == nullptr) {
    if (simd::Avx512Table() != nullptr) {
      EXPECT_EQ(active.isa, simd::Isa::kAvx512);
    } else if (simd::Avx2Table() != nullptr) {
      EXPECT_EQ(active.isa, simd::Isa::kAvx2);
    }
  }
}

TEST(SimdKernelTest, EuclideanMatchesScalarOnEveryLengthTo256) {
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(31);
    for (size_t n = 1; n <= 256; ++n) {
      const std::vector<float> a = RandomSeries(&rng, n);
      const std::vector<float> b = RandomSeries(&rng, n);
      const float want = scalar.squared_euclidean(a.data(), b.data(), n);
      const float got = table->squared_euclidean(a.data(), b.data(), n);
      ASSERT_TRUE(NearlyEqual(got, want))
          << simd::IsaName(table->isa) << " n=" << n << ": " << got << " vs "
          << want;
    }
  }
}

TEST(SimdKernelTest, EuclideanEarlyAbandonConsistentOnEveryLengthTo256) {
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(41);
    for (size_t n = 1; n <= 256; ++n) {
      const std::vector<float> a = RandomSeries(&rng, n);
      const std::vector<float> b = RandomSeries(&rng, n);
      const float exact = scalar.squared_euclidean(a.data(), b.data(), n);
      const float threshold =
          static_cast<float>(rng.NextDouble()) * 2.0f * (exact + 1.0f);
      const float got = table->squared_euclidean_early_abandon(
          a.data(), b.data(), n, threshold);
      // Away from the threshold boundary the contract is unambiguous:
      // exact value when clearly below, >= threshold when clearly above.
      if (exact < threshold * (1.0f - 1e-4f)) {
        ASSERT_TRUE(NearlyEqual(got, exact))
            << simd::IsaName(table->isa) << " n=" << n;
      } else if (exact > threshold * (1.0f + 1e-4f)) {
        ASSERT_GE(got * (1.0f + 1e-4f), threshold)
            << simd::IsaName(table->isa) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, MultiCandidateBitIdenticalToScalarPerLane) {
  // The multi-candidate kernel's contract is strict: for EVERY count and
  // EVERY lane — completed or abandoned — out[c] is bit-equal to the scalar
  // per-query early-abandon kernel on (query, series[c]). The freeze
  // semantics make that exact even for abandoned lanes (the lane's sum is
  // pinned at the 16-point boundary where the scalar kernel would have
  // returned), so this asserts == on floats, not near-equality. Thresholds
  // sweep from always-abandon to never-abandon so lanes cross at different
  // boundaries within one call — the regime where cooperative designs leak
  // extra accumulation.
  const simd::KernelTable& scalar = simd::ScalarTable();
  Rng rng(67);
  for (const size_t n : {7u, 16u, 40u, 96u, 200u, 256u}) {
    const std::vector<float> query = RandomSeries(&rng, n);
    std::vector<std::vector<float>> cands;
    std::vector<const float*> ptrs;
    for (size_t c = 0; c < simd::kMultiCandidateLanes; ++c) {
      cands.push_back(RandomSeries(&rng, n));
      ptrs.push_back(cands.back().data());
    }
    const float full = scalar.squared_euclidean(query.data(), ptrs[0], n);
    for (const float frac : {0.0f, 0.05f, 0.3f, 0.7f, 1.0f, 4.0f}) {
      const float threshold = frac * full + 0.25f;
      for (size_t count = 1; count <= simd::kMultiCandidateLanes; ++count) {
        float out[simd::kMultiCandidateLanes];
        simd::MultiSquaredEuclideanEarlyAbandon(query.data(), ptrs.data(),
                                                count, n, threshold, out);
        for (size_t c = 0; c < count; ++c) {
          const float want = scalar.squared_euclidean_early_abandon(
              query.data(), ptrs[c], n, threshold);
          ASSERT_EQ(out[c], want) << "n=" << n << " count=" << count
                                  << " lane=" << c << " thr=" << threshold;
        }
      }
    }
  }
}

TEST(SimdKernelTest, MultiCandidateForcedTierBitIdentity) {
  // The kernel may pick different x86 backends by resolved tier and count
  // (4-lane SSE chain, 8-lane SSE twin chains, 8-lane AVX2), and the
  // grouped scan's donation/recovery story leans on all of them agreeing
  // bit-for-bit — a donated batch re-scored as a single-member group must
  // reproduce the victim's answers. Lanes here are duplicates of one base
  // set, so a lane's sum must come out identical no matter which backend or
  // lane position scored it.
  const simd::KernelTable& scalar = simd::ScalarTable();
  Rng rng(71);
  const size_t n = 192;
  const std::vector<float> query = RandomSeries(&rng, n);
  const std::vector<float> a = RandomSeries(&rng, n);
  const std::vector<float> b = RandomSeries(&rng, n);
  const float exact_a = scalar.squared_euclidean(query.data(), a.data(), n);
  const float threshold = 0.4f * exact_a;
  // count=2 routes through the narrow backend, count=8 through the wide
  // one; lane 0 scores the same candidate in both calls.
  const float* narrow[2] = {a.data(), b.data()};
  const float* wide[8] = {a.data(), b.data(), a.data(), b.data(),
                          a.data(), b.data(), a.data(), b.data()};
  float out_narrow[simd::kMultiCandidateLanes];
  float out_wide[simd::kMultiCandidateLanes];
  simd::MultiSquaredEuclideanEarlyAbandon(query.data(), narrow, 2, n,
                                          threshold, out_narrow);
  simd::MultiSquaredEuclideanEarlyAbandon(query.data(), wide, 8, n, threshold,
                                          out_wide);
  for (size_t c = 0; c < 8; c += 2) {
    EXPECT_EQ(out_wide[c], out_narrow[0]) << "lane " << c;
    EXPECT_EQ(out_wide[c + 1], out_narrow[1]) << "lane " << c + 1;
  }
  EXPECT_EQ(out_narrow[0], scalar.squared_euclidean_early_abandon(
                               query.data(), a.data(), n, threshold));
  EXPECT_EQ(out_narrow[1], scalar.squared_euclidean_early_abandon(
                               query.data(), b.data(), n, threshold));
}

TEST(SimdKernelTest, LbKeoghMatchesScalarOnEveryLengthTo256) {
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(51);
    for (size_t n = 1; n <= 256; ++n) {
      const std::vector<float> q = RandomSeries(&rng, n);
      const std::vector<float> c = RandomSeries(&rng, n);
      const size_t w = rng.NextBounded(n + 4);
      const Envelope env = BuildEnvelope(q.data(), n, w);
      const float want =
          scalar.lb_keogh(env.upper.data(), env.lower.data(), c.data(), n);
      const float got =
          table->lb_keogh(env.upper.data(), env.lower.data(), c.data(), n);
      ASSERT_TRUE(NearlyEqual(got, want))
          << simd::IsaName(table->isa) << " n=" << n << " w=" << w;
      const float exact_ea = table->lb_keogh_early_abandon(
          env.upper.data(), env.lower.data(), c.data(), n, want * 2.0f + 1.0f);
      ASSERT_TRUE(NearlyEqual(exact_ea, want))
          << simd::IsaName(table->isa) << " n=" << n;
      if (want > 0.0f) {
        ASSERT_GE(table->lb_keogh_early_abandon(env.upper.data(),
                                                env.lower.data(), c.data(), n,
                                                want / 2.0f) *
                      (1.0f + 1e-4f),
                  want / 2.0f)
            << simd::IsaName(table->isa) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, AlignedFastPathBitIdenticalToUnaligned) {
  // The AVX2 kernels take an aligned-load fast path when every operand sits
  // on a 32-byte boundary and the length is a lane multiple. The fast path
  // keeps the generic loops' exact accumulation order, so the same values
  // at an aligned vs a misaligned address must give bit-identical results —
  // exact EQ, no tolerance (gated like the AVX2 paths themselves).
  const simd::KernelTable* avx2 = simd::Avx2Table();
  if (avx2 == nullptr) GTEST_SKIP() << "CPU/build lacks AVX2";
  Rng rng(61);
  // Over-aligned buffers, plus +1-float shadow copies of the same values
  // at deliberately misaligned addresses.
  constexpr size_t kMax = 256;
  auto aligned_buf = [](size_t n) {
    void* p = nullptr;
    ODYSSEY_CHECK(posix_memalign(&p, 64, (n + 8) * sizeof(float)) == 0);
    return static_cast<float*>(p);
  };
  float* a = aligned_buf(kMax);
  float* b = aligned_buf(kMax);
  float* c = aligned_buf(kMax);
  float* ua = aligned_buf(kMax) + 1;
  float* ub = aligned_buf(kMax) + 1;
  float* uc = aligned_buf(kMax) + 1;
  for (size_t n = 8; n <= kMax; n += 8) {
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextGaussian());
      b[i] = static_cast<float>(rng.NextGaussian());
      c[i] = static_cast<float>(rng.NextGaussian());
    }
    std::copy(a, a + n, ua);
    std::copy(b, b + n, ub);
    std::copy(c, c + n, uc);
    ASSERT_EQ(avx2->squared_euclidean(a, b, n),
              avx2->squared_euclidean(ua, ub, n))
        << "n=" << n;
    const float exact = avx2->squared_euclidean(a, b, n);
    for (float threshold : {exact * 0.25f, exact, exact * 4.0f + 1.0f}) {
      ASSERT_EQ(avx2->squared_euclidean_early_abandon(a, b, n, threshold),
                avx2->squared_euclidean_early_abandon(ua, ub, n, threshold))
          << "n=" << n << " threshold=" << threshold;
    }
    // LB_Keogh: a/b as the (not necessarily ordered) band edges is fine for
    // an identity check — the kernel only computes gaps against them.
    ASSERT_EQ(avx2->lb_keogh(a, b, c, n), avx2->lb_keogh(ua, ub, uc, n))
        << "n=" << n;
    const float lb = avx2->lb_keogh(a, b, c, n);
    for (float threshold : {lb * 0.25f, lb * 4.0f + 1.0f}) {
      ASSERT_EQ(avx2->lb_keogh_early_abandon(a, b, c, n, threshold),
                avx2->lb_keogh_early_abandon(ua, ub, uc, n, threshold))
          << "n=" << n << " threshold=" << threshold;
    }
  }
  std::free(a);
  std::free(b);
  std::free(c);
  std::free(ua - 1);
  std::free(ub - 1);
  std::free(uc - 1);
}

TEST(SimdKernelTest, Avx512AlignedFastPathBitIdenticalToUnaligned) {
  // The AVX-512 mirror of the test above: the fast path engages on 64-byte
  // boundaries with 16-lane multiples, and must stay bit-identical to the
  // unaligned path on the same values.
  const simd::KernelTable* avx512 = simd::Avx512Table();
  if (avx512 == nullptr) GTEST_SKIP() << "CPU/build lacks AVX-512";
  Rng rng(71);
  constexpr size_t kMax = 256;
  auto aligned_buf = [](size_t n) {
    void* p = nullptr;
    ODYSSEY_CHECK(posix_memalign(&p, 64, (n + 16) * sizeof(float)) == 0);
    return static_cast<float*>(p);
  };
  float* a = aligned_buf(kMax);
  float* b = aligned_buf(kMax);
  float* c = aligned_buf(kMax);
  float* ua = aligned_buf(kMax) + 1;
  float* ub = aligned_buf(kMax) + 1;
  float* uc = aligned_buf(kMax) + 1;
  for (size_t n = 16; n <= kMax; n += 16) {
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.NextGaussian());
      b[i] = static_cast<float>(rng.NextGaussian());
      c[i] = static_cast<float>(rng.NextGaussian());
    }
    std::copy(a, a + n, ua);
    std::copy(b, b + n, ub);
    std::copy(c, c + n, uc);
    ASSERT_EQ(avx512->squared_euclidean(a, b, n),
              avx512->squared_euclidean(ua, ub, n))
        << "n=" << n;
    const float exact = avx512->squared_euclidean(a, b, n);
    for (float threshold : {exact * 0.25f, exact, exact * 4.0f + 1.0f}) {
      ASSERT_EQ(avx512->squared_euclidean_early_abandon(a, b, n, threshold),
                avx512->squared_euclidean_early_abandon(ua, ub, n, threshold))
          << "n=" << n << " threshold=" << threshold;
    }
    ASSERT_EQ(avx512->lb_keogh(a, b, c, n), avx512->lb_keogh(ua, ub, uc, n))
        << "n=" << n;
    const float lb = avx512->lb_keogh(a, b, c, n);
    for (float threshold : {lb * 0.25f, lb * 4.0f + 1.0f}) {
      ASSERT_EQ(avx512->lb_keogh_early_abandon(a, b, c, n, threshold),
                avx512->lb_keogh_early_abandon(ua, ub, uc, n, threshold))
          << "n=" << n << " threshold=" << threshold;
    }
  }
  std::free(a);
  std::free(b);
  std::free(c);
  std::free(ua - 1);
  std::free(ub - 1);
  std::free(uc - 1);
}

TEST(SimdKernelTest, DtwRowBitIdenticalToScalar) {
  // The DTW row kernels use mul (not FMA) and a scalar dependency sweep so
  // every ISA must produce bit-identical DP rows — exact EQ, no tolerance.
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(61);
    for (int trial = 0; trial < 300; ++trial) {
      const size_t n = 1 + rng.NextBounded(256);
      const size_t jlo = rng.NextBounded(n);
      const size_t jhi = jlo + rng.NextBounded(n - jlo);
      const std::vector<float> b = RandomSeries(&rng, n);
      const float ai = static_cast<float>(rng.NextGaussian());
      // A plausible previous row: finite non-negative values on a band that
      // overlaps [jlo, jhi], +inf elsewhere (the BandDtw invariant).
      std::vector<float> prev(n, kInf);
      const size_t plo = (jlo > 0) ? jlo - 1 : 0;
      for (size_t j = plo; j <= jhi; ++j) {
        prev[j] = static_cast<float>(rng.NextDouble()) * 10.0f;
      }
      std::vector<float> cur_scalar(n, kInf), cur_vector(n, kInf);
      const float min_scalar =
          scalar.dtw_row(ai, b.data(), prev.data(), cur_scalar.data(), jlo,
                         jhi);
      const float min_vector =
          table->dtw_row(ai, b.data(), prev.data(), cur_vector.data(), jlo,
                         jhi);
      ASSERT_EQ(min_scalar, min_vector)
          << simd::IsaName(table->isa) << " n=" << n << " jlo=" << jlo
          << " jhi=" << jhi;
      for (size_t j = jlo; j <= jhi; ++j) {
        ASSERT_EQ(cur_scalar[j], cur_vector[j])
            << simd::IsaName(table->isa) << " j=" << j;
      }
    }
  }
}

TEST(SimdKernelTest, PaaMatchesScalarOnEveryLengthTo256) {
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(91);
    for (size_t n = 1; n <= 256; ++n) {
      const std::vector<float> s = RandomSeries(&rng, n);
      // Segment counts spanning 1 point per segment up to one segment
      // total, including the non-dividing geometries.
      for (size_t segments :
           {size_t{1}, std::min<size_t>(n, 3), std::min<size_t>(n, 8),
            std::min<size_t>(n, 16), n}) {
        std::vector<double> want(segments), got(segments);
        scalar.paa(s.data(), n, static_cast<int>(segments), want.data());
        table->paa(s.data(), n, static_cast<int>(segments), got.data());
        for (size_t i = 0; i < segments; ++i) {
          ASSERT_TRUE(NearlyEqual(static_cast<float>(got[i]),
                                  static_cast<float>(want[i])))
              << simd::IsaName(table->isa) << " n=" << n
              << " segments=" << segments << " i=" << i << ": " << got[i]
              << " vs " << want[i];
        }
      }
    }
  }
}

TEST(SimdKernelTest, SaxSymbolsAgreeAcrossPaaKernels) {
  // The SAX word is quantized from the PAA; lane-striped accumulation may
  // move a mean by a few double ulps, which must not flip breakpoints on
  // generic data (a flip needs a mean within ~1 ulp of a quantile).
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(93);
    for (size_t n : {8u, 64u, 100u, 256u}) {
      const IsaxConfig config(n, 8);
      for (int trial = 0; trial < 20; ++trial) {
        const std::vector<float> s = RandomSeries(&rng, n);
        std::vector<double> paa_scalar(8), paa_vector(8);
        scalar.paa(s.data(), n, 8, paa_scalar.data());
        table->paa(s.data(), n, 8, paa_vector.data());
        std::vector<uint8_t> sax_scalar(8), sax_vector(8);
        ComputeSaxFromPaa(paa_scalar.data(), config, sax_scalar.data());
        ComputeSaxFromPaa(paa_vector.data(), config, sax_vector.data());
        for (int i = 0; i < 8; ++i) {
          ASSERT_EQ(sax_scalar[i], sax_vector[i])
              << simd::IsaName(table->isa) << " n=" << n << " segment " << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, SubnormalInputsMatchScalar) {
  // ±subnormals and tiny normals: d*d underflows; all ISAs must agree (no
  // kernel sets FTZ/DAZ, so vector and scalar follow the same IEEE rules).
  const float specials[] = {0.0f,     1e-38f,  -1e-38f, 1e-41f, -1e-41f,
                            1e-44f,   -1e-44f, 1.5f,    -2.5f,  1e-30f,
                            -1e-30f};
  const size_t kNumSpecials = sizeof(specials) / sizeof(specials[0]);
  const simd::KernelTable& scalar = simd::ScalarTable();
  for (const simd::KernelTable* table : VectorTables()) {
    Rng rng(71);
    for (size_t n : {1u, 7u, 16u, 61u, 250u, 256u}) {
      std::vector<float> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = specials[rng.NextBounded(kNumSpecials)];
        b[i] = specials[rng.NextBounded(kNumSpecials)];
      }
      const float want = scalar.squared_euclidean(a.data(), b.data(), n);
      const float got = table->squared_euclidean(a.data(), b.data(), n);
      ASSERT_TRUE(NearlyEqual(got, want))
          << simd::IsaName(table->isa) << " n=" << n;
      const Envelope env = BuildEnvelope(a.data(), n, 2);
      ASSERT_TRUE(NearlyEqual(
          table->lb_keogh(env.upper.data(), env.lower.data(), b.data(), n),
          scalar.lb_keogh(env.upper.data(), env.lower.data(), b.data(), n)))
          << simd::IsaName(table->isa) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, PublicEntryPointsUseActiveTable) {
  Rng rng(81);
  const std::vector<float> a = RandomSeries(&rng, 96);
  const std::vector<float> b = RandomSeries(&rng, 96);
  const simd::KernelTable& active = simd::ActiveTable();
  EXPECT_EQ(SquaredEuclidean(a.data(), b.data(), 96),
            active.squared_euclidean(a.data(), b.data(), 96));
  const Envelope env = BuildEnvelope(a.data(), 96, 5);
  EXPECT_EQ(SquaredLbKeogh(env, b.data()),
            active.lb_keogh(env.upper.data(), env.lower.data(), b.data(), 96));
  EXPECT_EQ(HasAvx2Kernels(), active.isa == simd::Isa::kAvx2);
}

}  // namespace
}  // namespace odyssey
