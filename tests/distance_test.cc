#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/dataset/generators.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/distance/lb_keogh.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

using testing_utils::NearlyEqual;

std::vector<float> RandomSeries(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->NextGaussian());
  return v;
}

// ------------------------------------------------------------- Euclidean

class EuclideanLengthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EuclideanLengthTest, DispatchedMatchesScalar) {
  const size_t n = GetParam();
  Rng rng(n * 7 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<float> a = RandomSeries(&rng, n);
    const std::vector<float> b = RandomSeries(&rng, n);
    const float simd = SquaredEuclidean(a.data(), b.data(), n);
    const float scalar = SquaredEuclideanScalar(a.data(), b.data(), n);
    EXPECT_TRUE(NearlyEqual(simd, scalar)) << simd << " vs " << scalar;
  }
}

TEST_P(EuclideanLengthTest, EarlyAbandonExactBelowThreshold) {
  const size_t n = GetParam();
  Rng rng(n * 13 + 1);
  const std::vector<float> a = RandomSeries(&rng, n);
  const std::vector<float> b = RandomSeries(&rng, n);
  const float exact = SquaredEuclideanScalar(a.data(), b.data(), n);
  const float got = SquaredEuclideanEarlyAbandon(
      a.data(), b.data(), n, exact * 2.0f + 1.0f);
  EXPECT_TRUE(NearlyEqual(got, exact));
}

TEST_P(EuclideanLengthTest, EarlyAbandonReturnsAtLeastThresholdWhenCrossed) {
  const size_t n = GetParam();
  Rng rng(n * 17 + 1);
  const std::vector<float> a = RandomSeries(&rng, n);
  const std::vector<float> b = RandomSeries(&rng, n);
  const float exact = SquaredEuclideanScalar(a.data(), b.data(), n);
  if (exact <= 0.0f) return;
  const float threshold = exact / 2.0f;
  const float got =
      SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, threshold);
  EXPECT_GE(got * (1.0f + 1e-4f), threshold);
}

INSTANTIATE_TEST_SUITE_P(Lengths, EuclideanLengthTest,
                         ::testing::Values(1, 3, 8, 15, 16, 17, 31, 32, 96,
                                           100, 128, 200, 256));

TEST(EuclideanTest, ZeroForIdenticalSeries) {
  Rng rng(1);
  const std::vector<float> a = RandomSeries(&rng, 64);
  EXPECT_EQ(SquaredEuclidean(a.data(), a.data(), 64), 0.0f);
}

TEST(EuclideanTest, KnownValue) {
  const float a[] = {0, 0, 0, 0};
  const float b[] = {1, 2, 3, 4};
  EXPECT_FLOAT_EQ(SquaredEuclidean(a, b, 4), 30.0f);
}

TEST(EuclideanTest, ScalarEarlyAbandonMatchesSimdVariant) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 64;
    const std::vector<float> a = RandomSeries(&rng, n);
    const std::vector<float> b = RandomSeries(&rng, n);
    const float threshold = static_cast<float>(rng.NextDouble() * 200.0);
    const float s =
        SquaredEuclideanEarlyAbandonScalar(a.data(), b.data(), n, threshold);
    const float v =
        SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, threshold);
    // Both must agree on whether the threshold was crossed, and on the exact
    // value when it was not.
    EXPECT_EQ(s >= threshold, v * (1 + 1e-5f) >= threshold * (1 - 1e-5f))
        << s << " " << v << " thr " << threshold;
    if (s < threshold) EXPECT_TRUE(NearlyEqual(s, v));
  }
}

// ------------------------------------------------------------------- DTW

TEST(DtwTest, WindowZeroEqualsEuclidean) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<float> a = RandomSeries(&rng, 50);
    const std::vector<float> b = RandomSeries(&rng, 50);
    EXPECT_TRUE(NearlyEqual(SquaredDtw(a.data(), b.data(), 50, 0),
                            SquaredEuclideanScalar(a.data(), b.data(), 50)));
  }
}

TEST(DtwTest, NeverExceedsEuclidean) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<float> a = RandomSeries(&rng, 40);
    const std::vector<float> b = RandomSeries(&rng, 40);
    const float ed = SquaredEuclideanScalar(a.data(), b.data(), 40);
    for (size_t w : {1u, 2u, 5u, 39u}) {
      EXPECT_LE(SquaredDtw(a.data(), b.data(), 40, w), ed * (1 + 1e-5f));
    }
  }
}

TEST(DtwTest, MonotoneNonIncreasingInWindow) {
  Rng rng(7);
  const std::vector<float> a = RandomSeries(&rng, 60);
  const std::vector<float> b = RandomSeries(&rng, 60);
  float prev = SquaredDtw(a.data(), b.data(), 60, 0);
  for (size_t w = 1; w <= 10; ++w) {
    const float cur = SquaredDtw(a.data(), b.data(), 60, w);
    EXPECT_LE(cur, prev * (1 + 1e-5f)) << "w=" << w;
    prev = cur;
  }
}

TEST(DtwTest, Symmetric) {
  Rng rng(9);
  const std::vector<float> a = RandomSeries(&rng, 32);
  const std::vector<float> b = RandomSeries(&rng, 32);
  EXPECT_TRUE(NearlyEqual(SquaredDtw(a.data(), b.data(), 32, 4),
                          SquaredDtw(b.data(), a.data(), 32, 4)));
}

TEST(DtwTest, ZeroForIdenticalSeries) {
  Rng rng(11);
  const std::vector<float> a = RandomSeries(&rng, 32);
  EXPECT_EQ(SquaredDtw(a.data(), a.data(), 32, 3), 0.0f);
}

TEST(DtwTest, AlignsShiftedSeries) {
  // A one-step shifted copy should be nearly free under warping but
  // expensive under ED.
  const size_t n = 64;
  std::vector<float> a(n), b(n);
  for (size_t t = 0; t < n; ++t) {
    a[t] = std::sin(0.3 * static_cast<double>(t));
    b[t] = std::sin(0.3 * static_cast<double>(t + 1));
  }
  const float ed = SquaredEuclideanScalar(a.data(), b.data(), n);
  const float dtw = SquaredDtw(a.data(), b.data(), n, 3);
  EXPECT_LT(dtw, ed * 0.2f);
}

TEST(DtwTest, EarlyAbandonExactBelowThreshold) {
  Rng rng(13);
  const std::vector<float> a = RandomSeries(&rng, 48);
  const std::vector<float> b = RandomSeries(&rng, 48);
  const float exact = SquaredDtw(a.data(), b.data(), 48, 5);
  EXPECT_TRUE(NearlyEqual(
      SquaredDtwEarlyAbandon(a.data(), b.data(), 48, 5, exact * 2 + 1),
      exact));
  if (exact > 0) {
    EXPECT_GE(
        SquaredDtwEarlyAbandon(a.data(), b.data(), 48, 5, exact / 2) *
            (1 + 1e-5f),
        exact / 2);
  }
}

TEST(DtwTest, WarpingWindowFromFraction) {
  EXPECT_EQ(WarpingWindowFromFraction(256, 0.0), 0u);
  EXPECT_EQ(WarpingWindowFromFraction(256, 0.05), 13u);  // ceil(12.8)
  EXPECT_EQ(WarpingWindowFromFraction(100, 0.001), 1u);  // min 1
  EXPECT_EQ(WarpingWindowFromFraction(100, 0.15), 15u);
}

// -------------------------------------------------------------- LB_Keogh

TEST(LbKeoghTest, EnvelopeMatchesBruteForce) {
  Rng rng(15);
  const std::vector<float> q = RandomSeries(&rng, 40);
  for (size_t w : {0u, 1u, 3u, 10u, 39u, 100u}) {
    const Envelope env = BuildEnvelope(q.data(), q.size(), w);
    for (size_t i = 0; i < q.size(); ++i) {
      const size_t lo = (i >= w) ? i - w : 0;
      const size_t hi = std::min(q.size() - 1, i + w);
      float mx = -1e30f, mn = 1e30f;
      for (size_t j = lo; j <= hi; ++j) {
        mx = std::max(mx, q[j]);
        mn = std::min(mn, q[j]);
      }
      ASSERT_EQ(env.upper[i], mx) << "w=" << w << " i=" << i;
      ASSERT_EQ(env.lower[i], mn) << "w=" << w << " i=" << i;
    }
  }
}

TEST(LbKeoghTest, LowerBoundsDtw) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 48;
    const size_t w = 1 + rng.NextBounded(8);
    const std::vector<float> q = RandomSeries(&rng, n);
    const std::vector<float> c = RandomSeries(&rng, n);
    const Envelope env = BuildEnvelope(q.data(), n, w);
    const float lb = SquaredLbKeogh(env, c.data());
    const float dtw = SquaredDtw(q.data(), c.data(), n, w);
    EXPECT_LE(lb, dtw * (1 + 1e-5f) + 1e-6f)
        << "trial " << trial << " w=" << w;
  }
}

TEST(LbKeoghTest, ZeroWhenCandidateInsideEnvelope) {
  Rng rng(19);
  const std::vector<float> q = RandomSeries(&rng, 32);
  const Envelope env = BuildEnvelope(q.data(), 32, 2);
  // The query itself always lies inside its own envelope.
  EXPECT_EQ(SquaredLbKeogh(env, q.data()), 0.0f);
}

TEST(LbKeoghTest, EarlyAbandonConsistent) {
  Rng rng(21);
  const std::vector<float> q = RandomSeries(&rng, 32);
  const std::vector<float> c = RandomSeries(&rng, 32);
  const Envelope env = BuildEnvelope(q.data(), 32, 2);
  const float exact = SquaredLbKeogh(env, c.data());
  EXPECT_TRUE(NearlyEqual(
      SquaredLbKeoghEarlyAbandon(env, c.data(), exact * 2 + 1), exact));
  if (exact > 0) {
    EXPECT_GE(SquaredLbKeoghEarlyAbandon(env, c.data(), exact / 2),
              exact / 2 * (1 - 1e-5f));
  }
}

// Pipeline property: summary filter -> LB_Keogh -> DTW must be a chain of
// lower bounds on real data (the exactness invariant of the DTW extension).
TEST(LbKeoghTest, BoundChainOnRealisticData) {
  const SeriesCollection data = GenerateSeismicLike(100, 64, 23);
  const SeriesCollection queries = GenerateSeismicLike(5, 64, 29);
  const size_t w = WarpingWindowFromFraction(64, 0.05);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Envelope env = BuildEnvelope(queries.data(qi), 64, w);
    for (size_t i = 0; i < data.size(); ++i) {
      const float lb = SquaredLbKeogh(env, data.data(i));
      const float dtw = SquaredDtw(queries.data(qi), data.data(i), 64, w);
      ASSERT_LE(lb, dtw * (1 + 1e-5f) + 1e-6f);
    }
  }
}

}  // namespace
}  // namespace odyssey
