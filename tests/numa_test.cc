// Unit tests for the NUMA topology/placement layer (src/common/numa.h).
//
// CI runners are typically single-socket, so the suite is written around
// the graceful-fallback contract: with ODYSSEY_NUMA unset the layer must
// report itself disabled on a one-node machine and every placement entry
// point must be a safe no-op; with ODYSSEY_NUMA forced on, the binding
// path and its counters must work even on that same machine. The same
// binary passes on a real multi-socket box (where auto mode enables
// itself) and on a build with -DODYSSEY_ENABLE_NUMA=OFF (sysfs fallback) —
// which is exactly what the no-libnuma CI leg asserts.

#include "src/common/numa.h"

#include <cstdlib>

#include "gtest/gtest.h"
#include "src/common/summary_stats.h"

namespace odyssey {
namespace {

/// Sets ODYSSEY_NUMA for one test and drops the cached topology so the
/// layer re-reads it; restores the inherited environment on teardown.
class NumaEnvTest : public ::testing::Test {
 protected:
  void SetPolicy(const char* value) {
    if (value == nullptr) {
      unsetenv("ODYSSEY_NUMA");
    } else {
      setenv("ODYSSEY_NUMA", value, /*overwrite=*/1);
    }
    numa::ResetForTest();
  }

  void TearDown() override {
    unsetenv("ODYSSEY_NUMA");
    numa::ResetForTest();
  }
};

TEST_F(NumaEnvTest, TopologyAlwaysReportsAtLeastOneNode) {
  SetPolicy(nullptr);
  EXPECT_GE(numa::NodeCount(), 1);
}

TEST_F(NumaEnvTest, AutoModeEnablesOnlyOnMultiNodeMachines) {
  SetPolicy(nullptr);
  // Auto = enabled iff the machine reports more than one node. On a
  // single-socket CI runner this is the disabled fallback; on a real
  // multi-socket box placement turns itself on. Both are correct.
  EXPECT_EQ(numa::Enabled(), numa::NodeCount() > 1);
}

TEST_F(NumaEnvTest, DisabledLayerIsANoOpEverywhere) {
  SetPolicy("0");
  EXPECT_FALSE(numa::Enabled());
  // NodeForGroup returns the skip sentinel for every group...
  EXPECT_EQ(numa::NodeForGroup(0), -1);
  EXPECT_EQ(numa::NodeForGroup(7), -1);
  // ...and binding refuses without touching the calling thread.
  EXPECT_FALSE(numa::BindCurrentThread(0));
  EXPECT_FALSE(numa::BindCurrentThread(-1));
}

TEST_F(NumaEnvTest, OffSpellingAlsoDisables) {
  SetPolicy("off");
  EXPECT_FALSE(numa::Enabled());
  SetPolicy("OFF");
  EXPECT_FALSE(numa::Enabled());
}

TEST_F(NumaEnvTest, ForcedOnExercisesBindingOnSingleNodeMachines) {
  SetPolicy("1");
  EXPECT_TRUE(numa::Enabled());
  const int nodes = numa::NodeCount();
  ASSERT_GE(nodes, 1);
  // Round-robin assignment covers every node and wraps.
  EXPECT_EQ(numa::NodeForGroup(0), 0);
  EXPECT_EQ(numa::NodeForGroup(nodes), 0);
  EXPECT_EQ(numa::NodeForGroup(-1), -1);  // invalid group still skips
#if defined(__linux__)
  // On Linux the forced-on path must actually bind: node 0 always has at
  // least one CPU (the one running this test).
  EXPECT_TRUE(numa::BindCurrentThread(0));
#endif
  // Out-of-range nodes refuse even when enabled.
  EXPECT_FALSE(numa::BindCurrentThread(nodes));
  EXPECT_FALSE(numa::BindCurrentThread(-1));
}

TEST_F(NumaEnvTest, PlacementCountersStayZeroWhenDisabled) {
  SetPolicy("0");
  executor_stats::Reset();
  // The counters move only on successful binds, and a disabled layer never
  // binds — the invariant the non-NUMA CI leg relies on.
  EXPECT_FALSE(numa::BindCurrentThread(0));
  EXPECT_EQ(executor_stats::WorkersPinned(), 0u);
  EXPECT_EQ(executor_stats::ChunksPlaced(), 0u);
}

TEST_F(NumaEnvTest, ResetForTestReReadsThePolicy) {
  SetPolicy("1");
  EXPECT_TRUE(numa::Enabled());
  SetPolicy("0");
  EXPECT_FALSE(numa::Enabled());
  SetPolicy("1");
  EXPECT_TRUE(numa::Enabled());
}

}  // namespace
}  // namespace odyssey
