#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "src/core/cost_model.h"
#include "src/core/partitioning.h"
#include "src/core/replication.h"
#include "src/core/scheduler.h"
#include "src/core/worksteal.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"

namespace odyssey {
namespace {

// ------------------------------------------------------------ Replication

TEST(ReplicationTest, FullAndEquallySplitExtremes) {
  const auto full = ReplicationLayout::Make(8, 1);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->is_full());
  EXPECT_EQ(full->replication_degree(), 8);
  EXPECT_EQ(full->ToString(), "FULL");
  EXPECT_EQ(full->GroupMembers(0).size(), 8u);

  const auto split = ReplicationLayout::Make(8, 8);
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->is_equally_split());
  EXPECT_EQ(split->replication_degree(), 1);
  EXPECT_EQ(split->ToString(), "EQUALLY-SPLIT");
}

TEST(ReplicationTest, Partial4Of8MatchesPaperFigure7) {
  // Nsn = 8, PARTIAL-4: 4 groups, 2 clusters, replication degree 2.
  const auto layout = ReplicationLayout::Make(8, 4);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->replication_degree(), 2);
  EXPECT_EQ(layout->ToString(), "PARTIAL-4");
  EXPECT_EQ(layout->GroupMembers(0), (std::vector<int>{0, 4}));
  EXPECT_EQ(layout->GroupMembers(3), (std::vector<int>{3, 7}));
  EXPECT_EQ(layout->ClusterMembers(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(layout->ClusterMembers(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_TRUE(layout->SameGroup(0, 4));
  EXPECT_FALSE(layout->SameGroup(0, 1));
  EXPECT_EQ(layout->GroupCoordinator(2), 2);
}

TEST(ReplicationTest, EveryNodeInExactlyOneGroupAndCluster) {
  const auto layout = ReplicationLayout::Make(12, 4);
  ASSERT_TRUE(layout.ok());
  std::set<int> seen;
  for (int g = 0; g < 4; ++g) {
    for (int n : layout->GroupMembers(g)) {
      EXPECT_EQ(layout->GroupOf(n), g);
      EXPECT_TRUE(seen.insert(n).second);
    }
  }
  EXPECT_EQ(seen.size(), 12u);
  seen.clear();
  for (int c = 0; c < layout->replication_degree(); ++c) {
    for (int n : layout->ClusterMembers(c)) {
      EXPECT_EQ(layout->ClusterOf(n), c);
      EXPECT_TRUE(seen.insert(n).second);
    }
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(ReplicationTest, RejectsInvalidShapes) {
  EXPECT_FALSE(ReplicationLayout::Make(0, 1).ok());
  EXPECT_FALSE(ReplicationLayout::Make(4, 0).ok());
  EXPECT_FALSE(ReplicationLayout::Make(4, 5).ok());
  EXPECT_FALSE(ReplicationLayout::Make(6, 4).ok());  // 4 does not divide 6
}

TEST(ReplicationTest, InvalidShapeErrorsNameTheRightInvariant) {
  // Divisibility runs group -> nodes: PARTIAL-k needs k (= num_groups) to
  // divide Nsn (= num_nodes), never the other way around. The message must
  // state that direction with both operands, so a caller who mixed up the
  // two arguments can see which is which.
  const auto indivisible = ReplicationLayout::Make(6, 4);
  ASSERT_FALSE(indivisible.ok());
  EXPECT_NE(indivisible.status().message().find(
                "num_groups (4) must divide num_nodes (6)"),
            std::string::npos)
      << indivisible.status().ToString();

  // num_groups <= 0 and num_groups > num_nodes are range errors, reported
  // before any divisibility talk.
  for (int bad_groups : {0, -3}) {
    const auto low = ReplicationLayout::Make(4, bad_groups);
    ASSERT_FALSE(low.ok());
    EXPECT_NE(low.status().message().find("must be in [1, num_nodes]"),
              std::string::npos)
        << low.status().ToString();
  }
  const auto high = ReplicationLayout::Make(4, 9);
  ASSERT_FALSE(high.ok());
  EXPECT_NE(high.status().message().find("[1, 4], got 9"), std::string::npos)
      << high.status().ToString();

  // Every valid divisor shape is accepted, including both extremes.
  for (int groups : {1, 2, 3, 6}) {
    EXPECT_TRUE(ReplicationLayout::Make(6, groups).ok()) << groups;
  }
}

TEST(ReplicationTest, SurvivingMembersDegradesGracefully) {
  // PARTIAL-4 over 8 nodes: group 1 = {1, 5}.
  const auto layout = ReplicationLayout::Make(8, 4);
  ASSERT_TRUE(layout.ok());

  // No deaths: the full membership, ascending.
  const auto intact = layout->SurvivingMembers(1, {});
  ASSERT_TRUE(intact.ok());
  EXPECT_EQ(*intact, (std::vector<int>{1, 5}));

  // One death: the group degrades to a single survivor but stays covered.
  const auto degraded = layout->SurvivingMembers(1, {5});
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(*degraded, (std::vector<int>{1}));

  // Deaths in other groups do not affect this one.
  const auto elsewhere = layout->SurvivingMembers(1, {0, 4, 2});
  ASSERT_TRUE(elsewhere.ok());
  EXPECT_EQ(*elsewhere, (std::vector<int>{1, 5}));
}

TEST(ReplicationTest, AllReplicasDeadIsAnError) {
  // Both replicas of group 0's chunk gone: the dataset is no longer fully
  // covered and the error must say so (no silent empty-vector success).
  const auto layout = ReplicationLayout::Make(8, 4);
  ASSERT_TRUE(layout.ok());
  const auto lost = layout->SurvivingMembers(0, {0, 4});
  ASSERT_FALSE(lost.ok());
  EXPECT_NE(lost.status().message().find("no longer fully covered"),
            std::string::npos)
      << lost.status().ToString();

  // EQUALLY-SPLIT is the degenerate case: a single death loses a chunk.
  const auto split = ReplicationLayout::Make(4, 4);
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split->SurvivingMembers(2, {2}).ok());
  EXPECT_TRUE(split->SurvivingMembers(2, {0, 1, 3}).ok());
}

TEST(ReplicationTest, SurvivorsOfFullLayoutShrinkToOne) {
  // FULL over 4 nodes tolerates the death of all but one member.
  const auto full = ReplicationLayout::Make(4, 1);
  ASSERT_TRUE(full.ok());
  const auto last = full->SurvivingMembers(0, {0, 1, 3});
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, (std::vector<int>{2}));
  EXPECT_FALSE(full->SurvivingMembers(0, {0, 1, 2, 3}).ok());
}

// ----------------------------------------------------------- Partitioning

class PartitioningTest : public ::testing::TestWithParam<PartitioningScheme> {
};

TEST_P(PartitioningTest, ChunksAreDisjointExhaustiveAndSorted) {
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 1);
  const IsaxConfig config(64, 8);
  for (int num_chunks : {1, 2, 4, 7}) {
    const auto chunks =
        PartitionSeries(data, num_chunks, GetParam(), config, 5);
    ASSERT_EQ(chunks.size(), static_cast<size_t>(num_chunks));
    std::set<uint32_t> seen;
    for (const auto& chunk : chunks) {
      EXPECT_TRUE(std::is_sorted(chunk.begin(), chunk.end()));
      for (uint32_t id : chunk) {
        EXPECT_LT(id, data.size());
        EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      }
    }
    EXPECT_EQ(seen.size(), data.size());
  }
}

TEST_P(PartitioningTest, Deterministic) {
  const SeriesCollection data = GenerateAstroLike(800, 64, 2);
  const IsaxConfig config(64, 8);
  const auto a = PartitionSeries(data, 4, GetParam(), config, 9);
  const auto b = PartitionSeries(data, 4, GetParam(), config, 9);
  EXPECT_EQ(a, b);
}

TEST_P(PartitioningTest, RoughlyBalanced) {
  const SeriesCollection data = GenerateRandomWalk(4000, 64, 3);
  const IsaxConfig config(64, 8);
  const auto chunks = PartitionSeries(data, 8, GetParam(), config, 11);
  size_t min_size = data.size(), max_size = 0;
  for (const auto& chunk : chunks) {
    min_size = std::min(min_size, chunk.size());
    max_size = std::max(max_size, chunk.size());
  }
  EXPECT_GT(min_size, 0u);
  EXPECT_LE(max_size, static_cast<size_t>(1.25 * 4000 / 8));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PartitioningTest,
    ::testing::Values(PartitioningScheme::kEquallySplit,
                      PartitioningScheme::kRandomShuffle,
                      PartitioningScheme::kDensityAware),
    [](const auto& info) {
      std::string name = PartitioningSchemeToString(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(PartitioningTest, DensityAwareSpreadsSimilarSeries) {
  // A dataset dominated by a few dense regions: DENSITY-AWARE should spread
  // every root-key buffer across chunks more evenly than EQUALLY-SPLIT.
  const SeriesCollection data = GenerateEmbeddingLike(3000, 64, 4, 7);
  const IsaxConfig config(64, 8);
  ThreadPool pool(4);

  auto buffer_spread = [&](const std::vector<std::vector<uint32_t>>& chunks) {
    // For each series' root key, count in how many distinct chunks that key
    // appears; average over keys weighted by size.
    const std::vector<uint8_t> sax = ComputeSaxTable(data, config, &pool);
    std::map<uint32_t, std::set<size_t>> key_chunks;
    std::map<uint32_t, size_t> key_count;
    for (size_t c = 0; c < chunks.size(); ++c) {
      for (uint32_t id : chunks[c]) {
        const uint32_t key = RootKey(sax.data() + id * 8, config);
        key_chunks[key].insert(c);
        key_count[key]++;
      }
    }
    double weighted = 0.0;
    size_t total = 0;
    for (const auto& [key, chunk_set] : key_chunks) {
      weighted += static_cast<double>(chunk_set.size()) * key_count[key];
      total += key_count[key];
    }
    return weighted / static_cast<double>(total);
  };

  const auto density = PartitionSeries(
      data, 8, PartitioningScheme::kDensityAware, config, 13, &pool);
  const auto equally = PartitionSeries(
      data, 8, PartitioningScheme::kEquallySplit, config, 13, &pool);
  EXPECT_GT(buffer_spread(density), buffer_spread(equally) * 0.99);
}

TEST(PartitioningTest, DensityAwareLambdaControlsPresplit) {
  const SeriesCollection data = GenerateEmbeddingLike(1000, 64, 2, 9);
  const IsaxConfig config(64, 8);
  DensityAwareOptions options;
  options.lambda = 0;  // no pre-splitting: whole buffers only
  const auto coarse = PartitionSeries(
      data, 4, PartitioningScheme::kDensityAware, config, 15, nullptr, options);
  options.lambda = 400;
  const auto fine = PartitionSeries(
      data, 4, PartitioningScheme::kDensityAware, config, 15, nullptr, options);
  // Both are valid partitions.
  size_t total_coarse = 0, total_fine = 0;
  for (const auto& c : coarse) total_coarse += c.size();
  for (const auto& c : fine) total_fine += c.size();
  EXPECT_EQ(total_coarse, data.size());
  EXPECT_EQ(total_fine, data.size());
}

// -------------------------------------------------------------- Scheduler

TEST(SchedulerTest, PolicyPropertiesAndNames) {
  EXPECT_FALSE(PolicyIsDynamic(SchedulingPolicy::kStatic));
  EXPECT_TRUE(PolicyIsDynamic(SchedulingPolicy::kDynamic));
  EXPECT_TRUE(PolicyIsDynamic(SchedulingPolicy::kPredictDynamic));
  EXPECT_FALSE(PolicyNeedsPredictions(SchedulingPolicy::kStatic));
  EXPECT_FALSE(PolicyNeedsPredictions(SchedulingPolicy::kDynamic));
  EXPECT_TRUE(PolicyNeedsPredictions(SchedulingPolicy::kPredictStatic));
  EXPECT_STREQ(SchedulingPolicyToString(SchedulingPolicy::kPredictDynamic),
               "PREDICT-DN");
}

TEST(SchedulerTest, StaticSplitIsContiguousAndEqual) {
  const auto assignment = StaticSplit(10, 3);
  ASSERT_EQ(assignment.size(), 3u);
  std::vector<int> all;
  for (const auto& part : assignment) {
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
    all.insert(all.end(), part.begin(), part.end());
    EXPECT_GE(part.size(), 3u);
    EXPECT_LE(part.size(), 4u);
  }
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(SchedulerTest, GreedyBalancesSkewedLoads) {
  // One huge query plus many small ones: LPT must not pair the huge one
  // with anything while a worker sits empty.
  std::vector<double> estimates = {100.0, 1, 1, 1, 1, 1, 1, 1};
  const auto sorted = PredictionGreedySplit(estimates, 2, /*sorted=*/true);
  double load0 = 0, load1 = 0;
  for (int q : sorted[0]) load0 += estimates[q];
  for (int q : sorted[1]) load1 += estimates[q];
  EXPECT_EQ(std::max(load0, load1), 100.0);  // big query isolated
  EXPECT_EQ(std::min(load0, load1), 7.0);

  // STATIC on the same input is far worse.
  const auto naive = StaticSplit(8, 2);
  double naive0 = 0;
  for (int q : naive[0]) naive0 += estimates[q];
  EXPECT_GT(naive0, 100.0);  // the big query shares a node with small ones
}

TEST(SchedulerTest, UnsortedGreedyKeepsArrivalOrderSensitivity) {
  // The paper's worked example (Section 3.1): ES = {100, 50, 200, 250, 80}
  // on two nodes.
  std::vector<double> estimates = {100, 50, 200, 250, 80};
  const auto unsorted = PredictionGreedySplit(estimates, 2, /*sorted=*/false);
  EXPECT_EQ(unsorted[0], (std::vector<int>{0, 3}));        // {q1, q4}
  EXPECT_EQ(unsorted[1], (std::vector<int>{1, 2, 4}));     // {q2, q3, q5}
  const auto sorted = PredictionGreedySplit(estimates, 2, /*sorted=*/true);
  EXPECT_EQ(sorted[0], (std::vector<int>{3, 4}));          // {q4, q5}
  EXPECT_EQ(sorted[1], (std::vector<int>{2, 0, 1}));       // {q3, q1, q2}
}

TEST(SchedulerTest, DynamicDispatchOrder) {
  const auto plain = DynamicDispatchOrder({}, 5, /*sorted=*/false);
  EXPECT_EQ(plain, (std::vector<int>{0, 1, 2, 3, 4}));
  const auto sorted =
      DynamicDispatchOrder({100, 50, 200, 250, 80}, 5, /*sorted=*/true);
  EXPECT_EQ(sorted, (std::vector<int>{3, 2, 0, 4, 1}));
}

TEST(SchedulerTest, StaticSplitHandlesDegradedWorkerCounts) {
  // After a group member dies, the scheduler re-plans over the survivors:
  // any worker count down to 1 must stay exhaustive and disjoint.
  for (int workers : {3, 2, 1}) {
    const auto assignment = StaticSplit(10, workers);
    ASSERT_EQ(assignment.size(), static_cast<size_t>(workers));
    std::vector<int> all;
    for (const auto& part : assignment) {
      EXPECT_FALSE(part.empty());
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end());
    std::vector<int> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(all, expected) << workers << " workers";
  }
}

TEST(SchedulerTest, GreedySplitHandlesDegradedWorkerCounts) {
  const std::vector<double> estimates = {100.0, 1, 7, 42, 3, 9, 2, 55};
  for (int workers : {4, 2, 1}) {
    for (bool sorted : {false, true}) {
      const auto assignment = PredictionGreedySplit(estimates, workers,
                                                    sorted);
      ASSERT_EQ(assignment.size(), static_cast<size_t>(workers));
      std::vector<int> all;
      for (const auto& part : assignment) {
        all.insert(all.end(), part.begin(), part.end());
      }
      std::sort(all.begin(), all.end());
      std::vector<int> expected(estimates.size());
      std::iota(expected.begin(), expected.end(), 0);
      EXPECT_EQ(all, expected) << workers << " workers, sorted=" << sorted;
    }
  }
  // The single-survivor extreme: everything lands on the lone worker.
  const auto lone = PredictionGreedySplit(estimates, 1, /*sorted=*/true);
  EXPECT_EQ(lone[0].size(), estimates.size());
}

// -------------------------------------------------------------- CostModel

TEST(CostModelTest, FitAndPredict) {
  CostModel model;
  EXPECT_FALSE(model.fitted());
  std::vector<double> bsf = {1, 2, 3, 4, 5, 6};
  std::vector<double> secs = {0.1, 0.22, 0.29, 0.41, 0.50, 0.61};
  ASSERT_TRUE(model.Fit(bsf, secs).ok());
  EXPECT_TRUE(model.fitted());
  EXPECT_GT(model.regression().r_squared(), 0.98);
  EXPECT_GT(model.PredictSeconds(7.0), model.PredictSeconds(1.0));
  EXPECT_GE(model.PredictSeconds(-100.0), 0.0);  // clamped
}

TEST(CostModelTest, CalibrationSamplesCorrelateWithDifficulty) {
  const SeriesCollection data = GenerateSeismicLike(3000, 64, 11);
  IndexOptions index_options;
  index_options.config = IsaxConfig(64, 8);
  index_options.leaf_capacity = 32;
  const Index index = Index::Build(SeriesCollection(data), index_options);
  WorkloadOptions wl;
  wl.count = 20;
  wl.min_noise = 0.05;
  wl.max_noise = 3.0;
  wl.seed = 13;
  const SeriesCollection queries = GenerateQueries(data, wl);
  QueryOptions qo;
  qo.num_threads = 2;
  const auto samples = CollectCalibrationSamples(index, queries, qo);
  ASSERT_EQ(samples.size(), 20u);
  for (const auto& s : samples) {
    EXPECT_GE(s.initial_bsf, 0.0);
    EXPECT_GT(s.exec_seconds, 0.0);
  }
  // The model must fit on these samples.
  std::vector<double> bsf, secs;
  for (const auto& s : samples) {
    bsf.push_back(s.initial_bsf);
    secs.push_back(s.exec_seconds);
  }
  CostModel model;
  EXPECT_TRUE(model.Fit(bsf, secs).ok());
}

// -------------------------------------------------------------- Worksteal

TEST(WorkstealTest, VictimChoiceStaysInPeerSet) {
  uint64_t state = 42;
  const std::vector<int> peers = {3, 5, 9};
  for (int i = 0; i < 100; ++i) {
    const int victim = ChooseStealVictim(peers, &state);
    EXPECT_TRUE(victim == 3 || victim == 5 || victim == 9);
  }
}

TEST(WorkstealTest, EmptyPeerSetGivesNoVictim) {
  uint64_t state = 1;
  EXPECT_EQ(ChooseStealVictim({}, &state), -1);
}

TEST(WorkstealTest, ChoiceIsEventuallyUniformIsh) {
  uint64_t state = 7;
  const std::vector<int> peers = {0, 1, 2, 3};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[ChooseStealVictim(peers, &state)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

}  // namespace
}  // namespace odyssey
