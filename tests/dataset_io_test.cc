// The dataset ingestion subsystem: MappedFile (mmap + buffered fallback),
// the fvecs/bvecs/raw/ODSY format readers, z-normalize-on-ingest, the
// bounded-memory chunked pull API, ODYSSEY_DATA_DIR file-backed registry
// specs, and the driver's streaming IngestAndBuild path.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/math_utils.h"
#include "src/core/driver.h"
#include "src/dataset/file_io.h"
#include "src/dataset/generators.h"
#include "src/dataset/ingest.h"
#include "src/dataset/mapped_file.h"
#include "src/dataset/registry.h"
#include "src/dataset/workload.h"

namespace odyssey {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/odyssey_io_" + name;
}

/// Mode::kAuto is expected to map the file — unless the environment turned
/// mapping off (ODYSSEY_NO_MMAP=1 exercises the buffered fallback
/// everywhere; the bit-identity assertions below still apply). Mirrors
/// MmapDisabledByEnv in mapped_file.cc: empty and "0" mean enabled.
bool MmapExpected() {
  const char* env = std::getenv("ODYSSEY_NO_MMAP");
  return env == nullptr || *env == '\0' || *env == '0';
}

/// Writes raw bytes (fixtures are built byte-by-byte on purpose, so a
/// writer bug cannot mask a reader bug).
void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

void AppendU32(std::vector<uint8_t>* bytes, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendF32(std::vector<uint8_t>* bytes, float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(bytes, bits);
}

void ExpectBitIdentical(const SeriesCollection& a, const SeriesCollection& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.length(), b.length());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t t = 0; t < a.length(); ++t) {
      ASSERT_EQ(a.data(i)[t], b.data(i)[t]) << "series " << i << " point " << t;
    }
  }
}

// ------------------------------------------------------------- MappedFile

TEST(MappedFileTest, MissingFileIsIoError) {
  StatusOr<MappedFile> file = MappedFile::Open("/nonexistent/odyssey.dat");
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
}

TEST(MappedFileTest, MappedAndBufferedReadsAgree) {
  const std::string path = TempPath("mapped_vs_buffered.dat");
  std::vector<uint8_t> bytes(1000);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(i * 37);
  }
  WriteBytes(path, bytes);

  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  StatusOr<MappedFile> buffered =
      MappedFile::Open(path, MappedFile::Mode::kBuffered);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(mapped->mapped(), MmapExpected());
  EXPECT_FALSE(buffered->mapped());
  EXPECT_EQ(mapped->size(), bytes.size());
  EXPECT_EQ(buffered->size(), bytes.size());

  uint8_t a[100], b[100];
  for (uint64_t offset : {0ull, 1ull, 899ull, 900ull}) {
    ASSERT_TRUE(mapped->ReadAt(offset, a, sizeof(a)).ok());
    ASSERT_TRUE(buffered->ReadAt(offset, b, sizeof(b)).ok());
    for (size_t i = 0; i < sizeof(a); ++i) {
      ASSERT_EQ(a[i], b[i]) << "offset " << offset << " byte " << i;
      ASSERT_EQ(a[i], bytes[offset + i]);
    }
  }
  std::remove(path.c_str());
}

TEST(MappedFileTest, ReadPastEofIsIoErrorNeverShort) {
  const std::string path = TempPath("eof.dat");
  WriteBytes(path, std::vector<uint8_t>(64, 7));
  for (MappedFile::Mode mode :
       {MappedFile::Mode::kAuto, MappedFile::Mode::kBuffered}) {
    StatusOr<MappedFile> file = MappedFile::Open(path, mode);
    ASSERT_TRUE(file.ok());
    uint8_t buf[32];
    EXPECT_TRUE(file->ReadAt(32, buf, 32).ok());
    EXPECT_EQ(file->ReadAt(33, buf, 32).code(), StatusCode::kIoError);
    EXPECT_EQ(file->ReadAt(65, buf, 1).code(), StatusCode::kIoError);
    EXPECT_TRUE(file->ReadAt(64, buf, 0).ok());  // empty read at EOF is fine
  }
  std::remove(path.c_str());
}

// ------------------------------------------- Hardened ODSY header reading

TEST(FileIoHardeningTest, RoundTripSurvivesHardening) {
  const SeriesCollection data = GenerateRandomWalk(20, 32, 5);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteCollection(data, path).ok());
  StatusOr<SeriesCollection> loaded = ReadCollection(path);
  ASSERT_TRUE(loaded.ok());
  ExpectBitIdentical(*loaded, data);
  std::remove(path.c_str());
}

TEST(FileIoHardeningTest, TruncatedFileIsRejected) {
  const SeriesCollection data = GenerateRandomWalk(10, 16, 5);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteCollection(data, path).ok());
  ASSERT_EQ(::truncate(path.c_str(), 16 + 9 * 16 * 4 + 7), 0);
  StatusOr<SeriesCollection> loaded = ReadCollection(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileIoHardeningTest, CorruptCountHeaderNeverSizesAnAllocation) {
  // A header claiming 2^32-1 series of length 2^31 would demand a ~2^64
  // byte allocation if trusted. The reader must reject it against the
  // actual file size (and guard the byte-size multiplication) before
  // allocating anything.
  std::vector<uint8_t> bytes;
  bytes.insert(bytes.end(), {'O', 'D', 'S', 'Y'});
  AppendU32(&bytes, 1);            // version
  AppendU32(&bytes, 0xFFFFFFFFu);  // count: absurd
  AppendU32(&bytes, 0x80000000u);  // length: absurd
  for (int i = 0; i < 8; ++i) AppendF32(&bytes, 1.0f);
  const std::string path = TempPath("corrupt_count.bin");
  WriteBytes(path, bytes);
  StatusOr<SeriesCollection> loaded = ReadCollection(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);

  // A plausible length but inflated count is also caught by the size check.
  bytes.clear();
  bytes.insert(bytes.end(), {'O', 'D', 'S', 'Y'});
  AppendU32(&bytes, 1);
  AppendU32(&bytes, 1000000);  // count: claims a million series
  AppendU32(&bytes, 4);        // length 4
  for (int i = 0; i < 8; ++i) AppendF32(&bytes, 1.0f);  // only 2 are present
  WriteBytes(path, bytes);
  loaded = ReadCollection(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileIoHardeningTest, BadMagicIsInvalidArgument) {
  const std::string path = TempPath("badmagic.bin");
  WriteBytes(path, std::vector<uint8_t>(16, 'x'));
  StatusOr<SeriesCollection> loaded = ReadCollection(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ------------------------------------------------------- fvecs and bvecs

TEST(VecsFormatTest, FvecsRoundTrip) {
  std::vector<uint8_t> bytes;
  constexpr uint32_t kDim = 8;
  constexpr size_t kCount = 5;
  for (size_t i = 0; i < kCount; ++i) {
    AppendU32(&bytes, kDim);
    for (uint32_t t = 0; t < kDim; ++t) {
      AppendF32(&bytes, static_cast<float>(i * 100 + t));
    }
  }
  const std::string path = TempPath("fixture.fvecs");
  WriteBytes(path, bytes);

  IngestOptions options;
  options.znormalize = false;
  StatusOr<SeriesIngestor> ingestor = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
  EXPECT_EQ(ingestor->format(), DataFormat::kFvecs);  // from the extension
  EXPECT_EQ(ingestor->length(), kDim);
  EXPECT_EQ(ingestor->total_series(), kCount);
  StatusOr<SeriesCollection> data = ingestor->ReadAll();
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), kCount);
  for (size_t i = 0; i < kCount; ++i) {
    for (uint32_t t = 0; t < kDim; ++t) {
      ASSERT_EQ(data->data(i)[t], static_cast<float>(i * 100 + t));
    }
  }
  std::remove(path.c_str());
}

TEST(VecsFormatTest, FvecsRejectsMismatchedDimensionHeaderMidFile) {
  std::vector<uint8_t> bytes;
  AppendU32(&bytes, 4);
  for (int t = 0; t < 4; ++t) AppendF32(&bytes, 1.0f);
  // Second vector claims dimension 3 but occupies a 4-float record (total
  // size stays a multiple of the record size, so only the per-vector check
  // can catch it).
  AppendU32(&bytes, 3);
  for (int t = 0; t < 4; ++t) AppendF32(&bytes, 2.0f);
  const std::string path = TempPath("mismatch.fvecs");
  WriteBytes(path, bytes);
  IngestOptions options;
  options.znormalize = false;
  StatusOr<SeriesCollection> data = IngestFile(path, options);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(VecsFormatTest, FvecsRejectsTrailingGarbageAndAbsurdDim) {
  const std::string path = TempPath("garbage.fvecs");
  std::vector<uint8_t> bytes;
  AppendU32(&bytes, 4);
  for (int t = 0; t < 4; ++t) AppendF32(&bytes, 1.0f);
  bytes.push_back(0xEE);  // size no longer a multiple of the record size
  WriteBytes(path, bytes);
  IngestOptions options;
  EXPECT_FALSE(IngestFile(path, options).ok());

  bytes.clear();
  AppendU32(&bytes, 0x7FFFFFFFu);  // absurd dimension header
  WriteBytes(path, bytes);
  EXPECT_FALSE(IngestFile(path, options).ok());
  std::remove(path.c_str());
}

TEST(VecsFormatTest, BvecsWidensBytesToFloats) {
  std::vector<uint8_t> bytes;
  constexpr uint32_t kDim = 6;
  for (size_t i = 0; i < 3; ++i) {
    AppendU32(&bytes, kDim);
    for (uint32_t t = 0; t < kDim; ++t) {
      bytes.push_back(static_cast<uint8_t>(10 * i + t));
    }
  }
  const std::string path = TempPath("fixture.bvecs");
  WriteBytes(path, bytes);
  IngestOptions options;
  options.znormalize = false;
  StatusOr<SeriesCollection> data = IngestFile(path, options);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  ASSERT_EQ(data->size(), 3u);
  ASSERT_EQ(data->length(), kDim);
  for (size_t i = 0; i < 3; ++i) {
    for (uint32_t t = 0; t < kDim; ++t) {
      ASSERT_EQ(data->data(i)[t], static_cast<float>(10 * i + t));
    }
  }
  std::remove(path.c_str());
}

TEST(VecsFormatTest, WritersProduceIngestibleFiles) {
  SeriesCollection data(16);
  for (int i = 0; i < 12; ++i) {
    float row[16];
    for (int t = 0; t < 16; ++t) row[t] = static_cast<float>((i * 16 + t) % 251);
    data.Append(row);
  }
  const std::string fpath = TempPath("writer.fvecs");
  const std::string bpath = TempPath("writer.bvecs");
  ASSERT_TRUE(WriteFvecs(data, fpath).ok());
  ASSERT_TRUE(WriteBvecs(data, bpath).ok());
  IngestOptions options;
  options.znormalize = false;
  StatusOr<SeriesCollection> fdata = IngestFile(fpath, options);
  StatusOr<SeriesCollection> bdata = IngestFile(bpath, options);
  ASSERT_TRUE(fdata.ok());
  ASSERT_TRUE(bdata.ok());
  ExpectBitIdentical(*fdata, data);
  // The bvecs writer quantizes to bytes; these values are integral in
  // [0, 255], so the round trip is exact too.
  ExpectBitIdentical(*bdata, data);
  std::remove(fpath.c_str());
  std::remove(bpath.c_str());
}

// ----------------------------------- mmap vs. buffered, z-normalization

class IngestPathTest : public ::testing::TestWithParam<DataFormat> {};

TEST_P(IngestPathTest, MmapAndBufferedIngestAreBitIdentical) {
  const DataFormat format = GetParam();
  const SeriesCollection data = GenerateAstroLike(40, 64, 11);
  // Write the fixture un-normalized so z-normalize-on-ingest has work to do:
  // scale and shift every series.
  SeriesCollection raw(64);
  for (size_t i = 0; i < data.size(); ++i) {
    float row[64];
    for (size_t t = 0; t < 64; ++t) {
      row[t] = 100.0f + 20.0f * data.data(i)[t];
    }
    raw.Append(row);
  }
  std::string path;
  IngestOptions options;
  options.znormalize = true;
  switch (format) {
    case DataFormat::kRawFloat:
      path = TempPath("paths.raw");
      ASSERT_TRUE(WriteRawFloats(raw, path).ok());
      options.length = 64;
      break;
    case DataFormat::kFvecs:
      path = TempPath("paths.fvecs");
      ASSERT_TRUE(WriteFvecs(raw, path).ok());
      break;
    case DataFormat::kBvecs:
      path = TempPath("paths.bvecs");
      ASSERT_TRUE(WriteBvecs(raw, path).ok());
      break;
    case DataFormat::kOdyssey:
      path = TempPath("paths.bin");
      ASSERT_TRUE(WriteCollection(raw, path).ok());
      break;
    case DataFormat::kAuto:
      FAIL();
  }

  StatusOr<SeriesIngestor> via_mmap = SeriesIngestor::Open(path, options);
  options.io_mode = MappedFile::Mode::kBuffered;
  StatusOr<SeriesIngestor> via_pread = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();
  ASSERT_TRUE(via_pread.ok()) << via_pread.status().ToString();
  EXPECT_EQ(via_mmap->using_mmap(), MmapExpected());
  EXPECT_FALSE(via_pread->using_mmap());

  StatusOr<SeriesCollection> a = via_mmap->ReadAll();
  StatusOr<SeriesCollection> b = via_pread->ReadAll();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdentical(*a, *b);

  // Z-normalize-on-ingest: every ingested series has mean ~0, stddev ~1.
  ASSERT_EQ(a->size(), raw.size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_NEAR(Mean(a->data(i), 64), 0.0, 1e-4) << i;
    EXPECT_NEAR(StdDev(a->data(i), 64), 1.0, 1e-3) << i;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllFormats, IngestPathTest,
                         ::testing::Values(DataFormat::kRawFloat,
                                           DataFormat::kFvecs,
                                           DataFormat::kBvecs,
                                           DataFormat::kOdyssey),
                         [](const auto& info) {
                           switch (info.param) {
                             case DataFormat::kRawFloat:
                               return std::string("RawFloat");
                             case DataFormat::kFvecs:
                               return std::string("Fvecs");
                             case DataFormat::kBvecs:
                               return std::string("Bvecs");
                             default:
                               return std::string("Odyssey");
                           }
                         });

// --------------------------------------------------------- chunked pulls

TEST(ChunkedIngestTest, ChunksConcatenateToReadAllAndBoundHeap) {
  const SeriesCollection data = GenerateSeismicLike(103, 32, 3);
  const std::string path = TempPath("chunked.raw");
  ASSERT_TRUE(WriteRawFloats(data, path).ok());

  IngestOptions options;
  options.length = 32;
  options.chunk_size = 16;
  StatusOr<SeriesIngestor> whole = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(whole.ok());
  StatusOr<SeriesCollection> all = whole->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 103u);

  StatusOr<SeriesIngestor> chunked = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(chunked.ok());
  SeriesCollection joined(32);
  size_t chunks = 0;
  while (true) {
    StatusOr<SeriesCollection> chunk = chunked->NextChunk();
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    ++chunks;
    EXPECT_LE(chunk->size(), options.chunk_size);
    // The acceptance bound: a chunk never owns more series heap than
    // chunk_size * length * sizeof(float).
    EXPECT_LE(chunk->MemoryBytes(),
              options.chunk_size * 32 * sizeof(float));
    for (size_t i = 0; i < chunk->size(); ++i) joined.Append(chunk->data(i));
  }
  EXPECT_EQ(chunks, (103 + 15) / 16u);
  EXPECT_TRUE(chunked->exhausted());
  ExpectBitIdentical(joined, *all);
  std::remove(path.c_str());
}

TEST(ChunkedIngestTest, SkipAndMaxSliceTheArchive) {
  const SeriesCollection data = GenerateRandomWalk(50, 16, 9);
  const std::string path = TempPath("slice.raw");
  ASSERT_TRUE(WriteRawFloats(data, path).ok());

  IngestOptions options;
  options.length = 16;
  options.znormalize = false;
  options.skip_series = 10;
  options.max_series = 20;
  StatusOr<SeriesCollection> slice = IngestFile(path, options);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t t = 0; t < 16; ++t) {
      ASSERT_EQ(slice->data(i)[t], data.data(10 + i)[t]);
    }
  }

  // Skipping past the end yields an empty (but valid) ingest.
  options.skip_series = 1000;
  StatusOr<SeriesIngestor> past = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past->total_series(), 0u);
  std::remove(path.c_str());
}

// --------------------------------------------- registry ODYSSEY_DATA_DIR

// Runs only when the environment already provides ODYSSEY_DATA_DIR (CI
// generates a fixture set with `ingest_real_dataset --make-fixtures` and
// points the variable at it before invoking this suite): every archive the
// registry discovers must ingest cleanly, z-normalized, in every format
// the fixture set covers.
TEST(FileBackedRegistryTest, InheritedDataDirArchivesAllIngest) {
  if (std::getenv("ODYSSEY_DATA_DIR") == nullptr) {
    GTEST_SKIP() << "ODYSSEY_DATA_DIR not set; nothing to ingest";
  }
  size_t file_backed = 0;
  for (const DatasetSpec& spec : Table1Datasets(/*scale=*/0.001)) {
    if (!spec.file_backed()) continue;
    ++file_backed;
    SCOPED_TRACE(spec.name + " <- " + spec.source_path);
    StatusOr<SeriesCollection> data = spec.Load(/*seed=*/1);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_GT(data->size(), 0u);
    EXPECT_LE(data->size(), spec.count);
    EXPECT_EQ(data->length(), spec.length);
    for (size_t i = 0; i < data->size(); i += 17) {
      EXPECT_NEAR(Mean(data->data(i), data->length()), 0.0, 1e-4) << i;
      EXPECT_NEAR(StdDev(data->data(i), data->length()), 1.0, 1e-3) << i;
    }
    // The chunked pull path must agree with the one-shot load.
    StatusOr<SeriesIngestor> ingestor = spec.OpenIngestor(/*chunk_size=*/100);
    ASSERT_TRUE(ingestor.ok()) << ingestor.status().ToString();
    SeriesCollection joined(spec.length);
    while (true) {
      StatusOr<SeriesCollection> chunk = ingestor->NextChunk();
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk->empty()) break;
      for (size_t i = 0; i < chunk->size(); ++i) joined.Append(chunk->data(i));
    }
    ExpectBitIdentical(joined, *data);
  }
  EXPECT_GT(file_backed, 0u)
      << "ODYSSEY_DATA_DIR is set but holds no recognizable archive";
}

TEST(FileBackedRegistryTest, DataDirSelectsRealFilesOverGenerators) {
  // Preserve any externally-provided data dir (the CI fixture run): this
  // test repoints the variable at its own directory and must restore it.
  const char* outer_env = std::getenv("ODYSSEY_DATA_DIR");
  const std::string outer = outer_env != nullptr ? outer_env : "";
  const std::string dir = ::testing::TempDir() + "/odyssey_data_dir";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  // 300 un-normalized series: enough to cover the minimum repro count at
  // the smallest scale (128), so Load caps at spec.count.
  SeriesCollection raw(256);
  {
    const SeriesCollection base = GenerateSeismicLike(300, 256, 21);
    for (size_t i = 0; i < base.size(); ++i) {
      float row[256];
      for (size_t t = 0; t < 256; ++t) row[t] = 5.0f + 3.0f * base.data(i)[t];
      raw.Append(row);
    }
  }
  const std::string file = dir + "/seismic.raw";
  ASSERT_TRUE(WriteRawFloats(raw, file).ok());
  ASSERT_EQ(::setenv("ODYSSEY_DATA_DIR", dir.c_str(), 1), 0);

  const StatusOr<DatasetSpec> spec = Table1Dataset("Seismic", 0.0001);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->file_backed());
  EXPECT_EQ(spec->source_path, file);
  EXPECT_EQ(spec->source_format, DataFormat::kRawFloat);
  EXPECT_EQ(FindDatasetFile("Seismic"), file);

  StatusOr<SeriesCollection> loaded = spec->Load(/*seed=*/1);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), spec->count);  // sliced to the repro count
  EXPECT_EQ(loaded->length(), 256u);
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_NEAR(Mean(loaded->data(i), 256), 0.0, 1e-4) << i;
    EXPECT_NEAR(StdDev(loaded->data(i), 256), 1.0, 1e-3) << i;
  }

  // Chunked access for streaming builds comes from the same spec.
  StatusOr<SeriesIngestor> ingestor = spec->OpenIngestor(/*chunk_size=*/64);
  ASSERT_TRUE(ingestor.ok());
  EXPECT_EQ(ingestor->total_series(), spec->count);

  ASSERT_EQ(::unsetenv("ODYSSEY_DATA_DIR"), 0);
  EXPECT_FALSE(Table1Dataset("Seismic", 0.0001)->file_backed());
  EXPECT_EQ(Table1Dataset("Seismic", 0.0001)
                ->OpenIngestor(64)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  std::remove(file.c_str());
  if (!outer.empty()) {
    ASSERT_EQ(::setenv("ODYSSEY_DATA_DIR", outer.c_str(), 1), 0);
  }
}

// -------------------------------------------- driver streaming build path

TEST(IngestAndBuildTest, StreamingBuildAnswersMatchInMemoryBuild) {
  const std::string path = TempPath("cluster.raw");
  {
    const SeriesCollection base = GenerateSeismicLike(600, 64, 17);
    SeriesCollection raw(64);
    for (size_t i = 0; i < base.size(); ++i) {
      float row[64];
      for (size_t t = 0; t < 64; ++t) row[t] = 42.0f + 7.0f * base.data(i)[t];
      raw.Append(row);
    }
    ASSERT_TRUE(WriteRawFloats(raw, path).ok());
  }

  IngestOptions options;
  options.length = 64;
  options.chunk_size = 128;  // 600 series stream in as 5 chunks

  OdysseyOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.num_groups = 2;
  cluster_options.index_options.config = IsaxConfig(64, 16);
  cluster_options.build_threads_per_node = 2;
  cluster_options.query_options.num_threads = 2;

  // Reference: whole-archive ingest, in-memory constructor.
  StatusOr<SeriesCollection> all = IngestFile(path, options);
  ASSERT_TRUE(all.ok());
  OdysseyCluster reference(*all, cluster_options);

  // Streaming: the driver pulls bounded chunks and partitions on arrival.
  StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(source.ok());
  StatusOr<std::unique_ptr<OdysseyCluster>> streamed =
      OdysseyCluster::IngestAndBuild(*source, cluster_options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ((*streamed)->num_nodes(), 4);

  const SeriesCollection queries = GenerateUniformQueries(*all, 8, 0.5, 23);
  const BatchReport a = reference.AnswerBatch(queries);
  const BatchReport b = (*streamed)->AnswerBatch(queries);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  // Exact search over the same global collection: answers must agree even
  // though the streamed partitioning differs from the global one.
  for (size_t q = 0; q < a.answers.size(); ++q) {
    ASSERT_EQ(a.answers[q].size(), b.answers[q].size()) << q;
    for (size_t k = 0; k < a.answers[q].size(); ++k) {
      EXPECT_EQ(a.answers[q][k].id, b.answers[q][k].id) << q;
      EXPECT_EQ(a.answers[q][k].squared_distance,
                b.answers[q][k].squared_distance)
          << q;
    }
  }
  std::remove(path.c_str());
}

TEST(IngestAndBuildTest, LengthMismatchAndEmptyArchiveAreStatusErrors) {
  const std::string path = TempPath("mismatch.raw");
  ASSERT_TRUE(WriteRawFloats(GenerateRandomWalk(32, 64, 1), path).ok());
  IngestOptions options;
  options.length = 64;
  OdysseyOptions cluster_options;
  cluster_options.num_nodes = 2;
  cluster_options.num_groups = 1;
  cluster_options.index_options.config = IsaxConfig(128, 16);  // wrong length
  StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(source.ok());
  StatusOr<std::unique_ptr<OdysseyCluster>> cluster =
      OdysseyCluster::IngestAndBuild(*source, cluster_options);
  ASSERT_FALSE(cluster.ok());
  EXPECT_EQ(cluster.status().code(), StatusCode::kInvalidArgument);

  const std::string empty_path = TempPath("empty.raw");
  WriteBytes(empty_path, {});
  cluster_options.index_options.config = IsaxConfig(64, 16);
  StatusOr<SeriesIngestor> empty = SeriesIngestor::Open(empty_path, options);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(OdysseyCluster::IngestAndBuild(*empty, cluster_options).ok());
  std::remove(path.c_str());
  std::remove(empty_path.c_str());
}

}  // namespace
}  // namespace odyssey
