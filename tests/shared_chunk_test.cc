// The build-path sharing contract (mirror of query_test's query-time
// contract): one immutable {series, PAA, SAX, buffers} bundle per
// replication group per chunk — never per node — with replica trees
// bit-identical to the legacy private-copy path, across FULL / PARTIAL-k /
// EQUALLY-SPLIT, for both the in-memory and the streaming (double-buffered
// overlap) build.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/summary_stats.h"
#include "src/core/driver.h"
#include "src/core/shared_chunk.h"
#include "src/dataset/file_io.h"
#include "src/dataset/generators.h"
#include "src/dataset/ingest.h"
#include "src/dataset/workload.h"
#include "src/index/node.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

IndexOptions TestIndexOptions(size_t length = 64) {
  IndexOptions options;
  options.config = IsaxConfig(length, 16);
  options.leaf_capacity = 32;
  return options;
}

OdysseyOptions ClusterOptions(int nodes, int groups, bool share) {
  OdysseyOptions options;
  options.num_nodes = nodes;
  options.num_groups = groups;
  options.index_options = TestIndexOptions();
  options.build_threads_per_node = 2;
  options.query_options.num_threads = 2;
  options.share_chunks = share;
  return options;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("odyssey_shared_chunk_" + name))
      .string();
}

// ---------------------------------------------------- SharedChunk bundle

TEST(SharedChunkTest, BuildMatchesPerSeriesSummaries) {
  const IsaxConfig config(64, 16);
  const SeriesCollection data = GenerateRandomWalk(300, 64, 11);
  ThreadPool pool(4);
  const auto chunk = SharedChunk::Build(SeriesCollection(data), {}, config,
                                        &pool);
  ASSERT_EQ(chunk->size(), 300u);
  ASSERT_EQ(chunk->sax_table().size(), 300u * 16u);
  ASSERT_EQ(chunk->paa_table().size(), 300u * 16u);
  for (uint32_t i = 0; i < 300; ++i) {
    uint8_t expected_sax[16];
    ComputeSax(data.data(i), config, expected_sax);
    const std::vector<double> expected_paa = ComputePaa(data.data(i),
                                                        config.paa);
    for (int s = 0; s < 16; ++s) {
      EXPECT_EQ(chunk->sax(i)[s], expected_sax[s]) << i << " seg " << s;
      EXPECT_EQ(chunk->paa_table()[i * 16 + s], expected_paa[s])
          << i << " seg " << s;
    }
  }
  // The buffers cover every series exactly once.
  size_t total = 0;
  for (size_t b = 0; b < chunk->buffers().buffer_count(); ++b) {
    total += chunk->buffers().series[b].size();
  }
  EXPECT_EQ(total, 300u);
  EXPECT_GT(chunk->MemoryBytes(), data.MemoryBytes());
}

TEST(SharedChunkTest, AdoptReusesTablesWithoutResummarizing) {
  const IsaxConfig config(64, 16);
  const SeriesCollection data = GenerateRandomWalk(200, 64, 12);
  const auto built = SharedChunk::Build(SeriesCollection(data), {}, config);

  summary_stats::Reset();
  const auto adopted = SharedChunk::Adopt(
      SeriesCollection(data), {}, std::vector<double>(built->paa_table()),
      std::vector<uint8_t>(built->sax_table()), config);
  EXPECT_EQ(summary_stats::PaaCalls(), 0u);
  EXPECT_EQ(summary_stats::SaxCalls(), 0u);
  EXPECT_EQ(adopted->sax_table(), built->sax_table());
  ASSERT_EQ(adopted->buffers().buffer_count(),
            built->buffers().buffer_count());
  EXPECT_EQ(adopted->buffers().keys, built->buffers().keys);
  EXPECT_EQ(adopted->buffers().series, built->buffers().series);
}

TEST(SharedChunkTest, IndexBuiltFromSharedEqualsPrivateBuild) {
  const SeriesCollection data = GenerateSeismicLike(400, 64, 13);
  const IndexOptions options = TestIndexOptions();
  const Index private_index =
      Index::Build(SeriesCollection(data), options);
  const auto bundle =
      SharedChunk::Build(SeriesCollection(data), {}, options.config);
  const Index shared_a = Index::BuildFromShared(bundle, options);
  const Index shared_b = Index::BuildFromShared(bundle, options);
  // Both replicas reference the very same bundle...
  EXPECT_EQ(shared_a.chunk().get(), shared_b.chunk().get());
  EXPECT_EQ(shared_a.sax_table().data(), shared_b.sax_table().data());
  // ...and all three trees agree node for node.
  EXPECT_TRUE(testing_utils::TreesIdentical(private_index.tree(),
                                            shared_a.tree()));
  EXPECT_TRUE(testing_utils::TreesIdentical(shared_a.tree(),
                                            shared_b.tree()));
}

// -------------------------------------------------- once-per-group counters

TEST(BuildStatsTest, SharedBuildSummarizesOncePerGroupNotPerNode) {
  const SeriesCollection data = GenerateRandomWalk(480, 64, 21);
  const struct {
    int nodes, groups;
  } kLayouts[] = {{4, 1}, {4, 2}, {4, 4}};  // FULL, PARTIAL-2, EQUALLY-SPLIT
  for (const auto& layout : kLayouts) {
    summary_stats::Reset();
    build_stats::Reset();
    OdysseyCluster cluster(data,
                           ClusterOptions(layout.nodes, layout.groups, true));
    // Exactly one bundle per group, each series summarized exactly once in
    // the whole cluster — independent of the replication degree.
    EXPECT_EQ(build_stats::ChunksBuilt(),
              static_cast<uint64_t>(layout.groups))
        << cluster.layout().ToString();
    EXPECT_EQ(build_stats::SummariesBuilt(), data.size())
        << cluster.layout().ToString();
    EXPECT_EQ(summary_stats::SaxCalls(), data.size())
        << cluster.layout().ToString();
    EXPECT_EQ(summary_stats::PaaCalls(), data.size())
        << cluster.layout().ToString();
    EXPECT_GT(build_stats::ChunkBytes(), 0u);
  }
}

TEST(BuildStatsTest, LegacyCopyPathPaysPerNode) {
  const SeriesCollection data = GenerateRandomWalk(480, 64, 22);
  summary_stats::Reset();
  build_stats::Reset();
  OdysseyCluster cluster(data, ClusterOptions(4, 1, false));  // FULL, legacy
  // Every node materializes and summarizes its private bundle.
  EXPECT_EQ(build_stats::ChunksBuilt(), 4u);
  EXPECT_EQ(build_stats::SummariesBuilt(), 4 * data.size());
  EXPECT_EQ(summary_stats::SaxCalls(), 4 * data.size());
}

TEST(BuildStatsTest, SharedFullReplicationStoresOneBundle) {
  const SeriesCollection data = GenerateRandomWalk(300, 64, 23);
  build_stats::Reset();
  OdysseyCluster shared(data, ClusterOptions(4, 1, true));
  const uint64_t shared_bytes = build_stats::ChunkBytes();
  build_stats::Reset();
  OdysseyCluster legacy(data, ClusterOptions(4, 1, false));
  const uint64_t legacy_bytes = build_stats::ChunkBytes();
  // FULL over 4 nodes: the legacy path materializes ~4x the bundle bytes.
  EXPECT_GE(legacy_bytes, 3 * shared_bytes);
  // The *reported* per-node footprint is unchanged (a real deployment
  // stores the chunk on every node): Figure-14 accounting must not shrink
  // just because the simulation shares the bytes.
  EXPECT_EQ(shared.total_data_bytes(), legacy.total_data_bytes());
  EXPECT_EQ(shared.total_index_bytes(), legacy.total_index_bytes());
}

// --------------------------------------------- shared vs legacy bit-identity

TEST(SharedVsLegacyTest, TreesBitIdenticalAcrossReplicationModes) {
  const SeriesCollection data = GenerateSeismicLike(600, 64, 31);
  for (const auto& [nodes, groups] :
       std::vector<std::pair<int, int>>{{4, 1}, {4, 2}, {4, 4}}) {
    OdysseyCluster shared(data, ClusterOptions(nodes, groups, true));
    OdysseyCluster legacy(data, ClusterOptions(nodes, groups, false));
    for (int n = 0; n < nodes; ++n) {
      ASSERT_EQ(shared.node(n).chunk_size(), legacy.node(n).chunk_size());
      EXPECT_EQ(shared.node(n).index().sax_table(),
                legacy.node(n).index().sax_table())
          << "node " << n << " of " << shared.layout().ToString();
      EXPECT_TRUE(testing_utils::TreesIdentical(shared.node(n).index().tree(),
                                                legacy.node(n).index().tree()))
          << "node " << n << " of " << shared.layout().ToString();
    }
    // Replicas of one group share one bundle (pointer-equal), across groups
    // they do not.
    if (groups < nodes) {
      EXPECT_EQ(shared.node(0).index().chunk().get(),
                shared.node(groups).index().chunk().get());
    }
    if (groups > 1) {
      EXPECT_NE(shared.node(0).index().chunk().get(),
                shared.node(1).index().chunk().get());
    }
    // And the answers agree bit for bit.
    const SeriesCollection queries = GenerateUniformQueries(data, 6, 0.4, 33);
    const BatchReport a = shared.AnswerBatch(queries);
    const BatchReport b = legacy.AnswerBatch(queries);
    for (size_t q = 0; q < a.answers.size(); ++q) {
      ASSERT_EQ(a.answers[q].size(), b.answers[q].size());
      for (size_t k = 0; k < a.answers[q].size(); ++k) {
        EXPECT_EQ(a.answers[q][k].id, b.answers[q][k].id);
        EXPECT_EQ(a.answers[q][k].squared_distance,
                  b.answers[q][k].squared_distance);
      }
    }
  }
}

// ----------------------------------------------- streaming + overlap build

class StreamingSharedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("stream.raw");
    const SeriesCollection base = GenerateSeismicLike(600, 64, 41);
    SeriesCollection raw(64);
    for (size_t i = 0; i < base.size(); ++i) {
      float row[64];
      for (size_t t = 0; t < 64; ++t) row[t] = 3.0f + 2.0f * base.data(i)[t];
      raw.Append(row);
    }
    ASSERT_TRUE(WriteRawFloats(raw, path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  StatusOr<std::unique_ptr<OdysseyCluster>> Stream(
      const OdysseyOptions& cluster_options) {
    IngestOptions options;
    options.length = 64;
    options.chunk_size = 128;  // 600 series stream in as 5 chunks
    StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path_, options);
    if (!source.ok()) return source.status();
    return OdysseyCluster::IngestAndBuild(*source, cluster_options);
  }

  std::string path_;
};

TEST_F(StreamingSharedTest, SummarizesEachSeriesOnceAcrossChunks) {
  OdysseyOptions options = ClusterOptions(4, 2, true);
  summary_stats::Reset();
  build_stats::Reset();
  auto cluster = Stream(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  // 600 series in 5 chunks over 2 groups: one adopted bundle per group,
  // every series summarized exactly once — by the ingest pipeline, with the
  // partitioner and both replicas of each group reusing the same rows.
  EXPECT_EQ(build_stats::ChunksBuilt(), 2u);
  EXPECT_EQ(build_stats::SummariesBuilt(), 600u);
  EXPECT_EQ(summary_stats::SaxCalls(), 600u);
  EXPECT_EQ(summary_stats::PaaCalls(), 600u);
}

TEST_F(StreamingSharedTest, DensityAwarePartitioningReusesIngestSummaries) {
  OdysseyOptions options = ClusterOptions(4, 2, true);
  options.partitioning = PartitioningScheme::kDensityAware;
  summary_stats::Reset();
  auto cluster = Stream(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  // DENSITY-AWARE consumes the precomputed per-chunk table instead of
  // re-summarizing: still exactly one SAX word per series process-wide.
  EXPECT_EQ(summary_stats::SaxCalls(), 600u);
}

TEST_F(StreamingSharedTest, OverlapOnOffAndLegacyAllAnswerIdentically) {
  std::vector<std::unique_ptr<OdysseyCluster>> clusters;
  for (const auto& [share, overlap] :
       std::vector<std::pair<bool, bool>>{{true, true},
                                          {true, false},
                                          {false, false}}) {
    OdysseyOptions options = ClusterOptions(4, 2, share);
    options.overlap_ingest = overlap;
    auto cluster = Stream(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    clusters.push_back(std::move(*cluster));
  }
  EXPECT_GT(clusters[0]->ingest_seconds(), 0.0);
  EXPECT_LE(clusters[0]->overlap_seconds(),
            clusters[0]->ingest_seconds() + 1e-9);
  EXPECT_EQ(clusters[1]->overlap_seconds(), 0.0);
  EXPECT_EQ(clusters[2]->overlap_seconds(), 0.0);

  for (int n = 0; n < 4; ++n) {
    EXPECT_TRUE(testing_utils::TreesIdentical(
        clusters[0]->node(n).index().tree(),
        clusters[1]->node(n).index().tree()));
    EXPECT_TRUE(testing_utils::TreesIdentical(
        clusters[0]->node(n).index().tree(),
        clusters[2]->node(n).index().tree()));
  }

  const SeriesCollection data = clusters[0]->node(0).index().data();
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 0.4, 43);
  const BatchReport a = clusters[0]->AnswerBatch(queries);
  const BatchReport b = clusters[1]->AnswerBatch(queries);
  const BatchReport c = clusters[2]->AnswerBatch(queries);
  for (size_t q = 0; q < a.answers.size(); ++q) {
    ASSERT_EQ(a.answers[q].size(), b.answers[q].size());
    ASSERT_EQ(a.answers[q].size(), c.answers[q].size());
    for (size_t k = 0; k < a.answers[q].size(); ++k) {
      EXPECT_EQ(a.answers[q][k].id, b.answers[q][k].id);
      EXPECT_EQ(a.answers[q][k].id, c.answers[q][k].id);
    }
  }
}

// ------------------------------------------------------- ChunkPrefetcher

TEST(ChunkPrefetcherTest, YieldsIdenticalChunksInOrder) {
  const std::string path = TempPath("prefetch.raw");
  const SeriesCollection data = GenerateRandomWalk(333, 32, 51);
  ASSERT_TRUE(WriteRawFloats(data, path).ok());
  IngestOptions options;
  options.length = 32;
  options.chunk_size = 100;  // 4 chunks: 100+100+100+33

  StatusOr<SeriesIngestor> direct = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(direct.ok());
  StatusOr<SeriesIngestor> prefetched = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(prefetched.ok());
  ChunkPrefetcher prefetcher(&*prefetched);

  for (;;) {
    StatusOr<SeriesCollection> want = direct->NextChunk();
    StatusOr<SeriesCollection> got = prefetcher.Next();
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(want->size(), got->size());
    for (size_t i = 0; i < want->size(); ++i) {
      for (size_t t = 0; t < 32; ++t) {
        ASSERT_EQ(want->data(i)[t], got->data(i)[t]);
      }
    }
    if (want->empty()) break;
  }
  // Mirrors SeriesIngestor: pulls after the end keep reporting end.
  StatusOr<SeriesCollection> again = prefetcher.Next();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
  EXPECT_GT(prefetcher.pull_seconds(), 0.0);
  std::remove(path.c_str());
}

TEST(ChunkPrefetcherTest, ReReportsAnErrorInsteadOfFakingEof) {
  // 12 fvecs vectors; vector 9's per-record dimension header is corrupted
  // after writing, so the third pull (chunk_size 4) fails mid-archive.
  const std::string path = TempPath("prefetch_err.fvecs");
  const SeriesCollection data = GenerateRandomWalk(12, 16, 53);
  ASSERT_TRUE(WriteFvecs(data, path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long record = 4 + 16 * 4;
    ASSERT_EQ(std::fseek(f, 9 * record, SEEK_SET), 0);
    const int32_t bad_dim = 17;
    ASSERT_EQ(std::fwrite(&bad_dim, sizeof(bad_dim), 1, f), 1u);
    ASSERT_EQ(std::fclose(f), 0);
  }
  IngestOptions options;
  options.format = DataFormat::kFvecs;
  options.chunk_size = 4;
  StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ChunkPrefetcher prefetcher(&*source);
  ASSERT_TRUE(prefetcher.Next().ok());
  ASSERT_TRUE(prefetcher.Next().ok());
  const StatusOr<SeriesCollection> failed = prefetcher.Next();
  ASSERT_FALSE(failed.ok());
  // The error is sticky, exactly like NextChunk re-reporting it — a
  // partially read archive must never look like a cleanly finished one.
  const StatusOr<SeriesCollection> again = prefetcher.Next();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().ToString(), failed.status().ToString());
  std::remove(path.c_str());
}

TEST(ChunkPrefetcherTest, DestructorDrainsUnconsumedChunks) {
  const std::string path = TempPath("prefetch_drop.raw");
  const SeriesCollection data = GenerateRandomWalk(400, 32, 52);
  ASSERT_TRUE(WriteRawFloats(data, path).ok());
  IngestOptions options;
  options.length = 32;
  options.chunk_size = 64;
  StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(source.ok());
  {
    ChunkPrefetcher prefetcher(&*source);
    StatusOr<SeriesCollection> first = prefetcher.Next();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->size(), 64u);
    // Destroyed with pulls still in flight: must not hang or leak.
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace odyssey
