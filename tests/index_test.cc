#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "src/index/approx_search.h"
#include "src/index/buffers.h"
#include "src/index/builder.h"
#include "src/index/pqueue.h"
#include "src/index/query_engine.h"
#include "src/index/rs_batch.h"
#include "src/index/threshold_model.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

using testing_utils::BruteForceKnn;
using testing_utils::BruteForceKnnDtw;
using testing_utils::NearlyEqual;

IndexOptions SmallOptions(size_t length, int segments = 8,
                          size_t leaf_capacity = 32) {
  IndexOptions options;
  options.config = IsaxConfig(length, segments);
  options.leaf_capacity = leaf_capacity;
  return options;
}

// ---------------------------------------------------------------- Buffers

TEST(BuffersTest, SaxTableHasOneRowPerSeries) {
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateRandomWalk(100, 64, 1);
  ThreadPool pool(4);
  const std::vector<uint8_t> table = ComputeSaxTable(data, config, &pool);
  EXPECT_EQ(table.size(), 100u * 8u);
  // Parallel result matches serial.
  const std::vector<uint8_t> serial = ComputeSaxTable(data, config, nullptr);
  EXPECT_EQ(table, serial);
}

TEST(BuffersTest, GroupsCoverAllSeriesByKey) {
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateRandomWalk(500, 64, 2);
  const std::vector<uint8_t> table = ComputeSaxTable(data, config, nullptr);
  const SummarizationBuffers buffers =
      BuildBuffers(table.data(), data.size(), config, nullptr);
  size_t total = 0;
  for (size_t b = 0; b < buffers.buffer_count(); ++b) {
    if (b > 0) {
      EXPECT_LT(buffers.keys[b - 1], buffers.keys[b]);
    }
    uint32_t prev = 0;
    bool first = true;
    for (uint32_t id : buffers.series[b]) {
      EXPECT_EQ(RootKey(table.data() + id * 8, config), buffers.keys[b]);
      if (!first) {
        EXPECT_LT(prev, id);  // ascending ids (determinism)
      }
      prev = id;
      first = false;
      ++total;
    }
  }
  EXPECT_EQ(total, data.size());
}

// ----------------------------------------------------------------- Tree

TEST(TreeTest, BuildConservesSeries) {
  const SeriesCollection data = GenerateRandomWalk(2000, 64, 3);
  BuildTimings timings;
  ThreadPool pool(4);
  const Index index =
      Index::Build(SeriesCollection(data), SmallOptions(64), &pool, &timings);
  const IndexTree::Stats stats = index.tree().ComputeStats();
  EXPECT_EQ(stats.series, 2000u);
  EXPECT_GT(stats.roots, 0u);
  EXPECT_GE(stats.nodes, stats.leaves);
  EXPECT_GE(timings.buffer_seconds, 0.0);
  EXPECT_GE(timings.tree_seconds, 0.0);
}

TEST(TreeTest, LeavesRespectCapacityUnlessFullyRefined) {
  const SeriesCollection data = GenerateRandomWalk(3000, 64, 5);
  const IndexOptions options = SmallOptions(64, 8, 16);
  const Index index = Index::Build(SeriesCollection(data), options);
  std::function<void(const TreeNode*)> visit = [&](const TreeNode* node) {
    if (node->is_leaf()) {
      bool fully_refined = true;
      for (uint8_t bits : node->word().bits) {
        fully_refined &= (bits == kMaxSaxBits);
      }
      if (!fully_refined) {
        EXPECT_LE(node->ids().size(), options.leaf_capacity);
      }
      return;
    }
    visit(node->left());
    visit(node->right());
  };
  for (size_t r = 0; r < index.tree().root_count(); ++r) {
    visit(index.tree().root(r));
  }
}

TEST(TreeTest, EverySeriesLandsInAMatchingLeaf) {
  const SeriesCollection data = GenerateRandomWalk(800, 64, 7);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  std::vector<bool> seen(data.size(), false);
  std::function<void(const TreeNode*)> visit = [&](const TreeNode* node) {
    if (node->is_leaf()) {
      for (size_t i = 0; i < node->ids().size(); ++i) {
        const uint32_t id = node->ids()[i];
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
        EXPECT_TRUE(node->word().Matches(index.sax(id), index.config()));
      }
      return;
    }
    visit(node->left());
    visit(node->right());
  };
  for (size_t r = 0; r < index.tree().root_count(); ++r) {
    visit(index.tree().root(r));
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

std::string TreeFingerprint(const TreeNode* node) {
  if (node->is_leaf()) {
    std::string out = "L(" + node->word().ToString() + ":";
    for (uint32_t id : node->ids()) out += std::to_string(id) + ",";
    return out + ")";
  }
  return "I(" + node->word().ToString() + TreeFingerprint(node->left()) +
         TreeFingerprint(node->right()) + ")";
}

TEST(TreeTest, ReplicaDeterminism) {
  // Two indexes built from the same chunk — even with different thread
  // counts — must be bit-identical. Work-stealing correctness rests on this.
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 9);
  ThreadPool pool_a(1), pool_b(8);
  const Index a = Index::Build(SeriesCollection(data), SmallOptions(64), &pool_a);
  const Index b = Index::Build(SeriesCollection(data), SmallOptions(64), &pool_b);
  ASSERT_EQ(a.tree().root_count(), b.tree().root_count());
  for (size_t r = 0; r < a.tree().root_count(); ++r) {
    ASSERT_EQ(a.tree().root_key(r), b.tree().root_key(r));
    ASSERT_EQ(TreeFingerprint(a.tree().root(r)),
              TreeFingerprint(b.tree().root(r)));
  }
}

TEST(TreeTest, FindRoot) {
  const SeriesCollection data = GenerateRandomWalk(300, 64, 11);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const IndexTree& tree = index.tree();
  for (size_t r = 0; r < tree.root_count(); ++r) {
    EXPECT_EQ(tree.FindRoot(tree.root_key(r)), static_cast<int>(r));
  }
  // A key of no series (if any exists in the 8-bit space) returns -1.
  for (uint32_t key = 0; key < 256; ++key) {
    if (tree.FindRoot(key) < 0) {
      SUCCEED();
      return;
    }
  }
}

TEST(TreeTest, MemoryAccountingIsPositive) {
  const SeriesCollection data = GenerateRandomWalk(500, 64, 13);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  EXPECT_GT(index.IndexMemoryBytes(), 500u * 8u);  // at least the SAX table
  EXPECT_GE(index.DataMemoryBytes(), 500u * 64u * sizeof(float));
}

// --------------------------------------------------------- ApproxSearch

TEST(ApproxSearchTest, ReturnsARealDistanceAboveExact) {
  const SeriesCollection data = GenerateRandomWalk(1000, 64, 15);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 20, 1.0, 17);
  for (size_t q = 0; q < queries.size(); ++q) {
    const PreparedQuery prepared =
        PreparedQuery::Prepare(queries.data(q), index.config());
    uint32_t id = 0;
    const float approx = ApproximateSearchSquared(index, prepared, &id);
    const float actual =
        SquaredEuclidean(queries.data(q), data.data(id), 64);
    EXPECT_TRUE(NearlyEqual(approx, actual));
    const float exact = BruteForceKnn(data, queries.data(q), 1)[0]
                            .squared_distance;
    EXPECT_GE(approx * (1 + 1e-5f), exact);
  }
}

TEST(ApproxSearchTest, FindsExactMatchForDatasetMember) {
  const SeriesCollection data = GenerateRandomWalk(500, 64, 19);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  // Querying with a member itself must return distance 0 (its own leaf).
  for (uint32_t probe : {0u, 100u, 499u}) {
    const PreparedQuery prepared =
        PreparedQuery::Prepare(data.data(probe), index.config());
    EXPECT_EQ(ApproximateSearchSquared(index, prepared), 0.0f);
  }
}

// --------------------------------------------------------------- PQueue

TEST(PqueueTest, PopsInAscendingOrder) {
  BoundedPq pq(0);
  for (float lb : {5.0f, 1.0f, 3.0f, 2.0f, 4.0f}) pq.Push({lb, nullptr});
  EXPECT_EQ(pq.MinLowerBound(), 1.0f);
  float prev = -1.0f;
  while (!pq.empty()) {
    const PqItem item = pq.Pop();
    EXPECT_GE(item.lower_bound, prev);
    prev = item.lower_bound;
  }
}

TEST(PqueueTest, ReportsFullAtCapacity) {
  BoundedPq pq(3);
  EXPECT_FALSE(pq.Push({1.0f, nullptr}));
  EXPECT_FALSE(pq.Push({2.0f, nullptr}));
  EXPECT_TRUE(pq.Push({3.0f, nullptr}));  // reached TH
  EXPECT_EQ(pq.size(), 3u);
}

TEST(PqueueTest, UnboundedNeverReportsFull) {
  BoundedPq pq(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(pq.Push({static_cast<float>(i), nullptr}));
  }
}

// -------------------------------------------------------------- RsBatch

TEST(RsBatchTest, PartitionCoversAllRootsContiguously) {
  for (size_t roots : {1u, 7u, 64u, 100u}) {
    for (size_t batches : {1u, 4u, 8u, 128u}) {
      const auto ranges = PartitionRsBatches(roots, batches);
      ASSERT_EQ(ranges.size(), batches);
      size_t covered = 0;
      for (const auto& [begin, end] : ranges) {
        EXPECT_EQ(begin, covered);
        covered = end;
      }
      EXPECT_EQ(covered, roots);
    }
  }
}

// ------------------------------------------------------- ThresholdModel

TEST(ThresholdModelTest, CalibrateAndPredict) {
  ThresholdModel model;
  EXPECT_FALSE(model.calibrated());
  // Synthetic monotone relation between initial BSF and median queue size.
  std::vector<double> bsf, sizes;
  for (double z = 1.0; z <= 10.0; z += 0.5) {
    bsf.push_back(z);
    sizes.push_back(20.0 + 400.0 / (1.0 + std::exp(-(z - 5.0))));
  }
  ASSERT_TRUE(model.Calibrate(bsf, sizes).ok());
  EXPECT_TRUE(model.calibrated());
  model.set_division_factor(16.0);
  const size_t lo = model.PredictThreshold(1.0);
  const size_t hi = model.PredictThreshold(10.0);
  EXPECT_GE(lo, 1u);
  EXPECT_GE(hi, lo);
  // Division factor scales the prediction down.
  model.set_division_factor(1.0);
  EXPECT_GT(model.PredictThreshold(10.0), hi);
}

TEST(ThresholdModelTest, RejectsTooFewSamples) {
  ThresholdModel model;
  EXPECT_FALSE(model.Calibrate({1, 2}, {1, 2}).ok());
}

// --------------------------------------------------------- QueryEngine

TEST(KnnSetTest, SingleBestBehavesLikeBsf) {
  KnnSet set(1);
  EXPECT_EQ(set.Threshold(), std::numeric_limits<float>::infinity());
  EXPECT_TRUE(set.Offer(10.0f, 1));
  EXPECT_EQ(set.Threshold(), 10.0f);
  EXPECT_FALSE(set.Offer(20.0f, 2));
  EXPECT_TRUE(set.Offer(5.0f, 3));
  EXPECT_EQ(set.Threshold(), 5.0f);
  const auto results = set.SortedResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 3u);
}

TEST(KnnSetTest, KeepsKSmallest) {
  KnnSet set(3);
  for (uint32_t i = 0; i < 10; ++i) {
    set.Offer(static_cast<float>(10 - i), i);
  }
  const auto results = set.SortedResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].squared_distance, 1.0f);
  EXPECT_EQ(results[1].squared_distance, 2.0f);
  EXPECT_EQ(results[2].squared_distance, 3.0f);
  EXPECT_EQ(set.Threshold(), 3.0f);
}

TEST(KnnSetTest, DuplicateIdNeverConsumesTwoSlots) {
  KnnSet set(3);
  EXPECT_TRUE(set.Offer(5.0f, 7));
  EXPECT_FALSE(set.Offer(5.0f, 7));  // exact duplicate
  EXPECT_FALSE(set.Offer(2.0f, 7));  // same id, better distance: still a dup
  EXPECT_TRUE(set.Offer(1.0f, 1));
  EXPECT_TRUE(set.Offer(2.0f, 2));
  EXPECT_EQ(set.Threshold(), 5.0f);
  // Evicting id 7 must free its membership slot for a later re-offer.
  EXPECT_TRUE(set.Offer(3.0f, 3));
  EXPECT_EQ(set.Threshold(), 3.0f);
  EXPECT_TRUE(set.Offer(0.5f, 7));
  const auto results = set.SortedResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 7u);
  EXPECT_EQ(results[0].squared_distance, 0.5f);
}

TEST(KnnSetTest, ThresholdInfiniteUntilFull) {
  KnnSet set(4);
  set.Offer(1.0f, 0);
  set.Offer(2.0f, 1);
  set.Offer(3.0f, 2);
  EXPECT_EQ(set.Threshold(), std::numeric_limits<float>::infinity());
  set.Offer(4.0f, 3);
  EXPECT_EQ(set.Threshold(), 4.0f);
}

TEST(AtomicFetchMinFloatTest, LowersOnlyWhenSmaller) {
  std::atomic<float> cell{10.0f};
  EXPECT_FALSE(AtomicFetchMinFloat(&cell, 12.0f));
  EXPECT_EQ(cell.load(), 10.0f);
  EXPECT_TRUE(AtomicFetchMinFloat(&cell, 7.0f));
  EXPECT_EQ(cell.load(), 7.0f);
  EXPECT_FALSE(AtomicFetchMinFloat(&cell, 7.0f));
}

struct ExactCase {
  const char* name;
  int threads;
  int k;
  size_t queue_threshold;
  size_t num_batches;
};

class ExactSearchTest : public ::testing::TestWithParam<ExactCase> {};

TEST_P(ExactSearchTest, MatchesBruteForce) {
  const ExactCase param = GetParam();
  const SeriesCollection data = GenerateSeismicLike(3000, 64, 21);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  WorkloadOptions wl;
  wl.count = 12;
  wl.min_noise = 0.1;
  wl.max_noise = 2.5;
  wl.seed = 23;
  const SeriesCollection queries = GenerateQueries(data, wl);

  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions options;
    options.num_threads = param.threads;
    options.k = param.k;
    options.queue_threshold = param.queue_threshold;
    options.num_batches = param.num_batches;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), options);
    QueryExecution exec(&index, prepared, options);
    const float initial = exec.SeedInitialBsf();
    EXPECT_GE(initial, 0.0f);
    exec.Run();
    const auto got = exec.results().SortedResults();
    const auto expected = BruteForceKnn(data, queries.data(q), param.k);
    ASSERT_EQ(got.size(), expected.size()) << "query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(NearlyEqual(got[i].squared_distance,
                              expected[i].squared_distance))
          << "query " << q << " rank " << i << ": got "
          << got[i].squared_distance << " want "
          << expected[i].squared_distance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactSearchTest,
    ::testing::Values(ExactCase{"t1_k1", 1, 1, 0, 0},
                      ExactCase{"t2_k1", 2, 1, 0, 0},
                      ExactCase{"t4_k1", 4, 1, 0, 0},
                      ExactCase{"t4_k5", 4, 5, 0, 0},
                      ExactCase{"t4_k1_th8", 4, 1, 8, 0},
                      ExactCase{"t2_k5_th4", 2, 5, 4, 0},
                      ExactCase{"t4_k1_b16", 4, 1, 0, 16},
                      ExactCase{"t1_k5_b2", 1, 5, 0, 2}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ExactSearchTest, DtwMatchesBruteForce) {
  const SeriesCollection data = GenerateSeismicLike(800, 64, 25);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 27);
  const size_t window = WarpingWindowFromFraction(64, 0.05);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions options;
    options.num_threads = 4;
    options.use_dtw = true;
    options.dtw_window = window;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), options);
    QueryExecution exec(&index, prepared, options);
    exec.SeedInitialBsf();
    exec.Run();
    const auto got = exec.results().SortedResults();
    const auto expected = BruteForceKnnDtw(data, queries.data(q), 1, window);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_TRUE(
        NearlyEqual(got[0].squared_distance, expected[0].squared_distance))
        << got[0].squared_distance << " vs " << expected[0].squared_distance;
  }
}

TEST(ExactSearchTest, DtwKnnMatchesBruteForce) {
  const SeriesCollection data = GenerateRandomWalk(600, 64, 29);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 4, 1.5, 31);
  const size_t window = WarpingWindowFromFraction(64, 0.1);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions options;
    options.num_threads = 2;
    options.k = 5;
    options.use_dtw = true;
    options.dtw_window = window;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), options);
    QueryExecution exec(&index, prepared, options);
    exec.SeedInitialBsf();
    exec.Run();
    const auto got = exec.results().SortedResults();
    const auto expected = BruteForceKnnDtw(data, queries.data(q), 5, window);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_TRUE(NearlyEqual(got[i].squared_distance,
                              expected[i].squared_distance));
    }
  }
}

TEST(ExactSearchTest, SharedBsfCellAcceleratesAndStaysExact) {
  const SeriesCollection data = GenerateRandomWalk(1500, 64, 33);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.0, 35);
  for (size_t q = 0; q < queries.size(); ++q) {
    const float exact = BruteForceKnn(data, queries.data(q), 1)[0]
                            .squared_distance;
    // Seed the shared cell with a tight-but-valid external bound, as BSF
    // sharing would.
    std::atomic<float> cell{exact * 1.01f + 1e-3f};
    std::atomic<int> improvements{0};
    QueryOptions options;
    options.num_threads = 2;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), options);
    QueryExecution exec(&index, prepared, options, &cell,
                        [&](float) { improvements.fetch_add(1); });
    exec.SeedInitialBsf();
    exec.Run();
    const auto got = exec.results().SortedResults();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_TRUE(NearlyEqual(got[0].squared_distance, exact));
  }
}

TEST(ExactSearchTest, StatsArePopulated) {
  const SeriesCollection data = GenerateRandomWalk(1000, 64, 37);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 1, 2.0, 39);
  QueryOptions options;
  options.num_threads = 2;
  const PreparedQuery prepared =
      PrepareQuery(queries.data(0), index.config(), options);
  QueryExecution exec(&index, prepared, options);
  exec.SeedInitialBsf();
  exec.Run();
  const QueryStats stats = exec.stats();
  EXPECT_GT(stats.initial_bsf, 0.0);
  EXPECT_GT(stats.real_distances, 0u);
  EXPECT_GE(stats.leaves_inserted, stats.leaves_processed > 0 ? 1u : 0u);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
}

TEST(ExactSearchTest, StealBatchesOutsideProcessingIsEmpty) {
  const SeriesCollection data = GenerateRandomWalk(500, 64, 41);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 1, 1.0, 43);
  QueryOptions options;
  options.num_threads = 1;
  const PreparedQuery prepared =
      PrepareQuery(queries.data(0), index.config(), options);
  QueryExecution exec(&index, prepared, options);
  exec.SeedInitialBsf();
  EXPECT_TRUE(exec.StealBatches(4).empty());  // not running yet
  exec.Run();
  EXPECT_TRUE(exec.StealBatches(4).empty());  // already done
}

TEST(ExactSearchTest, RunBatchSubsetCoversStolenWork) {
  // Simulate a steal: run only a subset of batches on a "thief" execution
  // and the complement on the "victim"; merged results must equal brute
  // force.
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 45);
  const Index index = Index::Build(SeriesCollection(data), SmallOptions(64));
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 2.0, 47);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions options;
    options.num_threads = 2;
    options.num_batches = 8;
    // One prepared artifact for both sides, as in the real steal protocol.
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), options);
    QueryExecution victim(&index, prepared, options);
    QueryExecution thief(&index, prepared, options);
    victim.SeedInitialBsf();
    thief.SeedInitialBsf();
    std::vector<int> victim_ids, thief_ids;
    for (int b = 0; b < 8; ++b) {
      (b % 2 == 0 ? victim_ids : thief_ids).push_back(b);
    }
    victim.RunBatchSubset(victim_ids);
    thief.RunBatchSubset(thief_ids);
    std::vector<Neighbor> merged;
    for (const auto& n : victim.results().SortedResults()) merged.push_back(n);
    for (const auto& n : thief.results().SortedResults()) merged.push_back(n);
    float best = std::numeric_limits<float>::infinity();
    for (const auto& n : merged) best = std::min(best, n.squared_distance);
    const float exact = BruteForceKnn(data, queries.data(q), 1)[0]
                            .squared_distance;
    EXPECT_TRUE(NearlyEqual(best, exact)) << "query " << q;
  }
}

}  // namespace
}  // namespace odyssey
