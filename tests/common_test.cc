#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/gray_code.h"
#include "src/common/linear_regression.h"
#include "src/common/math_utils.h"
#include "src/common/nelder_mead.h"
#include "src/common/rng.h"
#include "src/common/sigmoid_fit.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace odyssey {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithMoveOnlyLikeTypes) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  std::vector<int> v = std::move(result).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// ------------------------------------------------------------- MathUtils

TEST(MathUtilsTest, MeanAndStdDev) {
  const float v[] = {1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Mean(v, 4), 2.5);
  EXPECT_NEAR(StdDev(v, 4), std::sqrt(1.25), 1e-9);
  EXPECT_DOUBLE_EQ(Mean(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(v, 0), 0.0);
}

TEST(MathUtilsTest, ZNormalizeProducesZeroMeanUnitVar) {
  std::vector<float> v = {5.0f, 7.0f, 9.0f, 11.0f, 13.0f};
  ZNormalize(v.data(), v.size());
  EXPECT_NEAR(Mean(v.data(), v.size()), 0.0, 1e-6);
  EXPECT_NEAR(StdDev(v.data(), v.size()), 1.0, 1e-5);
}

TEST(MathUtilsTest, ZNormalizeConstantSeriesBecomesZero) {
  std::vector<float> v(16, 3.5f);
  ZNormalize(v.data(), v.size());
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(MathUtilsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(MathUtilsTest, PercentileEndpoints) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
}

// ------------------------------------------------------------- GrayCode

TEST(GrayCodeTest, ConsecutiveCodewordsDifferInOneBit) {
  for (uint64_t i = 0; i + 1 < 4096; ++i) {
    const uint64_t diff = BinaryToGray(i) ^ BinaryToGray(i + 1);
    EXPECT_EQ(__builtin_popcountll(diff), 1) << "at i=" << i;
  }
}

TEST(GrayCodeTest, RankInvertsBinaryToGray) {
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(GrayRank(BinaryToGray(i)), i);
  }
  // And a few wide values.
  for (uint64_t i : {0xDEADBEEFULL, 0x123456789ABCDEFULL, ~0ULL >> 1}) {
    EXPECT_EQ(GrayRank(BinaryToGray(i)), i);
  }
}

TEST(GrayCodeTest, GrayOrderingNeighborsAreOneBitApart) {
  // Sorting keys by GrayRank must enumerate them in a 1-bit-step sequence.
  std::vector<uint64_t> keys(256);
  for (uint64_t k = 0; k < 256; ++k) keys[k] = k;
  std::sort(keys.begin(), keys.end(),
            [](uint64_t a, uint64_t b) { return GrayRank(a) < GrayRank(b); });
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    EXPECT_EQ(__builtin_popcountll(keys[i] ^ keys[i + 1]), 1);
  }
}

// ---------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&](size_t, size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

// --------------------------------------------------- LinearRegression

TEST(LinearRegressionTest, RecoversExactLine) {
  LinearRegression lr;
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {5, 7, 9, 11, 13};  // y = 2x + 3
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_NEAR(lr.slope(), 2.0, 1e-9);
  EXPECT_NEAR(lr.intercept(), 3.0, 1e-9);
  EXPECT_NEAR(lr.r_squared(), 1.0, 1e-12);
  EXPECT_NEAR(lr.Predict(10.0), 23.0, 1e-9);
}

TEST(LinearRegressionTest, NoisyFitHasReasonableR2) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.NextDouble() * 10.0;
    x.push_back(xi);
    y.push_back(1.5 * xi + 2.0 + 0.1 * rng.NextGaussian());
  }
  LinearRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_NEAR(lr.slope(), 1.5, 0.05);
  EXPECT_GT(lr.r_squared(), 0.99);
}

TEST(LinearRegressionTest, RejectsDegenerateInput) {
  LinearRegression lr;
  EXPECT_FALSE(lr.Fit({1.0}, {2.0}).ok());               // too few
  EXPECT_FALSE(lr.Fit({1, 2}, {1.0}).ok());              // size mismatch
  EXPECT_FALSE(lr.Fit({3, 3, 3}, {1, 2, 3}).ok());       // constant x
  EXPECT_FALSE(lr.fitted());
}

// --------------------------------------------------------- NelderMead

TEST(NelderMeadTest, MinimizesQuadratic) {
  auto objective = [](const std::vector<double>& p) {
    const double dx = p[0] - 3.0;
    const double dy = p[1] + 1.0;
    return dx * dx + dy * dy;
  };
  const NelderMeadResult result = NelderMeadMinimize(objective, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 3.0, 1e-3);
  EXPECT_NEAR(result.x[1], -1.0, 1e-3);
  EXPECT_LT(result.value, 1e-6);
}

TEST(NelderMeadTest, MinimizesRosenbrock) {
  auto rosenbrock = [](const std::vector<double>& p) {
    const double a = 1.0 - p[0];
    const double b = p[1] - p[0] * p[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 20000;
  options.tolerance = 1e-14;
  const NelderMeadResult result =
      NelderMeadMinimize(rosenbrock, {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 1e-2);
}

// --------------------------------------------------------- SigmoidFit

TEST(SigmoidFitTest, EvaluateMatchesFormula) {
  SigmoidParams p{1.0, 5.0, 1.0, 2.0, 0.0};
  // At the midpoint z = d with b = 1: m + (M - m) / 2.
  EXPECT_NEAR(p.Evaluate(0.0), 3.0, 1e-12);
  // Far left approaches m, far right approaches M.
  EXPECT_NEAR(p.Evaluate(-100.0), 1.0, 1e-6);
  EXPECT_NEAR(p.Evaluate(100.0), 5.0, 1e-6);
}

TEST(SigmoidFitTest, RecoversKnownSigmoid) {
  const SigmoidParams truth{10.0, 200.0, 1.0, 1.5, 4.0};
  std::vector<double> z, y;
  for (double zi = 0.0; zi <= 8.0; zi += 0.25) {
    z.push_back(zi);
    y.push_back(truth.Evaluate(zi));
  }
  SigmoidParams fitted;
  double rmse = 0.0;
  ASSERT_TRUE(FitSigmoid(z, y, &fitted, &rmse).ok());
  EXPECT_LT(rmse, 2.0);
  // The fitted curve (not necessarily the parameters) must match.
  for (double zi = 0.5; zi <= 7.5; zi += 0.5) {
    EXPECT_NEAR(fitted.Evaluate(zi), truth.Evaluate(zi), 6.0) << "z=" << zi;
  }
}

TEST(SigmoidFitTest, RejectsTooFewSamples) {
  SigmoidParams p;
  EXPECT_FALSE(FitSigmoid({1, 2, 3}, {1, 2, 3}, &p).ok());
  EXPECT_FALSE(FitSigmoid({1, 2, 3, 4, 5}, {1, 2}, &p).ok());
}

}  // namespace
}  // namespace odyssey
