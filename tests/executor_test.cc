// Tests for the persistent per-node executor (ISSUE 5): the
// ThreadPool/TaskGroup barrier-phase primitive (concurrent submits, reuse
// across epochs, nested-group helping, no thread leaks via the
// executor_stats::ThreadsSpawned counter), the zero-threads-per-query
// promise of the pooled query path, pooled-vs-legacy bit-identical answers
// across ED / DTW / k-NN / work-stealing, and the AnswerStream online
// admission path (arrival-time preparation equivalence, overlap and
// in-flight observability).

// Installs the counting global operator new from testing_utils.h so the
// hot-path purity tests below can assert zero steady-state allocations.
// Must be defined before any include (one TU per binary may define it).
#define ODYSSEY_TESTING_COUNT_ALLOCATIONS 1

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/summary_stats.h"
#include "src/common/thread_pool.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "src/index/query_engine.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

IndexOptions TestIndexOptions(size_t length = 64) {
  IndexOptions options;
  options.config = IsaxConfig(length, 8);
  options.leaf_capacity = 32;
  return options;
}

// ----------------------------------------------------- TaskGroup primitive

TEST(TaskGroupTest, ConcurrentSubmitsAllRun) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  // Several submitter threads race Submit against running tasks.
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        group.Submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  group.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(TaskGroupTest, ReusableAcrossEpochsWithoutSpawningThreads) {
  executor_stats::Reset();
  ThreadPool pool(3);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 3u);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int epoch = 0; epoch < 50; ++epoch) {
    group.RunTasks(3, [&counter](int) {
      counter.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(counter.load(), 3 * (epoch + 1)) << "epoch " << epoch;
  }
  // Fifty epochs of barrier-phase work reused the same three workers.
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 3u);
}

TEST(TaskGroupTest, GrowSpawnsOnlyTheMissingWorkers) {
  executor_stats::Reset();
  ThreadPool pool(2);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 2u);
  pool.Grow(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 4u);  // delta of 2, not 4+2
  pool.Grow(3);  // never shrinks, never respawns
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 4u);
  std::atomic<int> counter{0};
  pool.ParallelFor(100, [&counter](size_t begin, size_t end) {
    counter.fetch_add(static_cast<int>(end - begin),
                      std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroupTest, ParallelForInsidePoolTaskDoesNotDeadlock) {
  // ParallelFor is one TaskGroup epoch, so a pool task that calls it helps
  // run its own ranges instead of blocking a worker forever.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int o = 0; o < 2; ++o) {
    group.Submit([&pool, &counter] {
      pool.ParallelFor(10, [&counter](size_t begin, size_t end) {
        counter.fetch_add(static_cast<int>(end - begin),
                          std::memory_order_relaxed);
      });
    });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(TaskGroupTest, GroupsOnSharedPoolWaitOnlyForTheirOwnTasks) {
  ThreadPool pool(2);
  TaskGroup slow(&pool);
  TaskGroup fast(&pool);
  std::atomic<bool> release{false};
  std::atomic<int> fast_done{0};
  slow.Submit([&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  fast.Submit([&fast_done] { fast_done.store(1, std::memory_order_release); });
  fast.Wait();  // must not wait for the slow group's parked task
  EXPECT_EQ(fast_done.load(), 1);
  release.store(true, std::memory_order_release);
  slow.Wait();
}

TEST(TaskGroupTest, NestedGroupsOnFullPoolDoNotDeadlock) {
  // Two orchestrator tasks occupy both pool workers, and each waits on its
  // own sub-tasks submitted to the same pool: without help-while-wait this
  // deadlocks (the sub-tasks would never get a worker).
  ThreadPool pool(2);
  TaskGroup orchestrators(&pool);
  std::atomic<int> sub_done{0};
  for (int o = 0; o < 2; ++o) {
    orchestrators.Submit([&pool, &sub_done] {
      TaskGroup subtasks(&pool);
      for (int i = 0; i < 4; ++i) {
        subtasks.Submit([&sub_done] {
          sub_done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      subtasks.Wait();
    });
  }
  orchestrators.Wait();
  EXPECT_EQ(sub_done.load(), 8);
}

// ------------------------------------------------ pooled-vs-legacy answers

struct ExecutorModeCase {
  const char* name;
  bool use_dtw;
  int k;
  bool worksteal;
};

class PooledVsLegacyTest
    : public ::testing::TestWithParam<ExecutorModeCase> {};

TEST_P(PooledVsLegacyTest, AnswersBitIdentical) {
  const ExecutorModeCase mode = GetParam();
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 301);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.5, 303);

  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;  // FULL replication: stealing has peers
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.worksteal.enabled = mode.worksteal;
  options.query_options.num_threads = 2;
  options.query_options.k = mode.k;
  options.query_options.use_dtw = mode.use_dtw;
  options.query_options.dtw_window =
      mode.use_dtw ? WarpingWindowFromFraction(64, 0.05) : 0;

  options.use_executor = true;
  OdysseyCluster pooled(data, options);
  const BatchReport pooled_report = pooled.AnswerBatch(queries);

  options.use_executor = false;
  OdysseyCluster legacy(data, options);
  const BatchReport legacy_report = legacy.AnswerBatch(queries);

  ASSERT_EQ(pooled_report.answers.size(), legacy_report.answers.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const QueryAnswer& got = pooled_report.answers[q];
    const QueryAnswer& want = legacy_report.answers[q];
    ASSERT_EQ(got.size(), want.size()) << mode.name << " query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].squared_distance, want[i].squared_distance)
          << mode.name << " query " << q << " rank " << i;
      EXPECT_EQ(got[i].id, want[i].id)
          << mode.name << " query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PooledVsLegacyTest,
    ::testing::Values(ExecutorModeCase{"ed_k1", false, 1, false},
                      ExecutorModeCase{"ed_k5", false, 5, false},
                      ExecutorModeCase{"dtw_k1", true, 1, false},
                      ExecutorModeCase{"ed_k1_steal", false, 1, true},
                      ExecutorModeCase{"dtw_k3_steal", true, 3, true}),
    [](const auto& info) { return std::string(info.param.name); });

// --------------------------------------------------- zero threads per query

TEST(ExecutorThreadAccountingTest, QueryHotPathSpawnsZeroThreads) {
  const SeriesCollection data = GenerateSeismicLike(1200, 64, 305);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kPredictDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);

  // Warm-up batch: the first StartBatch creates each node's persistent
  // executor (pool + comms/main threads) once.
  const SeriesCollection warmup = GenerateUniformQueries(data, 3, 1.0, 307);
  cluster.AnswerBatch(warmup);

  // From here on, thread creation must be zero — independent of how many
  // queries a batch carries.
  const uint64_t after_warmup = executor_stats::ThreadsSpawned();
  const SeriesCollection small = GenerateUniformQueries(data, 4, 1.0, 309);
  cluster.AnswerBatch(small);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), after_warmup);
  const SeriesCollection large = GenerateUniformQueries(data, 16, 1.0, 311);
  cluster.AnswerBatch(large);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), after_warmup);

  // The legacy path, by contrast, pays num_threads spawns per query (the
  // baseline the executor removes).
  OdysseyOptions legacy_options = options;
  legacy_options.use_executor = false;
  OdysseyCluster legacy(data, legacy_options);
  legacy.AnswerBatch(warmup);
  const uint64_t legacy_before = executor_stats::ThreadsSpawned();
  legacy.AnswerBatch(small);
  EXPECT_GE(executor_stats::ThreadsSpawned(),
            legacy_before +
                static_cast<uint64_t>(small.size()) *
                    static_cast<uint64_t>(options.query_options.num_threads));
}

// ------------------------------------------------- AnswerStream online path

TEST(AnswerStreamExecutorTest, OnlineAdmissionMatchesBatchAnswers) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 313);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 1.5, 315);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;
  options.stream_max_inflight = 2;
  OdysseyCluster cluster(data, options);

  // Spread arrivals so later queries are genuinely prepared while earlier
  // ones execute.
  std::vector<double> arrivals(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    arrivals[q] = 1e-4 * static_cast<double>(q);
  }
  // The overlap gauge samples `executing_queries` around each admission,
  // so on a heavily loaded machine every admission can legitimately land
  // in a gap where nothing is mid-execution and the gauge reads zero. The
  // invariant checks run on every attempt; only the timing-sensitive
  // overlap expectation gets a bounded retry.
  BatchReport stream;
  for (int attempt = 0; attempt < 5; ++attempt) {
    summary_stats::Reset();
    stream = cluster.AnswerStream(queries, arrivals);
    // Arrival-time preparation still summarizes each query exactly once.
    EXPECT_EQ(summary_stats::PaaCalls(), queries.size());
    EXPECT_EQ(summary_stats::SaxCalls(), queries.size());
    EXPECT_GE(stream.queries_in_flight_hwm, 1);
    EXPECT_LE(stream.queries_in_flight_hwm, options.stream_max_inflight);
    if (stream.prep_overlap_seconds > 0.0) break;
  }
  // Admissions after the first overlapped with execution in at least one
  // attempt.
  EXPECT_GT(stream.prep_overlap_seconds, 0.0);

  const BatchReport batch = cluster.AnswerBatch(queries);
  ASSERT_EQ(stream.answers.size(), batch.answers.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(stream.answers[q].size(), batch.answers[q].size())
        << "query " << q;
    for (size_t i = 0; i < stream.answers[q].size(); ++i) {
      EXPECT_EQ(stream.answers[q][i].squared_distance,
                batch.answers[q][i].squared_distance)
          << "query " << q << " rank " << i;
      EXPECT_EQ(stream.answers[q][i].id, batch.answers[q][i].id)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(AnswerStreamExecutorTest, ConcurrentInFlightMatchesSerialInFlight) {
  const SeriesCollection data = GenerateRandomWalk(1000, 64, 317);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 319);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.query_options.num_threads = 4;
  options.query_options.k = 2;
  OdysseyCluster cluster(data, options);
  const std::vector<double> arrivals(queries.size(), 0.0);

  options.stream_max_inflight = 1;
  OdysseyCluster serial_cluster(data, options);
  const BatchReport serial = serial_cluster.AnswerStream(queries, arrivals);
  const BatchReport concurrent = cluster.AnswerStream(queries, arrivals);
  ASSERT_EQ(concurrent.answers.size(), serial.answers.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(concurrent.answers[q].size(), serial.answers[q].size());
    for (size_t i = 0; i < concurrent.answers[q].size(); ++i) {
      EXPECT_EQ(concurrent.answers[q][i].squared_distance,
                serial.answers[q][i].squared_distance)
          << "query " << q << " rank " << i;
      EXPECT_EQ(concurrent.answers[q][i].id, serial.answers[q][i].id)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(AnswerStreamExecutorTest, StreamAnswersAreExact) {
  const SeriesCollection data = GenerateSeismicLike(1200, 64, 321);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.5, 323);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;
  options.stream_max_inflight = 3;
  OdysseyCluster cluster(data, options);
  std::vector<double> arrivals(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    arrivals[q] = 5e-5 * static_cast<double>(q);
  }
  const BatchReport report = cluster.AnswerStream(queries, arrivals);
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto exact = testing_utils::BruteForceKnn(data, queries.data(q), 3);
    ASSERT_EQ(report.answers[q].size(), exact.size()) << "query " << q;
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_TRUE(testing_utils::NearlyEqual(
          report.answers[q][i].squared_distance, exact[i].squared_distance))
          << "query " << q << " rank " << i;
    }
  }
}

// ----------------------------------------------- epoch reuse across batches

TEST(ExecutorEpochTest, RepeatedBatchesAndStreamsReuseTheExecutor) {
  const SeriesCollection data = GenerateRandomWalk(800, 64, 325);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.0, 327);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);

  const BatchReport first = cluster.AnswerBatch(queries);
  const uint64_t after_first = executor_stats::ThreadsSpawned();
  // Batches and streams alternate on the same persistent executor; answers
  // stay identical run over run and no further threads appear.
  for (int round = 0; round < 3; ++round) {
    const BatchReport again = cluster.AnswerBatch(queries);
    ASSERT_EQ(again.answers.size(), first.answers.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(again.answers[q].size(), first.answers[q].size());
      for (size_t i = 0; i < again.answers[q].size(); ++i) {
        EXPECT_EQ(again.answers[q][i].squared_distance,
                  first.answers[q][i].squared_distance);
        EXPECT_EQ(again.answers[q][i].id, first.answers[q][i].id);
      }
    }
    const BatchReport stream = cluster.AnswerStream(
        queries, std::vector<double>(queries.size(), 0.0));
    ASSERT_EQ(stream.answers.size(), first.answers.size());
  }
  // The stream prep thread is the only per-call spawn left (one per
  // AnswerStream; batches add zero).
  EXPECT_EQ(executor_stats::ThreadsSpawned(), after_first + 3);
}

// ----------------------------------------------------- hot-path purity

// Steady-state purity on the real executor: NodeRuntime::WarmExecutorScratch
// pins one sizing task per pool worker when the executor is created, so the
// first AnswerBatch runs with every worker's QueryScratch / DtwScratch
// already at its high-water mark and the second batch's scoring phases must
// allocate nothing. Covers both the per-query path and the grouped
// (batched-scoring) path; work stealing stays off so each node's hot work
// is exactly its static share.
TEST(HotPathPurityTest, SteadyStateExecutorBatchIsAllocationFree) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 411);
  const SeriesCollection warm_queries = GenerateUniformQueries(data, 8, 1.0, 413);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 417);

  for (const bool batched : {false, true}) {
    OdysseyOptions options;
    options.num_nodes = 2;
    options.num_groups = 1;
    options.index_options = TestIndexOptions();
    options.scheduling = SchedulingPolicy::kStatic;
    options.worksteal.enabled = false;
    options.use_executor = true;
    options.batched_scoring = batched;
    options.query_options.num_threads = 2;
    options.query_options.k = 3;
    OdysseyCluster cluster(data, options);

    // Warm-up epoch: heats the (already pre-sized) worker scratch and any
    // lazy one-shot initialization the allowlist documents (kernel-table
    // resolution, breakpoint singleton).
    const BatchReport warm = cluster.AnswerBatch(warm_queries);
    ASSERT_EQ(warm.answers.size(), warm_queries.size());

    testing_utils::ResetHotAllocations();
    const BatchReport report = cluster.AnswerBatch(queries);
    ASSERT_EQ(report.answers.size(), queries.size());
    EXPECT_EQ(testing_utils::HotAllocations(), 0u)
        << (batched ? "batched" : "per-query");

    // The purity assertion must not come at the cost of correctness:
    // answers still match the exhaustive scan.
    for (size_t q = 0; q < queries.size(); ++q) {
      const auto exact = testing_utils::BruteForceKnn(data, queries.data(q), 3);
      ASSERT_EQ(report.answers[q].size(), exact.size()) << "query " << q;
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_TRUE(testing_utils::NearlyEqual(
            report.answers[q][i].squared_distance, exact[i].squared_distance))
            << "query " << q << " rank " << i;
      }
    }
  }
}

}  // namespace
}  // namespace odyssey
