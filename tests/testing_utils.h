#ifndef ODYSSEY_TESTS_TESTING_UTILS_H_
#define ODYSSEY_TESTS_TESTING_UTILS_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/dataset/series_collection.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/index/query_engine.h"

namespace odyssey {
namespace testing_utils {

/// Exact k-NN by exhaustive scan (squared Euclidean), the ground truth every
/// index / distributed configuration must reproduce.
inline std::vector<Neighbor> BruteForceKnn(const SeriesCollection& data,
                                           const float* query, int k) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.push_back({SquaredEuclidean(query, data.data(i), data.length()),
                   static_cast<uint32_t>(i)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.id < b.id;
  });
  if (all.size() > static_cast<size_t>(k)) all.resize(k);
  return all;
}

/// Exact k-NN by exhaustive scan under banded DTW.
inline std::vector<Neighbor> BruteForceKnnDtw(const SeriesCollection& data,
                                              const float* query, int k,
                                              size_t window) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.push_back({SquaredDtw(query, data.data(i), data.length(), window),
                   static_cast<uint32_t>(i)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.id < b.id;
  });
  if (all.size() > static_cast<size_t>(k)) all.resize(k);
  return all;
}

/// Relative FP tolerance for comparing squared distances computed by
/// different summation orders (SIMD vs scalar vs early-abandon blocks).
inline bool NearlyEqual(float a, float b, float rel = 1e-4f) {
  const float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel * scale;
}

}  // namespace testing_utils
}  // namespace odyssey

#endif  // ODYSSEY_TESTS_TESTING_UTILS_H_
