#ifndef ODYSSEY_TESTS_TESTING_UTILS_H_
#define ODYSSEY_TESTS_TESTING_UTILS_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/dataset/series_collection.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/index/query_engine.h"
#include "src/index/tree.h"

namespace odyssey {
namespace testing_utils {

/// Deep structural equality of two index subtrees: same words, same split
/// segments, same leaf payloads (ids and SAX rows) in the same order. This
/// is the replica bit-identity Odyssey's data-free work-stealing relies on,
/// and what "shared-chunk builds equal legacy copy builds" means.
inline bool NodesIdentical(const TreeNode* a, const TreeNode* b) {
  if (a->word().symbols != b->word().symbols ||
      a->word().bits != b->word().bits ||
      a->subtree_size() != b->subtree_size() ||
      a->is_leaf() != b->is_leaf()) {
    return false;
  }
  if (a->is_leaf()) {
    if (a->ids() != b->ids()) return false;
    const size_t w = a->word().symbols.size();
    for (size_t i = 0; i < a->ids().size(); ++i) {
      for (size_t s = 0; s < w; ++s) {
        if (a->leaf_sax(i)[s] != b->leaf_sax(i)[s]) return false;
      }
    }
    return true;
  }
  return a->split_segment() == b->split_segment() &&
         NodesIdentical(a->left(), b->left()) &&
         NodesIdentical(a->right(), b->right());
}

inline bool TreesIdentical(const IndexTree& a, const IndexTree& b) {
  if (a.root_count() != b.root_count()) return false;
  for (size_t r = 0; r < a.root_count(); ++r) {
    if (a.root_key(r) != b.root_key(r)) return false;
    if (!NodesIdentical(a.root(r), b.root(r))) return false;
  }
  return true;
}

/// Exact k-NN by exhaustive scan (squared Euclidean), the ground truth every
/// index / distributed configuration must reproduce.
inline std::vector<Neighbor> BruteForceKnn(const SeriesCollection& data,
                                           const float* query, int k) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.push_back({SquaredEuclidean(query, data.data(i), data.length()),
                   static_cast<uint32_t>(i)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.id < b.id;
  });
  if (all.size() > static_cast<size_t>(k)) all.resize(k);
  return all;
}

/// Exact k-NN by exhaustive scan under banded DTW.
inline std::vector<Neighbor> BruteForceKnnDtw(const SeriesCollection& data,
                                              const float* query, int k,
                                              size_t window) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.push_back({SquaredDtw(query, data.data(i), data.length(), window),
                   static_cast<uint32_t>(i)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.id < b.id;
  });
  if (all.size() > static_cast<size_t>(k)) all.resize(k);
  return all;
}

/// Relative FP tolerance for comparing squared distances computed by
/// different summation orders (SIMD vs scalar vs early-abandon blocks).
inline bool NearlyEqual(float a, float b, float rel = 1e-4f) {
  const float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= rel * scale;
}

}  // namespace testing_utils
}  // namespace odyssey

// ---------------------------------------------------------------------------
// Hot-region counting allocator
// ---------------------------------------------------------------------------
//
// Define ODYSSEY_TESTING_COUNT_ALLOCATIONS before including this header to
// replace the global operator new/delete with versions that count every
// allocation made while the calling thread is inside a
// hotpath::ScopedHotRegion (src/common/hotpath.h) — the dynamic backstop
// behind tools/check_hot_paths.py's static guarantee. Replacement is
// program-wide, so define the macro in exactly one TU per binary; the test
// suites are single-TU executables, which makes that the including test
// itself. The C++17 aligned overloads are deliberately not replaced: the
// hot paths allocate nothing over-aligned, and the default aligned
// operators remain available for anything else.
#if defined(ODYSSEY_TESTING_COUNT_ALLOCATIONS)

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/common/hotpath.h"

namespace odyssey {
namespace testing_utils {

inline std::atomic<uint64_t> g_hot_allocations{0};

/// Allocations observed inside hot regions since the last reset. Anything
/// above zero at steady state is a purity violation the static checker
/// missed (or an ODYSSEY_HOT_ALLOWS claim that turned out to be false).
inline uint64_t HotAllocations() {
  return g_hot_allocations.load(std::memory_order_relaxed);
}

inline void ResetHotAllocations() {
  g_hot_allocations.store(0, std::memory_order_relaxed);
}

inline void* CountingAllocate(std::size_t size) {
  if (odyssey::hotpath::InHotRegion()) {
    g_hot_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace testing_utils
}  // namespace odyssey

// GCC pairs these replacements up at inlined call sites and warns that
// std::free releases memory from operator new; the pairing is intentional
// (new is malloc-backed precisely so delete can be free-backed).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  void* p = odyssey::testing_utils::CountingAllocate(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = odyssey::testing_utils::CountingAllocate(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return odyssey::testing_utils::CountingAllocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return odyssey::testing_utils::CountingAllocate(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // ODYSSEY_TESTING_COUNT_ALLOCATIONS

#endif  // ODYSSEY_TESTS_TESTING_UTILS_H_
