// Tests for the extension features (approximate mode, k-NN + DTW combined
// with stealing) and boundary conditions (k > chunk, fewer queries than
// nodes, tiny chunks), plus a randomized exactness fuzz sweep.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/common/rng.h"
#include "src/core/driver.h"
#include "src/index/serialize.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "src/index/query_engine.h"
#include "tests/testing_utils.h"

namespace odyssey {
namespace {

using testing_utils::BruteForceKnn;
using testing_utils::BruteForceKnnDtw;
using testing_utils::NearlyEqual;

IndexOptions TestIndexOptions(size_t length = 64) {
  IndexOptions options;
  options.config = IsaxConfig(length, 8);
  options.leaf_capacity = 32;
  return options;
}

// ------------------------------------------------------ Approximate mode

TEST(ApproximateModeTest, NeverBeatsExactAndOftenMatches) {
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 103);
  const Index index = Index::Build(SeriesCollection(data), TestIndexOptions());
  const SeriesCollection queries = GenerateUniformQueries(data, 20, 0.05, 105);
  int exact_hits = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.approximate = true;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), qo);
    QueryExecution exec(&index, prepared, qo);
    exec.SeedInitialBsf();
    exec.Run();
    const auto got = exec.results().SortedResults();
    ASSERT_EQ(got.size(), 1u);
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    EXPECT_GE(got[0].squared_distance * (1 + 1e-5f), exact);
    exact_hits += NearlyEqual(got[0].squared_distance, exact);
  }
  // iSAX approximate search is known to be accurate for low-noise queries:
  // a majority of answers should already be exact.
  EXPECT_GE(exact_hits, 10);
}

TEST(ApproximateModeTest, MemberQueryIsFoundExactly) {
  const SeriesCollection data = GenerateRandomWalk(1000, 64, 107);
  const Index index = Index::Build(SeriesCollection(data), TestIndexOptions());
  for (uint32_t probe : {3u, 500u, 999u}) {
    QueryOptions qo;
    qo.approximate = true;
    const PreparedQuery prepared =
        PrepareQuery(data.data(probe), index.config(), qo);
    QueryExecution exec(&index, prepared, qo);
    exec.SeedInitialBsf();
    exec.Run();
    EXPECT_EQ(exec.results().SortedResults()[0].squared_distance, 0.0f);
  }
}

TEST(ApproximateModeTest, KnnFillsFromBestLeaf) {
  const SeriesCollection data = GenerateRandomWalk(3000, 64, 109);
  IndexOptions options = TestIndexOptions();
  options.leaf_capacity = 64;
  const Index index = Index::Build(SeriesCollection(data), options);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 0.5, 111);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.approximate = true;
    qo.k = 10;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), qo);
    QueryExecution exec(&index, prepared, qo);
    exec.SeedInitialBsf();
    exec.Run();
    const auto got = exec.results().SortedResults();
    EXPECT_GE(got.size(), 1u);
    EXPECT_LE(got.size(), 10u);
    // Candidates are sorted and every one lower-bounds nothing (they are
    // real distances, so each must be >= the true i-th neighbor distance).
    const auto exact = BruteForceKnn(data, queries.data(q), 10);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_GE(got[i].squared_distance * (1 + 1e-5f),
                exact[i].squared_distance);
      if (i > 0) {
        EXPECT_GE(got[i].squared_distance, got[i - 1].squared_distance);
      }
    }
  }
}

TEST(ApproximateModeTest, DistributedApproximateIsValidUpperBound) {
  const SeriesCollection data = GenerateSeismicLike(2000, 64, 113);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 0.5, 115);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.query_options.approximate = true;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  ASSERT_EQ(report.answers.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    ASSERT_FALSE(report.answers[q].empty());
    EXPECT_GE(report.answers[q][0].squared_distance * (1 + 1e-5f), exact);
  }
}

// -------------------------------------------------------- Boundary cases

TEST(BoundaryTest, KLargerThanCollectionReturnsEverything) {
  const SeriesCollection data = GenerateRandomWalk(40, 64, 117);
  const Index index = Index::Build(SeriesCollection(data), TestIndexOptions());
  const SeriesCollection queries = GenerateUniformQueries(data, 2, 1.0, 119);
  QueryOptions qo;
  qo.k = 100;  // more than the 40 series available
  const PreparedQuery prepared =
      PrepareQuery(queries.data(0), index.config(), qo);
  QueryExecution exec(&index, prepared, qo);
  exec.SeedInitialBsf();
  exec.Run();
  const auto got = exec.results().SortedResults();
  EXPECT_EQ(got.size(), 40u);
  const auto exact = BruteForceKnn(data, queries.data(0), 40);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(
        NearlyEqual(got[i].squared_distance, exact[i].squared_distance));
  }
}

TEST(BoundaryTest, FewerQueriesThanNodes) {
  const SeriesCollection data = GenerateRandomWalk(800, 64, 121);
  const SeriesCollection queries = GenerateUniformQueries(data, 2, 1.0, 123);
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kStatic, SchedulingPolicy::kDynamic,
        SchedulingPolicy::kPredictDynamic}) {
    OdysseyOptions options;
    options.num_nodes = 6;
    options.num_groups = 1;
    options.index_options = TestIndexOptions();
    options.scheduling = policy;
    OdysseyCluster cluster(data, options);
    const BatchReport report = cluster.AnswerBatch(queries);
    ASSERT_EQ(report.answers.size(), 2u);
    for (size_t q = 0; q < queries.size(); ++q) {
      const float exact =
          BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
      EXPECT_TRUE(
          NearlyEqual(report.answers[q][0].squared_distance, exact))
          << SchedulingPolicyToString(policy);
    }
  }
}

TEST(BoundaryTest, SingleQuerySingleNode) {
  const SeriesCollection data = GenerateRandomWalk(300, 64, 125);
  const SeriesCollection queries = GenerateUniformQueries(data, 1, 1.0, 127);
  OdysseyOptions options;
  options.num_nodes = 1;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  const float exact =
      BruteForceKnn(data, queries.data(0), 1)[0].squared_distance;
  EXPECT_TRUE(NearlyEqual(report.answers[0][0].squared_distance, exact));
}

TEST(BoundaryTest, ChunkSmallerThanLeafCapacity) {
  const SeriesCollection data = GenerateRandomWalk(64, 64, 129);
  IndexOptions options = TestIndexOptions();
  options.leaf_capacity = 1024;  // the whole chunk fits in root leaves
  const Index index = Index::Build(SeriesCollection(data), options);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 2.0, 131);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.num_threads = 2;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), qo);
    QueryExecution exec(&index, prepared, qo);
    exec.SeedInitialBsf();
    exec.Run();
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    EXPECT_TRUE(NearlyEqual(
        exec.results().SortedResults()[0].squared_distance, exact));
  }
}

TEST(BoundaryTest, LeafCapacityOneStillExact) {
  const SeriesCollection data = GenerateRandomWalk(300, 64, 133);
  IndexOptions options = TestIndexOptions();
  options.leaf_capacity = 1;  // maximally deep tree, oversized leaves at
                              // full refinement
  const Index index = Index::Build(SeriesCollection(data), options);
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.5, 135);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.num_threads = 2;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), index.config(), qo);
    QueryExecution exec(&index, prepared, qo);
    exec.SeedInitialBsf();
    exec.Run();
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    EXPECT_TRUE(NearlyEqual(
        exec.results().SortedResults()[0].squared_distance, exact));
  }
}

// ----------------------------------------- Combined extensions + stealing

TEST(CombinedTest, KnnDtwDistributedWithStealing) {
  const SeriesCollection data = GenerateSeismicLike(700, 64, 137);
  const SeriesCollection queries = GenerateUniformQueries(data, 4, 1.0, 139);
  const size_t window = WarpingWindowFromFraction(64, 0.05);
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kDynamic;
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  options.query_options.k = 3;
  options.query_options.use_dtw = true;
  options.query_options.dtw_window = window;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto exact = BruteForceKnnDtw(data, queries.data(q), 3, window);
    ASSERT_EQ(report.answers[q].size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_TRUE(NearlyEqual(report.answers[q][i].squared_distance,
                              exact[i].squared_distance))
          << "query " << q << " rank " << i;
    }
  }
}

// --------------------------------------------------------- Fuzz sweeps

class FuzzExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzExactnessTest, RandomConfigurationIsExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t length = 32 + 16 * rng.NextBounded(6);        // 32..112
  const size_t count = 400 + rng.NextBounded(1200);          // 400..1600
  const int segments = 4 + static_cast<int>(rng.NextBounded(8));  // 4..11
  const int nodes_pool[] = {1, 2, 3, 4, 6};
  const int nodes = nodes_pool[rng.NextBounded(5)];
  std::vector<int> divisors;
  for (int g = 1; g <= nodes; ++g) {
    if (nodes % g == 0) divisors.push_back(g);
  }
  const int groups = divisors[rng.NextBounded(divisors.size())];

  SeriesCollection data = (seed % 2 == 0)
                              ? GenerateRandomWalk(count, length, seed)
                              : GenerateSeismicLike(count, length, seed);
  const SeriesCollection queries =
      GenerateUniformQueries(data, 4, 0.2 + 2.0 * rng.NextDouble(), seed + 1);

  OdysseyOptions options;
  options.num_nodes = nodes;
  options.num_groups = groups;
  options.index_options.config = IsaxConfig(length, segments);
  options.index_options.leaf_capacity = 8 + rng.NextBounded(120);
  options.partitioning = static_cast<PartitioningScheme>(rng.NextBounded(3));
  options.scheduling = static_cast<SchedulingPolicy>(rng.NextBounded(5));
  options.worksteal.enabled = rng.NextBounded(2) == 1;
  options.query_options.num_threads = 1 + static_cast<int>(rng.NextBounded(3));
  options.query_options.k = 1 + static_cast<int>(rng.NextBounded(4));
  options.query_options.queue_threshold = rng.NextBounded(2) ? 16 : 0;
  options.seed = seed;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerBatch(queries);
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto exact =
        BruteForceKnn(data, queries.data(q), options.query_options.k);
    ASSERT_EQ(report.answers[q].size(), exact.size()) << "seed " << seed;
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_TRUE(NearlyEqual(report.answers[q][i].squared_distance,
                              exact[i].squared_distance))
          << "seed " << seed << " query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExactnessTest,
                         ::testing::Range<uint64_t>(1000, 1016));

// --------------------------------------------------------- Serialization

std::string FingerprintTree(const TreeNode* node) {
  if (node->is_leaf()) {
    std::string out = "L(" + node->word().ToString() + ":";
    for (uint32_t id : node->ids()) out += std::to_string(id) + ",";
    return out + ")";
  }
  return "I(" + node->word().ToString() + "#" +
         std::to_string(node->split_segment()) +
         FingerprintTree(node->left()) + FingerprintTree(node->right()) + ")";
}

TEST(SerializeTest, RoundTripIsBitIdentical) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 141);
  const Index built = Index::Build(SeriesCollection(data), TestIndexOptions());
  const std::string path = ::testing::TempDir() + "/odyssey_index.odix";
  ASSERT_TRUE(SaveIndexToFile(built, path).ok());
  StatusOr<Index> loaded = LoadIndexFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->data().size(), built.data().size());
  ASSERT_EQ(loaded->tree().root_count(), built.tree().root_count());
  for (size_t r = 0; r < built.tree().root_count(); ++r) {
    ASSERT_EQ(loaded->tree().root_key(r), built.tree().root_key(r));
    ASSERT_EQ(FingerprintTree(loaded->tree().root(r)),
              FingerprintTree(built.tree().root(r)));
  }
  // The loaded index answers queries exactly.
  const SeriesCollection queries = GenerateUniformQueries(data, 5, 1.5, 143);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.num_threads = 2;
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), loaded->config(), qo);
    QueryExecution exec(&*loaded, prepared, qo);
    exec.SeedInitialBsf();
    exec.Run();
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    EXPECT_TRUE(NearlyEqual(
        exec.results().SortedResults()[0].squared_distance, exact));
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadedIndexIsAValidStealReplica) {
  // A node that loads a snapshot must be able to run RS-batches stolen from
  // a node that built the same chunk from scratch.
  const SeriesCollection data = GenerateSeismicLike(1200, 64, 145);
  const Index built = Index::Build(SeriesCollection(data), TestIndexOptions());
  const std::string path = ::testing::TempDir() + "/odyssey_replica.odix";
  ASSERT_TRUE(SaveIndexToFile(built, path).ok());
  StatusOr<Index> loaded = LoadIndexFromFile(path);
  ASSERT_TRUE(loaded.ok());
  const SeriesCollection queries = GenerateUniformQueries(data, 3, 2.0, 147);
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryOptions qo;
    qo.num_threads = 2;
    qo.num_batches = 8;
    // Thief and victim share the prepared artifact, as on a real steal.
    const PreparedQuery prepared =
        PrepareQuery(queries.data(q), built.config(), qo);
    QueryExecution victim(&built, prepared, qo);
    QueryExecution thief(&*loaded, prepared, qo);
    victim.SeedInitialBsf();
    thief.SeedInitialBsf();
    std::vector<int> va, th;
    for (int b = 0; b < 8; ++b) (b < 4 ? va : th).push_back(b);
    victim.RunBatchSubset(va);
    thief.RunBatchSubset(th);
    float best = std::numeric_limits<float>::infinity();
    for (const auto& n : victim.results().SortedResults()) {
      best = std::min(best, n.squared_distance);
    }
    for (const auto& n : thief.results().SortedResults()) {
      best = std::min(best, n.squared_distance);
    }
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    EXPECT_TRUE(NearlyEqual(best, exact)) << "query " << q;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(LoadIndexFromFile("/nonexistent/index.odix").ok());
  const std::string path = ::testing::TempDir() + "/odyssey_corrupt.odix";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = {'X'};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  const StatusOr<Index> result = LoadIndexFromFile(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileFailsCleanly) {
  const SeriesCollection data = GenerateRandomWalk(400, 64, 149);
  const Index built = Index::Build(SeriesCollection(data), TestIndexOptions());
  const std::string path = ::testing::TempDir() + "/odyssey_trunc.odix";
  ASSERT_TRUE(SaveIndexToFile(built, path).ok());
  // Truncate to 60% and expect a clean error (no crash, no partial index).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full * 6 / 10), 0);
  const StatusOr<Index> result = LoadIndexFromFile(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- Streaming

TEST(StreamingTest, DynamicallyArrivingQueriesStayExact) {
  const SeriesCollection data = GenerateSeismicLike(1500, 64, 151);
  const SeriesCollection queries = GenerateUniformQueries(data, 10, 1.5, 153);
  std::vector<double> arrivals;
  for (size_t q = 0; q < queries.size(); ++q) {
    arrivals.push_back(0.004 * static_cast<double>(q));  // 4 ms apart
  }
  OdysseyOptions options;
  options.num_nodes = 4;
  options.num_groups = 2;
  options.index_options = TestIndexOptions();
  options.worksteal.enabled = true;
  options.query_options.num_threads = 2;
  OdysseyCluster cluster(data, options);
  const BatchReport report = cluster.AnswerStream(queries, arrivals);
  ASSERT_EQ(report.answers.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const float exact =
        BruteForceKnn(data, queries.data(q), 1)[0].squared_distance;
    EXPECT_TRUE(NearlyEqual(report.answers[q][0].squared_distance, exact))
        << "query " << q;
  }
  // The stream cannot finish before its last arrival.
  EXPECT_GE(report.query_seconds, arrivals.back());
}

TEST(StreamingTest, AllAtOnceStreamEqualsBatch) {
  const SeriesCollection data = GenerateRandomWalk(800, 64, 155);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 157);
  OdysseyOptions options;
  options.num_nodes = 2;
  options.num_groups = 1;
  options.index_options = TestIndexOptions();
  options.scheduling = SchedulingPolicy::kDynamic;
  OdysseyCluster cluster(data, options);
  const BatchReport stream =
      cluster.AnswerStream(queries, std::vector<double>(queries.size(), 0.0));
  const BatchReport batch = cluster.AnswerBatch(queries);
  ASSERT_EQ(stream.answers.size(), batch.answers.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(NearlyEqual(stream.answers[q][0].squared_distance,
                            batch.answers[q][0].squared_distance));
    EXPECT_EQ(stream.answers[q][0].id, batch.answers[q][0].id);
  }
}

}  // namespace
}  // namespace odyssey
