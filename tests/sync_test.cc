// Tests for the annotated locking layer (src/common/sync.h): the wrappers
// must behave exactly like the std primitives they forward to (the
// annotations are compile-time only), CountedThread must make
// executor_stats::ThreadsSpawned honest by construction, and the
// ChunkPrefetcher accounting regression must stay fixed.

#include "src/common/sync.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/summary_stats.h"
#include "src/dataset/file_io.h"
#include "src/dataset/generators.h"
#include "src/dataset/ingest.h"

namespace odyssey {
namespace {

// The annotation macros must compile — and cost nothing — on every
// compiler. On GCC they expand to nothing; on Clang this class is also a
// minimal analysis input. Instantiated in MacrosCompileAndGuard below.
class ODYSSEY_CAPABILITY("mutex") AnnotatedCounter {
 public:
  void Add(int n) ODYSSEY_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    AddLocked(n);
  }
  int value() const ODYSSEY_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  void AddLocked(int n) ODYSSEY_REQUIRES(mu_) { value_ += n; }

  mutable Mutex mu_;
  int value_ ODYSSEY_GUARDED_BY(mu_) = 0;
};

TEST(SyncTest, MacrosCompileAndGuard) {
  AnnotatedCounter counter;
  counter.Add(41);
  counter.Add(1);
  EXPECT_EQ(counter.value(), 42);
}

TEST(SyncTest, MutexExcludes) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // non-recursive, like std::mutex
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, MutexLockIsScoped) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    EXPECT_FALSE(mu.TryLock());
  }
  EXPECT_TRUE(mu.TryLock());  // released at scope exit
  mu.Unlock();
}

TEST(SyncTest, CondVarSignalWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  CountedThread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = 1;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.Join();
  EXPECT_EQ(observed, 1);
}

TEST(SyncTest, WaitForReturnsTrueOnTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // Nothing ever signals: the wait must report a timeout (absl
  // convention: true = deadline passed) and re-hold the mutex.
  EXPECT_TRUE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));
  EXPECT_FALSE(mu.TryLock());  // still held by this scope
}

TEST(SyncTest, WaitUntilHonorsEarlySignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  CountedThread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  {
    MutexLock lock(&mu);
    bool timed_out = false;
    while (!ready && !timed_out) timed_out = cv.WaitUntil(&mu, deadline);
    EXPECT_TRUE(ready);  // woke by signal, nowhere near the deadline
  }
  signaler.Join();
}

TEST(SyncTest, ProducerConsumerThroughWrappers) {
  // A bounded queue exercising the full Mutex/CondVar surface under real
  // contention — also the suite TSan chews on in the sanitize-thread job.
  constexpr int kItems = 2000;
  constexpr size_t kCapacity = 8;
  Mutex mu;
  CondVar not_full, not_empty;
  std::deque<int> queue;
  long long sum = 0;
  CountedThread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      MutexLock lock(&mu);
      while (queue.size() >= kCapacity) not_full.Wait(&mu);
      queue.push_back(i);
      not_empty.Signal();
    }
  });
  CountedThread consumer([&] {
    for (int n = 0; n < kItems; ++n) {
      MutexLock lock(&mu);
      while (queue.empty()) not_empty.Wait(&mu);
      sum += queue.front();
      queue.pop_front();
      not_full.Signal();
    }
  });
  producer.Join();
  consumer.Join();
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(SyncTest, CountedThreadCountsEverySpawn) {
  executor_stats::Reset();
  std::atomic<int> ran{0};
  {
    std::vector<CountedThread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&ran] { ran.fetch_add(1); });
    }
    for (auto& t : threads) t.Join();
  }
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 3u);
}

TEST(SyncTest, DefaultConstructedCountsNothing) {
  executor_stats::Reset();
  CountedThread empty;
  EXPECT_FALSE(empty.joinable());
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 0u);
}

TEST(SyncTest, MoveTransfersOwnershipWithoutRecount) {
  executor_stats::Reset();
  CountedThread a([] {});
  CountedThread b = std::move(a);
  EXPECT_FALSE(a.joinable());
  EXPECT_TRUE(b.joinable());
  b.Join();
  // One spawn, one count — the move is not a second spawn.
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 1u);
}

// Regression: the ChunkPrefetcher's background puller used to be spawned
// with a raw std::thread, invisible to ThreadsSpawned — understating the
// streaming build's thread cost by one per prefetcher. CountedThread now
// makes the spawn visible by construction.
TEST(SyncTest, ChunkPrefetcherSpawnIsCounted) {
  const std::string path =
      testing::TempDir() + "/sync_test_prefetch.raw";
  const SeriesCollection data = GenerateRandomWalk(64, 32, /*seed=*/7);
  ASSERT_TRUE(WriteRawFloats(data, path).ok());

  IngestOptions options;
  options.format = DataFormat::kRawFloat;
  options.length = 32;
  options.chunk_size = 16;
  StatusOr<SeriesIngestor> source = SeriesIngestor::Open(path, options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  executor_stats::Reset();
  {
    ChunkPrefetcher prefetcher(&*source);
    EXPECT_EQ(executor_stats::ThreadsSpawned(), 1u);
    size_t series_seen = 0;
    for (;;) {
      StatusOr<SeriesCollection> chunk = prefetcher.Next();
      ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
      if (chunk->empty()) break;
      series_seen += chunk->size();
    }
    EXPECT_EQ(series_seen, 64u);
  }
  // Destruction joins; no extra spawns appeared.
  EXPECT_EQ(executor_stats::ThreadsSpawned(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace odyssey
