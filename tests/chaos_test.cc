#include <gtest/gtest.h>

// Deterministic chaos suite: sweeps seeded fault plans (message drops,
// delays, duplicates, reorders, and mid-batch node kills) over real
// deployments and asserts the answers stay bit-exact against a fault-free
// run of the same cluster. Every plan is derived from a printable seed;
// a failing sweep names the seed so one command reproduces it:
//
//   ODYSSEY_CHAOS_SEED=<seed> ODYSSEY_CHAOS_ITERS=1
//       ./chaos_test --gtest_filter=<failing test>
//
// Environment (see README's registry): ODYSSEY_CHAOS_SEED overrides the
// per-test base seed, ODYSSEY_CHAOS_ITERS overrides every sweep's plan
// count, ODYSSEY_CHAOS_BUDGET_SECONDS soft-stops sweeping when the suite
// has run that long (sanitizer CI legs use it; 0/unset = run everything).

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/summary_stats.h"
#include "src/core/driver.h"
#include "src/dataset/generators.h"
#include "src/dataset/workload.h"
#include "src/distance/dtw.h"
#include "src/net/fault_plan.h"

namespace odyssey {
namespace {

// ------------------------------------------------------------ environment

uint64_t EnvSeedOr(uint64_t fallback) {
  const char* env = std::getenv("ODYSSEY_CHAOS_SEED");
  return (env != nullptr && *env != '\0')
             ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10))
             : fallback;
}

int EnvItersOr(int fallback) {
  const char* env = std::getenv("ODYSSEY_CHAOS_ITERS");
  return (env != nullptr && *env != '\0') ? std::atoi(env) : fallback;
}

double BudgetSeconds() {
  const char* env = std::getenv("ODYSSEY_CHAOS_BUDGET_SECONDS");
  return (env != nullptr && *env != '\0') ? std::atof(env) : 0.0;
}

/// Suite-wide wall clock for the budget soft-stop.
Stopwatch& SuiteClock() {
  static Stopwatch clock;
  return clock;
}

/// True once the suite has exhausted its wall-clock budget; sweeps then
/// stop early (loudly, so a truncated run never reads as full coverage).
bool OverBudget() {
  const double budget = BudgetSeconds();
  if (budget <= 0.0) return false;
  if (SuiteClock().ElapsedSeconds() < budget) return false;
  std::fprintf(stderr,
               "[chaos] wall-clock budget (%.0fs) exhausted; stopping the "
               "sweep early\n",
               budget);
  return true;
}

// --------------------------------------------------------------- de-flake

/// Per-plan deadline: a recovery bug that hangs a batch must fail fast with
/// a reproducible seed, never stall CTest until its global timeout. The
/// watchdog is a plain thread parked on a condition variable; the process
/// is torn down with _Exit because a hung batch holds locks that a normal
/// exit path could block on.
class PlanWatchdog {
 public:
  PlanWatchdog(uint64_t seed, double seconds)
      : thread_([this, seed, seconds] {
          std::unique_lock<std::mutex> lock(mu_);
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
          while (!disarmed_) {
            if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
                !disarmed_) {
              std::fprintf(stderr,
                           "[chaos] plan deadline (%.0fs) exceeded -- "
                           "reproduce with: ODYSSEY_CHAOS_SEED=%llu "
                           "ODYSSEY_CHAOS_ITERS=1\n",
                           seconds,
                           static_cast<unsigned long long>(seed));
              std::fflush(stderr);
              std::_Exit(2);
            }
          }
        }) {}

  ~PlanWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

constexpr double kPlanDeadlineSeconds = 120.0;  // generous for sanitizers

// ------------------------------------------------------------- plan sweep

/// Derives a full fault plan from one seed. `killable` lists the nodes a
/// kill may target (empty = fault-only plan); about half the kill-capable
/// plans actually kill, so every sweep covers both regimes.
FaultPlan PlanFromSeed(uint64_t seed, const std::vector<int>& killable) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = rng.NextDouble() * 0.5;
  plan.delay_prob = rng.NextDouble() * 0.5;
  plan.duplicate_prob = rng.NextDouble() * 0.3;
  plan.reorder_prob = rng.NextDouble() * 0.3;
  plan.max_delay = static_cast<int>(rng.NextInRange(1, 6));
  if (!killable.empty() && rng.NextDouble() < 0.5) {
    plan.dead_node =
        killable[rng.NextBounded(static_cast<uint64_t>(killable.size()))];
    plan.kill_after_sends = static_cast<int>(rng.NextInRange(1, 24));
  }
  return plan;
}

std::string ReproLine(uint64_t seed) {
  return "reproduce with: ODYSSEY_CHAOS_SEED=" + std::to_string(seed) +
         " ODYSSEY_CHAOS_ITERS=1 (same --gtest_filter)";
}

/// Bit-exactness, not tolerance: a faulty transport may reorder work but
/// must never change a single answer bit (same ids, same float bits).
void ExpectBitExact(const BatchReport& want, const BatchReport& got,
                    uint64_t seed) {
  SCOPED_TRACE(ReproLine(seed));
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  ASSERT_EQ(got.answers.size(), want.answers.size());
  for (size_t q = 0; q < want.answers.size(); ++q) {
    const QueryAnswer& w = want.answers[q];
    const QueryAnswer& g = got.answers[q];
    ASSERT_EQ(g.size(), w.size()) << "query " << q;
    for (size_t i = 0; i < w.size(); ++i) {
      if (g[i].id != w[i].id ||
          g[i].squared_distance != w[i].squared_distance) {
        // Dump both lists: whether the faulty run *lost* a candidate or
        // produced a near-tie reordering is the whole diagnosis.
        std::string dump = "query " + std::to_string(q) + " rank " +
                           std::to_string(i) + "\nwant:";
        for (const Neighbor& n : w) {
          dump += " (" + std::to_string(n.id) + ", " +
                  std::to_string(n.squared_distance) + ")";
        }
        dump += "\ngot: ";
        for (const Neighbor& n : g) {
          dump += " (" + std::to_string(n.id) + ", " +
                  std::to_string(n.squared_distance) + ")";
        }
        FAIL() << dump;
      }
    }
  }
}

struct SweepOptions {
  uint64_t base_seed = 0;
  int plans = 0;
  /// Nodes a derived plan may kill (empty = fault-only sweep). Kills
  /// require liveness detection, enabled per-plan below.
  std::vector<int> killable;
  double liveness_seconds = 0.25;
};

/// Runs `plans` derived fault plans against `cluster` and bit-compares
/// each batch against `reference`. Returns the number of plans that ran
/// (the budget soft-stop may truncate the sweep).
int SweepBatches(OdysseyCluster& cluster, const SeriesCollection& queries,
                 const BatchReport& reference, const SweepOptions& sweep) {
  const uint64_t base = EnvSeedOr(sweep.base_seed);
  const int plans = EnvItersOr(sweep.plans);
  int ran = 0;
  for (int i = 0; i < plans && !OverBudget(); ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    const FaultPlan plan = PlanFromSeed(seed, sweep.killable);
    fault_stats::Reset();  // per-plan numbers for the failure context below
    cluster.set_fault_plan(plan);
    // A killed node's kNodeTerminated never arrives, so kill plans need
    // the coordinator's liveness deadline; fault-only plans run without
    // it to also cover the detection-free recovery-free path.
    cluster.set_liveness_timeout_seconds(
        plan.dead_node >= 0 ? sweep.liveness_seconds : 0.0);
    PlanWatchdog watchdog(seed, kPlanDeadlineSeconds);
    const BatchReport report = cluster.AnswerBatch(queries);
    ExpectBitExact(reference, report, seed);
    if (::testing::Test::HasFailure()) {
      // Context that turns a bare mismatch into a diagnosis: which nodes
      // the coordinator wrote off, and what the injector actually did.
      std::string dead;
      for (int d : report.dead_nodes) dead += std::to_string(d) + " ";
      ADD_FAILURE() << "plan " << seed << ": dead_nodes=[" << dead
                    << "] killed=" << fault_stats::NodesKilled()
                    << " declared=" << fault_stats::NodesDeclaredDead()
                    << " queries_reassigned="
                    << fault_stats::QueriesReassigned()
                    << " batches_reassigned="
                    << fault_stats::BatchesReassigned()
                    << " dropped=" << fault_stats::MessagesDropped()
                    << " delayed=" << fault_stats::MessagesDelayed()
                    << " duplicated=" << fault_stats::MessagesDuplicated()
                    << " steal_timeouts=" << fault_stats::StealTimeouts();
      return ran;
    }
    if (plan.dead_node >= 0) {
      SCOPED_TRACE(ReproLine(seed));
      // The kill may not have fired (the victim can finish in fewer than
      // kill_after_sends sends), but a declared death implies the report
      // says so.
      for (int dead : report.dead_nodes) {
        EXPECT_TRUE(dead >= 0 && dead < cluster.num_nodes());
      }
    }
    ++ran;
  }
  cluster.set_fault_plan(FaultPlan());
  cluster.set_liveness_timeout_seconds(0.0);
  return ran;
}

IndexOptions TestIndexOptions() {
  IndexOptions options;
  options.config = IsaxConfig(64, 8);
  options.leaf_capacity = 32;
  return options;
}

OdysseyOptions BaseOptions(int nodes, int groups) {
  OdysseyOptions options;
  options.num_nodes = nodes;
  options.num_groups = groups;
  options.index_options = TestIndexOptions();
  options.build_threads_per_node = 2;
  options.query_options.num_threads = 2;
  return options;
}

// ------------------------------------------------------------ the sweeps

TEST(ChaosBatchTest, FullLayoutEdStaysExact) {
  const SeriesCollection data = GenerateSeismicLike(480, 64, 301);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 303);
  OdysseyOptions options = BaseOptions(4, 1);
  options.scheduling = SchedulingPolicy::kDynamic;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 31000;
  sweep.plans = 40;
  sweep.killable = {0, 1, 2, 3};  // FULL: every node's chunk is replicated
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosBatchTest, PartialLayoutEdStaysExact) {
  const SeriesCollection data = GenerateSeismicLike(512, 64, 311);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.2, 313);
  // PARTIAL-2 over 4 nodes with work-stealing: the recovery protocol's
  // hardest customer (steal grants outstanding at death).
  OdysseyOptions options = BaseOptions(4, 2);
  options.scheduling = SchedulingPolicy::kDynamic;
  options.worksteal.enabled = true;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 32000;
  sweep.plans = 48;
  sweep.killable = {0, 1, 2, 3};  // every group has two members
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosBatchTest, PartialLayoutStaticStaysExact) {
  const SeriesCollection data = GenerateRandomWalk(480, 64, 321);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 323);
  OdysseyOptions options = BaseOptions(4, 2);
  options.scheduling = SchedulingPolicy::kStatic;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 33000;
  sweep.plans = 24;
  sweep.killable = {0, 1, 2, 3};
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosBatchTest, PartialLayoutDtwStaysExact) {
  const SeriesCollection data = GenerateSeismicLike(400, 64, 331);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 333);
  OdysseyOptions options = BaseOptions(4, 2);
  options.query_options.use_dtw = true;
  options.query_options.dtw_window = WarpingWindowFromFraction(64, 0.05);
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 34000;
  sweep.plans = 24;
  sweep.killable = {0, 1, 2, 3};
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosBatchTest, PartialLayoutKnnStaysExact) {
  const SeriesCollection data = GenerateRandomWalk(512, 64, 341);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.5, 343);
  OdysseyOptions options = BaseOptions(4, 2);
  options.query_options.k = 5;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 35000;
  sweep.plans = 24;
  sweep.killable = {0, 1, 2, 3};
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosBatchTest, GroupedScoringStaysExact) {
  const SeriesCollection data = GenerateSeismicLike(480, 64, 351);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 353);
  OdysseyOptions options = BaseOptions(4, 2);
  options.batched_scoring = true;
  options.scheduling = SchedulingPolicy::kStatic;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 36000;
  sweep.plans = 24;
  sweep.killable = {0, 1, 2, 3};
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosBatchTest, GroupedDonationVictimDeathStaysExact) {
  const SeriesCollection data = GenerateSeismicLike(480, 64, 421);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 423);
  // Grouped scans with steal donation live (the PR-default config): a
  // victim may be killed after it has handed RS-batch slices to a thief,
  // so the sweep covers the donated-work-owed-to-a-dead-node corner — the
  // coordinator must re-derive the victim's queries from dispatch records
  // while the thief's donated partials deduplicate against the replay.
  OdysseyOptions options = BaseOptions(4, 2);
  options.batched_scoring = true;
  options.scheduling = SchedulingPolicy::kStatic;
  options.worksteal.enabled = true;
  ASSERT_TRUE(options.steal_donation);  // default-on: the config under test
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  SweepOptions sweep;
  sweep.base_seed = 42000;
  sweep.plans = 24;
  sweep.killable = {0, 1, 2, 3};
  EXPECT_GT(SweepBatches(cluster, queries, reference, sweep), 0);
}

TEST(ChaosStreamTest, StreamStaysExactUnderFaults) {
  const SeriesCollection data = GenerateRandomWalk(480, 64, 361);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 363);
  const std::vector<double> arrivals(queries.size(), 0.0);
  OdysseyOptions options = BaseOptions(4, 2);
  options.worksteal.enabled = true;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerStream(queries, arrivals);

  // Kills are excluded from stream plans (the online admission path's
  // failure handling beyond faults is future work, see ARCHITECTURE.md);
  // drops, delays, duplicates and reorders must all stay invisible.
  const uint64_t base = EnvSeedOr(37000);
  const int plans = EnvItersOr(24);
  for (int i = 0; i < plans && !OverBudget(); ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    const FaultPlan plan = PlanFromSeed(seed, /*killable=*/{});
    cluster.set_fault_plan(plan);
    PlanWatchdog watchdog(seed, kPlanDeadlineSeconds);
    const BatchReport report = cluster.AnswerStream(queries, arrivals);
    ExpectBitExact(reference, report, seed);
  }
}

TEST(ChaosRecoveryTest, MidBatchKillOnPartialLayoutReassignsWork) {
  const SeriesCollection data = GenerateSeismicLike(480, 64, 371);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 373);
  // Static scheduling: the victim always has dispatched queries on record,
  // so a mid-batch death must visibly reassign work, not just stay exact.
  OdysseyOptions options = BaseOptions(4, 2);
  options.scheduling = SchedulingPolicy::kStatic;
  options.liveness_timeout_seconds = 0.25;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  fault_stats::Reset();
  uint64_t kills = 0;
  // A victim owning 2 statically-assigned queries makes at least 4 sends
  // (two answers, kDone, kNodeTerminated), so killing at send 1-3 always
  // fires mid-protocol and always suppresses its kNodeTerminated: every
  // plan below must end in a death declaration.
  for (int victim : {1, 3}) {       // group 1 = {1, 3}: either may die
    for (int after : {1, 2, 3}) {   // from nearly-immediate to mid-batch
      FaultPlan plan;
      plan.seed = 38000 + static_cast<uint64_t>(victim * 10 + after);
      plan.dead_node = victim;
      plan.kill_after_sends = after;
      cluster.set_fault_plan(plan);
      PlanWatchdog watchdog(plan.seed, kPlanDeadlineSeconds);
      const BatchReport report = cluster.AnswerBatch(queries);
      ExpectBitExact(reference, report, plan.seed);
      ++kills;
    }
  }
  // The injection demonstrably fired and the protocol demonstrably worked:
  // every plan killed its victim, every kill was detected, and at least
  // one death caught unfinished work that had to move.
  EXPECT_EQ(fault_stats::NodesKilled(), kills);
  EXPECT_GE(fault_stats::NodesDeclaredDead(), kills);
  EXPECT_GT(fault_stats::QueriesReassigned() +
                fault_stats::BatchesReassigned(),
            0u);
}

TEST(ChaosRecoveryTest, EquallySplitDeathIsAnErrorNotAWrongAnswer) {
  const SeriesCollection data = GenerateRandomWalk(400, 64, 381);
  const SeriesCollection queries = GenerateUniformQueries(data, 6, 1.0, 383);
  // EQUALLY-SPLIT: one replica per chunk. A death loses coverage, and the
  // report must say so instead of returning silently incomplete answers.
  OdysseyOptions options = BaseOptions(4, 4);
  options.scheduling = SchedulingPolicy::kStatic;
  options.liveness_timeout_seconds = 0.25;
  OdysseyCluster cluster(data, options);

  for (int victim : {0, 2}) {
    FaultPlan plan;
    plan.seed = 39000 + static_cast<uint64_t>(victim);
    plan.dead_node = victim;
    plan.kill_after_sends = 1;
    cluster.set_fault_plan(plan);
    PlanWatchdog watchdog(plan.seed, kPlanDeadlineSeconds);
    const BatchReport report = cluster.AnswerBatch(queries);
    SCOPED_TRACE(ReproLine(plan.seed));
    ASSERT_FALSE(report.status.ok());
    EXPECT_NE(report.status.message().find("no longer fully covered"),
              std::string::npos)
        << report.status.ToString();
    ASSERT_EQ(report.dead_nodes.size(), 1u);
    EXPECT_EQ(report.dead_nodes[0], victim);
  }
}

TEST(ChaosStatsTest, CountersProveInjectionFired) {
  const SeriesCollection data = GenerateSeismicLike(480, 64, 391);
  const SeriesCollection queries = GenerateUniformQueries(data, 8, 1.0, 393);
  OdysseyOptions options = BaseOptions(4, 2);
  options.scheduling = SchedulingPolicy::kDynamic;
  options.worksteal.enabled = true;
  options.liveness_timeout_seconds = 0.25;
  OdysseyCluster cluster(data, options);
  const BatchReport reference = cluster.AnswerBatch(queries);

  fault_stats::Reset();
  FaultPlan plan;
  plan.seed = EnvSeedOr(40001);
  plan.drop_prob = 0.5;
  plan.delay_prob = 0.5;
  plan.duplicate_prob = 0.4;
  plan.reorder_prob = 0.4;
  plan.max_delay = 4;
  plan.dead_node = 1;
  plan.kill_after_sends = 3;
  cluster.set_fault_plan(plan);
  PlanWatchdog watchdog(plan.seed, kPlanDeadlineSeconds);
  const BatchReport report = cluster.AnswerBatch(queries);
  ExpectBitExact(reference, report, plan.seed);

  // Every fault class demonstrably fired (a chaos suite whose injector
  // silently no-ops would pass the exactness sweeps vacuously).
  EXPECT_GT(fault_stats::MessagesDropped(), 0u);
  EXPECT_GT(fault_stats::MessagesDelayed(), 0u);
  EXPECT_GT(fault_stats::MessagesDuplicated(), 0u);
  EXPECT_EQ(fault_stats::NodesKilled(), 1u);
  EXPECT_GE(fault_stats::NodesDeclaredDead(), 1u);
}

}  // namespace
}  // namespace odyssey
