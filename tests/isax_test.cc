#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/dataset/generators.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"
#include "src/isax/breakpoints.h"
#include "src/isax/isax_word.h"
#include "src/isax/mindist.h"
#include "src/isax/paa.h"

namespace odyssey {
namespace {

// ----------------------------------------------------------- Breakpoints

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.8413447), 1.0, 1e-5);
}

TEST(BreakpointTableTest, CountsAndOrdering) {
  const BreakpointTable& table = BreakpointTable::Get();
  for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
    const auto& bps = table.ForBits(bits);
    ASSERT_EQ(bps.size(), (1u << bits) - 1) << "bits=" << bits;
    for (size_t i = 1; i < bps.size(); ++i) ASSERT_LT(bps[i - 1], bps[i]);
  }
}

TEST(BreakpointTableTest, SymmetricAroundZero) {
  const BreakpointTable& table = BreakpointTable::Get();
  for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
    const auto& bps = table.ForBits(bits);
    const size_t n = bps.size();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(bps[i], -bps[n - 1 - i], 1e-9);
    }
  }
}

TEST(BreakpointTableTest, NestingGivesPrefixProperty) {
  // The b-bit symbol of any value equals its (b+1)-bit symbol >> 1 — the
  // property the iSAX tree's cardinality refinement depends on.
  const BreakpointTable& table = BreakpointTable::Get();
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const double v = rng.NextGaussian() * 1.5;
    const uint8_t full = table.MaxBitsSymbol(v);
    for (int bits = 1; bits < kMaxSaxBits; ++bits) {
      // Recompute the symbol at `bits` directly from that level's
      // breakpoints.
      const auto& bps = table.ForBits(bits);
      uint32_t direct = 0;
      while (direct < bps.size() && bps[direct] < v) ++direct;
      EXPECT_EQ(direct, static_cast<uint32_t>(full >> (kMaxSaxBits - bits)))
          << "v=" << v << " bits=" << bits;
    }
  }
}

TEST(BreakpointTableTest, RegionBoundsBracketSymbolValues) {
  const BreakpointTable& table = BreakpointTable::Get();
  Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    const double v = rng.NextGaussian() * 2.0;
    for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
      const uint32_t symbol = table.MaxBitsSymbol(v) >> (kMaxSaxBits - bits);
      EXPECT_GE(v, table.RegionLower(bits, symbol) - 1e-12);
      EXPECT_LE(v, table.RegionUpper(bits, symbol) + 1e-12);
    }
  }
}

// ------------------------------------------------------------------- PAA

TEST(PaaTest, SegmentBoundsPartitionTheSeries) {
  for (size_t length : {64u, 96u, 100u, 200u, 256u}) {
    for (int segments : {1, 4, 7, 16}) {
      if (static_cast<size_t>(segments) > length) continue;
      const PaaConfig config(length, segments);
      size_t covered = 0;
      for (int i = 0; i < segments; ++i) {
        EXPECT_EQ(config.SegmentBegin(i), covered);
        EXPECT_GE(config.SegmentCount(i), 1u);
        covered = config.SegmentEnd(i);
      }
      EXPECT_EQ(covered, length);
    }
  }
}

TEST(PaaTest, ConstantSeriesHasConstantPaa) {
  std::vector<float> series(100, 2.5f);
  const PaaConfig config(100, 8);
  const std::vector<double> paa = ComputePaa(series.data(), config);
  for (double v : paa) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(PaaTest, MeansAreExact) {
  const float series[] = {1, 3, 5, 7, 2, 4, 6, 8};
  const PaaConfig config(8, 2);
  const std::vector<double> paa = ComputePaa(series, config);
  EXPECT_DOUBLE_EQ(paa[0], 4.0);
  EXPECT_DOUBLE_EQ(paa[1], 5.0);
}

TEST(PaaTest, PaaDistanceLowerBoundsEuclidean) {
  // sum_i n_i (paa_a[i] - paa_b[i])^2 <= squared ED — the Cauchy-Schwarz
  // backbone of every mindist in the library.
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 60;
    const PaaConfig config(n, 8);
    std::vector<float> a(n), b(n);
    for (auto& x : a) x = static_cast<float>(rng.NextGaussian());
    for (auto& x : b) x = static_cast<float>(rng.NextGaussian());
    const std::vector<double> pa = ComputePaa(a.data(), config);
    const std::vector<double> pb = ComputePaa(b.data(), config);
    double lb = 0.0;
    for (int i = 0; i < 8; ++i) {
      const double d = pa[i] - pb[i];
      lb += static_cast<double>(config.SegmentCount(i)) * d * d;
    }
    const double ed = SquaredEuclideanScalar(a.data(), b.data(), n);
    EXPECT_LE(lb, ed * (1 + 1e-6) + 1e-9);
  }
}

// ------------------------------------------------------------- IsaxWord

TEST(IsaxWordTest, ComputeSaxMatchesPerSegmentSymbols) {
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateRandomWalk(10, 64, 9);
  const BreakpointTable& table = BreakpointTable::Get();
  std::vector<uint8_t> sax(8);
  for (size_t i = 0; i < data.size(); ++i) {
    ComputeSax(data.data(i), config, sax.data());
    const std::vector<double> paa = ComputePaa(data.data(i), config.paa);
    for (int s = 0; s < 8; ++s) {
      EXPECT_EQ(sax[s], table.MaxBitsSymbol(paa[s]));
    }
  }
}

TEST(IsaxWordTest, RootWordAndKeyRoundTrip) {
  const IsaxConfig config(64, 8);
  for (uint32_t key : {0u, 1u, 37u, 128u, 255u}) {
    const IsaxWord word = IsaxWord::Root(config, key);
    ASSERT_EQ(word.symbols.size(), 8u);
    uint32_t rebuilt = 0;
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(word.bits[i], 1);
      rebuilt = (rebuilt << 1) | word.symbols[i];
    }
    EXPECT_EQ(rebuilt, key);
  }
}

TEST(IsaxWordTest, SeriesMatchesItsOwnRootWord) {
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateRandomWalk(50, 64, 11);
  std::vector<uint8_t> sax(8);
  for (size_t i = 0; i < data.size(); ++i) {
    ComputeSax(data.data(i), config, sax.data());
    const IsaxWord root = IsaxWord::Root(config, RootKey(sax.data(), config));
    EXPECT_TRUE(root.Matches(sax.data(), config));
  }
}

TEST(IsaxWordTest, ToStringShowsBits) {
  IsaxWord word;
  word.symbols = {1, 0, 3};
  word.bits = {1, 1, 2};
  EXPECT_EQ(word.ToString(), "1|0|11");
}

TEST(IsaxWordTest, MaxBitsBelowEight) {
  const IsaxConfig config(64, 8, /*bits=*/4);
  const SeriesCollection data = GenerateRandomWalk(20, 64, 13);
  std::vector<uint8_t> sax(8);
  for (size_t i = 0; i < data.size(); ++i) {
    ComputeSax(data.data(i), config, sax.data());
    for (int s = 0; s < 8; ++s) EXPECT_LT(sax[s], 16);  // 4-bit symbols
  }
}

// -------------------------------------------------------------- Mindist

class MindistPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(MindistPropertyTest, WordMindistLowerBoundsEuclidean) {
  const auto [length, segments] = GetParam();
  const IsaxConfig config(length, segments);
  const SeriesCollection data = GenerateRandomWalk(200, length, 17);
  const SeriesCollection queries = GenerateRandomWalk(10, length, 19);
  std::vector<uint8_t> sax(segments);
  Rng rng(21);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<double> paa = ComputePaa(queries.data(qi), config.paa);
    for (size_t i = 0; i < data.size(); ++i) {
      ComputeSax(data.data(i), config, sax.data());
      const float ed =
          SquaredEuclideanScalar(queries.data(qi), data.data(i), length);
      // Full-cardinality summary bound.
      ASSERT_LE(MindistPaaToSax(paa.data(), sax.data(), config),
                ed * (1 + 1e-5f) + 1e-6f);
      // Variable-cardinality word bound, at random per-segment bit depths.
      IsaxWord word;
      word.symbols.resize(segments);
      word.bits.resize(segments);
      for (int s = 0; s < segments; ++s) {
        const int bits = 1 + static_cast<int>(rng.NextBounded(kMaxSaxBits));
        word.bits[s] = static_cast<uint8_t>(bits);
        word.symbols[s] =
            static_cast<uint8_t>(sax[s] >> (kMaxSaxBits - bits));
      }
      ASSERT_LE(MindistPaaToWord(paa.data(), word, config),
                ed * (1 + 1e-5f) + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MindistPropertyTest,
    ::testing::Values(std::make_tuple(64u, 8), std::make_tuple(96u, 16),
                      std::make_tuple(100u, 7), std::make_tuple(128u, 16),
                      std::make_tuple(200u, 16)));

TEST(MindistTest, SeriesAgainstOwnSummaryIsZero) {
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateRandomWalk(50, 64, 23);
  std::vector<uint8_t> sax(8);
  for (size_t i = 0; i < data.size(); ++i) {
    ComputeSax(data.data(i), config, sax.data());
    const std::vector<double> paa = ComputePaa(data.data(i), config.paa);
    EXPECT_EQ(MindistPaaToSax(paa.data(), sax.data(), config), 0.0f);
  }
}

TEST(MindistTest, TighterWithMoreBits) {
  // Refining a word can only increase (or keep) the lower bound.
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateRandomWalk(30, 64, 29);
  const SeriesCollection queries = GenerateRandomWalk(5, 64, 31);
  std::vector<uint8_t> sax(8);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const std::vector<double> paa = ComputePaa(queries.data(qi), config.paa);
    for (size_t i = 0; i < data.size(); ++i) {
      ComputeSax(data.data(i), config, sax.data());
      float prev = -1.0f;
      for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
        IsaxWord word;
        word.symbols.resize(8);
        word.bits.assign(8, static_cast<uint8_t>(bits));
        for (int s = 0; s < 8; ++s) {
          word.symbols[s] =
              static_cast<uint8_t>(sax[s] >> (kMaxSaxBits - bits));
        }
        const float lb = MindistPaaToWord(paa.data(), word, config);
        ASSERT_GE(lb, prev - 1e-6f) << "bits=" << bits;
        prev = lb;
      }
    }
  }
}

TEST(MindistTest, EnvelopeMindistLowerBoundsDtw) {
  const IsaxConfig config(64, 8);
  const SeriesCollection data = GenerateSeismicLike(150, 64, 33);
  const SeriesCollection queries = GenerateSeismicLike(5, 64, 35);
  const size_t window = WarpingWindowFromFraction(64, 0.05);
  std::vector<uint8_t> sax(8);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Envelope env = BuildEnvelope(queries.data(qi), 64, window);
    const EnvelopePaa env_paa = ComputeEnvelopePaa(env, config);
    for (size_t i = 0; i < data.size(); ++i) {
      ComputeSax(data.data(i), config, sax.data());
      const float dtw =
          SquaredDtw(queries.data(qi), data.data(i), 64, window);
      ASSERT_LE(MindistEnvelopeToSax(env_paa, sax.data(), config),
                dtw * (1 + 1e-5f) + 1e-6f);
      const IsaxWord root =
          IsaxWord::Root(config, RootKey(sax.data(), config));
      ASSERT_LE(MindistEnvelopeToWord(env_paa, root, config),
                dtw * (1 + 1e-5f) + 1e-6f);
    }
  }
}

}  // namespace
}  // namespace odyssey
