#ifndef ODYSSEY_NET_FAULT_PLAN_H_
#define ODYSSEY_NET_FAULT_PLAN_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/net/message.h"

namespace odyssey {

/// A declarative description of the faults one simulated batch should
/// suffer — the unit the chaos suite sweeps by the hundreds. Everything is
/// derived from `seed` through the repo's deterministic Rng, so a failing
/// run is replayable from the single printed seed (ODYSSEY_CHAOS_SEED).
///
/// Fault taxonomy (enforced by FaultInjector::Decide):
///
///  * Dropped:    kBsfUpdate only. BSF broadcasts are pure pruning hints —
///    losing one costs extra distance computations, never answer
///    correctness — so they can be lost without ack/retransmit machinery.
///    Messages to or from a node that has been killed are also dropped
///    (the strongest form of loss: a dead host neither sends nor
///    receives).
///  * Delayed / duplicated / reordered: every data-plane type. Delays are
///    hold-backs measured in later mailbox arrivals (see
///    Mailbox::SendHeld), which guarantees eventual delivery; reorder is
///    the minimal one-arrival hold-back.
///  * Reliable: kShutdown, the recovery types (kNodeDead, kNodeDeadAck,
///    kRecoverQuery) and kHeartbeat — the control plane a real deployment
///    would carry over a reliable side channel. Faulting the recovery
///    protocol's own vocabulary tests nothing about the data plane. The
///    dead-node rule above outranks this one, so a killed node's
///    heartbeats still die with it: real deaths stay detectable, and only
///    false verdicts against *busy* nodes are suppressed.
///
/// At most one node dies per plan. Multi-node failure is explicitly out of
/// scope (ARCHITECTURE.md "Failure model"): with replication degree r the
/// protocol tolerates any single failure, and a victim+thief double
/// death after the victim answered is unrecoverable without data-carrying
/// retransmission, which Odyssey's data-free design rules out.
struct FaultPlan {
  uint64_t seed = 0;

  /// Per-message probabilities, rolled independently in Decide.
  double drop_prob = 0.0;       // droppable types only (kBsfUpdate)
  double delay_prob = 0.0;      // hold back 1..max_delay arrivals
  double duplicate_prob = 0.0;  // deliver twice
  double reorder_prob = 0.0;    // hold back exactly 1 arrival

  /// Upper bound (in later arrivals) for a delay roll.
  int max_delay = 3;

  /// Node to kill, or -1 for a kill-free plan.
  int dead_node = -1;
  /// The victim dies immediately after its Nth outbound send is delivered
  /// (so the kill lands mid-protocol, not at a quiet point); < 0 disables
  /// the kill even when dead_node is set.
  int kill_after_sends = -1;

  bool active() const {
    return drop_prob > 0.0 || delay_prob > 0.0 || duplicate_prob > 0.0 ||
           reorder_prob > 0.0 || (dead_node >= 0 && kill_after_sends >= 0);
  }
};

/// What SimCluster::Send should do with one message.
struct FaultDecision {
  bool drop = false;   // deliver nothing (still counted as a send attempt)
  int copies = 1;      // 2 when duplicated
  int hold_for = 0;    // > 0: deliver via Mailbox::SendHeld(hold_for)
  int close_node = -1; // >= 0: close this node's mailbox after delivering
};

/// The seeded decision engine SimCluster consults on every Send. All
/// mutable state (the RNG stream, the victim's send count, the dead flag)
/// sits behind one mutex so concurrent senders draw from a single
/// deterministic-per-interleaving stream; determinism across *runs* comes
/// from the chaos harness asserting properties (bit-exact answers) rather
/// than exact fault placement.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Decides the fate of `message` en route to `to`. Increments the
  /// fault_stats counters for whatever it decides.
  FaultDecision Decide(int to, const Message& message)
      ODYSSEY_EXCLUDES(mu_);

  /// True for control-plane types the injector never touches.
  static bool Reliable(MessageType type);
  /// True for the types whose loss cannot affect answer correctness.
  static bool Droppable(MessageType type);

  const FaultPlan& plan() const { return plan_; }
  /// True once the plan's victim has been killed.
  bool victim_dead() const ODYSSEY_EXCLUDES(mu_);

 private:
  const FaultPlan plan_;
  mutable Mutex mu_;
  Rng rng_ ODYSSEY_GUARDED_BY(mu_);
  int victim_sends_ ODYSSEY_GUARDED_BY(mu_) = 0;
  bool victim_dead_ ODYSSEY_GUARDED_BY(mu_) = false;
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_FAULT_PLAN_H_
