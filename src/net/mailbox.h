#ifndef ODYSSEY_NET_MAILBOX_H_
#define ODYSSEY_NET_MAILBOX_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "src/net/message.h"

namespace odyssey {

/// A blocking multi-producer FIFO mailbox — the per-node receive queue of
/// the simulated cluster. Delivery is asynchronous and FIFO per mailbox,
/// matching the MPI point-to-point semantics the paper's implementation
/// relies on.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message. Thread-safe; never blocks.
  void Send(Message message);

  /// Blocks until a message is available and returns it.
  Message Receive();

  /// Non-blocking receive; returns false when the mailbox is empty.
  bool TryReceive(Message* message);

  /// Receives with a deadline; returns false on timeout. Lets the
  /// coordinator interleave message handling with wall-clock work (e.g.
  /// releasing dynamically arriving queries).
  bool ReceiveFor(std::chrono::microseconds timeout, Message* message);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_MAILBOX_H_
