#ifndef ODYSSEY_NET_MAILBOX_H_
#define ODYSSEY_NET_MAILBOX_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/hotpath.h"
#include "src/common/sync.h"
#include "src/net/message.h"

namespace odyssey {

/// A blocking multi-producer FIFO mailbox — the per-node receive queue of
/// the simulated cluster. Delivery is asynchronous and FIFO per mailbox,
/// matching the MPI point-to-point semantics the paper's implementation
/// relies on.
///
/// Two extensions serve the fault-injection layer (src/net/fault_plan.h):
///
///  * Close() — marks the mailbox closed, discards everything queued and
///    wakes blocked receivers, whose Receive() then returns false. This is
///    how a node "dies": its comms thread observes the closed transport
///    instead of hanging forever on an empty queue. Sends after Close are
///    silently dropped (messages to a dead node go nowhere).
///
///  * SendHeld() — enqueues a message that only becomes visible after
///    `hold_for` later arrivals on this mailbox, which is how the injector
///    delays and reorders traffic. Held messages can never be starved:
///    whenever a receiver finds the visible queue empty, it force-releases
///    the earliest held message rather than blocking past it, so every
///    accepted message is eventually delivered and a delay can never be
///    escalated into a lost message or a deadlock.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message. Thread-safe; never blocks. This is the fast path
  /// the BSF-broadcast callback reaches from inside scans (under a
  /// hotpath::ScopedAllowance): it must never wait, never touch the OS and
  /// never throw — the lock + enqueue below is its whole sanctioned cost.
  /// Dropped silently when the mailbox is closed.
  ODYSSEY_HOT void Send(Message message) ODYSSEY_EXCLUDES(mu_)
      ODYSSEY_HOT_ALLOWS(
          "lock,alloc: the cross-thread handoff point — one uncontended "
          "mutex hold around a deque enqueue; the hot-path contract here "
          "is no waits, no I/O, no throws");

  /// Enqueues a message that becomes receivable only after `hold_for`
  /// (>= 1) further arrivals on this mailbox — the fault injector's
  /// delay/reorder primitive. Dropped silently when the mailbox is closed.
  void SendHeld(Message message, int hold_for) ODYSSEY_EXCLUDES(mu_);

  /// Blocks until a message is available (true) or the mailbox is closed
  /// (false, `*message` untouched).
  bool Receive(Message* message) ODYSSEY_EXCLUDES(mu_);

  /// Non-blocking receive; returns false when nothing is deliverable. The
  /// comms-loop polling side of the fast path: same purity contract as
  /// Send (a blocking wait sneaking in here would stall a node's comms
  /// thread mid-batch).
  ODYSSEY_HOT bool TryReceive(Message* message) ODYSSEY_EXCLUDES(mu_)
      ODYSSEY_HOT_ALLOWS(
          "lock,alloc: one uncontended mutex hold around a deque dequeue; "
          "no waits, no I/O, no throws");

  /// Receives with a deadline; returns false on timeout or when the
  /// mailbox is closed. Lets the coordinator interleave message handling
  /// with wall-clock work (e.g. releasing dynamically arriving queries or
  /// polling per-node liveness deadlines).
  bool ReceiveFor(std::chrono::microseconds timeout, Message* message)
      ODYSSEY_EXCLUDES(mu_);

  /// Closes the mailbox: discards queued and held messages, rejects
  /// further sends, and wakes every blocked receiver (their Receive
  /// returns false). Idempotent.
  void Close() ODYSSEY_EXCLUDES(mu_);

  bool closed() const ODYSSEY_EXCLUDES(mu_);

  /// Messages accepted and not yet received (visible + held).
  size_t size() const ODYSSEY_EXCLUDES(mu_);

 private:
  struct HeldMessage {
    Message message;
    uint64_t release_at;  // arrival count at which this becomes visible
  };

  /// Dequeues the oldest visible message; the queue must be non-empty.
  Message PopLocked() ODYSSEY_REQUIRES(mu_);
  /// Moves every ripe held message (release_at <= arrivals_) into the
  /// visible queue, earliest release first.
  void FlushRipeLocked() ODYSSEY_REQUIRES(mu_);
  /// Moves the earliest held message into the visible queue regardless of
  /// ripeness; held_ must be non-empty. The progress guarantee: called
  /// when a receiver would otherwise block past held traffic.
  void ForceFlushOneLocked() ODYSSEY_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Message> queue_ ODYSSEY_GUARDED_BY(mu_);
  std::vector<HeldMessage> held_ ODYSSEY_GUARDED_BY(mu_);
  uint64_t arrivals_ ODYSSEY_GUARDED_BY(mu_) = 0;
  bool closed_ ODYSSEY_GUARDED_BY(mu_) = false;
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_MAILBOX_H_
