#ifndef ODYSSEY_NET_MAILBOX_H_
#define ODYSSEY_NET_MAILBOX_H_

#include <chrono>
#include <deque>

#include "src/common/hotpath.h"
#include "src/common/sync.h"
#include "src/net/message.h"

namespace odyssey {

/// A blocking multi-producer FIFO mailbox — the per-node receive queue of
/// the simulated cluster. Delivery is asynchronous and FIFO per mailbox,
/// matching the MPI point-to-point semantics the paper's implementation
/// relies on.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message. Thread-safe; never blocks. This is the fast path
  /// the BSF-broadcast callback reaches from inside scans (under a
  /// hotpath::ScopedAllowance): it must never wait, never touch the OS and
  /// never throw — the lock + enqueue below is its whole sanctioned cost.
  ODYSSEY_HOT void Send(Message message) ODYSSEY_EXCLUDES(mu_)
      ODYSSEY_HOT_ALLOWS(
          "lock,alloc: the cross-thread handoff point — one uncontended "
          "mutex hold around a deque enqueue; the hot-path contract here "
          "is no waits, no I/O, no throws");

  /// Blocks until a message is available and returns it.
  Message Receive() ODYSSEY_EXCLUDES(mu_);

  /// Non-blocking receive; returns false when the mailbox is empty. The
  /// comms-loop polling side of the fast path: same purity contract as
  /// Send (a blocking wait sneaking in here would stall a node's comms
  /// thread mid-batch).
  ODYSSEY_HOT bool TryReceive(Message* message) ODYSSEY_EXCLUDES(mu_)
      ODYSSEY_HOT_ALLOWS(
          "lock,alloc: one uncontended mutex hold around a deque dequeue; "
          "no waits, no I/O, no throws");

  /// Receives with a deadline; returns false on timeout. Lets the
  /// coordinator interleave message handling with wall-clock work (e.g.
  /// releasing dynamically arriving queries).
  bool ReceiveFor(std::chrono::microseconds timeout, Message* message)
      ODYSSEY_EXCLUDES(mu_);

  size_t size() const ODYSSEY_EXCLUDES(mu_);

 private:
  /// Dequeues the oldest message; the queue must be non-empty.
  Message PopLocked() ODYSSEY_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Message> queue_ ODYSSEY_GUARDED_BY(mu_);
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_MAILBOX_H_
