#ifndef ODYSSEY_NET_SIM_CLUSTER_H_
#define ODYSSEY_NET_SIM_CLUSTER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/net/fault_plan.h"
#include "src/net/mailbox.h"

namespace odyssey {

/// The in-process stand-in for the paper's MPI cluster (see DESIGN.md §2):
/// `num_nodes` system-node mailboxes plus one coordinator mailbox. All
/// inter-node interaction goes through Send/Broadcast — nodes never touch
/// each other's memory, so the code paths match a real message-passing
/// deployment; only the transport differs.
///
/// An optional FaultInjector turns the perfect transport into an
/// adversarial one: Send consults it per message and then drops, delays
/// (via Mailbox::SendHeld), duplicates, or — for a node kill — closes the
/// target mailbox. The injector must outlive the cluster. messages_sent()
/// keeps counting *attempts* (pre-fault), so observability assertions stay
/// comparable between faulty and fault-free runs.
class SimCluster {
 public:
  explicit SimCluster(int num_nodes, FaultInjector* faults = nullptr);

  int num_nodes() const { return num_nodes_; }
  /// The coordinator's address (the paper's coordinator node; our driver).
  int coordinator_id() const { return num_nodes_; }

  /// Sends to a node id in [0, num_nodes] (num_nodes = coordinator).
  void Send(int to, Message message);

  /// Sends a copy to every system node (not the coordinator), optionally
  /// excluding one (typically the sender).
  void Broadcast(Message message, int except = -1);

  /// The mailbox of `id` (system node or coordinator).
  Mailbox& mailbox(int id);

  /// Total messages sent so far (observability; the "no data moves" claim
  /// is auditable because messages structurally cannot carry raw series).
  size_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  /// Messages sent of one type.
  size_t messages_sent(MessageType type) const;

 private:
  int num_nodes_;
  FaultInjector* faults_;  // not owned; nullptr = perfect transport
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<size_t> messages_sent_{0};
  std::vector<std::unique_ptr<std::atomic<size_t>>> per_type_;
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_SIM_CLUSTER_H_
