#include "src/net/fault_plan.h"

#include "src/common/summary_stats.h"

namespace odyssey {

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

bool FaultInjector::Reliable(MessageType type) {
  switch (type) {
    case MessageType::kShutdown:
    case MessageType::kNodeDead:
    case MessageType::kNodeDeadAck:
    case MessageType::kRecoverQuery:
    case MessageType::kHeartbeat:
      // Heartbeats ride the same reliable side channel as membership
      // changes. The dead-node rule in Decide() is checked before this one,
      // so a killed node's heartbeats still die with it — real deaths stay
      // detectable; only false positives from *busy* nodes are suppressed.
      return true;
    case MessageType::kAssignQuery:
    case MessageType::kNoMoreQueries:
    case MessageType::kQueryRequest:
    case MessageType::kBsfUpdate:
    case MessageType::kDone:
    case MessageType::kStealRequest:
    case MessageType::kStealReply:
    case MessageType::kLocalAnswer:
    case MessageType::kNodeTerminated:
      return false;
  }
  return false;
}

bool FaultInjector::Droppable(MessageType type) {
  // Only pruning hints may be lost. Every other data-plane message carries
  // a coverage or termination obligation (an assignment, a batch grant, an
  // answer, a protocol edge) whose silent loss would require ack/
  // retransmit machinery to survive — the delay/duplicate/reorder faults
  // cover those paths instead.
  return type == MessageType::kBsfUpdate;
}

bool FaultInjector::victim_dead() const {
  MutexLock lock(&mu_);
  return victim_dead_;
}

FaultDecision FaultInjector::Decide(int to, const Message& message) {
  FaultDecision decision;
  MutexLock lock(&mu_);

  // A dead host neither sends nor receives: everything touching the victim
  // after the kill is dropped, regardless of type. (The victim's threads
  // keep running until they observe the closed transport; their in-flight
  // sends land here.)
  if (victim_dead_ &&
      (to == plan_.dead_node || message.from == plan_.dead_node)) {
    decision.drop = true;
    fault_stats::CountMessageDropped();
    return decision;
  }

  // Kill trigger: the victim dies right after its Nth outbound send. The
  // Nth message itself is still delivered — the interesting failure mode
  // is a node that vanished mid-conversation, not one that was never
  // heard from.
  if (!victim_dead_ && plan_.dead_node >= 0 && plan_.kill_after_sends >= 0 &&
      message.from == plan_.dead_node) {
    ++victim_sends_;
    if (victim_sends_ >= plan_.kill_after_sends) {
      victim_dead_ = true;
      decision.close_node = plan_.dead_node;
      fault_stats::CountNodeKilled();
    }
  }

  if (Reliable(message.type)) return decision;

  if (plan_.drop_prob > 0.0 && Droppable(message.type) &&
      rng_.NextDouble() < plan_.drop_prob) {
    decision.drop = true;
    fault_stats::CountMessageDropped();
    return decision;
  }

  if (plan_.duplicate_prob > 0.0 &&
      rng_.NextDouble() < plan_.duplicate_prob) {
    decision.copies = 2;
    fault_stats::CountMessageDuplicated();
  }

  if (plan_.delay_prob > 0.0 && rng_.NextDouble() < plan_.delay_prob) {
    decision.hold_for =
        1 + static_cast<int>(rng_.NextBounded(
                static_cast<uint64_t>(plan_.max_delay > 0 ? plan_.max_delay
                                                          : 1)));
    fault_stats::CountMessageDelayed();
  } else if (plan_.reorder_prob > 0.0 &&
             rng_.NextDouble() < plan_.reorder_prob) {
    decision.hold_for = 1;
    fault_stats::CountMessageDelayed();
  }

  return decision;
}

}  // namespace odyssey
