#ifndef ODYSSEY_NET_MESSAGE_H_
#define ODYSSEY_NET_MESSAGE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/index/query_engine.h"

namespace odyssey {

/// The message vocabulary of the distributed protocol. One deliberate
/// property, mirrored from the paper: no message ever carries raw series
/// data — answers carry (distance, id) pairs and steal replies carry
/// RS-batch ids, which is exactly what makes Odyssey's work-stealing
/// "data-free".
enum class MessageType {
  kAssignQuery,     ///< scheduler -> node: execute query `query_id`
  kNoMoreQueries,   ///< scheduler -> node: nothing further will be assigned
  kQueryRequest,    ///< node -> scheduler: dynamic request for the next query
  kBsfUpdate,       ///< node -> all nodes: improved BSF for `query_id`
  kDone,            ///< node -> all: finished its assigned queries (Alg. 1)
  kStealRequest,    ///< idle node -> victim (Alg. 4)
  kStealReply,      ///< victim -> thief: RS-batch ids + query + BSF (Alg. 3)
  kLocalAnswer,     ///< node -> coordinator: local (partial) k-NN answer
  kNodeTerminated,  ///< node -> coordinator: work-stealing phase over
  kShutdown,        ///< coordinator -> node: batch finished, exit
};

const char* MessageTypeToString(MessageType type);

/// A protocol message. Fields beyond `type`/`from` are used per type:
/// query_id (kAssignQuery/kBsfUpdate/kStealReply/kLocalAnswer), bsf
/// (kBsfUpdate/kStealReply, squared), batch_ids (kStealReply), neighbors
/// (kLocalAnswer, with *global* series ids).
struct Message {
  MessageType type = MessageType::kShutdown;
  int from = -1;
  int query_id = -1;
  float bsf = std::numeric_limits<float>::infinity();
  std::vector<int> batch_ids;
  std::vector<Neighbor> neighbors;
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_MESSAGE_H_
