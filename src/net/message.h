#ifndef ODYSSEY_NET_MESSAGE_H_
#define ODYSSEY_NET_MESSAGE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/index/query_engine.h"

namespace odyssey {

/// The message vocabulary of the distributed protocol. One deliberate
/// property, mirrored from the paper: no message ever carries raw series
/// data — answers carry (distance, id) pairs and steal replies carry
/// RS-batch ids, which is exactly what makes Odyssey's work-stealing
/// "data-free".
enum class MessageType {
  kAssignQuery,     ///< scheduler -> node: execute query `query_id`
  kNoMoreQueries,   ///< scheduler -> node: nothing further will be assigned
  kQueryRequest,    ///< node -> scheduler: dynamic request for the next query
  kBsfUpdate,       ///< node -> all nodes: improved BSF for `query_id`
  kDone,            ///< node -> all: finished its assigned queries (Alg. 1)
  kStealRequest,    ///< idle node -> victim (Alg. 4)
  kStealReply,      ///< victim -> thief: RS-batch ids + query + BSF (Alg. 3)
  kLocalAnswer,     ///< node -> coordinator: local (partial) k-NN answer
  kNodeTerminated,  ///< node -> coordinator: work-stealing phase over
  kShutdown,        ///< coordinator -> node: batch finished, exit
  // Failure-recovery extension (ARCHITECTURE.md "Failure model"). These
  // three are *control-plane reliable*: the fault-injection layer never
  // drops, delays or duplicates them, mirroring how a real deployment
  // would carry membership changes over a reliable side channel.
  kNodeDead,      ///< coordinator -> all: node `subject` was declared dead
  kNodeDeadAck,   ///< node -> coordinator: re-covered everything it had
                  ///< granted to `subject`; safe to merge after all acks
  kRecoverQuery,  ///< coordinator -> survivor: fully re-execute `query_id`
                  ///< on behalf of a dead replica-group member
  kHeartbeat,     ///< node -> coordinator: alive but quiet. Sent by the
                  ///< comms thread whenever the mailbox is idle and by the
                  ///< steal loop between peer waits (liveness armed only):
                  ///< a deadline-length scan or a steal phase that talks
                  ///< only to peers would otherwise read as silence and a
                  ///< short liveness deadline would declare live nodes dead
};

const char* MessageTypeToString(MessageType type);

/// A protocol message. Fields beyond `type`/`from` are used per type:
/// query_id (kAssignQuery/kBsfUpdate/kStealReply/kLocalAnswer/
/// kRecoverQuery), bsf (kBsfUpdate/kStealReply, squared), batch_ids
/// (kStealReply), neighbors (kLocalAnswer, with *global* series ids),
/// subject (kNodeDead/kNodeDeadAck: the node declared dead),
/// recovery (kLocalAnswer: answers a kRecoverQuery, see below),
/// assign_count (kNoMoreQueries: assignment fence, see below).
struct Message {
  MessageType type = MessageType::kShutdown;
  int from = -1;
  int query_id = -1;
  int subject = -1;
  /// Request sequence number, stamped on kStealRequest by the thief and
  /// echoed verbatim on the kStealReply. The thief's outstanding-reply
  /// accounting is a set of these: a reply retires exactly the request it
  /// answers, so an injector-duplicated reply (second copy erases an
  /// already-erased seq) can never make the thief believe a still-in-flight
  /// batch-carrying reply was already consumed.
  int steal_seq = -1;
  /// True only on the kLocalAnswer produced by a kRecoverQuery re-run.
  /// The coordinator may only count *this* answer against its pending
  /// recovery for (from, query_id): a survivor can emit other partial
  /// answers for the very same pair — stolen-work results, or the
  /// dead-thief grant replay that kNodeDead triggers — and those cover a
  /// batch subset, not the full re-execution. Treating one of them as the
  /// recovery answer lets the coordinator quiesce and merge while the
  /// real re-run is still scoring, silently losing the dead node's
  /// unstolen coverage.
  bool recovery = false;
  /// On kNoMoreQueries: how many distinct kAssignQuery messages the
  /// coordinator has sent this node. The marker and the assignments race
  /// under fault injection — a delayed assignment can be overtaken by the
  /// marker, and a node that honors the marker immediately would leave its
  /// main loop with that query still in the held queue, never executing
  /// it. The count lets the node treat the marker as "no more will be
  /// *sent*" rather than "you have seen everything": it keeps waiting
  /// until the distinct assignments it received match the count (-1 = no
  /// fence, pre-fault-injection semantics).
  int assign_count = -1;
  float bsf = std::numeric_limits<float>::infinity();
  std::vector<int> batch_ids;
  std::vector<Neighbor> neighbors;
};

}  // namespace odyssey

#endif  // ODYSSEY_NET_MESSAGE_H_
