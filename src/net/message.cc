#include "src/net/message.h"

namespace odyssey {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kAssignQuery:
      return "AssignQuery";
    case MessageType::kNoMoreQueries:
      return "NoMoreQueries";
    case MessageType::kQueryRequest:
      return "QueryRequest";
    case MessageType::kBsfUpdate:
      return "BsfUpdate";
    case MessageType::kDone:
      return "Done";
    case MessageType::kStealRequest:
      return "StealRequest";
    case MessageType::kStealReply:
      return "StealReply";
    case MessageType::kLocalAnswer:
      return "LocalAnswer";
    case MessageType::kNodeTerminated:
      return "NodeTerminated";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kNodeDead:
      return "NodeDead";
    case MessageType::kNodeDeadAck:
      return "NodeDeadAck";
    case MessageType::kRecoverQuery:
      return "RecoverQuery";
    case MessageType::kHeartbeat:
      return "Heartbeat";
  }
  return "Unknown";
}

}  // namespace odyssey
