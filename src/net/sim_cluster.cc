#include "src/net/sim_cluster.h"

#include "src/common/check.h"

namespace odyssey {
namespace {
constexpr int kMessageTypeCount =
    static_cast<int>(MessageType::kShutdown) + 1;
}  // namespace

SimCluster::SimCluster(int num_nodes) : num_nodes_(num_nodes) {
  ODYSSEY_CHECK(num_nodes >= 1);
  mailboxes_.reserve(num_nodes + 1);
  for (int i = 0; i <= num_nodes; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  per_type_.reserve(kMessageTypeCount);
  for (int i = 0; i < kMessageTypeCount; ++i) {
    per_type_.push_back(std::make_unique<std::atomic<size_t>>(0));
  }
}

void SimCluster::Send(int to, Message message) {
  ODYSSEY_CHECK(to >= 0 && to <= num_nodes_);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  per_type_[static_cast<int>(message.type)]->fetch_add(
      1, std::memory_order_relaxed);
  mailboxes_[to]->Send(std::move(message));
}

void SimCluster::Broadcast(Message message, int except) {
  for (int i = 0; i < num_nodes_; ++i) {
    if (i == except) continue;
    Send(i, message);
  }
}

Mailbox& SimCluster::mailbox(int id) {
  ODYSSEY_CHECK(id >= 0 && id <= num_nodes_);
  return *mailboxes_[id];
}

size_t SimCluster::messages_sent(MessageType type) const {
  return per_type_[static_cast<int>(type)]->load(std::memory_order_relaxed);
}

}  // namespace odyssey
