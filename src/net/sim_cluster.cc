#include "src/net/sim_cluster.h"

#include "src/common/check.h"

namespace odyssey {
namespace {
// Must name the LAST enumerator of MessageType; per_type_ is indexed by
// static_cast<int>(type), so trailing the enum under-allocates it.
constexpr int kMessageTypeCount =
    static_cast<int>(MessageType::kHeartbeat) + 1;
}  // namespace

SimCluster::SimCluster(int num_nodes, FaultInjector* faults)
    : num_nodes_(num_nodes), faults_(faults) {
  ODYSSEY_CHECK(num_nodes >= 1);
  mailboxes_.reserve(num_nodes + 1);
  for (int i = 0; i <= num_nodes; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  per_type_.reserve(kMessageTypeCount);
  for (int i = 0; i < kMessageTypeCount; ++i) {
    per_type_.push_back(std::make_unique<std::atomic<size_t>>(0));
  }
}

void SimCluster::Send(int to, Message message) {
  ODYSSEY_CHECK(to >= 0 && to <= num_nodes_);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  per_type_[static_cast<int>(message.type)]->fetch_add(
      1, std::memory_order_relaxed);
  if (faults_ == nullptr) {
    mailboxes_[to]->Send(std::move(message));
    return;
  }
  const FaultDecision decision = faults_->Decide(to, message);
  if (!decision.drop) {
    for (int copy = 0; copy < decision.copies; ++copy) {
      if (decision.hold_for > 0) {
        mailboxes_[to]->SendHeld(message, decision.hold_for);
      } else {
        mailboxes_[to]->Send(message);
      }
    }
  }
  if (decision.close_node >= 0) {
    // The kill: the victim's transport closes *after* this delivery, so
    // its last send is heard but nothing further goes in or out.
    mailboxes_[decision.close_node]->Close();
  }
}

void SimCluster::Broadcast(Message message, int except) {
  for (int i = 0; i < num_nodes_; ++i) {
    if (i == except) continue;
    Send(i, message);
  }
}

Mailbox& SimCluster::mailbox(int id) {
  ODYSSEY_CHECK(id >= 0 && id <= num_nodes_);
  return *mailboxes_[id];
}

size_t SimCluster::messages_sent(MessageType type) const {
  return per_type_[static_cast<int>(type)]->load(std::memory_order_relaxed);
}

}  // namespace odyssey
