#include "src/net/mailbox.h"

#include <utility>

namespace odyssey {

ODYSSEY_HOT void Mailbox::Send(Message message) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(message));
  }
  cv_.Signal();
}

Message Mailbox::PopLocked() {
  Message message = std::move(queue_.front());
  queue_.pop_front();
  return message;
}

Message Mailbox::Receive() {
  MutexLock lock(&mu_);
  while (queue_.empty()) cv_.Wait(&mu_);
  return PopLocked();
}

ODYSSEY_HOT bool Mailbox::TryReceive(Message* message) {
  MutexLock lock(&mu_);
  if (queue_.empty()) return false;
  *message = PopLocked();
  return true;
}

bool Mailbox::ReceiveFor(std::chrono::microseconds timeout,
                         Message* message) {
  MutexLock lock(&mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (queue_.empty()) {
    if (cv_.WaitUntil(&mu_, deadline)) break;  // deadline passed
  }
  if (queue_.empty()) return false;
  *message = PopLocked();
  return true;
}

size_t Mailbox::size() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

}  // namespace odyssey
