#include "src/net/mailbox.h"

namespace odyssey {

void Mailbox::Send(Message message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_one();
}

Message Mailbox::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  Message message = std::move(queue_.front());
  queue_.pop_front();
  return message;
}

bool Mailbox::TryReceive(Message* message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *message = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool Mailbox::ReceiveFor(std::chrono::microseconds timeout,
                         Message* message) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return !queue_.empty(); })) {
    return false;
  }
  *message = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace odyssey
