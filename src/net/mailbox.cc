#include "src/net/mailbox.h"

#include <utility>

namespace odyssey {

ODYSSEY_HOT void Mailbox::Send(Message message) {
  {
    MutexLock lock(&mu_);
    if (closed_) return;
    ++arrivals_;
    queue_.push_back(std::move(message));
    FlushRipeLocked();
  }
  cv_.SignalAll();
}

void Mailbox::SendHeld(Message message, int hold_for) {
  {
    MutexLock lock(&mu_);
    if (closed_) return;
    ++arrivals_;
    if (hold_for < 1) hold_for = 1;
    held_.push_back(
        {std::move(message), arrivals_ + static_cast<uint64_t>(hold_for)});
    // A held arrival can still ripen previously held traffic.
    FlushRipeLocked();
  }
  cv_.SignalAll();
}

Message Mailbox::PopLocked() {
  Message message = std::move(queue_.front());
  queue_.pop_front();
  return message;
}

void Mailbox::FlushRipeLocked() {
  while (!held_.empty()) {
    size_t best = held_.size();
    for (size_t i = 0; i < held_.size(); ++i) {
      if (held_[i].release_at > arrivals_) continue;
      if (best == held_.size() ||
          held_[i].release_at < held_[best].release_at) {
        best = i;
      }
    }
    if (best == held_.size()) break;
    queue_.push_back(std::move(held_[best].message));
    held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(best));
  }
}

void Mailbox::ForceFlushOneLocked() {
  size_t best = 0;
  for (size_t i = 1; i < held_.size(); ++i) {
    if (held_[i].release_at < held_[best].release_at) best = i;
  }
  queue_.push_back(std::move(held_[best].message));
  held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(best));
}

bool Mailbox::Receive(Message* message) {
  MutexLock lock(&mu_);
  for (;;) {
    FlushRipeLocked();
    if (!queue_.empty()) {
      *message = PopLocked();
      return true;
    }
    if (closed_) return false;
    if (!held_.empty()) {
      ForceFlushOneLocked();
      continue;
    }
    cv_.Wait(&mu_);
  }
}

ODYSSEY_HOT bool Mailbox::TryReceive(Message* message) {
  MutexLock lock(&mu_);
  FlushRipeLocked();
  if (queue_.empty() && !held_.empty()) ForceFlushOneLocked();
  if (queue_.empty()) return false;
  *message = PopLocked();
  return true;
}

bool Mailbox::ReceiveFor(std::chrono::microseconds timeout,
                         Message* message) {
  MutexLock lock(&mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    FlushRipeLocked();
    if (!queue_.empty()) {
      *message = PopLocked();
      return true;
    }
    if (closed_) return false;
    if (!held_.empty()) {
      ForceFlushOneLocked();
      continue;
    }
    if (cv_.WaitUntil(&mu_, deadline)) return false;  // deadline passed
  }
}

void Mailbox::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
    queue_.clear();
    held_.clear();
  }
  cv_.SignalAll();
}

bool Mailbox::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

size_t Mailbox::size() const {
  MutexLock lock(&mu_);
  return queue_.size() + held_.size();
}

}  // namespace odyssey
