#include "src/query/prepared_query.h"

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace odyssey {

PreparedQuery PreparedQuery::Prepare(const float* series,
                                     const IsaxConfig& config,
                                     bool build_dtw_envelope,
                                     size_t dtw_window) {
  ODYSSEY_CHECK(series != nullptr);
  PreparedQuery out;
  out.series_ = series;
  out.length_ = config.series_length();
  out.paa_.resize(config.segments());
  ComputePaa(series, config.paa, out.paa_.data());
  out.sax_.resize(config.segments());
  // The SAX word is quantized from the PAA just computed, so preparing a
  // query costs exactly one PAA pass (the counters in summary_stats rely on
  // this).
  ComputeSaxFromPaa(out.paa_.data(), config, out.sax_.data());
  if (build_dtw_envelope) {
    out.envelope_ = BuildEnvelope(series, config.series_length(), dtw_window);
    out.envelope_paa_ = ComputeEnvelopePaa(out.envelope_, config);
    out.dtw_window_ = dtw_window;
    out.has_envelope_ = true;
  }
  return out;
}

const Envelope& PreparedQuery::envelope() const {
  ODYSSEY_CHECK_MSG(has_envelope_, "query prepared without a DTW envelope");
  return envelope_;
}

const EnvelopePaa& PreparedQuery::envelope_paa() const {
  ODYSSEY_CHECK_MSG(has_envelope_, "query prepared without a DTW envelope");
  return envelope_paa_;
}

PreparedBatch PreparedBatch::Prepare(const SeriesCollection& queries,
                                     const IsaxConfig& config,
                                     bool build_dtw_envelope,
                                     size_t dtw_window, ThreadPool* pool) {
  ODYSSEY_CHECK(queries.length() == config.series_length());
  PreparedBatch batch;
  batch.queries_.resize(queries.size());
  auto prepare_range = [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      batch.queries_[q] = PreparedQuery::Prepare(
          queries.data(q), config, build_dtw_envelope, dtw_window);
    }
  };
  if (pool != nullptr && queries.size() > 1) {
    pool->ParallelFor(queries.size(), prepare_range);
  } else {
    prepare_range(0, queries.size());
  }
  batch.admitted_.store(queries.size(), std::memory_order_release);
  return batch;
}

PreparedBatch PreparedBatch::Allocate(size_t count) {
  PreparedBatch batch;
  batch.queries_.resize(count);
  return batch;
}

size_t PreparedBatch::Admit(size_t i, const float* series,
                            const IsaxConfig& config, bool build_dtw_envelope,
                            size_t dtw_window) {
  ODYSSEY_CHECK(i < queries_.size());
  queries_[i] =
      PreparedQuery::Prepare(series, config, build_dtw_envelope, dtw_window);
  return admitted_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

const PreparedQuery& PreparedBatch::query(size_t i) const {
  ODYSSEY_CHECK(i < queries_.size());
  return queries_[i];
}

}  // namespace odyssey
