#ifndef ODYSSEY_QUERY_PREPARED_QUERY_H_
#define ODYSSEY_QUERY_PREPARED_QUERY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/dataset/series_collection.h"
#include "src/distance/lb_keogh.h"
#include "src/isax/isax_word.h"
#include "src/isax/mindist.h"

namespace odyssey {

class ThreadPool;

/// Immutable per-query summaries, computed once and shared by every
/// consumer of the query-answering path (Figure 3, stages 3-5): the
/// scheduler's execution-time estimation, every replica's execution, and
/// stolen-work runs on thief nodes. Holds the query's PAA, its
/// full-cardinality SAX word and — when built for DTW — the Sakoe-Chiba
/// envelope plus the envelope's per-segment PAA.
///
/// A PreparedQuery does not own the raw series; the underlying
/// SeriesCollection must outlive it (NodeRuntime already requires the query
/// batch to outlive the batch run, so this adds no new constraint).
class PreparedQuery {
 public:
  /// Empty summary; only useful as a slot to assign a real one into.
  PreparedQuery() = default;

  /// Builds the summaries of `series` under `config`. With
  /// `build_dtw_envelope`, additionally builds the warping envelope for
  /// `dtw_window` and its PAA (required by DTW executions).
  static PreparedQuery Prepare(const float* series, const IsaxConfig& config,
                               bool build_dtw_envelope = false,
                               size_t dtw_window = 0);

  const float* series() const { return series_; }
  size_t length() const { return length_; }
  int segments() const { return static_cast<int>(sax_.size()); }

  /// Segment means (segments() doubles).
  const double* paa() const { return paa_.data(); }
  /// Full-cardinality SAX word (segments() bytes).
  const uint8_t* sax() const { return sax_.data(); }

  bool has_envelope() const { return has_envelope_; }
  /// Warping window the envelope was built for (0 without an envelope).
  size_t dtw_window() const { return dtw_window_; }
  const Envelope& envelope() const;
  const EnvelopePaa& envelope_paa() const;

 private:
  const float* series_ = nullptr;
  size_t length_ = 0;
  size_t dtw_window_ = 0;
  bool has_envelope_ = false;
  std::vector<double> paa_;
  std::vector<uint8_t> sax_;
  Envelope envelope_;         // DTW only
  EnvelopePaa envelope_paa_;  // DTW only
};

/// The prepared form of one query batch: one PreparedQuery per query, built
/// either up front (Prepare, optionally across a thread pool) or
/// incrementally (Allocate + Admit — the online-stream path, where each
/// query is summarized at its arrival time) and shared — by reference —
/// across scheduling estimates, all replicas, and work-stealing thieves.
/// This turns the former O(replicas x retries) summarization cost into O(1)
/// per query per batch.
class PreparedBatch {
 public:
  PreparedBatch() = default;

  // Movable despite the atomic admission counter (moves happen only at
  // build/return time, never concurrently with admission).
  PreparedBatch(PreparedBatch&& other) noexcept
      : queries_(std::move(other.queries_)),
        admitted_(other.admitted_.load(std::memory_order_relaxed)) {}
  PreparedBatch& operator=(PreparedBatch&& other) noexcept {
    queries_ = std::move(other.queries_);
    admitted_.store(other.admitted_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }

  /// Prepares every query of `queries`. When `pool` is non-null the
  /// per-query work is spread over the pool's workers (summaries are
  /// independent, so the result is identical to the serial build).
  static PreparedBatch Prepare(const SeriesCollection& queries,
                               const IsaxConfig& config,
                               bool build_dtw_envelope = false,
                               size_t dtw_window = 0,
                               ThreadPool* pool = nullptr);

  /// Allocates `count` empty slots for online admission (AnswerStream):
  /// slot q is later filled in place by Admit at query q's arrival time.
  /// Slots never reallocate, so admission on a prep thread is safe while
  /// earlier queries execute; a slot must not be read before its admission
  /// (readers are synchronized externally — the coordinator dispatches a
  /// query only after admitting it, and dispatch messages order the
  /// memory).
  static PreparedBatch Allocate(size_t count);

  /// Prepares slot `i` in place (the incremental form of Prepare's loop).
  /// Thread-safe for distinct slots. Returns the admitted count so far.
  size_t Admit(size_t i, const float* series, const IsaxConfig& config,
               bool build_dtw_envelope = false, size_t dtw_window = 0);

  /// Number of slots admitted so far (== size() after Prepare).
  size_t admitted() const {
    return admitted_.load(std::memory_order_acquire);
  }

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const PreparedQuery& query(size_t i) const;

 private:
  std::vector<PreparedQuery> queries_;
  std::atomic<size_t> admitted_{0};
};

}  // namespace odyssey

#endif  // ODYSSEY_QUERY_PREPARED_QUERY_H_
