#ifndef ODYSSEY_QUERY_PREPARED_QUERY_H_
#define ODYSSEY_QUERY_PREPARED_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/dataset/series_collection.h"
#include "src/distance/lb_keogh.h"
#include "src/isax/isax_word.h"
#include "src/isax/mindist.h"

namespace odyssey {

class ThreadPool;

/// Immutable per-query summaries, computed once and shared by every
/// consumer of the query-answering path (Figure 3, stages 3-5): the
/// scheduler's execution-time estimation, every replica's execution, and
/// stolen-work runs on thief nodes. Holds the query's PAA, its
/// full-cardinality SAX word and — when built for DTW — the Sakoe-Chiba
/// envelope plus the envelope's per-segment PAA.
///
/// A PreparedQuery does not own the raw series; the underlying
/// SeriesCollection must outlive it (NodeRuntime already requires the query
/// batch to outlive the batch run, so this adds no new constraint).
class PreparedQuery {
 public:
  /// Empty summary; only useful as a slot to assign a real one into.
  PreparedQuery() = default;

  /// Builds the summaries of `series` under `config`. With
  /// `build_dtw_envelope`, additionally builds the warping envelope for
  /// `dtw_window` and its PAA (required by DTW executions).
  static PreparedQuery Prepare(const float* series, const IsaxConfig& config,
                               bool build_dtw_envelope = false,
                               size_t dtw_window = 0);

  const float* series() const { return series_; }
  size_t length() const { return length_; }
  int segments() const { return static_cast<int>(sax_.size()); }

  /// Segment means (segments() doubles).
  const double* paa() const { return paa_.data(); }
  /// Full-cardinality SAX word (segments() bytes).
  const uint8_t* sax() const { return sax_.data(); }

  bool has_envelope() const { return has_envelope_; }
  /// Warping window the envelope was built for (0 without an envelope).
  size_t dtw_window() const { return dtw_window_; }
  const Envelope& envelope() const;
  const EnvelopePaa& envelope_paa() const;

 private:
  const float* series_ = nullptr;
  size_t length_ = 0;
  size_t dtw_window_ = 0;
  bool has_envelope_ = false;
  std::vector<double> paa_;
  std::vector<uint8_t> sax_;
  Envelope envelope_;         // DTW only
  EnvelopePaa envelope_paa_;  // DTW only
};

/// The prepared form of one query batch: one PreparedQuery per query, built
/// up front (optionally across a thread pool) and shared — by reference —
/// across scheduling estimates, all replicas, and work-stealing thieves.
/// This turns the former O(replicas x retries) summarization cost into O(1)
/// per query per batch.
class PreparedBatch {
 public:
  PreparedBatch() = default;

  /// Prepares every query of `queries`. When `pool` is non-null the
  /// per-query work is spread over the pool's workers (summaries are
  /// independent, so the result is identical to the serial build).
  static PreparedBatch Prepare(const SeriesCollection& queries,
                               const IsaxConfig& config,
                               bool build_dtw_envelope = false,
                               size_t dtw_window = 0,
                               ThreadPool* pool = nullptr);

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const PreparedQuery& query(size_t i) const;

 private:
  std::vector<PreparedQuery> queries_;
};

}  // namespace odyssey

#endif  // ODYSSEY_QUERY_PREPARED_QUERY_H_
