#include "src/isax/breakpoints.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace odyssey {

double InverseNormalCdf(double p) {
  ODYSSEY_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations in three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  double q, r, x;
  if (p < kLow) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kLow) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

BreakpointTable::BreakpointTable() {
  by_bits_.resize(kMaxSaxBits + 1);
  for (int bits = 1; bits <= kMaxSaxBits; ++bits) {
    const uint32_t cardinality = 1u << bits;
    std::vector<double>& bps = by_bits_[bits];
    bps.reserve(cardinality - 1);
    for (uint32_t i = 1; i < cardinality; ++i) {
      bps.push_back(InverseNormalCdf(static_cast<double>(i) /
                                     static_cast<double>(cardinality)));
    }
  }
}

const BreakpointTable& BreakpointTable::Get() {
  // Function-local static reference; never destroyed (trivial shutdown).
  static const BreakpointTable& table = *new BreakpointTable();
  return table;
}

const std::vector<double>& BreakpointTable::ForBits(int bits) const {
  ODYSSEY_CHECK(bits >= 1 && bits <= kMaxSaxBits);
  return by_bits_[bits];
}

uint8_t BreakpointTable::MaxBitsSymbol(double value) const {
  const std::vector<double>& bps = by_bits_[kMaxSaxBits];
  // Symbol = number of breakpoints strictly below `value`: region r covers
  // (bp[r-1], bp[r]].
  const auto it = std::lower_bound(bps.begin(), bps.end(), value);
  return static_cast<uint8_t>(it - bps.begin());
}

double BreakpointTable::RegionLower(int bits, uint32_t symbol) const {
  const std::vector<double>& bps = ForBits(bits);
  if (symbol == 0) return -std::numeric_limits<double>::infinity();
  ODYSSEY_CHECK(symbol < (1u << bits));
  return bps[symbol - 1];
}

double BreakpointTable::RegionUpper(int bits, uint32_t symbol) const {
  const std::vector<double>& bps = ForBits(bits);
  ODYSSEY_CHECK(symbol < (1u << bits));
  if (symbol == (1u << bits) - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return bps[symbol];
}

}  // namespace odyssey
