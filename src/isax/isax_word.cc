#include "src/isax/isax_word.h"

#include "src/common/summary_stats.h"

namespace odyssey {

void ComputeSax(const float* series, const IsaxConfig& config, uint8_t* out) {
  std::vector<double> paa(config.segments());
  ComputePaa(series, config.paa, paa.data());
  ComputeSaxFromPaa(paa.data(), config, out);
}

void ComputeSaxFromPaa(const double* paa, const IsaxConfig& config,
                       uint8_t* out) {
  summary_stats::CountSax();
  const BreakpointTable& table = BreakpointTable::Get();
  const int shift = kMaxSaxBits - config.max_bits;
  for (int i = 0; i < config.segments(); ++i) {
    out[i] = static_cast<uint8_t>(table.MaxBitsSymbol(paa[i]) >> shift);
  }
}

IsaxWord IsaxWord::Root(const IsaxConfig& config, uint32_t root_key) {
  IsaxWord word;
  const int w = config.segments();
  word.symbols.resize(w);
  word.bits.assign(w, 1);
  for (int i = 0; i < w; ++i) {
    word.symbols[i] = static_cast<uint8_t>((root_key >> (w - 1 - i)) & 1u);
  }
  return word;
}

bool IsaxWord::Matches(const uint8_t* sax, const IsaxConfig& config) const {
  for (size_t i = 0; i < symbols.size(); ++i) {
    const int shift = config.max_bits - bits[i];
    if (static_cast<uint8_t>(sax[i] >> shift) != symbols[i]) return false;
  }
  return true;
}

std::string IsaxWord::ToString() const {
  std::string out;
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (i > 0) out += '|';
    for (int b = bits[i] - 1; b >= 0; --b) {
      out += ((symbols[i] >> b) & 1u) ? '1' : '0';
    }
  }
  return out;
}

uint32_t RootKey(const uint8_t* sax, const IsaxConfig& config) {
  uint32_t key = 0;
  const int top = config.max_bits - 1;
  for (int i = 0; i < config.segments(); ++i) {
    key = (key << 1) | ((sax[i] >> top) & 1u);
  }
  return key;
}

}  // namespace odyssey
