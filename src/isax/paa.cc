#include "src/isax/paa.h"

namespace odyssey {

void ComputePaa(const float* series, const PaaConfig& config, double* out) {
  for (int i = 0; i < config.segments; ++i) {
    const size_t begin = config.SegmentBegin(i);
    const size_t end = config.SegmentEnd(i);
    double sum = 0.0;
    for (size_t t = begin; t < end; ++t) sum += series[t];
    out[i] = sum / static_cast<double>(end - begin);
  }
}

std::vector<double> ComputePaa(const float* series, const PaaConfig& config) {
  std::vector<double> out(config.segments);
  ComputePaa(series, config, out.data());
  return out;
}

}  // namespace odyssey
