#include "src/isax/paa.h"

#include "src/common/summary_stats.h"
#include "src/distance/simd.h"

namespace odyssey {

void ComputePaa(const float* series, const PaaConfig& config, double* out) {
  summary_stats::CountPaa();
  simd::ActiveTable().paa(series, config.series_length, config.segments, out);
}

std::vector<double> ComputePaa(const float* series, const PaaConfig& config) {
  std::vector<double> out(config.segments);
  ComputePaa(series, config, out.data());
  return out;
}

}  // namespace odyssey
