#include "src/isax/mindist.h"

#include <algorithm>

namespace odyssey {
namespace {

/// Squared, count-weighted gap between value `q` and region [lo, hi].
inline double SegmentGapSq(double q, double lo, double hi, size_t count) {
  double gap = 0.0;
  if (q < lo) {
    gap = lo - q;
  } else if (q > hi) {
    gap = q - hi;
  }
  return static_cast<double>(count) * gap * gap;
}

/// Squared, count-weighted gap between the band [ql, qu] and region
/// [lo, hi]: positive only when the intervals are disjoint.
inline double BandGapSq(double ql, double qu, double lo, double hi,
                        size_t count) {
  double gap = 0.0;
  if (lo > qu) {
    gap = lo - qu;
  } else if (hi < ql) {
    gap = ql - hi;
  }
  return static_cast<double>(count) * gap * gap;
}

}  // namespace

float MindistPaaToWord(const double* query_paa, const IsaxWord& word,
                       const IsaxConfig& config) {
  const BreakpointTable& table = BreakpointTable::Get();
  double sum = 0.0;
  for (int i = 0; i < config.segments(); ++i) {
    const int bits = word.bits[i];
    const uint32_t symbol = word.symbols[i];
    sum += SegmentGapSq(query_paa[i], table.RegionLower(bits, symbol),
                        table.RegionUpper(bits, symbol),
                        config.paa.SegmentCount(i));
  }
  return static_cast<float>(sum);
}

float MindistPaaToSax(const double* query_paa, const uint8_t* sax,
                      const IsaxConfig& config) {
  const BreakpointTable& table = BreakpointTable::Get();
  const int bits = config.max_bits;
  double sum = 0.0;
  for (int i = 0; i < config.segments(); ++i) {
    sum += SegmentGapSq(query_paa[i], table.RegionLower(bits, sax[i]),
                        table.RegionUpper(bits, sax[i]),
                        config.paa.SegmentCount(i));
  }
  return static_cast<float>(sum);
}

EnvelopePaa ComputeEnvelopePaa(const Envelope& envelope,
                               const IsaxConfig& config) {
  EnvelopePaa out;
  out.upper = ComputePaa(envelope.upper.data(), config.paa);
  out.lower = ComputePaa(envelope.lower.data(), config.paa);
  return out;
}

float MindistEnvelopeToWord(const EnvelopePaa& env_paa, const IsaxWord& word,
                            const IsaxConfig& config) {
  const BreakpointTable& table = BreakpointTable::Get();
  double sum = 0.0;
  for (int i = 0; i < config.segments(); ++i) {
    const int bits = word.bits[i];
    const uint32_t symbol = word.symbols[i];
    sum += BandGapSq(env_paa.lower[i], env_paa.upper[i],
                     table.RegionLower(bits, symbol),
                     table.RegionUpper(bits, symbol),
                     config.paa.SegmentCount(i));
  }
  return static_cast<float>(sum);
}

float MindistEnvelopeToSax(const EnvelopePaa& env_paa, const uint8_t* sax,
                           const IsaxConfig& config) {
  const BreakpointTable& table = BreakpointTable::Get();
  const int bits = config.max_bits;
  double sum = 0.0;
  for (int i = 0; i < config.segments(); ++i) {
    sum += BandGapSq(env_paa.lower[i], env_paa.upper[i],
                     table.RegionLower(bits, sax[i]),
                     table.RegionUpper(bits, sax[i]),
                     config.paa.SegmentCount(i));
  }
  return static_cast<float>(sum);
}

}  // namespace odyssey
