#ifndef ODYSSEY_ISAX_MINDIST_H_
#define ODYSSEY_ISAX_MINDIST_H_

#include "src/distance/lb_keogh.h"
#include "src/isax/isax_word.h"

namespace odyssey {

/// Lower-bound ("mindist") distances between a query and iSAX summaries.
/// All results are squared, consistent with the distance kernels, and are
/// guaranteed <= the squared Euclidean (resp. DTW) distance between the
/// query and ANY series summarized by the word — the invariant that makes
/// pruning exact.

/// Squared lower bound between a query PAA and a variable-cardinality iSAX
/// word. Per segment: the gap between the query's PAA value and the
/// breakpoint region of the word's symbol, squared, weighted by the
/// segment's point count.
float MindistPaaToWord(const double* query_paa, const IsaxWord& word,
                       const IsaxConfig& config);

/// Squared lower bound between a query PAA and a full-cardinality SAX
/// summary (a leaf's per-series summary; the tightest summary-level filter
/// applied before computing a real distance).
float MindistPaaToSax(const double* query_paa, const uint8_t* sax,
                      const IsaxConfig& config);

/// Per-segment PAA of a DTW warping envelope: means of the upper and lower
/// envelope over each segment. Precomputed once per query.
struct EnvelopePaa {
  std::vector<double> upper;
  std::vector<double> lower;
};

/// Builds the per-segment envelope PAA.
EnvelopePaa ComputeEnvelopePaa(const Envelope& envelope,
                               const IsaxConfig& config);

/// Squared DTW lower bound between a query envelope (segment-level) and an
/// iSAX word: a segment contributes only when the word's whole breakpoint
/// region lies outside the envelope band (LB_PAA of Keogh & Ratanamahatana
/// lifted to iSAX regions). Guaranteed <= squared LB_Keogh <= squared DTW.
float MindistEnvelopeToWord(const EnvelopePaa& env_paa, const IsaxWord& word,
                            const IsaxConfig& config);

/// Same bound against a full-cardinality SAX summary.
float MindistEnvelopeToSax(const EnvelopePaa& env_paa, const uint8_t* sax,
                           const IsaxConfig& config);

}  // namespace odyssey

#endif  // ODYSSEY_ISAX_MINDIST_H_
