#ifndef ODYSSEY_ISAX_PAA_H_
#define ODYSSEY_ISAX_PAA_H_

#include <cstddef>
#include <vector>

#include "src/common/check.h"

namespace odyssey {

/// Piecewise Aggregate Approximation: the x-axis is split into `segments`
/// contiguous ranges and each range is represented by its mean. Segment
/// boundaries are the integer partition [floor(i*n/w), floor((i+1)*n/w));
/// sizes may differ by one point when w does not divide n, and every lower
/// bound in this library weights each segment by its exact point count, so
/// the bounds remain valid for any (n, w).
struct PaaConfig {
  size_t series_length = 0;
  int segments = 16;

  PaaConfig() = default;
  PaaConfig(size_t length, int segs) : series_length(length), segments(segs) {
    ODYSSEY_CHECK(length > 0);
    ODYSSEY_CHECK(segs >= 1 && static_cast<size_t>(segs) <= length);
  }

  /// First point of segment i.
  size_t SegmentBegin(int i) const {
    return static_cast<size_t>(i) * series_length /
           static_cast<size_t>(segments);
  }
  /// One past the last point of segment i.
  size_t SegmentEnd(int i) const { return SegmentBegin(i + 1); }
  /// Number of points in segment i (>= 1).
  size_t SegmentCount(int i) const { return SegmentEnd(i) - SegmentBegin(i); }
};

/// Computes the PAA of `series` into `out` (`config.segments` doubles).
/// Dispatches to the active SIMD summarization kernel (src/distance/simd.h).
void ComputePaa(const float* series, const PaaConfig& config, double* out);

/// Convenience overload returning a vector.
std::vector<double> ComputePaa(const float* series, const PaaConfig& config);

}  // namespace odyssey

#endif  // ODYSSEY_ISAX_PAA_H_
