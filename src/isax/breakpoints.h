#ifndef ODYSSEY_ISAX_BREAKPOINTS_H_
#define ODYSSEY_ISAX_BREAKPOINTS_H_

#include <cstdint>
#include <vector>

namespace odyssey {

/// SAX breakpoints: the y-axis of a z-normalized series is cut into 2^bits
/// regions of equal probability under N(0, 1); the 2^bits - 1 cut points are
/// standard-normal quantiles. Because the b-bit quantile set is exactly the
/// even-indexed subset of the (b+1)-bit set, the b-bit symbol of a value is
/// always the (b+1)-bit symbol shifted right by one — the prefix property
/// that makes the iSAX tree's cardinality refinement work.

/// Maximum per-segment cardinality is 2^kMaxSaxBits (symbols fit a byte).
inline constexpr int kMaxSaxBits = 8;

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Exposed for tests.
double InverseNormalCdf(double p);

/// Precomputed breakpoint tables for every bit depth 1..kMaxSaxBits.
class BreakpointTable {
 public:
  /// The process-wide table (built once, immutable afterwards).
  static const BreakpointTable& Get();

  /// Breakpoints for `bits`-bit symbols: sorted vector of 2^bits - 1 values.
  /// Region r (symbol value r) covers (bp[r-1], bp[r]], with bp[-1] = -inf
  /// and bp[2^bits - 1] = +inf; region 0 is the lowest.
  const std::vector<double>& ForBits(int bits) const;

  /// The symbol (region index, 0 = lowest) of `value` at kMaxSaxBits bits.
  /// Symbols at fewer bits b are obtained as Symbol(v) >> (kMaxSaxBits - b).
  uint8_t MaxBitsSymbol(double value) const;

  /// Lower edge of region `symbol` at `bits` bits (-inf for symbol 0).
  double RegionLower(int bits, uint32_t symbol) const;
  /// Upper edge of region `symbol` at `bits` bits (+inf for the top region).
  double RegionUpper(int bits, uint32_t symbol) const;

 private:
  BreakpointTable();

  std::vector<std::vector<double>> by_bits_;  // index: bits (1..kMaxSaxBits)
};

}  // namespace odyssey

#endif  // ODYSSEY_ISAX_BREAKPOINTS_H_
