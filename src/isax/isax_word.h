#ifndef ODYSSEY_ISAX_ISAX_WORD_H_
#define ODYSSEY_ISAX_ISAX_WORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/isax/breakpoints.h"
#include "src/isax/paa.h"

namespace odyssey {

/// Shared configuration of the iSAX summarization layer: PAA geometry plus
/// symbol width. All indexes, words and lower bounds are interpreted
/// relative to one IsaxConfig.
struct IsaxConfig {
  PaaConfig paa;
  /// Bits per segment at maximum cardinality (symbols are 2^max_bits-ary).
  int max_bits = kMaxSaxBits;

  IsaxConfig() = default;
  IsaxConfig(size_t series_length, int segments, int bits = kMaxSaxBits)
      : paa(series_length, segments), max_bits(bits) {
    ODYSSEY_CHECK(bits >= 1 && bits <= kMaxSaxBits);
  }

  int segments() const { return paa.segments; }
  size_t series_length() const { return paa.series_length; }
};

/// A full-cardinality SAX summary: one max_bits-bit symbol per segment,
/// stored one byte per segment. This is what summarization buffers and index
/// leaves keep per series.
using SaxSymbols = std::vector<uint8_t>;

/// Computes the full-cardinality SAX symbols of `series` into `out`
/// (config.segments() bytes). Derives a PAA internally; when the caller
/// already holds one (the PreparedQuery pipeline), use ComputeSaxFromPaa.
void ComputeSax(const float* series, const IsaxConfig& config, uint8_t* out);

/// Quantizes an existing PAA (config.segments() doubles) into SAX symbols
/// without recomputing the segment means.
void ComputeSaxFromPaa(const double* paa, const IsaxConfig& config,
                       uint8_t* out);

/// An iSAX word with per-segment variable cardinality: `symbols[i]` holds
/// the top `bits[i]` bits of segment i's full symbol (right-aligned).
/// Index-tree nodes are labelled with such words; refining a node adds one
/// bit to one segment.
struct IsaxWord {
  std::vector<uint8_t> symbols;
  std::vector<uint8_t> bits;

  /// The root word of a subtree: every segment at 1 bit.
  static IsaxWord Root(const IsaxConfig& config, uint32_t root_key);

  /// True if a series with full-cardinality symbols `sax` falls under this
  /// word (every segment's bits[i]-bit prefix matches).
  bool Matches(const uint8_t* sax, const IsaxConfig& config) const;

  /// Human-readable form like "01|1|00" (for debugging and logs).
  std::string ToString() const;
};

/// The root key of a SAX summary: the top bit of each segment's symbol,
/// segment 0 in the most significant position. Identifies which of the
/// 2^segments root subtrees the series belongs to, and is the unit the
/// DENSITY-AWARE partitioner orders by Gray rank.
uint32_t RootKey(const uint8_t* sax, const IsaxConfig& config);

}  // namespace odyssey

#endif  // ODYSSEY_ISAX_ISAX_WORD_H_
