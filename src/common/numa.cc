#include "src/common/numa.h"

#include <cctype>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sched.h>

#include <fstream>
#endif

#if defined(ODYSSEY_HAVE_LIBNUMA)
#include <numa.h>
#endif

#include "src/common/sync.h"

namespace odyssey {
namespace numa {
namespace {

struct Topology {
  bool enabled = false;
  /// Per-node CPU lists (node_cpus.size() == node count, always >= 1).
  /// A node's list can be empty (memory-only node); BindCurrentThread
  /// refuses those.
  std::vector<std::vector<int>> node_cpus;
};

#if defined(__linux__)
/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids. Malformed input
/// yields whatever prefix parsed cleanly — placement is best-effort.
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  size_t i = 0;
  while (i < text.size()) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) break;
    size_t used = 0;
    const int lo = std::stoi(text.substr(i), &used);
    i += used;
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (i >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[i]))) {
        break;
      }
      hi = std::stoi(text.substr(i), &used);
      i += used;
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i < text.size() && text[i] == ',') ++i;
  }
  return cpus;
}

/// Linux fallback when libnuma is absent: one nodeN directory per NUMA
/// node, each with a cpulist file.
std::vector<std::vector<int>> ReadSysfsTopology() {
  std::vector<std::vector<int>> nodes;
  for (int n = 0;; ++n) {
    std::ifstream cpulist("/sys/devices/system/node/node" +
                          std::to_string(n) + "/cpulist");
    if (!cpulist.is_open()) break;
    std::string text;
    std::getline(cpulist, text);
    nodes.push_back(ParseCpuList(text));
  }
  return nodes;
}
#endif  // __linux__

#if defined(ODYSSEY_HAVE_LIBNUMA)
std::vector<std::vector<int>> ReadLibnumaTopology() {
  std::vector<std::vector<int>> nodes;
  if (numa_available() < 0) return nodes;
  const int count = numa_num_configured_nodes();
  struct bitmask* mask = numa_allocate_cpumask();
  for (int n = 0; n < count; ++n) {
    std::vector<int> cpus;
    if (numa_node_to_cpus(n, mask) == 0) {
      for (unsigned int c = 0; c < mask->size; ++c) {
        if (numa_bitmask_isbitset(mask, c)) cpus.push_back(static_cast<int>(c));
      }
    }
    nodes.push_back(std::move(cpus));
  }
  numa_free_cpumask(mask);
  return nodes;
}
#endif  // ODYSSEY_HAVE_LIBNUMA

std::unique_ptr<Topology> BuildTopology() {
  auto topo = std::make_unique<Topology>();
#if defined(ODYSSEY_HAVE_LIBNUMA)
  topo->node_cpus = ReadLibnumaTopology();
#endif
#if defined(__linux__)
  if (topo->node_cpus.empty()) topo->node_cpus = ReadSysfsTopology();
#endif
  if (topo->node_cpus.empty()) topo->node_cpus.emplace_back();  // 1 node
  // Policy: ODYSSEY_NUMA unset/empty = auto (multi-node machines only),
  // "0"/"off" = forced off, anything else = forced on (single-socket CI
  // exercises the binding path this way).
  const char* env = std::getenv("ODYSSEY_NUMA");
  if (env == nullptr || *env == '\0') {
    topo->enabled = topo->node_cpus.size() > 1;
  } else {
    const std::string value(env);
    topo->enabled = !(value == "0" || value == "off" || value == "OFF");
  }
  return topo;
}

Mutex g_mu;
// Built once under g_mu, immutable afterwards (ResetForTest is the
// documented single-threaded exception).
std::unique_ptr<Topology>* TopologySlot() {
  static std::unique_ptr<Topology> slot;
  return &slot;
}

const Topology& GetTopology() {
  MutexLock lock(&g_mu);
  std::unique_ptr<Topology>& slot = *TopologySlot();
  if (slot == nullptr) slot = BuildTopology();
  return *slot;
}

}  // namespace

int NodeCount() {
  return static_cast<int>(GetTopology().node_cpus.size());
}

bool Enabled() { return GetTopology().enabled; }

int NodeForGroup(int group) {
  const Topology& topo = GetTopology();
  if (!topo.enabled || group < 0) return -1;
  return group % static_cast<int>(topo.node_cpus.size());
}

bool BindCurrentThread(int node) {
  const Topology& topo = GetTopology();
  if (!topo.enabled || node < 0 ||
      node >= static_cast<int>(topo.node_cpus.size())) {
    return false;
  }
  const std::vector<int>& cpus = topo.node_cpus[static_cast<size_t>(node)];
  if (cpus.empty()) return false;  // memory-only node, nothing to run on
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

void ResetForTest() {
  MutexLock lock(&g_mu);
  TopologySlot()->reset();
}

}  // namespace numa
}  // namespace odyssey
