#ifndef ODYSSEY_COMMON_HOTPATH_H_
#define ODYSSEY_COMMON_HOTPATH_H_

/// Hot-path purity contract, the companion of src/common/sync.h's locking
/// contract. A function annotated ODYSSEY_HOT promises that every execution
/// path through it and its callees is *pure* in the systems sense: no heap
/// allocation or deallocation, no container growth, no mutex acquisition or
/// condition-variable wait, no getenv, no throwing construct, no I/O
/// syscall. These are the scoring loops the paper's Fig. 13 throughput
/// numbers assume never stall — the SIMD kernel table, the RS-batch claim
/// loops, SAX filters and real-distance scans, KnnSet::Offer, and the
/// Mailbox fast path.
///
/// Enforcement is two-layered (see ARCHITECTURE.md "Hot-path contract"):
///
///  * Statically, tools/check_hot_paths.py builds a call graph over the
///    translation units in compile_commands.json and fails CI on any path
///    from an ODYSSEY_HOT function to a forbidden sink. Kernel-table
///    function pointers are resolved through their positional initializers,
///    so the indirect kernels_->xxx(...) dispatch edges are walked too.
///
///  * Dynamically, the test-only counting allocator in
///    tests/testing_utils.h attributes every operator new/delete that runs
///    while the current thread is inside a ScopedHotRegion, and
///    query_test/executor_test assert the steady-state processing phase
///    performs zero of them after warm-up — a checker false-negative still
///    fails CTest.
///
/// Sanctioned impurity is spelled at the function, not hidden from the
/// tool: ODYSSEY_HOT_ALLOWS("lock: one steal_mu_ snapshot at phase entry")
/// excuses only the named sink categories (alloc, lock, wait, indirect,
/// io, throw — comma-separated before the colon) and only inside that
/// function's own body; the walk still continues into its callees.
/// Cross-function excuses (e.g. a std::function BSF broadcast the checker
/// cannot resolve) live in the committed tools/hotpath_allowlist.txt with
/// the same reason-string discipline.

// ------------------------------------------------------------------ macros

#if defined(__GNUC__) || defined(__clang__)
/// Marks a function as a purity-checked hot path. Expands to the `hot`
/// codegen attribute (optimize-for-speed placement) on GCC/Clang; the
/// static checker keys on the macro token itself, so the annotation is
/// meaningful even where the attribute is a no-op.
#define ODYSSEY_HOT __attribute__((hot))
#else
#define ODYSSEY_HOT
#endif

/// Escape hatch, placed in the signature of an ODYSSEY_HOT function (or a
/// function reached from one): excuses the listed sink categories within
/// this function's own body, for the stated reason. Format:
/// "cat1,cat2: reason". Expands to nothing; it exists for the checker and
/// the reader.
#define ODYSSEY_HOT_ALLOWS(reason)

// ---------------------------------------------------- dynamic region marker

namespace odyssey {
namespace hotpath {

/// True while the current thread is inside a ScopedHotRegion and not inside
/// a ScopedAllowance. The test-only counting allocator
/// (tests/testing_utils.h) reads this to attribute heap traffic to the
/// steady-state scoring loops; production code never branches on it.
bool InHotRegion();

/// RAII marker opened at the top of a processing-phase body
/// (QueryExecution::ProcessingPhase, GroupedQueryExecution's claim loop).
/// One thread-local increment per phase entry — zero per-candidate cost.
class ScopedHotRegion {
 public:
  ScopedHotRegion();
  ~ScopedHotRegion();
  ScopedHotRegion(const ScopedHotRegion&) = delete;
  ScopedHotRegion& operator=(const ScopedHotRegion&) = delete;
};

/// RAII suspension of hot-region attribution around sanctioned impurity —
/// today the cross-node BSF broadcast callback, which intentionally takes
/// the mailbox lock and enqueues a message from inside a scan.
class ScopedAllowance {
 public:
  ScopedAllowance();
  ~ScopedAllowance();
  ScopedAllowance(const ScopedAllowance&) = delete;
  ScopedAllowance& operator=(const ScopedAllowance&) = delete;
};

}  // namespace hotpath
}  // namespace odyssey

#endif  // ODYSSEY_COMMON_HOTPATH_H_
