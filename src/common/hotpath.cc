#include "src/common/hotpath.h"

namespace odyssey {
namespace hotpath {
namespace {

// Depth counters rather than flags so regions and allowances nest safely
// (a grouped scan may re-enter through a per-query fallback path).
thread_local int hot_depth = 0;
thread_local int allowance_depth = 0;

}  // namespace

bool InHotRegion() { return hot_depth > 0 && allowance_depth == 0; }

ScopedHotRegion::ScopedHotRegion() { ++hot_depth; }
ScopedHotRegion::~ScopedHotRegion() { --hot_depth; }

ScopedAllowance::ScopedAllowance() { ++allowance_depth; }
ScopedAllowance::~ScopedAllowance() { --allowance_depth; }

}  // namespace hotpath
}  // namespace odyssey
