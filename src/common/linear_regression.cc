#include "src/common/linear_regression.h"

#include <cmath>

#include "src/common/check.h"

namespace odyssey {

Status LinearRegression::Fit(const std::vector<double>& x,
                             const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y must have the same size");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("need at least 2 samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx < 1e-30) {
    return Status::InvalidArgument("x is constant; slope undefined");
  }
  slope_ = sxy / sxx;
  intercept_ = my - slope_ * mx;
  // R^2 = 1 - SS_res / SS_tot (define as 1 when y is constant and the fit
  // is exact).
  double ss_res = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (slope_ * x[i] + intercept_);
    ss_res += r * r;
  }
  r_squared_ = (syy < 1e-30) ? 1.0 : 1.0 - ss_res / syy;
  fitted_ = true;
  return Status::Ok();
}

double LinearRegression::Predict(double x) const {
  ODYSSEY_CHECK_MSG(fitted_, "Predict before Fit");
  return slope_ * x + intercept_;
}

}  // namespace odyssey
