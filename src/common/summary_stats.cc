#include "src/common/summary_stats.h"

#include <atomic>

namespace odyssey {
namespace summary_stats {
namespace {

// One cache line per counter: index construction increments the PAA and
// SAX counters from every build thread (once per data series), and packing
// them together would make each increment ping-pong the others' line too.
alignas(64) std::atomic<uint64_t> g_paa_calls{0};
alignas(64) std::atomic<uint64_t> g_sax_calls{0};
alignas(64) std::atomic<uint64_t> g_envelope_calls{0};

}  // namespace

uint64_t PaaCalls() { return g_paa_calls.load(std::memory_order_relaxed); }
uint64_t SaxCalls() { return g_sax_calls.load(std::memory_order_relaxed); }
uint64_t EnvelopeCalls() {
  return g_envelope_calls.load(std::memory_order_relaxed);
}

void Reset() {
  g_paa_calls.store(0, std::memory_order_relaxed);
  g_sax_calls.store(0, std::memory_order_relaxed);
  g_envelope_calls.store(0, std::memory_order_relaxed);
}

void CountPaa() { g_paa_calls.fetch_add(1, std::memory_order_relaxed); }
void CountSax() { g_sax_calls.fetch_add(1, std::memory_order_relaxed); }
void CountEnvelope() {
  g_envelope_calls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace summary_stats

namespace build_stats {
namespace {

// Build-path counters are incremented once per chunk bundle (not per
// series), so contention is negligible; they still get their own lines so
// the query-time counters above never false-share with them.
alignas(64) std::atomic<uint64_t> g_chunks_built{0};
alignas(64) std::atomic<uint64_t> g_chunk_bytes{0};
alignas(64) std::atomic<uint64_t> g_summaries_built{0};
// Stored as nanoseconds so the accumulator stays a lock-free integer.
alignas(64) std::atomic<uint64_t> g_overlap_nanos{0};

}  // namespace

uint64_t ChunksBuilt() {
  return g_chunks_built.load(std::memory_order_relaxed);
}
uint64_t ChunkBytes() {
  return g_chunk_bytes.load(std::memory_order_relaxed);
}
uint64_t SummariesBuilt() {
  return g_summaries_built.load(std::memory_order_relaxed);
}
double OverlapSeconds() {
  return static_cast<double>(g_overlap_nanos.load(std::memory_order_relaxed)) *
         1e-9;
}

void Reset() {
  g_chunks_built.store(0, std::memory_order_relaxed);
  g_chunk_bytes.store(0, std::memory_order_relaxed);
  g_summaries_built.store(0, std::memory_order_relaxed);
  g_overlap_nanos.store(0, std::memory_order_relaxed);
}

void CountChunk(uint64_t bytes, uint64_t summaries) {
  g_chunks_built.fetch_add(1, std::memory_order_relaxed);
  g_chunk_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_summaries_built.fetch_add(summaries, std::memory_order_relaxed);
}

void AddOverlapSeconds(double seconds) {
  if (seconds <= 0.0) return;
  g_overlap_nanos.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
}

}  // namespace build_stats

namespace executor_stats {
namespace {

// Thread creation is rare (pools and persistent node threads, never the
// query hot path — that is the point); the in-flight mark is updated once
// per query admission. Own lines anyway, mirroring the other stat groups.
alignas(64) std::atomic<uint64_t> g_threads_spawned{0};
alignas(64) std::atomic<uint64_t> g_inflight_hwm{0};
alignas(64) std::atomic<uint64_t> g_prep_overlap_nanos{0};

}  // namespace

uint64_t ThreadsSpawned() {
  return g_threads_spawned.load(std::memory_order_relaxed);
}
uint64_t QueriesInFlightHwm() {
  return g_inflight_hwm.load(std::memory_order_relaxed);
}
double PrepOverlapSeconds() {
  return static_cast<double>(
             g_prep_overlap_nanos.load(std::memory_order_relaxed)) *
         1e-9;
}

void Reset() {
  g_threads_spawned.store(0, std::memory_order_relaxed);
  g_inflight_hwm.store(0, std::memory_order_relaxed);
  g_prep_overlap_nanos.store(0, std::memory_order_relaxed);
}

void CountThreadsSpawned(uint64_t n) {
  g_threads_spawned.fetch_add(n, std::memory_order_relaxed);
}

void RecordQueriesInFlight(uint64_t n) {
  uint64_t current = g_inflight_hwm.load(std::memory_order_relaxed);
  while (n > current &&
         !g_inflight_hwm.compare_exchange_weak(current, n,
                                               std::memory_order_relaxed)) {
  }
}

void AddPrepOverlapSeconds(double seconds) {
  if (seconds <= 0.0) return;
  g_prep_overlap_nanos.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                                 std::memory_order_relaxed);
}

}  // namespace executor_stats

namespace scan_stats {
namespace {

// Incremented once per batched-kernel call (one call covers a whole leaf ×
// query-group product), not per distance — cheap even on the scan path.
alignas(64) std::atomic<uint64_t> g_batched_score_calls{0};
alignas(64) std::atomic<uint64_t> g_series_loads_saved{0};

}  // namespace

uint64_t BatchedScoreCalls() {
  return g_batched_score_calls.load(std::memory_order_relaxed);
}
uint64_t SeriesLoadsSaved() {
  return g_series_loads_saved.load(std::memory_order_relaxed);
}

void Reset() {
  g_batched_score_calls.store(0, std::memory_order_relaxed);
  g_series_loads_saved.store(0, std::memory_order_relaxed);
}

void CountBatchedScore(uint64_t q_count) {
  g_batched_score_calls.fetch_add(1, std::memory_order_relaxed);
  if (q_count > 1) {
    g_series_loads_saved.fetch_add(q_count - 1, std::memory_order_relaxed);
  }
}

}  // namespace scan_stats
}  // namespace odyssey
