#include "src/common/summary_stats.h"

#include <atomic>

namespace odyssey {
namespace summary_stats {
namespace {

// One cache line per counter: index construction increments the PAA and
// SAX counters from every build thread (once per data series), and packing
// them together would make each increment ping-pong the others' line too.
alignas(64) std::atomic<uint64_t> g_paa_calls{0};
alignas(64) std::atomic<uint64_t> g_sax_calls{0};
alignas(64) std::atomic<uint64_t> g_envelope_calls{0};

}  // namespace

uint64_t PaaCalls() { return g_paa_calls.load(std::memory_order_relaxed); }
uint64_t SaxCalls() { return g_sax_calls.load(std::memory_order_relaxed); }
uint64_t EnvelopeCalls() {
  return g_envelope_calls.load(std::memory_order_relaxed);
}

void Reset() {
  g_paa_calls.store(0, std::memory_order_relaxed);
  g_sax_calls.store(0, std::memory_order_relaxed);
  g_envelope_calls.store(0, std::memory_order_relaxed);
}

void CountPaa() { g_paa_calls.fetch_add(1, std::memory_order_relaxed); }
void CountSax() { g_sax_calls.fetch_add(1, std::memory_order_relaxed); }
void CountEnvelope() {
  g_envelope_calls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace summary_stats

namespace build_stats {
namespace {

// Build-path counters are incremented once per chunk bundle (not per
// series), so contention is negligible; they still get their own lines so
// the query-time counters above never false-share with them.
alignas(64) std::atomic<uint64_t> g_chunks_built{0};
alignas(64) std::atomic<uint64_t> g_chunk_bytes{0};
alignas(64) std::atomic<uint64_t> g_summaries_built{0};
// Stored as nanoseconds so the accumulator stays a lock-free integer.
alignas(64) std::atomic<uint64_t> g_overlap_nanos{0};

}  // namespace

uint64_t ChunksBuilt() {
  return g_chunks_built.load(std::memory_order_relaxed);
}
uint64_t ChunkBytes() {
  return g_chunk_bytes.load(std::memory_order_relaxed);
}
uint64_t SummariesBuilt() {
  return g_summaries_built.load(std::memory_order_relaxed);
}
double OverlapSeconds() {
  return static_cast<double>(g_overlap_nanos.load(std::memory_order_relaxed)) *
         1e-9;
}

void Reset() {
  g_chunks_built.store(0, std::memory_order_relaxed);
  g_chunk_bytes.store(0, std::memory_order_relaxed);
  g_summaries_built.store(0, std::memory_order_relaxed);
  g_overlap_nanos.store(0, std::memory_order_relaxed);
}

void CountChunk(uint64_t bytes, uint64_t summaries) {
  g_chunks_built.fetch_add(1, std::memory_order_relaxed);
  g_chunk_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_summaries_built.fetch_add(summaries, std::memory_order_relaxed);
}

void AddOverlapSeconds(double seconds) {
  if (seconds <= 0.0) return;
  g_overlap_nanos.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
}

}  // namespace build_stats

namespace executor_stats {
namespace {

// Thread creation is rare (pools and persistent node threads, never the
// query hot path — that is the point); the in-flight mark is updated once
// per query admission. Own lines anyway, mirroring the other stat groups.
alignas(64) std::atomic<uint64_t> g_threads_spawned{0};
alignas(64) std::atomic<uint64_t> g_inflight_hwm{0};
alignas(64) std::atomic<uint64_t> g_prep_overlap_nanos{0};
alignas(64) std::atomic<uint64_t> g_workers_pinned{0};
alignas(64) std::atomic<uint64_t> g_chunks_placed{0};

}  // namespace

uint64_t ThreadsSpawned() {
  return g_threads_spawned.load(std::memory_order_relaxed);
}
uint64_t QueriesInFlightHwm() {
  return g_inflight_hwm.load(std::memory_order_relaxed);
}
double PrepOverlapSeconds() {
  return static_cast<double>(
             g_prep_overlap_nanos.load(std::memory_order_relaxed)) *
         1e-9;
}
uint64_t WorkersPinned() {
  return g_workers_pinned.load(std::memory_order_relaxed);
}
uint64_t ChunksPlaced() {
  return g_chunks_placed.load(std::memory_order_relaxed);
}

void Reset() {
  g_threads_spawned.store(0, std::memory_order_relaxed);
  g_inflight_hwm.store(0, std::memory_order_relaxed);
  g_prep_overlap_nanos.store(0, std::memory_order_relaxed);
  g_workers_pinned.store(0, std::memory_order_relaxed);
  g_chunks_placed.store(0, std::memory_order_relaxed);
}

void CountThreadsSpawned(uint64_t n) {
  g_threads_spawned.fetch_add(n, std::memory_order_relaxed);
}

void RecordQueriesInFlight(uint64_t n) {
  uint64_t current = g_inflight_hwm.load(std::memory_order_relaxed);
  while (n > current &&
         !g_inflight_hwm.compare_exchange_weak(current, n,
                                               std::memory_order_relaxed)) {
  }
}

void AddPrepOverlapSeconds(double seconds) {
  if (seconds <= 0.0) return;
  g_prep_overlap_nanos.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                                 std::memory_order_relaxed);
}

void CountWorkerPinned() {
  g_workers_pinned.fetch_add(1, std::memory_order_relaxed);
}

void CountChunkPlaced() {
  g_chunks_placed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace executor_stats

namespace scan_stats {
namespace {

// Incremented once per batched-kernel call (one call covers a whole leaf ×
// query-group product), not per distance — cheap even on the scan path.
// Donations are rarer still (once per granted slice, on the comms thread).
alignas(64) std::atomic<uint64_t> g_batched_score_calls{0};
alignas(64) std::atomic<uint64_t> g_series_loads_saved{0};
alignas(64) std::atomic<uint64_t> g_multi_score_calls{0};
alignas(64) std::atomic<uint64_t> g_multi_score_lanes{0};
alignas(64) std::atomic<uint64_t> g_batches_donated{0};
alignas(64) std::atomic<uint64_t> g_donated_series_scanned{0};

}  // namespace

uint64_t BatchedScoreCalls() {
  return g_batched_score_calls.load(std::memory_order_relaxed);
}
uint64_t SeriesLoadsSaved() {
  return g_series_loads_saved.load(std::memory_order_relaxed);
}
uint64_t MultiScoreCalls() {
  return g_multi_score_calls.load(std::memory_order_relaxed);
}
uint64_t MultiScoreLanes() {
  return g_multi_score_lanes.load(std::memory_order_relaxed);
}
uint64_t BatchesDonated() {
  return g_batches_donated.load(std::memory_order_relaxed);
}
uint64_t DonatedSeriesScanned() {
  return g_donated_series_scanned.load(std::memory_order_relaxed);
}

void Reset() {
  g_batched_score_calls.store(0, std::memory_order_relaxed);
  g_series_loads_saved.store(0, std::memory_order_relaxed);
  g_multi_score_calls.store(0, std::memory_order_relaxed);
  g_multi_score_lanes.store(0, std::memory_order_relaxed);
  g_batches_donated.store(0, std::memory_order_relaxed);
  g_donated_series_scanned.store(0, std::memory_order_relaxed);
}

void CountBatchedScore(uint64_t q_count) {
  g_batched_score_calls.fetch_add(1, std::memory_order_relaxed);
  if (q_count > 1) {
    g_series_loads_saved.fetch_add(q_count - 1, std::memory_order_relaxed);
  }
}

void CountMultiScore(uint64_t lanes) {
  g_multi_score_calls.fetch_add(1, std::memory_order_relaxed);
  g_multi_score_lanes.fetch_add(lanes, std::memory_order_relaxed);
}

void CountBatchDonated(uint64_t series) {
  g_batches_donated.fetch_add(1, std::memory_order_relaxed);
  g_donated_series_scanned.fetch_add(series, std::memory_order_relaxed);
}

}  // namespace scan_stats

namespace fault_stats {
namespace {

// Fault decisions happen once per SimCluster::Send under an injector-local
// mutex, and recovery actions are rarer still — contention is a non-issue;
// own cache lines keep them from false-sharing the hot scan counters above.
alignas(64) std::atomic<uint64_t> g_messages_dropped{0};
alignas(64) std::atomic<uint64_t> g_messages_delayed{0};
alignas(64) std::atomic<uint64_t> g_messages_duplicated{0};
alignas(64) std::atomic<uint64_t> g_nodes_killed{0};
alignas(64) std::atomic<uint64_t> g_nodes_declared_dead{0};
alignas(64) std::atomic<uint64_t> g_batches_reassigned{0};
alignas(64) std::atomic<uint64_t> g_queries_reassigned{0};
alignas(64) std::atomic<uint64_t> g_steal_timeouts{0};

}  // namespace

uint64_t MessagesDropped() {
  return g_messages_dropped.load(std::memory_order_relaxed);
}
uint64_t MessagesDelayed() {
  return g_messages_delayed.load(std::memory_order_relaxed);
}
uint64_t MessagesDuplicated() {
  return g_messages_duplicated.load(std::memory_order_relaxed);
}
uint64_t NodesKilled() {
  return g_nodes_killed.load(std::memory_order_relaxed);
}
uint64_t NodesDeclaredDead() {
  return g_nodes_declared_dead.load(std::memory_order_relaxed);
}
uint64_t BatchesReassigned() {
  return g_batches_reassigned.load(std::memory_order_relaxed);
}
uint64_t QueriesReassigned() {
  return g_queries_reassigned.load(std::memory_order_relaxed);
}
uint64_t StealTimeouts() {
  return g_steal_timeouts.load(std::memory_order_relaxed);
}

void Reset() {
  g_messages_dropped.store(0, std::memory_order_relaxed);
  g_messages_delayed.store(0, std::memory_order_relaxed);
  g_messages_duplicated.store(0, std::memory_order_relaxed);
  g_nodes_killed.store(0, std::memory_order_relaxed);
  g_nodes_declared_dead.store(0, std::memory_order_relaxed);
  g_batches_reassigned.store(0, std::memory_order_relaxed);
  g_queries_reassigned.store(0, std::memory_order_relaxed);
  g_steal_timeouts.store(0, std::memory_order_relaxed);
}

void CountMessageDropped() {
  g_messages_dropped.fetch_add(1, std::memory_order_relaxed);
}
void CountMessageDelayed() {
  g_messages_delayed.fetch_add(1, std::memory_order_relaxed);
}
void CountMessageDuplicated() {
  g_messages_duplicated.fetch_add(1, std::memory_order_relaxed);
}
void CountNodeKilled() {
  g_nodes_killed.fetch_add(1, std::memory_order_relaxed);
}
void CountNodeDeclaredDead() {
  g_nodes_declared_dead.fetch_add(1, std::memory_order_relaxed);
}
void CountBatchesReassigned(uint64_t n) {
  g_batches_reassigned.fetch_add(n, std::memory_order_relaxed);
}
void CountQueryReassigned() {
  g_queries_reassigned.fetch_add(1, std::memory_order_relaxed);
}
void CountStealTimeout() {
  g_steal_timeouts.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace fault_stats
}  // namespace odyssey
