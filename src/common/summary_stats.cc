#include "src/common/summary_stats.h"

#include <atomic>

namespace odyssey {
namespace summary_stats {
namespace {

// One cache line per counter: index construction increments the PAA and
// SAX counters from every build thread (once per data series), and packing
// them together would make each increment ping-pong the others' line too.
alignas(64) std::atomic<uint64_t> g_paa_calls{0};
alignas(64) std::atomic<uint64_t> g_sax_calls{0};
alignas(64) std::atomic<uint64_t> g_envelope_calls{0};

}  // namespace

uint64_t PaaCalls() { return g_paa_calls.load(std::memory_order_relaxed); }
uint64_t SaxCalls() { return g_sax_calls.load(std::memory_order_relaxed); }
uint64_t EnvelopeCalls() {
  return g_envelope_calls.load(std::memory_order_relaxed);
}

void Reset() {
  g_paa_calls.store(0, std::memory_order_relaxed);
  g_sax_calls.store(0, std::memory_order_relaxed);
  g_envelope_calls.store(0, std::memory_order_relaxed);
}

void CountPaa() { g_paa_calls.fetch_add(1, std::memory_order_relaxed); }
void CountSax() { g_sax_calls.fetch_add(1, std::memory_order_relaxed); }
void CountEnvelope() {
  g_envelope_calls.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace summary_stats
}  // namespace odyssey
