#ifndef ODYSSEY_COMMON_STOPWATCH_H_
#define ODYSSEY_COMMON_STOPWATCH_H_

#include <chrono>

namespace odyssey {

/// Monotonic wall-clock stopwatch used for all experiment timings
/// (buffer time, tree time, query-answering time in the paper's
/// terminology).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_STOPWATCH_H_
