#ifndef ODYSSEY_COMMON_STATUS_H_
#define ODYSSEY_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace odyssey {

/// Error codes used across the library. Mirrors the usual database-engine
/// convention (no exceptions across API boundaries; fallible operations
/// return Status or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kIoError,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy in the OK case
/// (no allocation), carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. The value may only be
/// accessed when ok(). Intentionally minimal: enough for the library's
/// fallible constructors and I/O paths.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversions from T and Status keep call sites terse, matching
  /// the absl::StatusOr idiom.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }

  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_STATUS_H_
