#ifndef ODYSSEY_COMMON_SUMMARY_STATS_H_
#define ODYSSEY_COMMON_SUMMARY_STATS_H_

#include <cstdint>

namespace odyssey {
namespace summary_stats {

/// Process-wide counters of query-summary construction work (PAA, SAX and
/// DTW-envelope builds). The PreparedQuery pipeline promises each summary is
/// computed at most once per query per batch — across scheduling estimates,
/// replicas and stolen work — and the tests assert that promise through
/// these counters. Increments are relaxed atomics on per-counter cache
/// lines; the cost is one uncontended RMW per *summary* (not per
/// distance) — noise next to the segment-sum + quantization work each
/// summary already does, including on the parallel index-build path.
///
/// Note the nesting: ComputeSax(series) derives a PAA internally and so
/// counts one SAX and one PAA call; ComputeSaxFromPaa counts only the SAX.
/// ComputeEnvelopePaa runs PAA over both envelope bands (two PAA calls).

uint64_t PaaCalls();
uint64_t SaxCalls();
uint64_t EnvelopeCalls();

/// Zeroes all three counters (test setup).
void Reset();

/// Increment hooks, called by the summarization routines themselves.
void CountPaa();
void CountSax();
void CountEnvelope();

}  // namespace summary_stats
}  // namespace odyssey

#endif  // ODYSSEY_COMMON_SUMMARY_STATS_H_
