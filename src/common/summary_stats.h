#ifndef ODYSSEY_COMMON_SUMMARY_STATS_H_
#define ODYSSEY_COMMON_SUMMARY_STATS_H_

#include <cstdint>

namespace odyssey {
namespace summary_stats {

/// Process-wide counters of query-summary construction work (PAA, SAX and
/// DTW-envelope builds). The PreparedQuery pipeline promises each summary is
/// computed at most once per query per batch — across scheduling estimates,
/// replicas and stolen work — and the tests assert that promise through
/// these counters. Increments are relaxed atomics on per-counter cache
/// lines; the cost is one uncontended RMW per *summary* (not per
/// distance) — noise next to the segment-sum + quantization work each
/// summary already does, including on the parallel index-build path.
///
/// Note the nesting: ComputeSax(series) derives a PAA internally and so
/// counts one SAX and one PAA call; ComputeSaxFromPaa counts only the SAX.
/// ComputeEnvelopePaa runs PAA over both envelope bands (two PAA calls).

uint64_t PaaCalls();
uint64_t SaxCalls();
uint64_t EnvelopeCalls();

/// Zeroes all three counters (test setup).
void Reset();

/// Increment hooks, called by the summarization routines themselves.
void CountPaa();
void CountSax();
void CountEnvelope();

}  // namespace summary_stats

namespace build_stats {

/// Process-wide counters of *build-time* chunk summarization — the
/// index-construction mirror of summary_stats' query-time promise. The
/// SharedChunk subsystem (src/core/shared_chunk.h) promises each replication
/// group materializes exactly one immutable {series, PAA, SAX, buffers}
/// bundle per chunk, shared by every replica's tree build; the legacy
/// per-node copy path builds one private bundle per node instead. Tests and
/// bench_fig15_replication read these counters to prove the sharing ratio.

/// Number of SharedChunk bundles materialized (shared path: one per group;
/// legacy path: one per node).
uint64_t ChunksBuilt();
/// Total bytes of all materialized bundles (series + PAA + SAX + buffers) —
/// the transient build memory the shared path divides by the replication
/// degree.
uint64_t ChunkBytes();
/// Series summarized into bundles (PAA + SAX rows written). Equals the
/// dataset size on the shared path; replication_degree() times that on the
/// legacy copy path.
uint64_t SummariesBuilt();
/// Seconds the streaming build spent pulling chunk i+1 concurrently with
/// summarizing/partitioning chunk i (the double-buffered overlap pipeline).
double OverlapSeconds();

/// Zeroes all counters (test setup).
void Reset();

/// Increment hooks, called by SharedChunk and the streaming driver.
void CountChunk(uint64_t bytes, uint64_t summaries);
void AddOverlapSeconds(double seconds);

}  // namespace build_stats

namespace executor_stats {

/// Process-wide counters of stage-4 *executor* work — the thread-ownership
/// mirror of summary_stats' and build_stats' promises. The persistent
/// per-node executor (src/core/node_runtime.h) promises the query hot path
/// spawns zero threads: every thread the process creates goes through
/// CountedThread (src/common/sync.h), whose constructor is the repo's
/// single sanctioned spawn site and increments ThreadsSpawned() — pool
/// workers, the persistent comms/main threads, the stream prep thread,
/// build/adopt workers, the ingest prefetcher, and the legacy per-query
/// spawn path kept for benchmarks all count by construction, so tests can
/// assert the count stays constant across batches regardless of query
/// count. QueriesInFlightHwm() is the high-water mark of queries one node
/// ran concurrently on its pool (AnswerStream's partitioned-pool
/// admission); PrepOverlapSeconds() is query-preparation time that ran
/// concurrently with execution (the online-admission overlap win).
///
/// Concurrency: every counter in this header is a relaxed atomic on its
/// own cache line — no mutex, nothing for the thread-safety analysis to
/// guard (audited when the annotated locking layer was introduced). Reads
/// are exact only once the counted activity has quiesced, which is how the
/// tests use them.

uint64_t ThreadsSpawned();
uint64_t QueriesInFlightHwm();
double PrepOverlapSeconds();

/// NUMA placement counters (src/common/numa.h). WorkersPinned() counts
/// pool workers whose affinity the executor bound to their node's socket;
/// ChunksPlaced() counts SharedChunk bundles whose build thread was bound
/// for first-touch placement. Both stay zero when the NUMA layer is
/// disabled or the machine reports a single node — the graceful-fallback
/// contract the non-NUMA CI leg asserts.
uint64_t WorkersPinned();
uint64_t ChunksPlaced();

/// Zeroes all counters (test setup).
void Reset();

/// Increment hook, called by CountedThread's constructor (the process's
/// one sanctioned thread-spawn site).
void CountThreadsSpawned(uint64_t n);
/// Max-updates the in-flight high-water mark.
void RecordQueriesInFlight(uint64_t n);
void AddPrepOverlapSeconds(double seconds);
/// NUMA placement hooks, called on successful binds only — by the
/// executor's worker pinning (NodeRuntime::PinExecutorWorkers) and the
/// driver's chunk-build-thread placement respectively.
void CountWorkerPinned();
void CountChunkPlaced();

}  // namespace executor_stats

namespace scan_stats {

/// Process-wide counters of *batched* leaf-scan work — the observability
/// half of the batched multi-query kernels' amortization promise. When a
/// grouped execution scores one candidate series against Q >= 2 in-flight
/// queries with a single batched-kernel call, BatchedScoreCalls() counts
/// that call and SeriesLoadsSaved() counts the Q - 1 candidate reloads the
/// per-query path would have paid. Series where only one group member
/// survives the per-series filters take the per-query kernel instead and
/// count nothing — the counters record genuine amortization events, not
/// traffic through the grouped code path. Tests assert the counters move
/// exactly when ODYSSEY_BATCHED_SCORING is active, and the Fig13
/// batched-scoring panel reports them next to its throughput numbers.
///
/// Same concurrency story as every group in this header: relaxed atomics on
/// their own cache lines, exact only after the counted activity quiesced.

uint64_t BatchedScoreCalls();
uint64_t SeriesLoadsSaved();

/// Multi-candidate scorer counters — the low-occupancy complement of the
/// batched kernels. Series where fewer than simd::kMultiCandidateLanes
/// group members survive the per-series filters are deferred into
/// per-member lane queues and scored by MultiSquaredEuclideanEarlyAbandon
/// (several candidates, one query, strict scalar point order per lane);
/// MultiScoreCalls() counts the flush passes and MultiScoreLanes() the
/// candidate lanes they scored. High lanes-per-call (near
/// kMultiCandidateLanes) means the deferral queues filled before their
/// flushes — the ILP the pass exists to harvest.
uint64_t MultiScoreCalls();
uint64_t MultiScoreLanes();

/// Donation counters — the observability half of grouped-scan steal
/// donation. When a grouped member hands a still-untouched (member, batch)
/// slice of the merged leaf-work list to a work-stealing thief,
/// BatchesDonated() counts the slice and DonatedSeriesScanned() counts the
/// leaf series the local scan thereby skipped (the work the thief re-runs
/// on its own replica). Zero in both places means grouped runs never
/// served a thief — exactly what the pre-donation design guaranteed and
/// the Fig13d donation panels measure against.
uint64_t BatchesDonated();
uint64_t DonatedSeriesScanned();

/// Zeroes every scan_stats counter (test setup).
void Reset();

/// Increment hook, called once per batched-kernel call scoring `q_count`
/// queries.
void CountBatchedScore(uint64_t q_count);
/// Increment hook, called once per multi-candidate flush pass scoring
/// `lanes` deferred candidates.
void CountMultiScore(uint64_t lanes);
/// Increment hook, called once per donated (member, batch) slice with the
/// series count it hands the thief.
void CountBatchDonated(uint64_t series);

}  // namespace scan_stats

namespace fault_stats {

/// Process-wide counters of injected faults and the recovery work they
/// triggered — the observability half of the chaos suite's promise. The
/// Messages* counters move inside the fault-injection layer itself
/// (src/net/fault_plan.h), so a chaos run can assert its plan actually
/// fired rather than trivially passing on a quiet seed. NodesKilled counts
/// transport closures executed by the injector; NodesDeclaredDead counts
/// coordinator-side liveness verdicts (which may exceed NodesKilled: a
/// false-positive declaration against a slow-but-alive node is
/// exactness-safe and deliberately permitted, see ARCHITECTURE.md "Failure
/// model"). BatchesReassigned / QueriesReassigned / StealTimeouts count
/// the three recovery actions the protocol can take.
///
/// Same concurrency story as every group in this header: relaxed atomics
/// on their own cache lines, exact only after the counted activity
/// quiesced.

uint64_t MessagesDropped();
uint64_t MessagesDelayed();
uint64_t MessagesDuplicated();
uint64_t NodesKilled();
uint64_t NodesDeclaredDead();
uint64_t BatchesReassigned();
uint64_t QueriesReassigned();
uint64_t StealTimeouts();

/// Zeroes all counters (test setup).
void Reset();

/// Increment hooks. The first four are called by FaultInjector::Decide;
/// the rest by the recovery protocol in driver.cc / node_runtime.cc.
void CountMessageDropped();
void CountMessageDelayed();
void CountMessageDuplicated();
void CountNodeKilled();
void CountNodeDeclaredDead();
void CountBatchesReassigned(uint64_t n);
void CountQueryReassigned();
void CountStealTimeout();

}  // namespace fault_stats
}  // namespace odyssey

#endif  // ODYSSEY_COMMON_SUMMARY_STATS_H_
