#ifndef ODYSSEY_COMMON_LINEAR_REGRESSION_H_
#define ODYSSEY_COMMON_LINEAR_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace odyssey {

/// Ordinary-least-squares simple linear regression y = slope * x + intercept.
///
/// The paper (Section 3.1, Figure 4) predicts each query's execution time
/// from its initial best-so-far distance with exactly this model; the fitted
/// instance lives inside core::CostModel.
class LinearRegression {
 public:
  LinearRegression() = default;

  /// Fits the model on paired samples. Needs at least 2 samples and
  /// non-constant x; returns InvalidArgument otherwise.
  Status Fit(const std::vector<double>& x, const std::vector<double>& y);

  bool fitted() const { return fitted_; }
  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

  /// Coefficient of determination of the fit (1 = perfect).
  double r_squared() const { return r_squared_; }

  /// Predicted y for `x`. The model must be fitted.
  double Predict(double x) const;

 private:
  bool fitted_ = false;
  double slope_ = 0.0;
  double intercept_ = 0.0;
  double r_squared_ = 0.0;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_LINEAR_REGRESSION_H_
