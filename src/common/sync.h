#ifndef ODYSSEY_COMMON_SYNC_H_
#define ODYSSEY_COMMON_SYNC_H_

/// The one place in this codebase that is allowed to name std::mutex,
/// std::condition_variable or std::thread (tools/lint_odyssey.py enforces
/// it). Everything else locks through the capability-annotated wrappers
/// below, so Clang's Thread Safety Analysis (-Wthread-safety, a hard CI
/// gate) can prove at compile time that every ODYSSEY_GUARDED_BY field is
/// only touched with its mutex held and every ODYSSEY_REQUIRES helper is
/// only called from under the right lock. On compilers without the
/// analysis (gcc) the annotation macros expand to nothing and the wrappers
/// compile to exactly the std primitives they hold — every member function
/// is defined inline in this header, so the annotated layer adds zero
/// overhead to the locking hot paths (asserted by the BM_Fig13b_Executor
/// gate in CI).
///
/// Annotation cheat-sheet (see ARCHITECTURE.md "Locking discipline" for
/// the per-mutex capability table):
///   ODYSSEY_GUARDED_BY(mu)   field access requires mu held
///   ODYSSEY_REQUIRES(mu)     function must be called with mu held
///   ODYSSEY_EXCLUDES(mu)     function must be called with mu NOT held
///   ODYSSEY_ACQUIRE/RELEASE  function takes/drops mu (Mutex internals)
///
/// Fields that are *not* protected by any mutex but by a publication
/// protocol (written single-threaded before an epoch/phase begins, then
/// read-only while threads run — e.g. NodeRuntime's per-epoch pointers)
/// cannot be expressed to the analysis; they carry an explicit
/// "epoch-owned"/"phase-owned" comment at the declaration instead of a
/// GUARDED_BY, and the mutex release/acquire that publishes them is named
/// there.

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

// ---------------------------------------------------------------- macros
//
// Thin spellings of Clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), no-ops on
// other compilers. The set mirrors absl/base/thread_annotations.h.

#if defined(__clang__)
#define ODYSSEY_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ODYSSEY_THREAD_ANNOTATION__(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex" names it in
/// diagnostics).
#define ODYSSEY_CAPABILITY(x) ODYSSEY_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define ODYSSEY_SCOPED_CAPABILITY ODYSSEY_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be accessed while holding `x`.
#define ODYSSEY_GUARDED_BY(x) ODYSSEY_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define ODYSSEY_PT_GUARDED_BY(x) ODYSSEY_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability (or capabilities) to be held on entry
/// and does not release them.
#define ODYSSEY_REQUIRES(...) \
  ODYSSEY_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard
/// for functions that acquire it themselves).
#define ODYSSEY_EXCLUDES(...) \
  ODYSSEY_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ODYSSEY_ACQUIRE(...) \
  ODYSSEY_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define ODYSSEY_RELEASE(...) \
  ODYSSEY_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define ODYSSEY_TRY_ACQUIRE(result, ...) \
  ODYSSEY_THREAD_ANNOTATION__(try_acquire_capability(result, __VA_ARGS__))

/// Documents lock-ordering: this capability must be acquired after `...`.
#define ODYSSEY_ACQUIRED_AFTER(...) \
  ODYSSEY_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Documents lock-ordering: this capability must be acquired before `...`.
#define ODYSSEY_ACQUIRED_BEFORE(...) \
  ODYSSEY_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Escape hatch. Deliberately unused in src/ (the CI gate builds with zero
/// suppressions); kept so out-of-tree experiments have a spelled-out exit.
#define ODYSSEY_NO_THREAD_SAFETY_ANALYSIS \
  ODYSSEY_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace odyssey {

// ----------------------------------------------------------------- Mutex

/// std::mutex with the lockable-capability annotation. Same semantics,
/// same size, fully inline — the annotations are compile-time only.
class ODYSSEY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ODYSSEY_ACQUIRE() { mu_.lock(); }
  void Unlock() ODYSSEY_RELEASE() { mu_.unlock(); }
  bool TryLock() ODYSSEY_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock — the only way most code should take a Mutex. Scoped
/// acquisition is what lets the analysis verify release on every path.
class ODYSSEY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ODYSSEY_ACQUIRE(mu) : mu_(mu) { mu->Lock(); }
  ~MutexLock() ODYSSEY_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// ---------------------------------------------------------------- CondVar

/// Condition variable bound to annotated Mutexes (absl-style interface:
/// the mutex is an explicit argument, so Wait can carry the REQUIRES
/// annotation std::condition_variable's unique_lock interface cannot).
/// Wait atomically releases and reacquires the mutex exactly like
/// std::condition_variable::wait; the analysis treats the capability as
/// held throughout, which matches what the caller may assume about its
/// guarded data before and after the call.
///
/// Deliberately predicate-less: callers write the classic explicit loop
///     while (!condition) cv.Wait(&mu);
/// so the condition's guarded-field reads sit in the caller's scope, where
/// the analysis can see the lock is held. (A predicate lambda would need
/// its own capability annotation and would be invoked from inside the
/// un-analyzed standard library.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups happen; always re-check the
  /// condition in a loop.
  void Wait(Mutex* mu) ODYSSEY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still holds the capability
  }

  /// Timed wait. Returns true when the deadline passed (like
  /// absl::CondVar::WaitWithDeadline); false means notified (or a spurious
  /// wakeup) — re-check the condition either way.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex* mu,
                 std::chrono::time_point<Clock, Duration> deadline)
      ODYSSEY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const bool timed_out =
        cv_.wait_until(lock, deadline) == std::cv_status::timeout;
    lock.release();
    return timed_out;
  }

  /// Timed wait relative to now; same contract as WaitUntil. When looping,
  /// prefer WaitUntil with a precomputed deadline so retries don't extend
  /// the total wait.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      ODYSSEY_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ----------------------------------------------------------- CountedThread

/// The only sanctioned way to start a dedicated thread. Spawning goes
/// through sync.cc so every creation lands in
/// executor_stats::ThreadsSpawned() — the counter the executor tests use
/// to prove the query hot path spawns nothing — and so the repo linter can
/// pin raw std::thread construction to a single file. Semantics are
/// std::thread's (join before destruction or std::terminate), deliberately
/// kept: a silently detaching wrapper would hide lifetime bugs.
class CountedThread {
 public:
  CountedThread() = default;
  /// Spawns immediately and counts the spawn.
  explicit CountedThread(std::function<void()> fn);

  CountedThread(CountedThread&&) = default;
  CountedThread& operator=(CountedThread&&) = default;
  CountedThread(const CountedThread&) = delete;
  CountedThread& operator=(const CountedThread&) = delete;

  bool joinable() const { return thread_.joinable(); }
  void Join() { thread_.join(); }

 private:
  std::thread thread_;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_SYNC_H_
