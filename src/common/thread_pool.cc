#include "src/common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace odyssey {

ThreadPool::ThreadPool(size_t num_threads) {
  Grow(std::max<size_t>(1, num_threads));
}

void ThreadPool::Grow(size_t num_threads) {
  if (num_threads <= threads_.size()) return;
  const size_t delta = num_threads - threads_.size();
  threads_.reserve(num_threads);
  for (size_t i = 0; i < delta; ++i) {
    threads_.emplace_back(CountedThread([this] { WorkerLoop(); }));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.SignalAll();
  for (auto& t : threads_) t.Join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitTagged(std::move(task), nullptr);
}

void ThreadPool::SubmitTagged(std::function<void()> task,
                              const TaskGroup* group) {
  ODYSSEY_CHECK(task != nullptr);
  {
    MutexLock lock(&mu_);
    ODYSSEY_CHECK_MSG(!stop_, "Submit after shutdown");
    queue_.push_back({std::move(task), group});
  }
  cv_.Signal();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(&mu_);
}

void ThreadPool::FinishTaskLocked() {
  --active_;
  if (queue_.empty() && active_ == 0) idle_cv_.SignalAll();
}

bool ThreadPool::TryRunOneGroupTask(const TaskGroup* group) {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    auto it = queue_.begin();
    while (it != queue_.end() && it->group != group) ++it;
    if (it == queue_.end()) return false;
    task = std::move(it->fn);
    queue_.erase(it);
    ++active_;
  }
  task();
  {
    MutexLock lock(&mu_);
    FinishTaskLocked();
  }
  return true;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t workers = std::min(count, threads_.size());
  const size_t chunk = (count + workers - 1) / workers;
  // One TaskGroup epoch: the group's mutex-held completion handoff keeps
  // the stack-local state safe to destroy after Wait, and its helping
  // makes ParallelFor callable from inside a pool task without deadlock.
  TaskGroup group(this);
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    group.Submit([&fn, begin, end] { fn(begin, end); });
  }
  group.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front().fn);
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      FinishTaskLocked();
    }
  }
}

TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {
  ODYSSEY_CHECK(pool != nullptr);
}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  ODYSSEY_CHECK(task != nullptr);
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  pool_->SubmitTagged(
      [this, task = std::move(task)] {
        task();
        MutexLock lock(&mu_);
        if (--pending_ == 0) cv_.SignalAll();
      },
      this);
}

void TaskGroup::Wait() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (pending_ == 0) return;
    }
    if (pool_->TryRunOneGroupTask(this)) continue;
    // None of this group's tasks are queued any more — each is either
    // running on a worker (or a helping waiter) or already finished. Block
    // until the running ones notify; helping with foreign work here could
    // capture this thread in an arbitrarily long task, so it sleeps
    // instead.
    MutexLock lock(&mu_);
    while (pending_ != 0) cv_.Wait(&mu_);
    return;
  }
}

void TaskGroup::RunTasks(int n, const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

}  // namespace odyssey
