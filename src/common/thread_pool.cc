#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/check.h"

namespace odyssey {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ODYSSEY_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ODYSSEY_CHECK_MSG(!stop_, "Submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  const size_t workers = std::min(count, threads_.size());
  const size_t chunk = (count + workers - 1) / workers;
  // `pending` is guarded by done_mu (not an atomic): the final decrement
  // must happen-before the waiter can destroy done_mu/done_cv, which only a
  // mutex-held handoff guarantees.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = 0;
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * chunk;
    const size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    {
      std::lock_guard<std::mutex> lock(done_mu);
      ++pending;
    }
    Submit([&, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return pending == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace odyssey
