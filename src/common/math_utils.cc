#include "src/common/math_utils.h"

#include <algorithm>
#include <cmath>

namespace odyssey {

double Mean(const float* values, size_t n) {
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += values[i];
  return sum / static_cast<double>(n);
}

double StdDev(const float* values, size_t n) {
  if (n == 0) return 0.0;
  const double mean = Mean(values, n);
  double ssq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = values[i] - mean;
    ssq += d * d;
  }
  return std::sqrt(ssq / static_cast<double>(n));
}

void ZNormalize(float* values, size_t n) {
  if (n == 0) return;
  const double mean = Mean(values, n);
  const double sd = StdDev(values, n);
  if (sd < 1e-12) {
    for (size_t i = 0; i < n; ++i) values[i] = 0.0f;
    return;
  }
  const double inv = 1.0 / sd;
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<float>((values[i] - mean) * inv);
  }
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(values.begin(), values.end());
  if (p >= 100.0) return *std::max_element(values.begin(), values.end());
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values[lo];
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace odyssey
