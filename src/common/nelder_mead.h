#ifndef ODYSSEY_COMMON_NELDER_MEAD_H_
#define ODYSSEY_COMMON_NELDER_MEAD_H_

#include <functional>
#include <vector>

namespace odyssey {

/// Options for the downhill-simplex minimizer.
struct NelderMeadOptions {
  int max_iterations = 2000;
  /// Convergence threshold on the simplex's function-value spread.
  double tolerance = 1e-10;
  /// Relative size of the initial simplex around the starting point.
  double initial_step = 0.1;
};

/// Result of a NelderMeadMinimize call.
struct NelderMeadResult {
  std::vector<double> x;   ///< best parameter vector found
  double value = 0.0;      ///< objective at x
  int iterations = 0;      ///< iterations performed
  bool converged = false;  ///< whether tolerance was reached
};

/// Minimizes `objective` starting from `x0` using the Nelder-Mead downhill
/// simplex method (no gradients required). Used by SigmoidFit, which powers
/// the paper's priority-queue threshold model (Figure 6a).
NelderMeadResult NelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x0, const NelderMeadOptions& options = {});

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_NELDER_MEAD_H_
