#ifndef ODYSSEY_COMMON_CHECK_H_
#define ODYSSEY_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Odyssey requires C++20: src/index/query_engine.cc synchronizes its
/// three-phase workers with std::barrier. Failing here gives a one-line
/// diagnosis instead of a header-deep error inside <barrier>. MSVC keeps
/// __cplusplus at 199711L unless /Zc:__cplusplus is set, so check its
/// _MSVC_LANG too.
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "Odyssey requires C++20 (std::barrier); configure with "
              "CMAKE_CXX_STANDARD=20 or pass /std:c++20");
#else
static_assert(__cplusplus >= 202002L,
              "Odyssey requires C++20 (std::barrier); configure with "
              "CMAKE_CXX_STANDARD=20 or pass -std=c++20");
#endif

/// CHECK-style invariant macros. A failed check indicates a programming
/// error (API misuse or broken internal invariant), never a data-dependent
/// condition, so the process aborts with a location message. Data-dependent
/// failures use Status instead.
#define ODYSSEY_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "ODYSSEY_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define ODYSSEY_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "ODYSSEY_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Aborts if a Status-returning expression fails. For use in tools,
/// examples, and tests where propagating the error adds nothing.
#define ODYSSEY_CHECK_OK(expr)                                               \
  do {                                                                       \
    const ::odyssey::Status _status = (expr);                                \
    if (!_status.ok()) {                                                     \
      std::fprintf(stderr, "ODYSSEY_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _status.ToString().c_str());          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // ODYSSEY_COMMON_CHECK_H_
