#ifndef ODYSSEY_COMMON_RNG_H_
#define ODYSSEY_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace odyssey {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Self-contained so that datasets and workloads are
/// bit-reproducible across standard-library implementations — important
/// because work-stealing correctness tests rely on replicas building
/// identical indexes from identically generated chunks.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
    cached_gaussian_ = 0.0;
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  /// Uniform integer in [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (deterministic across platforms, unlike
  /// std::normal_distribution).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool has_cached_gaussian_;
  double cached_gaussian_;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_RNG_H_
