#ifndef ODYSSEY_COMMON_THREAD_POOL_H_
#define ODYSSEY_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace odyssey {

/// Fixed-size worker pool. Used by index construction and by each simulated
/// system node's query-answering workers. Tasks are arbitrary closures;
/// WaitIdle() blocks until every submitted task has finished, which is how
/// the builder separates its "buffer" and "tree" phases.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle();

  /// Runs fn(i) for i in [0, count) across the pool and waits for
  /// completion. Static contiguous-block partitioning: each worker receives
  /// one range, matching the embarrassingly-parallel phases of the paper's
  /// index construction.
  void ParallelFor(size_t count, const std::function<void(size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;       // signals workers: work available / stop
  std::condition_variable idle_cv_;  // signals WaitIdle: everything drained
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_THREAD_POOL_H_
