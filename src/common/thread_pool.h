#ifndef ODYSSEY_COMMON_THREAD_POOL_H_
#define ODYSSEY_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/sync.h"

namespace odyssey {

class TaskGroup;

/// Fixed-size worker pool. Used by index construction, by the coordinator's
/// preparation/estimation work, and — via the persistent per-node executor —
/// by every system node's query-answering phases. Tasks are arbitrary
/// closures; WaitIdle() blocks until every submitted task has finished,
/// which is how the builder separates its "buffer" and "tree" phases.
/// Worker creation is counted in executor_stats::ThreadsSpawned() (via
/// CountedThread) so the zero-threads-per-query promise of the executor is
/// assertable.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  size_t num_threads() const { return threads_.size(); }

  /// Grows the pool to `num_threads` workers, spawning only the missing
  /// ones (no-op when already at least that wide; pools never shrink).
  /// This is how the node executor widens for a batch that asks for more
  /// workers without tearing down and re-spawning the existing ones. Not
  /// thread-safe against concurrent Grow/destruction; callers serialize
  /// (the executor grows only between epochs).
  void Grow(size_t num_threads);

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle() ODYSSEY_EXCLUDES(mu_);

  /// Pops and runs the oldest queued task belonging to `group` on the
  /// calling thread; returns false when none of that group's tasks are
  /// queued (they may still be running on workers). This is how
  /// TaskGroup::Wait helps drain its own work instead of blocking a
  /// thread: nested groups (an orchestrator task waiting on its phase
  /// tasks) stay deadlock-free even when orchestrators occupy every pool
  /// worker, and a waiter never gets stuck executing a foreign group's
  /// (possibly long) task.
  bool TryRunOneGroupTask(const TaskGroup* group) ODYSSEY_EXCLUDES(mu_);

  /// Runs fn(i) for i in [0, count) across the pool and waits for
  /// completion. Static contiguous-block partitioning: each worker receives
  /// one range, matching the embarrassingly-parallel phases of the paper's
  /// index construction.
  void ParallelFor(size_t count, const std::function<void(size_t begin, size_t end)>& fn);

 private:
  friend class TaskGroup;

  /// One queued closure, tagged with the group that tracks it (null for
  /// plain Submit calls) so TryRunOneGroupTask can claim selectively.
  struct Task {
    std::function<void()> fn;
    const TaskGroup* group = nullptr;
  };

  void SubmitTagged(std::function<void()> task, const TaskGroup* group)
      ODYSSEY_EXCLUDES(mu_);
  void WorkerLoop() ODYSSEY_EXCLUDES(mu_);
  /// Post-task bookkeeping shared by WorkerLoop and TryRunOneGroupTask:
  /// retires the active slot and wakes WaitIdle when everything drained.
  void FinishTaskLocked() ODYSSEY_REQUIRES(mu_);

  /// Worker handles: mutated only by Grow and the destructor, which the
  /// owner serializes (see Grow); workers never touch it.
  std::vector<CountedThread> threads_;
  Mutex mu_;
  CondVar cv_;       // signals workers: work available / stop
  CondVar idle_cv_;  // signals WaitIdle: everything drained
  std::deque<Task> queue_ ODYSSEY_GUARDED_BY(mu_);
  size_t active_ ODYSSEY_GUARDED_BY(mu_) = 0;
  bool stop_ ODYSSEY_GUARDED_BY(mu_) = false;
};

/// A reusable set of tasks on a shared pool — the executor's barrier-phase
/// primitive. Unlike ThreadPool::WaitIdle (which waits for *everything* on
/// the pool), Wait() blocks only until this group's own tasks finish, so
/// several groups (e.g. concurrent in-flight queries partitioning one
/// node's pool) can share a pool without observing each other. A group is
/// reusable across epochs: Submit/Wait cycles can repeat indefinitely
/// (QueryExecution runs each of its phases as one epoch; the Wait between
/// them is the phase barrier, executed by the orchestrating thread).
///
/// Wait() *helps*: while any of this group's tasks are still queued it
/// runs them on the calling thread instead of sleeping, and only blocks
/// once every one of them is running or done. Helping makes nested groups
/// safe — an orchestrator task that Wait()s on its phase tasks cannot
/// deadlock the pool, because a blocked orchestrator executes its own
/// queued work itself — and because helping is group-scoped, a waiter
/// never gets captured by a foreign group's long-running task.
class TaskGroup {
 public:
  /// `pool` must outlive the group.
  explicit TaskGroup(ThreadPool* pool);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for any still-pending tasks (a group must not die before its
  /// tasks do: they borrow the group's completion state).
  ~TaskGroup();

  /// Enqueues a task onto the pool, tracked by this group. Thread-safe.
  void Submit(std::function<void()> task) ODYSSEY_EXCLUDES(mu_);

  /// Blocks until every task submitted to this group has finished, helping
  /// to run queued pool tasks meanwhile. After Wait returns the group is
  /// empty and immediately reusable for the next epoch.
  void Wait() ODYSSEY_EXCLUDES(mu_);

  /// Barrier-phase convenience: submits fn(0) .. fn(n-1) and Wait()s.
  void RunTasks(int n, const std::function<void(int)>& fn);

 private:
  ThreadPool* const pool_;
  Mutex mu_;
  CondVar cv_;
  size_t pending_ ODYSSEY_GUARDED_BY(mu_) = 0;
};

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_THREAD_POOL_H_
