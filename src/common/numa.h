#ifndef ODYSSEY_COMMON_NUMA_H_
#define ODYSSEY_COMMON_NUMA_H_

/// Minimal NUMA topology and placement layer. Two consumers:
///
///  - the driver binds each replication group's SharedChunk build thread
///    to the group's socket before materializing the bundle, so
///    first-touch page allocation places the series data on the memory
///    the group's replicas will scan (executor_stats::ChunksPlaced);
///  - the node runtime pins its persistent pool workers to the same
///    socket (NodeRuntime::PinExecutorWorkers,
///    executor_stats::WorkersPinned), so the scan loops never cross the
///    interconnect for their own chunk.
///
/// Topology source: libnuma when the build found it (ODYSSEY_HAVE_LIBNUMA,
/// see CMake option ODYSSEY_ENABLE_NUMA), else the Linux sysfs node tree;
/// on non-Linux builds or single-socket machines the layer reports one
/// node and placement degrades to a no-op — every entry point below is
/// safe to call unconditionally.
///
/// Policy override: the ODYSSEY_NUMA environment variable. Unset or empty
/// means auto (placement active iff the machine reports more than one
/// node); "0"/"off" forces placement off; any other value forces it on
/// even on a single-node machine, which is how single-socket CI runners
/// exercise the binding code and its counters. The policy and topology
/// are computed once and cached; ResetForTest() drops the cache so tests
/// can flip the variable.

namespace odyssey {
namespace numa {

/// Number of NUMA nodes the topology layer detected (>= 1; 1 when the
/// machine or platform exposes no NUMA information).
int NodeCount();

/// True when placement is active for this process: not forced off, and
/// either the machine has more than one node or ODYSSEY_NUMA forced it on.
bool Enabled();

/// Socket assignment for replication group `group`: round-robin over the
/// detected nodes. Returns -1 when placement is disabled — callers skip
/// binding entirely on -1.
int NodeForGroup(int group);

/// Binds the calling thread's CPU affinity to `node`'s CPU set. Returns
/// true on success; false (leaving the affinity untouched) when placement
/// is disabled, `node` is out of range, the node's CPU list is empty, or
/// the platform cannot set affinity.
bool BindCurrentThread(int node);

/// Drops the cached topology + policy so the next query re-reads
/// ODYSSEY_NUMA and sysfs. Test hook only — never call it while other
/// threads may be inside this layer.
void ResetForTest();

}  // namespace numa
}  // namespace odyssey

#endif  // ODYSSEY_COMMON_NUMA_H_
