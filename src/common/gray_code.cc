#include "src/common/gray_code.h"

namespace odyssey {

uint64_t GrayRank(uint64_t g) {
  // Prefix-XOR: b_k = g_k ^ g_{k+1} ^ ... ^ g_63 computed by folding.
  g ^= g >> 32;
  g ^= g >> 16;
  g ^= g >> 8;
  g ^= g >> 4;
  g ^= g >> 2;
  g ^= g >> 1;
  return g;
}

}  // namespace odyssey
