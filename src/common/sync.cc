#include "src/common/sync.h"

#include "src/common/summary_stats.h"

namespace odyssey {

// The single raw-thread construction site outside ThreadPool's worker
// storage: counting here (instead of at every caller) is what keeps the
// ThreadsSpawned accounting honest by construction — a new dedicated
// thread cannot be added to the codebase without it showing up in the
// counter, because tools/lint_odyssey.py rejects std::thread anywhere
// else.
CountedThread::CountedThread(std::function<void()> fn)
    : thread_(std::move(fn)) {
  executor_stats::CountThreadsSpawned(1);
}

}  // namespace odyssey
