#ifndef ODYSSEY_COMMON_SIGMOID_FIT_H_
#define ODYSSEY_COMMON_SIGMOID_FIT_H_

#include <vector>

#include "src/common/status.h"

namespace odyssey {

/// Parameters of the paper's sigmoid family (Section 3.2.1):
///
///   f(Z) = m + (M - m) / (1 + b * exp(-c * (Z - d)))
///
/// fitted to (initial BSF, median priority-queue size) samples to predict a
/// good priority-queue size threshold TH for each query.
struct SigmoidParams {
  double m = 0.0;  ///< lower asymptote
  double M = 1.0;  ///< upper asymptote
  double b = 1.0;  ///< shape
  double c = 1.0;  ///< slope
  double d = 0.0;  ///< midpoint

  /// Evaluates f(z).
  double Evaluate(double z) const;
};

/// Least-squares sigmoid fit via Nelder-Mead. Requires at least 5 samples
/// (the family has 5 parameters); returns InvalidArgument otherwise.
/// On success `*params` holds the fitted parameters and `*rmse` (optional)
/// the root-mean-square error of the fit.
Status FitSigmoid(const std::vector<double>& z, const std::vector<double>& y,
                  SigmoidParams* params, double* rmse = nullptr);

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_SIGMOID_FIT_H_
