#include "src/common/sigmoid_fit.h"

#include <algorithm>
#include <cmath>

#include "src/common/nelder_mead.h"

namespace odyssey {

double SigmoidParams::Evaluate(double z) const {
  return m + (M - m) / (1.0 + b * std::exp(-c * (z - d)));
}

Status FitSigmoid(const std::vector<double>& z, const std::vector<double>& y,
                  SigmoidParams* params, double* rmse) {
  if (z.size() != y.size()) {
    return Status::InvalidArgument("z and y must have the same size");
  }
  if (z.size() < 5) {
    return Status::InvalidArgument("need at least 5 samples to fit 5 params");
  }

  const auto [ymin_it, ymax_it] = std::minmax_element(y.begin(), y.end());
  const auto [zmin_it, zmax_it] = std::minmax_element(z.begin(), z.end());
  const double ymin = *ymin_it, ymax = *ymax_it;
  const double zmid = 0.5 * (*zmin_it + *zmax_it);
  const double zspan = std::max(1e-6, *zmax_it - *zmin_it);

  auto objective = [&](const std::vector<double>& p) {
    SigmoidParams s{p[0], p[1], p[2], p[3], p[4]};
    // Keep b positive; the family is degenerate otherwise.
    if (s.b <= 1e-9) return 1e30;
    double ss = 0.0;
    for (size_t i = 0; i < z.size(); ++i) {
      const double r = s.Evaluate(z[i]) - y[i];
      ss += r * r;
    }
    return ss;
  };

  // Initial guess: asymptotes at the observed extremes, midpoint at the
  // center of the z range, slope scaled to the range.
  const std::vector<double> x0 = {ymin, ymax, 1.0, 4.0 / zspan, zmid};
  NelderMeadOptions options;
  options.max_iterations = 5000;
  options.initial_step = 0.25;
  const NelderMeadResult result = NelderMeadMinimize(objective, x0, options);

  params->m = result.x[0];
  params->M = result.x[1];
  params->b = result.x[2];
  params->c = result.x[3];
  params->d = result.x[4];
  if (rmse != nullptr) {
    *rmse = std::sqrt(result.value / static_cast<double>(z.size()));
  }
  return Status::Ok();
}

}  // namespace odyssey
