#ifndef ODYSSEY_COMMON_MATH_UTILS_H_
#define ODYSSEY_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace odyssey {

/// Arithmetic mean of `n` floats; 0 when n == 0.
double Mean(const float* values, size_t n);

/// Population standard deviation; 0 when n == 0.
double StdDev(const float* values, size_t n);

/// Z-normalizes `values` in place: (x - mean) / stddev. If the standard
/// deviation is (near) zero the series is constant and all points become 0.
/// Data-series indexes assume z-normalized input because the iSAX
/// breakpoints are quantiles of N(0, 1).
void ZNormalize(float* values, size_t n);

/// Median of a copy of `values` (does not mutate the input); 0 when empty.
double Median(std::vector<double> values);

/// The p-th percentile (p in [0, 100]) by linear interpolation between
/// order statistics; 0 when empty.
double Percentile(std::vector<double> values, double p);

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_MATH_UTILS_H_
