#ifndef ODYSSEY_COMMON_GRAY_CODE_H_
#define ODYSSEY_COMMON_GRAY_CODE_H_

#include <cstdint>

namespace odyssey {

/// Reflected binary Gray code, used by the DENSITY-AWARE partitioner
/// (Section 3.4.1): ordering iSAX summarization buffers by Gray-code rank
/// places buffers whose keys differ in a single bit next to each other, so
/// that round-robin assignment spreads similar series across system nodes.

/// The i-th codeword of the reflected Gray code sequence.
inline uint64_t BinaryToGray(uint64_t i) { return i ^ (i >> 1); }

/// Inverse of BinaryToGray: the rank of codeword `g` in the Gray sequence.
/// Sorting keys by GrayRank(key) enumerates them in Gray-code order.
uint64_t GrayRank(uint64_t g);

}  // namespace odyssey

#endif  // ODYSSEY_COMMON_GRAY_CODE_H_
