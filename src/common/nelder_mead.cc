#include "src/common/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace odyssey {
namespace {

// Standard Nelder-Mead coefficients.
constexpr double kReflect = 1.0;
constexpr double kExpand = 2.0;
constexpr double kContract = 0.5;
constexpr double kShrink = 0.5;

std::vector<double> Centroid(const std::vector<std::vector<double>>& simplex,
                             size_t exclude) {
  const size_t dim = simplex[0].size();
  std::vector<double> c(dim, 0.0);
  for (size_t i = 0; i < simplex.size(); ++i) {
    if (i == exclude) continue;
    for (size_t d = 0; d < dim; ++d) c[d] += simplex[i][d];
  }
  const double inv = 1.0 / static_cast<double>(simplex.size() - 1);
  for (double& v : c) v *= inv;
  return c;
}

std::vector<double> Combine(const std::vector<double>& a,
                            const std::vector<double>& b, double t) {
  // a + t * (a - b)
  std::vector<double> out(a.size());
  for (size_t d = 0; d < a.size(); ++d) out[d] = a[d] + t * (a[d] - b[d]);
  return out;
}

}  // namespace

NelderMeadResult NelderMeadMinimize(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& x0, const NelderMeadOptions& options) {
  ODYSSEY_CHECK(!x0.empty());
  const size_t dim = x0.size();

  // Initial simplex: x0 plus one perturbed vertex per dimension.
  std::vector<std::vector<double>> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back(x0);
  for (size_t d = 0; d < dim; ++d) {
    std::vector<double> v = x0;
    const double step =
        (std::fabs(v[d]) > 1e-12) ? options.initial_step * v[d]
                                  : options.initial_step;
    v[d] += step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values(simplex.size());
  for (size_t i = 0; i < simplex.size(); ++i) values[i] = objective(simplex[i]);

  NelderMeadResult result;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Order vertices by objective value.
    std::vector<size_t> order(simplex.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t best = order.front();
    const size_t worst = order.back();
    const size_t second_worst = order[order.size() - 2];

    if (std::fabs(values[worst] - values[best]) < options.tolerance) {
      result.converged = true;
      break;
    }

    const std::vector<double> centroid = Centroid(simplex, worst);
    const std::vector<double> reflected =
        Combine(centroid, simplex[worst], kReflect);
    const double f_reflected = objective(reflected);

    if (f_reflected < values[best]) {
      const std::vector<double> expanded =
          Combine(centroid, simplex[worst], kExpand);
      const double f_expanded = objective(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
    } else if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
    } else {
      const std::vector<double> contracted =
          Combine(centroid, simplex[worst], -kContract);
      const double f_contracted = objective(contracted);
      if (f_contracted < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = f_contracted;
      } else {
        // Shrink all vertices toward the best.
        for (size_t i = 0; i < simplex.size(); ++i) {
          if (i == best) continue;
          for (size_t d = 0; d < dim; ++d) {
            simplex[i][d] =
                simplex[best][d] + kShrink * (simplex[i][d] - simplex[best][d]);
          }
          values[i] = objective(simplex[i]);
        }
      }
    }
  }

  size_t best = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.x = simplex[best];
  result.value = values[best];
  result.iterations = iter;
  return result;
}

}  // namespace odyssey
