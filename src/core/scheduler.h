#ifndef ODYSSEY_CORE_SCHEDULER_H_
#define ODYSSEY_CORE_SCHEDULER_H_

/// Stage-3 query scheduling (paper Sections 2, 3.1 and Figure 4): the
/// assignment of a batch's queries to the nodes of one replication group,
/// either statically up front or dynamically on request, optionally ordered
/// and balanced by per-query execution-time predictions from the initial
/// best-so-far distance (the CostModel of Section 3.1.1). These are pure
/// assignment algorithms — the message flow lives in the driver, and the
/// per-node execution they feed is src/core/node_runtime.h.

#include <string>
#include <vector>

namespace odyssey {

/// The paper's query-scheduling algorithms (Sections 2 and 3.1), applied
/// inside each replication group:
///
///   STATIC               split the query sequence into equal contiguous
///                        subsequences (SQS).
///   DYNAMIC              coordinator hands out queries in sequence order on
///                        request (DQS).
///   PREDICT-ST-UNSORTED  greedy least-loaded static assignment using
///                        predicted times, in sequence order.
///   PREDICT-ST           same, after sorting by descending prediction (LPT).
///   PREDICT-DN           dynamic, after sorting by descending prediction —
///                        the paper's best policy; with work-stealing on top
///                        it becomes WORK-STEAL-PREDICT.
enum class SchedulingPolicy {
  kStatic,
  kDynamic,
  kPredictStaticUnsorted,
  kPredictStatic,
  kPredictDynamic,
};

const char* SchedulingPolicyToString(SchedulingPolicy policy);
bool PolicyIsDynamic(SchedulingPolicy policy);
bool PolicyNeedsPredictions(SchedulingPolicy policy);

/// STATIC: cuts [0, num_queries) into `num_workers` contiguous equal
/// subsequences; result[w] lists worker w's query ids in order.
std::vector<std::vector<int>> StaticSplit(int num_queries, int num_workers);

/// PREDICT-ST / PREDICT-ST-UNSORTED: greedy assignment to the currently
/// least-loaded worker (by summed estimates). When `sorted`, queries are
/// first ordered by descending estimate (classic LPT).
std::vector<std::vector<int>> PredictionGreedySplit(
    const std::vector<double>& estimates, int num_workers, bool sorted);

/// The dispatch order a dynamic coordinator serves: sequence order for
/// DYNAMIC, descending-estimate order for PREDICT-DN.
std::vector<int> DynamicDispatchOrder(const std::vector<double>& estimates,
                                      int num_queries, bool sorted);

}  // namespace odyssey

#endif  // ODYSSEY_CORE_SCHEDULER_H_
