#include "src/core/driver.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>  // std::this_thread::sleep_for (arrival pacing)
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/common/numa.h"
#include "src/common/stopwatch.h"
#include "src/common/summary_stats.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"

namespace odyssey {
namespace {

/// Coordinator-side failure detection and group-level reassignment — the
/// "victim never answers" branch of the recovery protocol (ARCHITECTURE.md
/// "Failure model"). Single-threaded: lives on the coordinator's answer
/// loop, fed one received message at a time.
///
/// Detection: every message the coordinator receives from a node is a
/// heartbeat; a node silent past the deadline (and not yet terminated) is
/// declared dead. Recovery: the verdict is broadcast (kNodeDead) so steal
/// victims re-run the RS-batches they had granted to the deceased and ack
/// (kNodeDeadAck); every query dispatched to the dead node is
/// re-executed wholesale by surviving members of its replication group
/// (kRecoverQuery), round-robin. The batch quiesces when every node is
/// terminated or dead and no ack or recovery answer is outstanding; a
/// final non-blocking drain then collects any answers a delay left behind.
///
/// A false-positive verdict (slow-but-alive node) is exactness-safe: its
/// transport stays open, it keeps answering, and the duplicate answers
/// deduplicate in MergeAnswers — re-execution only ever *adds* candidate
/// coverage. What is unrecoverable is every replica of a chunk dying:
/// SurvivingMembers surfaces that as a FailedPrecondition status.
class CoordinatorRecovery {
 public:
  CoordinatorRecovery(const ReplicationLayout& layout, SimCluster* cluster,
                      double timeout_seconds)
      : layout_(layout),
        cluster_(cluster),
        timeout_seconds_(timeout_seconds),
        last_heard_(static_cast<size_t>(layout.num_nodes()), 0.0) {}

  bool enabled() const { return timeout_seconds_ > 0.0; }
  bool IsDead(int node) const { return dead_.count(node) != 0; }
  const std::set<int>& dead() const { return dead_; }
  const Status& status() const { return status_; }

  /// Records that `query_id` was dispatched to `node` (static assignment
  /// or a dynamic grant): if the node dies unanswered, the query is
  /// re-executed by a surviving group member.
  void OnDispatch(int node, int query_id) {
    if (enabled()) dispatched_[node].push_back(query_id);
  }

  /// Folds one coordinator-received message into the bookkeeping.
  void OnMessage(const Message& m) {
    if (!enabled()) return;
    if (m.from >= 0 && m.from < layout_.num_nodes()) {
      last_heard_[static_cast<size_t>(m.from)] = clock_.ElapsedSeconds();
    }
    switch (m.type) {
      case MessageType::kLocalAnswer:
        // Only the flagged re-execution answer retires the reassignment.
        // A survivor can send *other* partial answers for the same
        // (node, query) pair — stolen-work results, or the grant replay
        // HandleNodeDead runs before acking — and counting one of those
        // would quiesce the batch while the real recovery re-run is still
        // scoring, losing the dead node's unstolen coverage for good.
        if (m.recovery) pending_recovery_.erase({m.from, m.query_id});
        break;
      case MessageType::kNodeDeadAck:
        pending_acks_.erase({m.from, m.subject});
        break;
      case MessageType::kQueryRequest:
      case MessageType::kNodeTerminated:
      case MessageType::kHeartbeat:
        break;  // heartbeat only; termination is the caller's set
      case MessageType::kAssignQuery:
      case MessageType::kNoMoreQueries:
      case MessageType::kBsfUpdate:
      case MessageType::kDone:
      case MessageType::kStealRequest:
      case MessageType::kStealReply:
      case MessageType::kShutdown:
      case MessageType::kNodeDead:
      case MessageType::kRecoverQuery:
        break;  // node-bound vocabulary; never coordinator-received
    }
  }

  /// Checks every live, unterminated node against the deadline.
  void Poll(const std::set<int>& terminated) {
    if (!enabled()) return;
    const double now = clock_.ElapsedSeconds();
    for (int n = 0; n < layout_.num_nodes(); ++n) {
      if (dead_.count(n) != 0 || terminated.count(n) != 0) continue;
      if (now - last_heard_[static_cast<size_t>(n)] > timeout_seconds_) {
        DeclareDead(n);
      }
    }
  }

  /// The batch is over: every node terminated or dead, every kNodeDead
  /// acked, every reassigned query answered.
  bool Quiesced(const std::set<int>& terminated) const {
    for (int n = 0; n < layout_.num_nodes(); ++n) {
      if (terminated.count(n) == 0 && dead_.count(n) == 0) return false;
    }
    return pending_acks_.empty() && pending_recovery_.empty();
  }

 private:
  void DeclareDead(int node) {
    if (dead_.count(node) != 0) return;
    dead_.insert(node);
    fault_stats::CountNodeDeclaredDead();
    // A verdict is protocol progress for everyone: restart every other
    // node's silence window so survivors quietly waiting out the victim
    // (e.g. parked in steal timeouts) are not cascaded into false
    // verdicts of their own.
    const double now = clock_.ElapsedSeconds();
    for (double& heard : last_heard_) heard = now;
    // Write off acks we were owed *by* the deceased, and collect
    // recoveries it owned — they must move to another survivor.
    std::vector<int> orphaned;
    for (auto it = pending_acks_.begin(); it != pending_acks_.end();) {
      if (it->first == node) {
        it = pending_acks_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = pending_recovery_.begin();
         it != pending_recovery_.end();) {
      if (it->first == node) {
        orphaned.push_back(it->second);
        it = pending_recovery_.erase(it);
      } else {
        ++it;
      }
    }
    // Tell every remaining node; each must ack after re-running whatever
    // it had granted to the deceased.
    Message verdict;
    verdict.type = MessageType::kNodeDead;
    verdict.from = cluster_->coordinator_id();
    verdict.subject = node;
    for (int v = 0; v < layout_.num_nodes(); ++v) {
      if (dead_.count(v) != 0) continue;
      cluster_->Send(v, verdict);
      pending_acks_.insert({v, node});
    }
    auto survivors = layout_.SurvivingMembers(layout_.GroupOf(node), dead_);
    if (!survivors.ok()) {
      // Chunk coverage is gone; surface the error instead of merging a
      // silently partial answer. No reassignment target exists.
      status_ = survivors.status();
      return;
    }
    // Re-execute *everything* dispatched to the deceased — even queries it
    // answered. Its answer for a query can be partial: it may have granted
    // the query's RS-batches to a thief and died before the batch-carrying
    // steal reply got out, in which case those batches ran nowhere and its
    // delivered answer silently lacks them. Re-running answered queries
    // only adds duplicate candidates (MergeAnswers dedups); skipping one
    // loses coverage. (A node that *terminated* needs none of this: a
    // delivered kNodeTerminated proves every earlier send — all its
    // answers and steal replies — was delivered too.)
    std::set<int> to_recover(orphaned.begin(), orphaned.end());
    for (int q : dispatched_[node]) to_recover.insert(q);
    for (int q : to_recover) {
      const int target =
          (*survivors)[static_cast<size_t>(rr_++) % survivors->size()];
      Message recover;
      recover.type = MessageType::kRecoverQuery;
      recover.from = cluster_->coordinator_id();
      recover.query_id = q;
      cluster_->Send(target, std::move(recover));
      pending_recovery_.insert({target, q});
      dispatched_[target].push_back(q);  // survivable if the target dies too
      fault_stats::CountQueryReassigned();
    }
  }

  const ReplicationLayout& layout_;
  SimCluster* const cluster_;
  const double timeout_seconds_;
  Stopwatch clock_;
  std::vector<double> last_heard_;
  std::set<int> dead_;
  /// (acker, subject) pairs still owed after a kNodeDead broadcast.
  std::set<std::pair<int, int>> pending_acks_;
  /// (owner, query) reassignments whose recovery answer is still owed.
  std::set<std::pair<int, int>> pending_recovery_;
  std::map<int, std::vector<int>> dispatched_;
  Status status_ = Status::Ok();
  int rr_ = 0;  // round-robin cursor over survivors
};

}  // namespace

bool DefaultBatchedScoring() {
  const char* env = std::getenv("ODYSSEY_BATCHED_SCORING");
  return env != nullptr && *env != '\0' && *env != '0';
}

bool DefaultStealDonation() {
  const char* env = std::getenv("ODYSSEY_STEAL_DONATION");
  if (env == nullptr || *env == '\0') return true;  // donation defaults on
  return *env != '0';
}

int DefaultBatchMaxInflight() {
  const char* env = std::getenv("ODYSSEY_BATCH_INFLIGHT");
  if (env == nullptr || *env == '\0') return 0;  // auto
  const int value = std::atoi(env);
  return value > 0 ? value : 0;
}

QueryAnswer MergeAnswers(const std::vector<Neighbor>& candidates, int k) {
  // Deduplicate by global id, keeping each series' best distance, then take
  // the k smallest.
  std::unordered_map<uint32_t, float> best;
  best.reserve(candidates.size());
  for (const Neighbor& n : candidates) {
    auto [it, inserted] = best.emplace(n.id, n.squared_distance);
    if (!inserted && n.squared_distance < it->second) {
      it->second = n.squared_distance;
    }
  }
  QueryAnswer merged;
  merged.reserve(best.size());
  for (const auto& [id, dist] : best) merged.push_back({dist, id});
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.squared_distance != b.squared_distance) {
                return a.squared_distance < b.squared_distance;
              }
              return a.id < b.id;
            });
  if (merged.size() > static_cast<size_t>(k)) merged.resize(k);
  return merged;
}

OdysseyCluster::OdysseyCluster(const SeriesCollection& dataset,
                               const OdysseyOptions& options)
    : options_(options),
      layout_([&] {
        auto layout = ReplicationLayout::Make(options.num_nodes,
                                              options.num_groups);
        ODYSSEY_CHECK_MSG(layout.ok(), layout.status().ToString().c_str());
        return *layout;
      }()) {
  ODYSSEY_CHECK(dataset.length() == options.index_options.config.series_length());
  driver_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options_.build_threads_per_node)));

  // Stage 1: the coordinator partitions the collection into num_groups
  // chunks.
  Stopwatch watch;
  std::vector<std::vector<uint32_t>> chunks;
  if (!options_.custom_chunks.empty()) {
    ODYSSEY_CHECK(static_cast<int>(options_.custom_chunks.size()) ==
                  layout_.num_groups());
    chunks = options_.custom_chunks;
  } else {
    chunks = PartitionSeries(dataset, layout_.num_groups(),
                             options_.partitioning,
                             options_.index_options.config, options_.seed,
                             driver_pool_.get(), options_.density_options);
  }
  partition_seconds_ = watch.ElapsedSeconds();

  // Stage 2: index construction, per replication group.
  nodes_.reserve(layout_.num_nodes());
  for (int n = 0; n < layout_.num_nodes(); ++n) {
    nodes_.push_back(std::make_unique<NodeRuntime>(n, layout_));
  }
  if (options_.share_chunks) {
    // Shared path: each group materializes and summarizes its chunk exactly
    // once (Section 3.3: a group's members hold identical data); every
    // member then builds its own — bit-identical — tree from views of that
    // one bundle. Under FULL replication this is 1 copy + 1 summarization
    // instead of Nsn of each.
    std::vector<std::shared_ptr<const SharedChunk>> bundles(
        layout_.num_groups());
    {
      std::vector<CountedThread> groups;
      groups.reserve(layout_.num_groups());
      for (int g = 0; g < layout_.num_groups(); ++g) {
        groups.emplace_back([&, g] {
          // NUMA first-touch: bind the build thread to the group's socket
          // before materializing, so the bundle's pages land on the memory
          // its replicas will scan. The pool is created after the bind —
          // child threads inherit the affinity mask.
          if (numa::BindCurrentThread(numa::NodeForGroup(g))) {
            executor_stats::CountChunkPlaced();
          }
          ThreadPool pool(static_cast<size_t>(
              std::max(1, options_.build_threads_per_node)));
          bundles[g] = SharedChunk::Build(dataset.Subset(chunks[g]),
                                          chunks[g],
                                          options_.index_options.config,
                                          &pool);
        });
      }
      for (auto& t : groups) t.Join();
    }
    std::vector<CountedThread> builders;
    builders.reserve(layout_.num_nodes());
    for (int n = 0; n < layout_.num_nodes(); ++n) {
      builders.emplace_back([&, n] {
        nodes_[n]->LoadSharedChunk(bundles[layout_.GroupOf(n)]);
        nodes_[n]->BuildIndex(options_.index_options,
                              options_.build_threads_per_node);
      });
    }
    for (auto& t : builders) t.Join();
  } else {
    // Legacy copy path: every node subsets its group's chunk straight out
    // of the caller's collection and summarizes it privately. Kept for the
    // shared-vs-copy benchmarks and bit-identity tests.
    std::vector<CountedThread> builders;
    builders.reserve(layout_.num_nodes());
    for (int n = 0; n < layout_.num_nodes(); ++n) {
      builders.emplace_back([&, n] {
        const std::vector<uint32_t>& chunk_ids = chunks[layout_.GroupOf(n)];
        nodes_[n]->LoadChunk(dataset.Subset(chunk_ids), chunk_ids);
        nodes_[n]->BuildIndex(options_.index_options,
                              options_.build_threads_per_node);
      });
    }
    for (auto& t : builders) t.Join();
  }
}

OdysseyCluster::OdysseyCluster(GroupChunks groups,
                               const OdysseyOptions& options,
                               double partition_seconds,
                               double ingest_seconds,
                               double overlap_seconds)
    : options_(options),
      layout_([&] {
        auto layout = ReplicationLayout::Make(options.num_nodes,
                                              options.num_groups);
        ODYSSEY_CHECK_MSG(layout.ok(), layout.status().ToString().c_str());
        return *layout;
      }()),
      partition_seconds_(partition_seconds),
      ingest_seconds_(ingest_seconds),
      overlap_seconds_(overlap_seconds) {
  driver_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options_.build_threads_per_node)));
  BuildNodes(std::move(groups));
}

StatusOr<std::unique_ptr<OdysseyCluster>> OdysseyCluster::IngestAndBuild(
    SeriesIngestor& source, const OdysseyOptions& options) {
  auto layout = ReplicationLayout::Make(options.num_nodes, options.num_groups);
  if (!layout.ok()) return layout.status();
  if (source.length() != options.index_options.config.series_length()) {
    return Status::InvalidArgument(
        "archive series length " + std::to_string(source.length()) +
        " does not match the index config length " +
        std::to_string(options.index_options.config.series_length()));
  }
  if (!options.custom_chunks.empty()) {
    return Status::InvalidArgument(
        "custom_chunks index into a whole collection and cannot drive a "
        "streaming build");
  }

  // Stage 0+1 interleaved: pull one bounded chunk at a time and partition
  // it on arrival, appending each group's share directly into the group's
  // storage. Peak transient heap is one ingest chunk (two with the overlap
  // pipeline: the chunk being processed + the one in flight); the full
  // archive only ever exists distributed across the groups (as on a real
  // cluster). On the shared path each arriving chunk is summarized exactly
  // once — before partitioning, so DENSITY-AWARE reuses the same table —
  // and the rows are scattered into per-group tables alongside the series;
  // the group bundles are then adopted at build time with zero
  // re-summarization, and with overlap_ingest the next chunk's disk read
  // runs concurrently with all of this.
  const IsaxConfig& config = options.index_options.config;
  const size_t w = static_cast<size_t>(config.segments());
  GroupChunks groups;
  groups.data.resize(layout->num_groups(), SeriesCollection(source.length()));
  groups.ids.resize(layout->num_groups());
  groups.summarized = options.share_chunks;
  if (groups.summarized) {
    groups.paa.resize(layout->num_groups());
    groups.sax.resize(layout->num_groups());
  }
  double ingest_seconds = 0.0;
  double partition_seconds = 0.0;
  ThreadPool pool(options.build_threads_per_node);
  const bool overlap = options.share_chunks && options.overlap_ingest;
  std::unique_ptr<ChunkPrefetcher> prefetcher;
  if (overlap) prefetcher = std::make_unique<ChunkPrefetcher>(&source);
  Stopwatch watch;
  uint64_t chunk_index = 0;
  uint32_t base = 0;  // global id of the current chunk's first series
  std::vector<double> chunk_paa;
  std::vector<uint8_t> chunk_sax;
  for (;; ++chunk_index) {
    watch.Restart();
    StatusOr<SeriesCollection> chunk =
        overlap ? prefetcher->Next() : source.NextChunk();
    if (!chunk.ok()) return chunk.status();
    if (!overlap) ingest_seconds += watch.ElapsedSeconds();
    if (chunk->empty()) break;
    const size_t n = chunk->size();
    watch.Restart();
    const std::vector<uint8_t>* precomputed_sax = nullptr;
    if (options.share_chunks) {
      chunk_paa.resize(n * w);
      chunk_sax.resize(n * w);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          double* paa = chunk_paa.data() + i * w;
          ComputePaa(chunk->data(i), config.paa, paa);
          ComputeSaxFromPaa(paa, config, chunk_sax.data() + i * w);
        }
      });
      precomputed_sax = &chunk_sax;
    }
    // Per-chunk seed: kRandomShuffle must not deal every chunk the same
    // permutation.
    const std::vector<std::vector<uint32_t>> local = PartitionSeries(
        *chunk, layout->num_groups(), options.partitioning, config,
        options.seed + chunk_index, &pool, options.density_options,
        precomputed_sax);
    for (int g = 0; g < layout->num_groups(); ++g) {
      for (uint32_t id : local[g]) {
        groups.data[g].Append(chunk->data(id));
        groups.ids[g].push_back(base + id);
        if (options.share_chunks) {
          groups.paa[g].insert(groups.paa[g].end(),
                               chunk_paa.data() + id * w,
                               chunk_paa.data() + (id + 1) * w);
          groups.sax[g].insert(groups.sax[g].end(),
                               chunk_sax.data() + id * w,
                               chunk_sax.data() + (id + 1) * w);
        }
      }
    }
    base += static_cast<uint32_t>(n);
    partition_seconds += watch.ElapsedSeconds();
  }
  double overlap_seconds = 0.0;
  if (overlap) {
    ingest_seconds = prefetcher->pull_seconds();
    overlap_seconds = prefetcher->overlap_seconds();
    build_stats::AddOverlapSeconds(overlap_seconds);
    prefetcher.reset();
  }
  if (chunk_index == 0) {
    return Status::InvalidArgument("archive is empty: " + source.path());
  }
  return std::unique_ptr<OdysseyCluster>(
      new OdysseyCluster(std::move(groups), options, partition_seconds,
                         ingest_seconds, overlap_seconds));
}

void OdysseyCluster::BuildNodes(GroupChunks groups) {
  nodes_.reserve(layout_.num_nodes());
  for (int n = 0; n < layout_.num_nodes(); ++n) {
    nodes_.push_back(std::make_unique<NodeRuntime>(n, layout_));
  }
  if (groups.summarized) {
    // Shared path: each group adopts its accumulated series + PAA/SAX
    // tables (computed once per ingest chunk, never recomputed here) as one
    // immutable bundle — the only per-group work left is grouping the
    // summarization buffers — and every member indexes views of it.
    std::vector<std::shared_ptr<const SharedChunk>> bundles(
        layout_.num_groups());
    {
      std::vector<CountedThread> adopters;
      adopters.reserve(layout_.num_groups());
      for (int g = 0; g < layout_.num_groups(); ++g) {
        adopters.emplace_back([&, g] {
          // NUMA first-touch placement — see the in-memory constructor.
          if (numa::BindCurrentThread(numa::NodeForGroup(g))) {
            executor_stats::CountChunkPlaced();
          }
          ThreadPool pool(static_cast<size_t>(
              std::max(1, options_.build_threads_per_node)));
          bundles[g] = SharedChunk::Adopt(
              std::move(groups.data[g]), std::move(groups.ids[g]),
              std::move(groups.paa[g]), std::move(groups.sax[g]),
              options_.index_options.config, &pool);
        });
      }
      for (auto& t : adopters) t.Join();
    }
    std::vector<CountedThread> builders;
    builders.reserve(layout_.num_nodes());
    for (int n = 0; n < layout_.num_nodes(); ++n) {
      builders.emplace_back([&, n] {
        nodes_[n]->LoadSharedChunk(bundles[layout_.GroupOf(n)]);
        nodes_[n]->BuildIndex(options_.index_options,
                              options_.build_threads_per_node);
      });
    }
    for (auto& t : builders) t.Join();
    return;
  }
  // Legacy copy path: every node loads its group's chunk and builds its
  // index concurrently, as on a real cluster. Replicas copy the group's
  // chunk (each node's private RAM); a group with a single member moves it
  // instead, so EQUALLY-SPLIT layouts never duplicate data.
  std::vector<CountedThread> builders;
  builders.reserve(layout_.num_nodes());
  for (int n = 0; n < layout_.num_nodes(); ++n) {
    builders.emplace_back([&, n] {
      const int g = layout_.GroupOf(n);
      // Only this thread touches group g's storage when it is the sole
      // member, so the move cannot race with a replica's copy.
      const bool sole_member = layout_.GroupMembers(g).size() == 1;
      SeriesCollection chunk = sole_member
                                   ? std::move(groups.data[g])
                                   : SeriesCollection(groups.data[g]);
      std::vector<uint32_t> ids = sole_member ? std::move(groups.ids[g])
                                              : groups.ids[g];
      nodes_[n]->LoadChunk(std::move(chunk), std::move(ids));
      nodes_[n]->BuildIndex(options_.index_options,
                            options_.build_threads_per_node);
    });
  }
  for (auto& t : builders) t.Join();
}

OdysseyCluster::~OdysseyCluster() = default;

double OdysseyCluster::max_buffer_seconds() const {
  double out = 0.0;
  for (const auto& node : nodes_) {
    out = std::max(out, node->build_timings().buffer_seconds);
  }
  return out;
}

double OdysseyCluster::max_tree_seconds() const {
  double out = 0.0;
  for (const auto& node : nodes_) {
    out = std::max(out, node->build_timings().tree_seconds);
  }
  return out;
}

size_t OdysseyCluster::total_index_bytes() const {
  size_t out = 0;
  for (const auto& node : nodes_) out += node->index().IndexMemoryBytes();
  return out;
}

size_t OdysseyCluster::total_data_bytes() const {
  size_t out = 0;
  for (const auto& node : nodes_) out += node->index().DataMemoryBytes();
  return out;
}

PreparedBatch OdysseyCluster::PrepareQueries(const SeriesCollection& queries,
                                             double* prepare_seconds) const {
  // Stage 3 pre-step: build every query's summaries (PAA, SAX, DTW
  // envelope) exactly once, on the coordinator's persistent pool.
  // Scheduling estimates, every replica, and stolen-work runs all share
  // these immutable artifacts.
  Stopwatch watch;
  PreparedBatch prepared =
      PrepareBatch(queries, options_.index_options.config,
                   options_.query_options, driver_pool_.get());
  *prepare_seconds = watch.ElapsedSeconds();
  return prepared;
}

std::vector<double> OdysseyCluster::EstimateGroupQueries(
    int group, const PreparedBatch& prepared) {
  // Stage 3a (on behalf of the group coordinator): per-query execution-time
  // estimates from the initial BSF of an approximate search on the group's
  // chunk (Figure 4). Without a fitted cost model, the initial BSF itself
  // serves as the estimate (the regression is monotone, so ordering and
  // greedy assignment behave identically). The queries' PAA/SAX come from
  // the batch-level prepared artifacts, so estimation pays only the tree
  // descent and one leaf scan per query.
  const Index& index = nodes_[layout_.GroupCoordinator(group)]->index();
  std::vector<double> estimates(prepared.size());
  // The group coordinator is itself a multi-core node: estimation uses
  // pooled workers, keeping the scheduling stage's overhead negligible
  // relative to query answering (as in the paper) — and, like every other
  // stage-3/4 step, it creates no threads.
  ThreadPool& pool = *driver_pool_;
  pool.ParallelFor(prepared.size(), [&](size_t begin, size_t end) {
    for (size_t q = begin; q < end; ++q) {
      const PreparedQuery& query = prepared.query(q);
      const float sq = options_.query_options.use_dtw
                           ? ApproximateSearchSquaredDtw(index, query)
                           : ApproximateSearchSquared(index, query);
      const double initial_bsf = std::sqrt(static_cast<double>(sq));
      estimates[q] =
          (options_.cost_model != nullptr && options_.cost_model->fitted())
              ? options_.cost_model->PredictSeconds(initial_bsf)
              : initial_bsf;
    }
  });
  return estimates;
}

BatchReport OdysseyCluster::AnswerBatch(const SeriesCollection& queries) {
  ODYSSEY_CHECK(!queries.empty());
  const int num_queries = static_cast<int>(queries.size());

  // A fresh transport per batch: stale messages cannot leak across runs.
  // With an active fault plan the transport is adversarial — the injector
  // consults the plan's seeded RNG on every send.
  FaultInjector injector(options_.fault_plan);
  SimCluster cluster(layout_.num_nodes(),
                     options_.fault_plan.active() ? &injector : nullptr);

  NodeBatchOptions node_options;
  node_options.policy = options_.scheduling;
  node_options.worksteal = options_.worksteal;
  // Work-stealing requires a peer with identical data: disable when groups
  // have a single member (EQUALLY-SPLIT), matching the paper's constraint.
  if (layout_.replication_degree() <= 1) node_options.worksteal.enabled = false;
  node_options.query_options = options_.query_options;
  node_options.threshold_model = options_.threshold_model;
  node_options.share_bsf = options_.share_bsf;
  node_options.use_executor = options_.use_executor;
  node_options.batched_scoring = options_.batched_scoring;
  node_options.steal_donation = options_.steal_donation;
  // Admission depth: the executor path admits up to a pool's width of
  // statically-delivered queries — with batched scoring, one leaf scan
  // then serves the whole admitted group — and stolen/donated work charges
  // the same in-flight budget. The legacy spawn path keeps the paper's
  // strict one-at-a-time batch model (every in-flight query there spawns
  // its own thread complement).
  if (options_.batch_max_inflight > 0) {
    node_options.max_inflight = options_.batch_max_inflight;
  } else if (options_.use_executor || node_options.batched_scoring) {
    node_options.max_inflight =
        std::max(1, options_.query_options.num_threads);
  } else {
    node_options.max_inflight = 1;
  }
  // Arm unsolicited heartbeats only when the liveness deadline is: silent
  // compute must read as busy, and without a deadline pings are noise.
  node_options.liveness_heartbeat_seconds =
      options_.liveness_timeout_seconds > 0.0 ? 0.025 : 0.0;
  node_options.seed = options_.seed;

  Stopwatch batch_watch;
  double prepare_seconds = 0.0;
  const PreparedBatch prepared = PrepareQueries(queries, &prepare_seconds);

  // Constructed after preparation so its silence clock starts with the
  // nodes' epochs, not with the driver-side summarization work.
  CoordinatorRecovery recovery(layout_, &cluster,
                               options_.liveness_timeout_seconds);

  for (auto& node : nodes_) {
    node->StartBatch(&cluster, &prepared, node_options);
  }

  // Stage 3: scheduling, per replication group (the driver acts for each
  // group coordinator; assignment travels as kAssignQuery messages and
  // dynamic requests as kQueryRequest round-trips). Groups with a single
  // member have nothing to schedule, so they skip estimation entirely
  // (scheduling is a no-op without replication); per-group estimation runs
  // on the coordinator's persistent pool, one group at a time (on the real
  // system each group coordinator estimates on its own node's workers).
  Stopwatch scheduling_watch;
  const bool dynamic = PolicyIsDynamic(options_.scheduling);
  std::vector<std::vector<double>> group_estimates(layout_.num_groups());
  if (PolicyNeedsPredictions(options_.scheduling) &&
      layout_.replication_degree() > 1) {
    for (int g = 0; g < layout_.num_groups(); ++g) {
      group_estimates[g] = EstimateGroupQueries(g, prepared);
    }
  }
  // Dynamic dispatch queues, per group.
  std::vector<std::deque<int>> dispatch(layout_.num_groups());
  // Assignment fence (Message::assign_count): per-node count of distinct
  // kAssignQuery sends, stamped on every kNoMoreQueries so a node can tell
  // a marker that overtook a delayed assignment from one that really is
  // the end of its share.
  std::vector<int> assigns_sent(static_cast<size_t>(layout_.num_nodes()), 0);
  for (int g = 0; g < layout_.num_groups(); ++g) {
    const std::vector<int> members = layout_.GroupMembers(g);
    const std::vector<double>& estimates = group_estimates[g];
    SchedulingPolicy effective = options_.scheduling;
    if (estimates.empty() && PolicyNeedsPredictions(effective)) {
      // Single-member group: degrade to the prediction-free equivalent.
      effective = PolicyIsDynamic(effective) ? SchedulingPolicy::kDynamic
                                             : SchedulingPolicy::kStatic;
    }
    switch (effective) {
      case SchedulingPolicy::kStatic: {
        const auto assignment =
            StaticSplit(num_queries, static_cast<int>(members.size()));
        for (size_t w = 0; w < members.size(); ++w) {
          for (int q : assignment[w]) {
            Message m;
            m.type = MessageType::kAssignQuery;
            m.from = cluster.coordinator_id();
            m.query_id = q;
            cluster.Send(members[w], std::move(m));
            ++assigns_sent[static_cast<size_t>(members[w])];
            recovery.OnDispatch(members[w], q);
          }
        }
        break;
      }
      case SchedulingPolicy::kPredictStaticUnsorted:
      case SchedulingPolicy::kPredictStatic: {
        const bool sorted = effective == SchedulingPolicy::kPredictStatic;
        const auto assignment = PredictionGreedySplit(
            estimates, static_cast<int>(members.size()), sorted);
        for (size_t w = 0; w < members.size(); ++w) {
          for (int q : assignment[w]) {
            Message m;
            m.type = MessageType::kAssignQuery;
            m.from = cluster.coordinator_id();
            m.query_id = q;
            cluster.Send(members[w], std::move(m));
            ++assigns_sent[static_cast<size_t>(members[w])];
            recovery.OnDispatch(members[w], q);
          }
        }
        break;
      }
      case SchedulingPolicy::kDynamic:
      case SchedulingPolicy::kPredictDynamic: {
        const bool sorted = effective == SchedulingPolicy::kPredictDynamic;
        const std::vector<int> order =
            DynamicDispatchOrder(estimates, num_queries, sorted);
        dispatch[g].assign(order.begin(), order.end());
        break;
      }
    }
    if (!dynamic) {
      for (int member : members) {
        Message m;
        m.type = MessageType::kNoMoreQueries;
        m.from = cluster.coordinator_id();
        m.assign_count = assigns_sent[static_cast<size_t>(member)];
        cluster.Send(member, std::move(m));
      }
    }
  }
  const double scheduling_seconds = scheduling_watch.ElapsedSeconds();

  // Stage 4-5: serve dynamic requests, collect local answers, and wait for
  // every node to finish its work-stealing phase.
  BatchReport report;
  report.answers.resize(num_queries);
  std::vector<std::vector<Neighbor>> candidates(num_queries);
  // A duplicated kNodeTerminated (fault injection) must not double-count,
  // so terminations are a set, not a counter.
  std::set<int> terminated;
  while (!recovery.Quiesced(terminated)) {
    Message m;
    bool got;
    if (recovery.enabled()) {
      // Poll with a short timeout so liveness deadlines fire even while no
      // traffic arrives (the failure mode that needs them most).
      got = cluster.mailbox(cluster.coordinator_id())
                .ReceiveFor(std::chrono::microseconds(2000), &m);
    } else {
      got = cluster.mailbox(cluster.coordinator_id()).Receive(&m);
      if (!got) break;  // coordinator mailbox closed: defensive, never faulted
    }
    if (got) {
      recovery.OnMessage(m);
      switch (m.type) {
        case MessageType::kQueryRequest: {
          std::deque<int>& queue = dispatch[layout_.GroupOf(m.from)];
          Message reply;
          reply.from = cluster.coordinator_id();
          if (queue.empty()) {
            reply.type = MessageType::kNoMoreQueries;
            reply.assign_count = assigns_sent[static_cast<size_t>(m.from)];
          } else {
            reply.type = MessageType::kAssignQuery;
            reply.query_id = queue.front();
            queue.pop_front();
            ++assigns_sent[static_cast<size_t>(m.from)];
            recovery.OnDispatch(m.from, reply.query_id);
          }
          cluster.Send(m.from, std::move(reply));
          break;
        }
        case MessageType::kLocalAnswer: {
          std::vector<Neighbor>& bucket = candidates[m.query_id];
          bucket.insert(bucket.end(), m.neighbors.begin(), m.neighbors.end());
          break;
        }
        case MessageType::kNodeTerminated:
          terminated.insert(m.from);
          break;
        case MessageType::kAssignQuery:
        case MessageType::kNoMoreQueries:
        case MessageType::kBsfUpdate:
        case MessageType::kDone:
        case MessageType::kStealRequest:
        case MessageType::kStealReply:
        case MessageType::kShutdown:
        case MessageType::kNodeDead:
        case MessageType::kNodeDeadAck:
        case MessageType::kRecoverQuery:
        case MessageType::kHeartbeat:
          break;  // node-bound traffic (e.g. kDone copies) is informational
      }
    }
    recovery.Poll(terminated);
  }

  // Drain stragglers: a delayed kLocalAnswer can still sit in the held
  // queue after the last kNodeTerminated. Sound because recovery answers
  // are fenced by their node's kNodeDeadAck (same-thread FIFO) and ordinary
  // answers by that node's kNodeTerminated, all of which Quiesced() has
  // already seen; TryReceive force-flushes held messages.
  {
    Message m;
    while (cluster.mailbox(cluster.coordinator_id()).TryReceive(&m)) {
      if (m.type == MessageType::kLocalAnswer) {
        std::vector<Neighbor>& bucket = candidates[m.query_id];
        bucket.insert(bucket.end(), m.neighbors.begin(), m.neighbors.end());
      }
    }
  }
  report.status = recovery.status();
  report.dead_nodes.assign(recovery.dead().begin(), recovery.dead().end());

  // Merge the per-node partial answers into the final ones.
  for (int q = 0; q < num_queries; ++q) {
    report.answers[q] = MergeAnswers(candidates[q], options_.query_options.k);
  }
  report.query_seconds = batch_watch.ElapsedSeconds();
  report.prepare_seconds = prepare_seconds;
  report.scheduling_seconds = scheduling_seconds;

  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = cluster.coordinator_id();
  cluster.Broadcast(shutdown);
  for (auto& node : nodes_) node->JoinBatch();

  for (auto& node : nodes_) {
    report.node_stats.push_back(node->batch_stats());
    report.queries_in_flight_hwm = std::max(
        report.queries_in_flight_hwm, node->batch_stats().inflight_hwm);
  }
  report.messages_sent = cluster.messages_sent();
  report.bsf_updates = cluster.messages_sent(MessageType::kBsfUpdate);
  report.steal_requests = cluster.messages_sent(MessageType::kStealRequest);
  return report;
}

BatchReport OdysseyCluster::AnswerStream(
    const SeriesCollection& queries,
    const std::vector<double>& arrival_seconds) {
  ODYSSEY_CHECK(!queries.empty());
  ODYSSEY_CHECK(queries.length() ==
                options_.index_options.config.series_length());
  ODYSSEY_CHECK(arrival_seconds.size() == queries.size());
  ODYSSEY_CHECK(std::is_sorted(arrival_seconds.begin(),
                               arrival_seconds.end()));
  const int num_queries = static_cast<int>(queries.size());

  FaultInjector injector(options_.fault_plan);
  SimCluster cluster(layout_.num_nodes(),
                     options_.fault_plan.active() ? &injector : nullptr);
  CoordinatorRecovery recovery(layout_, &cluster,
                               options_.liveness_timeout_seconds);

  NodeBatchOptions node_options;
  // Streaming always dispatches dynamically: a query cannot be assigned (or
  // sorted by estimate) before it exists.
  node_options.policy = SchedulingPolicy::kDynamic;
  node_options.worksteal = options_.worksteal;
  if (layout_.replication_degree() <= 1) node_options.worksteal.enabled = false;
  node_options.query_options = options_.query_options;
  node_options.threshold_model = options_.threshold_model;
  node_options.share_bsf = options_.share_bsf;
  node_options.use_executor = options_.use_executor;
  // A node with idle workers runs several admitted queries concurrently,
  // partitioning its pool, instead of strictly one at a time.
  node_options.max_inflight = std::max(1, options_.stream_max_inflight);
  // With batched scoring, concurrently-admitted arrivals are scored as one
  // group instead of partitioning the pool between them.
  node_options.batched_scoring = options_.batched_scoring;
  node_options.steal_donation = options_.steal_donation;
  // Arm unsolicited heartbeats only when the liveness deadline is: silent
  // compute must read as busy, and without a deadline pings are noise.
  node_options.liveness_heartbeat_seconds =
      options_.liveness_timeout_seconds > 0.0 ? 0.025 : 0.0;
  node_options.seed = options_.seed;

  // Online admission: slots are allocated up front, but each query is
  // summarized by the prep thread at its modeled arrival time — while the
  // nodes execute earlier arrivals — and dispatched the moment it is
  // admitted. Preparation therefore overlaps execution instead of
  // front-loading the whole stream's summarization (the ROADMAP's
  // streaming-prepare item; prep_overlap_seconds observes the win).
  PreparedBatch prepared = PreparedBatch::Allocate(queries.size());

  for (auto& node : nodes_) {
    node->StartBatch(&cluster, &prepared, node_options);
  }

  // The arrival clock starts now; the prep thread paces itself against it.
  Stopwatch batch_watch;

  const IsaxConfig& config = options_.index_options.config;
  const QueryOptions& qo = options_.query_options;
  double prepare_seconds = 0.0;
  double prep_overlap_seconds = 0.0;
  // Released queries whose answers are still outstanding (each query owes
  // one local answer per replication group; steal-split extras are capped
  // by the remaining-counter floor). The prep thread samples this gauge to
  // count only preparation that genuinely ran while something executed.
  std::atomic<int> executing_queries{0};
  CountedThread prep([&] {
    Stopwatch prep_watch;
    for (size_t q = 0; q < queries.size(); ++q) {
      // Model the arrival: admission cannot precede the query's existence.
      for (;;) {
        const double wait = arrival_seconds[q] - batch_watch.ElapsedSeconds();
        if (wait <= 0.0) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(wait, 500e-6)));
      }
      const bool busy_before =
          executing_queries.load(std::memory_order_acquire) > 0;
      prep_watch.Restart();
      prepared.Admit(q, queries.data(q), config, qo.use_dtw, qo.dtw_window);
      const double elapsed = prep_watch.ElapsedSeconds();
      prepare_seconds += elapsed;
      // Overlapped share: this admission ran while at least one earlier
      // query was still executing (sampled around the work; a sparse
      // trickle whose queries finish before the next arrival counts zero).
      if (busy_before ||
          executing_queries.load(std::memory_order_acquire) > 0) {
        prep_overlap_seconds += elapsed;
      }
    }
  });

  // Per-group released-query queues and parked dynamic requests: a request
  // that finds the queue empty while more queries are still to arrive is
  // deferred until the next admission.
  std::vector<std::deque<int>> dispatch(layout_.num_groups());
  std::vector<std::deque<int>> parked(layout_.num_groups());
  int released = 0;
  std::vector<int> answers_remaining(num_queries, layout_.num_groups());
  // Assignment fence — see AnswerBatch.
  std::vector<int> assigns_sent(static_cast<size_t>(layout_.num_nodes()), 0);

  BatchReport report;
  report.answers.resize(num_queries);
  std::vector<std::vector<Neighbor>> candidates(num_queries);
  std::set<int> terminated;

  auto serve = [&](int group) {
    while (!parked[group].empty()) {
      const int node = parked[group].front();
      if (recovery.IsDead(node)) {
        // A dead node's parked request is void: drop the request without
        // consuming a dispatch-queue entry, so the query goes to a
        // survivor's next request instead.
        parked[group].pop_front();
        continue;
      }
      std::deque<int>& queue = dispatch[group];
      Message reply;
      reply.from = cluster.coordinator_id();
      if (!queue.empty()) {
        reply.type = MessageType::kAssignQuery;
        reply.query_id = queue.front();
        queue.pop_front();
        ++assigns_sent[static_cast<size_t>(node)];
        recovery.OnDispatch(node, reply.query_id);
      } else if (released == num_queries) {
        reply.type = MessageType::kNoMoreQueries;
        reply.assign_count = assigns_sent[static_cast<size_t>(node)];
      } else {
        return;  // wait for the next admission
      }
      parked[group].pop_front();
      cluster.Send(node, std::move(reply));
    }
  };

  while (!recovery.Quiesced(terminated)) {
    // Release every query the prep thread has admitted (admission implies
    // its arrival time has passed). The admitted() acquire pairs with the
    // Admit fetch_add, so a released slot's summaries are visible to every
    // node the dispatch message reaches.
    while (released < num_queries &&
           static_cast<size_t>(released) < prepared.admitted()) {
      for (int g = 0; g < layout_.num_groups(); ++g) {
        dispatch[g].push_back(released);
      }
      ++released;
      executing_queries.fetch_add(1, std::memory_order_acq_rel);
      for (int g = 0; g < layout_.num_groups(); ++g) serve(g);
    }
    Message m;
    if (cluster.mailbox(cluster.coordinator_id())
            .ReceiveFor(std::chrono::microseconds(200), &m)) {
      recovery.OnMessage(m);
      switch (m.type) {
        case MessageType::kQueryRequest:
          parked[layout_.GroupOf(m.from)].push_back(m.from);
          serve(layout_.GroupOf(m.from));
          break;
        case MessageType::kLocalAnswer: {
          std::vector<Neighbor>& bucket = candidates[m.query_id];
          bucket.insert(bucket.end(), m.neighbors.begin(), m.neighbors.end());
          if (answers_remaining[m.query_id] > 0 &&
              --answers_remaining[m.query_id] == 0) {
            executing_queries.fetch_sub(1, std::memory_order_acq_rel);
          }
          break;
        }
        case MessageType::kNodeTerminated:
          terminated.insert(m.from);
          break;
        case MessageType::kAssignQuery:
        case MessageType::kNoMoreQueries:
        case MessageType::kBsfUpdate:
        case MessageType::kDone:
        case MessageType::kStealRequest:
        case MessageType::kStealReply:
        case MessageType::kShutdown:
        case MessageType::kNodeDead:
        case MessageType::kNodeDeadAck:
        case MessageType::kRecoverQuery:
        case MessageType::kHeartbeat:
          break;  // node-bound traffic is informational to the coordinator
      }
    }
    recovery.Poll(terminated);
    // A death verdict may have freed parked requests for reassignment.
    if (recovery.enabled()) {
      for (int g = 0; g < layout_.num_groups(); ++g) serve(g);
    }
  }
  // Termination of every node implies all queries were dispatched, so the
  // prep thread has already run to completion.
  prep.Join();

  // Drain held (delayed) stragglers; see AnswerBatch for the soundness
  // argument.
  {
    Message m;
    while (cluster.mailbox(cluster.coordinator_id()).TryReceive(&m)) {
      if (m.type == MessageType::kLocalAnswer) {
        std::vector<Neighbor>& bucket = candidates[m.query_id];
        bucket.insert(bucket.end(), m.neighbors.begin(), m.neighbors.end());
      }
    }
  }
  report.status = recovery.status();
  report.dead_nodes.assign(recovery.dead().begin(), recovery.dead().end());

  for (int q = 0; q < num_queries; ++q) {
    report.answers[q] = MergeAnswers(candidates[q], options_.query_options.k);
  }
  // Preparation ran inside the answering window (that is the point); the
  // makespan is just the window.
  report.query_seconds = batch_watch.ElapsedSeconds();
  report.prepare_seconds = prepare_seconds;
  report.prep_overlap_seconds = prep_overlap_seconds;
  executor_stats::AddPrepOverlapSeconds(prep_overlap_seconds);

  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = cluster.coordinator_id();
  cluster.Broadcast(shutdown);
  for (auto& node : nodes_) node->JoinBatch();

  for (auto& node : nodes_) {
    report.node_stats.push_back(node->batch_stats());
    report.queries_in_flight_hwm = std::max(
        report.queries_in_flight_hwm, node->batch_stats().inflight_hwm);
  }
  report.messages_sent = cluster.messages_sent();
  report.bsf_updates = cluster.messages_sent(MessageType::kBsfUpdate);
  report.steal_requests = cluster.messages_sent(MessageType::kStealRequest);
  return report;
}

}  // namespace odyssey
