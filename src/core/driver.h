#ifndef ODYSSEY_CORE_DRIVER_H_
#define ODYSSEY_CORE_DRIVER_H_

/// The Odyssey coordinator (paper Figure 3): OdysseyCluster drives all five
/// stages of a deployment — stage 1 partitioning (Section 3.4), stage 2
/// distributed index construction over replication groups (Section 3.3,
/// here via one shared immutable chunk bundle per group), stage 3
/// predictive scheduling (Sections 2 and 3.1), stage 4 query execution on
/// the nodes, and stage 5 answer merging. IngestAndBuild is the streaming
/// variant: bounded chunks are pulled (double-buffered, overlapping pulls
/// with summarization), partitioned and summarized on arrival.

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/core/cost_model.h"
#include "src/core/node_runtime.h"
#include "src/core/partitioning.h"
#include "src/core/shared_chunk.h"
#include "src/dataset/ingest.h"
#include "src/net/fault_plan.h"

namespace odyssey {

/// Default for OdysseyOptions::batched_scoring, read once per call from the
/// ODYSSEY_BATCHED_SCORING environment variable (set non-empty and not "0"
/// to enable). Explicit assignment to the option always wins.
bool DefaultBatchedScoring();

/// Default for OdysseyOptions::steal_donation, read once per call from the
/// ODYSSEY_STEAL_DONATION environment variable. Donation is on by default;
/// set "0" (or any value starting with '0') to disable. Explicit assignment
/// to the option always wins.
bool DefaultStealDonation();

/// Default for OdysseyOptions::batch_max_inflight, read once per call from
/// the ODYSSEY_BATCH_INFLIGHT environment variable (a positive integer).
/// Returns 0 — auto — when the variable is unset, empty or not a positive
/// number. Explicit assignment to the option always wins.
int DefaultBatchMaxInflight();

/// Everything that configures one Odyssey deployment (Figure 3).
struct OdysseyOptions {
  /// Cluster shape: PARTIAL-num_groups over num_nodes nodes. num_groups = 1
  /// is FULL replication, num_groups = num_nodes is EQUALLY-SPLIT.
  int num_nodes = 4;
  int num_groups = 1;

  /// Stage-1 partitioning of the raw collection into num_groups chunks.
  PartitioningScheme partitioning = PartitioningScheme::kEquallySplit;
  DensityAwareOptions density_options;
  /// Overrides the partitioner with precomputed chunks (used by the DPiSAX
  /// baseline). Must contain exactly num_groups disjoint, exhaustive chunks.
  std::vector<std::vector<uint32_t>> custom_chunks;

  /// Stage-2 index construction.
  IndexOptions index_options;
  int build_threads_per_node = 4;
  /// Build each replication group's chunk bundle (series + PAA + SAX +
  /// summarization buffers, src/core/shared_chunk.h) exactly once and let
  /// every replica index views of it — replication_degree() times less
  /// transient build memory and summarization than the legacy path, with
  /// bit-identical trees. Off = legacy path: every node materializes and
  /// summarizes a private copy of its group's chunk (kept for the
  /// shared-vs-copy benchmarks and equivalence tests).
  bool share_chunks = true;
  /// Streaming builds only: pull chunk i+1 off disk concurrently with
  /// summarizing/partitioning chunk i (double-buffered ingest; observable
  /// via overlap_seconds()). Requires share_chunks.
  bool overlap_ingest = true;

  /// Stage-3/4 query answering.
  SchedulingPolicy scheduling = SchedulingPolicy::kPredictDynamic;
  WorkStealConfig worksteal;
  QueryOptions query_options;
  bool share_bsf = true;
  /// Persistent per-node executor: query phases run as tasks on each
  /// node's long-lived worker pool — zero thread creation on the query hot
  /// path. Off = legacy mode: every query spawns and joins
  /// `query_options.num_threads` std::threads (kept for the
  /// pooled-vs-legacy benchmarks and equivalence tests).
  bool use_executor = true;
  /// AnswerStream only: max queries one node runs concurrently on its pool
  /// (its in-flight admission depth). With > 1 a node whose workers are
  /// idle starts the next admitted query instead of strictly serializing.
  /// AnswerBatch has its own depth (batch_max_inflight below); on both
  /// paths, admitted queries and stolen/donated work charge the same
  /// per-node in-flight budget.
  int stream_max_inflight = 2;
  /// AnswerBatch: max queries one node runs concurrently on its pool. 0
  /// means auto — up to query_options.num_threads on the executor (and
  /// batched-scoring) paths, 1 on the legacy per-query-spawn path (the
  /// paper's strict one-at-a-time batch model, where every in-flight query
  /// spawns its own thread complement). Default: the ODYSSEY_BATCH_INFLIGHT
  /// environment variable, else auto.
  int batch_max_inflight = DefaultBatchMaxInflight();
  /// Batched multi-query scoring: each node runs its in-flight queries as
  /// one GroupedQueryExecution whose leaf scan loads every candidate series
  /// once per group and scores it against all member queries with a single
  /// batched-kernel call (see src/index/query_engine.h). AnswerBatch groups
  /// up to `query_options.num_threads` statically-assigned queries;
  /// AnswerStream groups up to stream_max_inflight concurrent admissions.
  /// Exact executor-backed search only — other modes run per-query
  /// regardless. Default: the ODYSSEY_BATCHED_SCORING environment variable.
  bool batched_scoring = DefaultBatchedScoring();
  /// Grouped-scan steal donation: batched-scoring members stay registered
  /// as steal victims while their group runs, handing still-untouched
  /// (member, RS-batch) slices of the merged leaf-work list to thieves over
  /// the ordinary steal wire (scan_stats::BatchesDonated observes the
  /// traffic; ARCHITECTURE.md "Work stealing" describes the protocol).
  /// Meaningful only with work-stealing and batched scoring both on.
  /// Default: on unless the ODYSSEY_STEAL_DONATION environment variable
  /// disables it.
  bool steal_donation = DefaultStealDonation();
  /// Optional models (owned by the caller, must outlive the cluster).
  const CostModel* cost_model = nullptr;
  const ThresholdModel* threshold_model = nullptr;

  /// Fault injection (chaos testing, src/net/fault_plan.h): when active(),
  /// every batch runs over an adversarial transport that drops, delays,
  /// duplicates and reorders messages — and kills the plan's victim —
  /// per the plan's seeded RNG. Inactive (the default) is the perfect
  /// transport, bit-for-bit the pre-fault-model behaviour.
  FaultPlan fault_plan;
  /// Coordinator-side per-node liveness deadline, in seconds of silence
  /// (messages received by the coordinator count as heartbeats) after
  /// which a node is declared dead: the group is told (kNodeDead), victims
  /// re-run what they had granted to it, and its unanswered queries are
  /// re-executed by surviving group members (kRecoverQuery). 0 disables
  /// detection — required for plans that kill a node, since a dead node's
  /// kNodeTerminated never comes. False-positive declarations are
  /// exactness-safe (duplicate answers deduplicate in MergeAnswers), which
  /// is what makes aggressive deadlines usable in tests.
  double liveness_timeout_seconds = 0.0;

  uint64_t seed = 42;
};

/// The merged result of one query: up to k (distance, global id) pairs,
/// ascending by distance. Distances are squared (like the whole library);
/// use std::sqrt for reporting.
using QueryAnswer = std::vector<Neighbor>;

/// What one AnswerBatch run measured.
struct BatchReport {
  std::vector<QueryAnswer> answers;
  /// Makespan of the query-answering stages (preparation + scheduling +
  /// execution + work-stealing), the paper's "query answering time".
  double query_seconds = 0.0;
  /// Time the driver spent building the batch's PreparedQuery artifacts —
  /// the once-per-batch summarization cost every later stage reuses
  /// (included in query_seconds).
  double prepare_seconds = 0.0;
  /// Time the driver spent on estimation + assignment (included in
  /// query_seconds).
  double scheduling_seconds = 0.0;
  /// AnswerStream only: preparation time that ran concurrently with
  /// execution — the prep thread summarizing arrivals while earlier
  /// queries were already executing (0 for AnswerBatch, whose preparation
  /// is a serial pre-step).
  double prep_overlap_seconds = 0.0;
  /// Highest number of queries any single node ran concurrently on its
  /// pool (bounded by the path's admission depth: batch_max_inflight for
  /// AnswerBatch, stream_max_inflight for streams; stolen-work runs charge
  /// the same budget).
  int queries_in_flight_hwm = 0;
  std::vector<NodeBatchStats> node_stats;
  size_t messages_sent = 0;
  size_t bsf_updates = 0;
  size_t steal_requests = 0;
  /// Ok unless failure recovery found the batch unrecoverable (every
  /// replica of some chunk declared dead). Answers are complete only when
  /// ok.
  Status status = Status::Ok();
  /// Nodes the coordinator declared dead during this batch (liveness
  /// verdicts, which may include false positives — see
  /// OdysseyOptions::liveness_timeout_seconds).
  std::vector<int> dead_nodes;

  int total_steals() const {
    int total = 0;
    for (const auto& s : node_stats) total += s.successful_steals;
    return total;
  }
};

/// An Odyssey deployment: builds the distributed index at construction
/// (stages 1-2 of Figure 3) and answers query batches on demand (stages
/// 3-5). The object plays the paper's coordinator-node role; the system
/// nodes are NodeRuntime instances communicating over a SimCluster.
class OdysseyCluster {
 public:
  /// Partitions `dataset` and builds every node's index. Aborts on invalid
  /// layout (use ReplicationLayout::Make to validate beforehand).
  OdysseyCluster(const SeriesCollection& dataset, const OdysseyOptions& options);
  ~OdysseyCluster();

  /// Streaming build from an on-disk archive: pulls fixed-size chunks from
  /// `source` and partitions each chunk as it arrives, appending every
  /// group's share straight into that group's node storage. The coordinator
  /// therefore never materializes the whole archive in one collection — its
  /// transient heap is one ingest chunk at a time — which is how the real
  /// system feeds billion-scale archives whose ingest bandwidth, not tree
  /// build, dominates wall-clock. kDensityAware partitioning is applied per
  /// chunk (a streaming approximation of the global buffer histogram).
  /// Errors (I/O failures, length mismatch with the index config, invalid
  /// layout) come back as Status instead of aborting.
  static StatusOr<std::unique_ptr<OdysseyCluster>> IngestAndBuild(
      SeriesIngestor& source, const OdysseyOptions& options);

  OdysseyCluster(const OdysseyCluster&) = delete;
  OdysseyCluster& operator=(const OdysseyCluster&) = delete;

  /// Stage 3-5: schedules, executes and merges one query batch. Can be
  /// called repeatedly (the index is reused).
  BatchReport AnswerBatch(const SeriesCollection& queries);

  /// Streaming variant (the paper's dynamically-arriving-queries setting):
  /// query q becomes visible to the schedulers only `arrival_seconds[q]`
  /// seconds after the call. Queries are dispatched dynamically in arrival
  /// order — pre-sorting the batch is impossible, which is precisely the
  /// regime work-stealing is designed to cover. `arrival_seconds` must be
  /// non-decreasing and parallel to `queries`.
  BatchReport AnswerStream(const SeriesCollection& queries,
                           const std::vector<double>& arrival_seconds);

  const ReplicationLayout& layout() const { return layout_; }
  const OdysseyOptions& options() const { return options_; }

  /// Replaces the fault plan (and optionally the liveness deadline) applied
  /// to subsequent batches. The index is untouched, so a chaos harness can
  /// sweep hundreds of plans over one build instead of rebuilding per plan.
  void set_fault_plan(const FaultPlan& plan) { options_.fault_plan = plan; }
  void set_liveness_timeout_seconds(double seconds) {
    options_.liveness_timeout_seconds = seconds;
  }

  /// Stage-1 cost: partitioning the raw collection.
  double partition_seconds() const { return partition_seconds_; }
  /// Time IngestAndBuild spent pulling chunks off disk (0 for the in-memory
  /// constructor).
  double ingest_seconds() const { return ingest_seconds_; }
  /// Of ingest_seconds(), the part that ran concurrently with
  /// summarization/partitioning (the double-buffered pipeline's win; 0
  /// without overlap_ingest or for the in-memory constructor).
  double overlap_seconds() const { return overlap_seconds_; }
  /// Paper's index-time measures: the maximum across nodes.
  double max_buffer_seconds() const;
  double max_tree_seconds() const;
  double index_seconds() const {
    return max_buffer_seconds() + max_tree_seconds();
  }

  /// Total index-structure bytes across nodes (Figure 14's quantity).
  size_t total_index_bytes() const;
  /// Total raw-data bytes across nodes (grows with the replication degree).
  size_t total_data_bytes() const;

  int num_nodes() const { return layout_.num_nodes(); }
  const NodeRuntime& node(int i) const { return *nodes_[i]; }

 private:
  /// Per-group raw data + global ids, accumulated by the streaming build
  /// as chunks are partitioned on arrival. On the shared path the per-chunk
  /// PAA/SAX rows (computed once per ingest chunk, before partitioning) are
  /// scattered alongside, so the group bundles are adopted at build time
  /// without ever re-summarizing.
  struct GroupChunks {
    std::vector<SeriesCollection> data;
    std::vector<std::vector<uint32_t>> ids;
    std::vector<std::vector<double>> paa;   // shared path only
    std::vector<std::vector<uint8_t>> sax;  // shared path only
    bool summarized = false;                // paa/sax are filled
  };

  /// Streaming-build constructor body: every group's chunk is already
  /// materialized; just load the nodes and build their indexes.
  OdysseyCluster(GroupChunks groups, const OdysseyOptions& options,
                 double partition_seconds, double ingest_seconds,
                 double overlap_seconds);

  /// Stage 2 of the streaming path. Shared: each group adopts one immutable
  /// bundle from its accumulated tables and every member indexes views of
  /// it. Legacy: every node loads its group's chunk and builds its index
  /// concurrently (single-member groups move their chunk; replicas copy
  /// it).
  void BuildNodes(GroupChunks groups);

  /// Builds the batch's PreparedQuery artifacts across a driver-side
  /// thread pool and reports the elapsed preparation time.
  PreparedBatch PrepareQueries(const SeriesCollection& queries,
                               double* prepare_seconds) const;

  /// Per-group query-time estimates for prediction-based policies: initial
  /// BSF via approximate search on the group's data, mapped through the
  /// cost model when one is fitted. Reuses the batch's prepared summaries —
  /// estimation pays only the leaf descent and scan, never PAA/SAX again.
  std::vector<double> EstimateGroupQueries(int group,
                                           const PreparedBatch& prepared);

  OdysseyOptions options_;
  ReplicationLayout layout_;
  double partition_seconds_ = 0.0;
  double ingest_seconds_ = 0.0;
  double overlap_seconds_ = 0.0;
  /// Persistent coordinator-side pool (partitioning, batch preparation,
  /// scheduling estimates): like the node executors, it is created once
  /// per cluster so answering batches spawns no coordinator threads.
  std::unique_ptr<ThreadPool> driver_pool_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

/// Merges per-node partial answers into the global k-NN answer: deduplicates
/// by global id (work-stealing can report the same series twice) and keeps
/// the k smallest. Exposed for the baselines and tests.
QueryAnswer MergeAnswers(const std::vector<Neighbor>& candidates, int k);

}  // namespace odyssey

#endif  // ODYSSEY_CORE_DRIVER_H_
