#ifndef ODYSSEY_CORE_REPLICATION_H_
#define ODYSSEY_CORE_REPLICATION_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace odyssey {

/// The paper's PARTIAL-k replication scheme (Section 3.3, Figure 7): the
/// dataset is cut into k chunks; a system with Nsn nodes forms k
/// *replication groups* (every node of group g stores chunk g) organized in
/// Nsn/k *clusters* (each cluster collectively stores the whole dataset).
///
///   PARTIAL-1   == FULL          (every node stores the full dataset)
///   PARTIAL-Nsn == EQUALLY-SPLIT (no replication)
///
/// Group g's members are {g, g+k, g+2k, ...}; cluster c's members are
/// {c*k, ..., c*k + k - 1}. Scheduling and work-stealing operate inside a
/// replication group (its nodes hold identical data and therefore identical
/// indexes).
class ReplicationLayout {
 public:
  /// `num_groups` is the k of PARTIAL-k and must divide `num_nodes`.
  static StatusOr<ReplicationLayout> Make(int num_nodes, int num_groups);

  int num_nodes() const { return num_nodes_; }
  int num_groups() const { return num_groups_; }
  /// The replication degree = number of clusters = copies of each chunk.
  int replication_degree() const { return num_nodes_ / num_groups_; }

  bool is_full() const { return num_groups_ == 1; }
  bool is_equally_split() const { return num_groups_ == num_nodes_; }

  /// The replication group (== chunk id) node `node` belongs to.
  int GroupOf(int node) const { return node % num_groups_; }
  /// The cluster node `node` belongs to.
  int ClusterOf(int node) const { return node / num_groups_; }

  /// Members of group g, ascending.
  std::vector<int> GroupMembers(int group) const;
  /// Members of group g not in `dead`, ascending — the candidates that can
  /// absorb a dead member's work (they hold the identical chunk). Returns
  /// FailedPrecondition when every member is dead: chunk g is then
  /// unrecoverable and the batch must surface an error, not a partial
  /// answer.
  StatusOr<std::vector<int>> SurvivingMembers(
      int group, const std::set<int>& dead) const;
  /// Members of cluster c, ascending.
  std::vector<int> ClusterMembers(int cluster) const;
  /// The group coordinator: the lowest-id member.
  int GroupCoordinator(int group) const { return group; }

  bool SameGroup(int a, int b) const { return GroupOf(a) == GroupOf(b); }

  /// "FULL", "EQUALLY-SPLIT" or "PARTIAL-k".
  std::string ToString() const;

 private:
  ReplicationLayout(int num_nodes, int num_groups)
      : num_nodes_(num_nodes), num_groups_(num_groups) {}

  int num_nodes_;
  int num_groups_;
};

}  // namespace odyssey

#endif  // ODYSSEY_CORE_REPLICATION_H_
