#include "src/core/worksteal.h"

namespace odyssey {

int ChooseStealVictim(const std::vector<int>& peers, uint64_t* rng_state) {
  if (peers.empty()) return -1;
  // SplitMix64 step: cheap, stateless-friendly randomness for victim choice.
  uint64_t z = (*rng_state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return peers[z % peers.size()];
}

}  // namespace odyssey
