#ifndef ODYSSEY_CORE_NODE_RUNTIME_H_
#define ODYSSEY_CORE_NODE_RUNTIME_H_

/// One simulated Odyssey system node (paper Sections 3.2 and 3.5): stage-2
/// index construction over the node's chunk — either a private copy
/// (LoadChunk) or a view of its replication group's shared bundle
/// (LoadSharedChunk, Section 3.3's replicas-index-one-chunk property) —
/// and the stage-4 *persistent executor*: a long-lived comms thread
/// implementing the work-stealing manager of Algorithm 3 plus the BSF
/// book-keeping array of Section 3.4, a long-lived main thread running
/// query answering and the PerformWorkStealing loop of Algorithm 4, and a
/// long-lived worker pool the query phases run on. All three survive
/// across batches: StartBatch/JoinBatch are cheap epoch transitions, and
/// the query hot path spawns zero threads (asserted through
/// executor_stats::ThreadsSpawned).
///
/// Locking discipline (machine-checked by -Wthread-safety; the full
/// capability table lives in ARCHITECTURE.md): five mutexes with disjoint
/// responsibilities — epoch_mu_ (epoch transitions), state_mu_ (comms/main
/// protocol state), inflight_mu_ (admission control), exec_mu_ (the
/// steal-victim execution list) and stats_mu_ (batch counters). The only
/// nesting is exec_mu_ -> stats_mu_ (HandleStealRequest records what it
/// gave away); nothing acquires exec_mu_ while holding stats_mu_.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/core/replication.h"
#include "src/core/scheduler.h"
#include "src/core/shared_chunk.h"
#include "src/core/worksteal.h"
#include "src/index/threshold_model.h"
#include "src/net/sim_cluster.h"
#include "src/query/prepared_query.h"

namespace odyssey {

/// Per-batch configuration a node receives from the driver.
struct NodeBatchOptions {
  SchedulingPolicy policy = SchedulingPolicy::kPredictDynamic;
  WorkStealConfig worksteal;
  QueryOptions query_options;
  /// When set, each query's queue threshold TH is predicted from its
  /// initial BSF (Section 3.2.1); otherwise query_options.queue_threshold
  /// applies as-is.
  const ThresholdModel* threshold_model = nullptr;
  /// System-wide BSF sharing (Section 3.4). Off only for the DMESSI
  /// baseline.
  bool share_bsf = true;
  /// Run query phases on the node's persistent worker pool (zero thread
  /// creation per query). Off = legacy per-query thread spawning, kept for
  /// the pooled-vs-legacy benchmarks.
  bool use_executor = true;
  /// Maximum queries this node runs concurrently on its pool (>= 1). One
  /// shared admission budget covers everything the node executes: streamed
  /// admissions, batch queries (AnswerBatch raises this to the pool width
  /// on the executor path; ODYSSEY_BATCH_INFLIGHT overrides), grouped
  /// members, and stolen/donated batches run in PerformWorkStealing — all
  /// claim in-flight slots against the same counter.
  int max_inflight = 1;
  /// Run in-flight queries as one GroupedQueryExecution whose leaf scan
  /// scores each candidate series against the whole group with a single
  /// batched-kernel call (up to max_inflight queries per group; exact
  /// search with use_executor only — other modes fall back to the
  /// per-query path). Driver-level switch: ODYSSEY_BATCHED_SCORING.
  bool batched_scoring = false;
  /// Register grouped (batched-scoring) members as steal victims so a
  /// grouped node donates still-untouched (member, batch) slices of its
  /// merged scan to thieves (GroupedQueryExecution::DonateBatches). Off
  /// restores the pre-donation behavior where grouped runs declined every
  /// steal request. Driver-level switch: ODYSSEY_STEAL_DONATION.
  bool steal_donation = true;
  /// Interval for unsolicited kHeartbeat pings to the coordinator, in
  /// seconds; 0 disables them. Set by the driver iff its liveness deadline
  /// is armed: long silent stretches (a main-phase DTW scan, a steal-phase
  /// peer wait) must then read as "busy", not "dead". Without a deadline
  /// the pings would be pure mailbox noise, so they are off.
  double liveness_heartbeat_seconds = 0.0;
  uint64_t seed = 0;
};

/// Per-node, per-batch observability counters.
struct NodeBatchStats {
  int queries_executed = 0;
  int steal_attempts = 0;     ///< steal requests sent
  int successful_steals = 0;  ///< replies that carried batches
  int batches_given_away = 0; ///< RS-batches this node handed to thieves
  int batches_stolen_run = 0; ///< RS-batches this node ran for others
  int inflight_hwm = 0;       ///< max queries simultaneously in flight
  double busy_seconds = 0.0;  ///< time spent executing (own + stolen) work
};

/// One simulated system node (Figure 3's stages 2 and 4): owns a data
/// chunk and its index, executes the queries it is assigned, shares BSF
/// improvements, and participates in the work-stealing protocol
/// (Algorithms 1, 3 and 4). All interaction with other nodes and with the
/// coordinator goes through the SimCluster mailboxes.
///
/// Thread ownership (per *process*, not per batch or per query): one comms
/// thread (the paper's work-stealing manager, which also maintains the BSF
/// book-keeping array), one main thread (query dispatch + the
/// PerformWorkStealing loop), and `query_options.num_threads` pool workers
/// — all created at the first StartBatch and reused by every later batch.
/// Query executions borrow pool workers through TaskGroup epochs; with
/// `max_inflight > 1` several in-flight queries partition the same pool.
class NodeRuntime {
 public:
  NodeRuntime(int node_id, const ReplicationLayout& layout);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  int id() const { return id_; }

  /// Stage 2a: receives this node's chunk as a private copy.
  /// `global_ids[i]` is the original dataset id of local series i (answers
  /// are reported globally). BuildIndex then summarizes the copy here —
  /// the legacy per-node path the shared build is benchmarked against.
  void LoadChunk(SeriesCollection chunk, std::vector<uint32_t> global_ids);

  /// Stage 2a, shared path: receives the node's replication group's
  /// immutable bundle (series + SAX + buffers + global ids, summarized
  /// exactly once for the whole group). BuildIndex then only builds this
  /// node's tree from the bundle's views.
  void LoadSharedChunk(std::shared_ptr<const SharedChunk> chunk);

  /// Stage 2b-c: builds the local index with `build_threads` workers.
  BuildTimings BuildIndex(const IndexOptions& options, int build_threads);

  const Index& index() const;
  size_t chunk_size() const {
    return global_ids_ != nullptr ? global_ids_->size() : 0;
  }
  const BuildTimings& build_timings() const { return build_timings_; }

  /// Starts one query-batch epoch on the node's persistent threads,
  /// creating them (and the worker pool) on first use. `cluster` and
  /// `queries` (the driver's batch-level prepared artifact, plus the raw
  /// series it points into) must outlive the batch; on the streaming path
  /// `queries` slots may still be empty and are admitted later — the node
  /// only reads a slot after the coordinator dispatches its query id.
  /// The epoch runs until the driver sends kShutdown; call JoinBatch()
  /// afterwards.
  void StartBatch(SimCluster* cluster, const PreparedBatch* queries,
                  const NodeBatchOptions& options);

  /// Waits for the current epoch to finish (after the driver's kShutdown).
  /// The persistent threads stay parked for the next StartBatch; they are
  /// joined only by the destructor.
  void JoinBatch() ODYSSEY_EXCLUDES(epoch_mu_);

  /// Snapshot of the current batch's counters. Taken under stats_mu_, so
  /// it is safe to call while an epoch is still running (the driver reads
  /// it only after JoinBatch, when the numbers are final).
  NodeBatchStats batch_stats() const ODYSSEY_EXCLUDES(stats_mu_);

 private:
  /// Creates the persistent comms/main threads and the worker pool on
  /// first use (or grows the pool when a batch asks for more workers).
  void EnsureExecutor();
  /// Pre-sizes every pool worker's thread-local QueryScratch and DTW
  /// DP-row scratch to this batch's bounds, so the query phases run
  /// allocation-free from their very first iteration (the hot-path
  /// purity contract; see src/common/hotpath.h). Driver-side, between
  /// epochs; no-op when no bound grew since the last warm-up.
  void WarmExecutorScratch();
  /// Binds every pool worker to this node's NUMA socket
  /// (numa::NodeForGroup of the node's replication group), matching the
  /// first-touch placement of the group's SharedChunk. Same spin-barrier
  /// technique as WarmExecutorScratch so each worker binds itself exactly
  /// once; no-op when the NUMA layer is disabled or the pool has not grown
  /// since the last pinning. Successes count in
  /// executor_stats::WorkersPinned.
  void PinExecutorWorkers();
  /// Persistent-thread bodies: park between epochs, run one *Loop per
  /// epoch. `comms` selects which loop.
  void EpochThread(bool comms);
  void CommsLoop();
  void MainLoop();
  void ExecuteQuery(int query_id);
  /// Batched-scoring path: runs `query_ids` to completion as one
  /// GroupedQueryExecution on the pool, then reports each member's answer.
  /// With worksteal + steal_donation on, every member is registered as a
  /// steal victim for the duration of the run: a kStealRequest reaching a
  /// member forwards to the group's DonateBatches, and the resulting grant
  /// travels the ordinary steal wire (ledgered in steal_grants_, fenced in
  /// steal_replies_sent_, replayed by HandleNodeDead — the outstanding-debt
  /// invariant holds for donated batches unchanged).
  void ExecuteQueryGroup(const std::vector<int>& query_ids)
      ODYSSEY_EXCLUDES(stats_mu_, exec_mu_);
  void HandleStealRequest(int thief, int steal_seq)
      ODYSSEY_EXCLUDES(exec_mu_, stats_mu_);
  /// Comms-thread reaction to the coordinator's kNodeDead verdict: marks
  /// `subject` done+dead (waking the steal loop), re-runs every RS-batch
  /// this node had granted to `subject` (those batches left our ownership
  /// at grant time and would otherwise run nowhere), and acks so the
  /// coordinator knows the re-coverage answers are in flight.
  void HandleNodeDead(int subject) ODYSSEY_EXCLUDES(state_mu_, stats_mu_);
  /// Comms-thread full re-execution of a dead group member's query
  /// (coordinator reassignment). Not registered as a steal victim:
  /// recovery work is not stealable, otherwise the protocol would have to
  /// track grants-of-grants across further failures.
  void ExecuteRecoveryQuery(int query_id) ODYSSEY_EXCLUDES(stats_mu_);
  void PerformWorkStealing();
  void RunStolenWork(const Message& reply);
  /// `recovery` must be true exactly when the answer fulfils a
  /// kRecoverQuery — the coordinator only retires its pending-recovery
  /// entry on a flagged answer (see Message::recovery).
  void SendLocalAnswer(int query_id, const std::vector<Neighbor>& local,
                       bool recovery = false);
  /// Next query to run, or -1 when the batch is exhausted. Blocks.
  int NextQuery() ODYSSEY_EXCLUDES(state_mu_);

  /// The share-complete predicate behind no_more_queries_: the marker
  /// arrived AND every assignment it counted has been received (or the
  /// transport closed, which voids the fence — a killed or shut-down node
  /// must not wait for traffic that will never come). Replaces raw
  /// no_more_queries_ checks in the main-loop waits, because the marker
  /// can overtake a delayed assignment under fault injection.
  bool AllAssignmentsInLocked() const ODYSSEY_REQUIRES(state_mu_);

  /// True when no epoch is running (both persistent loops have finished
  /// the last started epoch) — the StartBatch precondition and the
  /// JoinBatch wait condition.
  bool EpochIdleLocked() const ODYSSEY_REQUIRES(epoch_mu_);
  /// Records protocol progress (a peer finishing, a steal reply landing):
  /// bumps state_version_ and wakes the steal loop's backoff wait.
  void NoteProtocolProgressLocked() ODYSSEY_REQUIRES(state_mu_);

  const int id_;
  const ReplicationLayout layout_;

  // Immutable after BuildIndex. global_ids_ aliases the shared bundle's id
  // vector on the shared path (no per-replica copy) and owns a private
  // vector on the legacy path.
  std::shared_ptr<const std::vector<uint32_t>> global_ids_;
  std::unique_ptr<SeriesCollection> pending_chunk_;  // between Load and Build
  std::shared_ptr<const SharedChunk> pending_shared_;
  std::unique_ptr<Index> index_;
  BuildTimings build_timings_;

  // Persistent executor: comms/main threads park between epochs; workers_
  // serves the query phases (and in-flight orchestration) of every batch.
  // The thread handles and workers_ are mutated only by EnsureExecutor and
  // the destructor, both driver-side between epochs.
  CountedThread comms_thread_;
  CountedThread main_thread_;
  std::unique_ptr<ThreadPool> workers_;
  /// High-water marks of the last scratch warm-up (thread-local scratch is
  /// grow-only, so a batch whose bounds all fit pays no re-warm).
  struct ScratchBounds {
    size_t width = 0;    ///< pool workers warmed
    size_t batches = 0;  ///< RS-batch lanes reserved
    size_t queues = 0;   ///< priority-queue ref lanes reserved
    size_t lanes = 0;    ///< grouped-scoring query lanes reserved
    size_t length = 0;   ///< series length the DTW rows are sized for
  };
  ScratchBounds warmed_scratch_;
  /// Pool width already NUMA-pinned (grow-only, like warmed_scratch_):
  /// re-pinning is only needed when Grow added workers.
  size_t pinned_width_ = 0;
  Mutex epoch_mu_;
  CondVar epoch_cv_;
  uint64_t epochs_started_ ODYSSEY_GUARDED_BY(epoch_mu_) = 0;
  uint64_t comms_epochs_done_ ODYSSEY_GUARDED_BY(epoch_mu_) = 0;
  uint64_t main_epochs_done_ ODYSSEY_GUARDED_BY(epoch_mu_) = 0;
  bool stopping_ ODYSSEY_GUARDED_BY(epoch_mu_) = false;

  // Per-epoch state: *epoch-owned*, not mutex-guarded. Written by
  // StartBatch while both persistent loops are parked (asserted against
  // epochs_started_/\*_epochs_done_), published to them by the epoch_mu_
  // release in StartBatch's epochs_started_ increment — which each loop
  // acquires before running — and treated as read-only until the loops
  // report the epoch done. The analysis cannot express this handoff; the
  // protocol above is the invariant.
  SimCluster* cluster_ = nullptr;
  const PreparedBatch* queries_ = nullptr;
  NodeBatchOptions options_;
  std::unique_ptr<std::atomic<float>[]> bsf_board_;  // one cell per query

  // Batch counters, written by concurrent in-flight orchestrators and the
  // comms thread (batches_given_away).
  mutable Mutex stats_mu_;
  NodeBatchStats batch_stats_ ODYSSEY_GUARDED_BY(stats_mu_);

  // Scheduling / protocol state shared between the two threads.
  Mutex state_mu_;
  CondVar state_cv_;
  std::deque<int> assigned_ ODYSSEY_GUARDED_BY(state_mu_);
  bool no_more_queries_ ODYSSEY_GUARDED_BY(state_mu_) = false;
  /// Assignment fence (Message::assign_count). Every distinct query id
  /// ever received via kAssignQuery this epoch — a set, so an
  /// injector-duplicated assignment neither double-executes nor
  /// double-counts against the fence — and the count the kNoMoreQueries
  /// marker said to expect (-1 until a marker arrives). The marker alone
  /// is not proof the share is complete: it can overtake a delayed
  /// assignment, and honoring it early would strand that query unexecuted
  /// in the held queue. AllAssignmentsInLocked() is the real predicate.
  std::set<int> assigned_seen_ ODYSSEY_GUARDED_BY(state_mu_);
  int expected_assignments_ ODYSSEY_GUARDED_BY(state_mu_) = -1;
  /// Set when this node's mailbox was closed under it (the fault
  /// injector's node kill): the comms loop exits, and the main loop skips
  /// every further protocol announcement — a dead host says nothing.
  bool transport_closed_ ODYSSEY_GUARDED_BY(state_mu_) = false;
  /// Group peers the coordinator declared dead (kNodeDead). A dead peer is
  /// never chosen as a steal victim and its outstanding replies are
  /// written off (the coordinator re-runs its unanswered queries
  /// wholesale).
  std::set<int> dead_nodes_ ODYSSEY_GUARDED_BY(state_mu_);
  std::set<int> done_nodes_ ODYSSEY_GUARDED_BY(state_mu_);
  std::deque<Message> steal_replies_ ODYSSEY_GUARDED_BY(state_mu_);
  /// Bumped by the comms thread on protocol progress (peer done, steal
  /// reply); the steal loop's timed backoff wait wakes on it instead of
  /// sleeping blind.
  uint64_t state_version_ ODYSSEY_GUARDED_BY(state_mu_) = 0;

  // In-flight admission (max_inflight > 1).
  Mutex inflight_mu_;
  CondVar inflight_cv_;
  int inflight_ ODYSSEY_GUARDED_BY(inflight_mu_) = 0;

  // Work-stealing victim side: every currently running own-query execution
  // (several when in-flight admission is on).
  Mutex exec_mu_ ODYSSEY_ACQUIRED_BEFORE(stats_mu_);
  std::vector<std::pair<int, QueryExecution*>> running_execs_
      ODYSSEY_GUARDED_BY(exec_mu_);

  /// Ledger of every RS-batch grant this node made as a steal victim, kept
  /// so a thief's death is survivable: the granted batches run nowhere
  /// once the thief dies, and HandleNodeDead re-runs them from here.
  /// *Comms-thread-owned* within an epoch (HandleStealRequest appends,
  /// HandleNodeDead consumes — both run on the comms thread only) and
  /// cleared by StartBatch between epochs; same publication protocol as
  /// the epoch-owned fields above, so no mutex.
  struct StealGrant {
    int thief;
    int query_id;
    std::vector<int> batch_ids;  // cleared once re-run (idempotence)
  };
  std::vector<StealGrant> steal_grants_;

  /// Duplicate-request fence for the victim side, keyed by (thief,
  /// steal_seq) and holding the exact reply sent the first time. A
  /// network-duplicated kStealRequest must NOT grant a second batch set:
  /// the thief retires a seq on the first reply it consumes and may
  /// legitimately terminate before a surprise second grant arrives, which
  /// would strand those batches (they left our answer at grant time).
  /// Re-sending the cached reply verbatim is idempotent — the thief at
  /// worst re-runs the same batches, and MergeAnswers dedups by id.
  /// Comms-thread-owned and epoch-cleared, like steal_grants_ above.
  std::map<std::pair<int, int>, Message> steal_replies_sent_;
};

}  // namespace odyssey

#endif  // ODYSSEY_CORE_NODE_RUNTIME_H_
