#include "src/core/scheduler.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace odyssey {

const char* SchedulingPolicyToString(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kStatic:
      return "STATIC";
    case SchedulingPolicy::kDynamic:
      return "DYNAMIC";
    case SchedulingPolicy::kPredictStaticUnsorted:
      return "PREDICT-ST-UNSORTED";
    case SchedulingPolicy::kPredictStatic:
      return "PREDICT-ST";
    case SchedulingPolicy::kPredictDynamic:
      return "PREDICT-DN";
  }
  return "Unknown";
}

bool PolicyIsDynamic(SchedulingPolicy policy) {
  return policy == SchedulingPolicy::kDynamic ||
         policy == SchedulingPolicy::kPredictDynamic;
}

bool PolicyNeedsPredictions(SchedulingPolicy policy) {
  return policy == SchedulingPolicy::kPredictStaticUnsorted ||
         policy == SchedulingPolicy::kPredictStatic ||
         policy == SchedulingPolicy::kPredictDynamic;
}

std::vector<std::vector<int>> StaticSplit(int num_queries, int num_workers) {
  ODYSSEY_CHECK(num_workers >= 1);
  std::vector<std::vector<int>> assignment(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    const int begin = w * num_queries / num_workers;
    const int end = (w + 1) * num_queries / num_workers;
    for (int q = begin; q < end; ++q) assignment[w].push_back(q);
  }
  return assignment;
}

std::vector<std::vector<int>> PredictionGreedySplit(
    const std::vector<double>& estimates, int num_workers, bool sorted) {
  ODYSSEY_CHECK(num_workers >= 1);
  std::vector<int> order(estimates.size());
  std::iota(order.begin(), order.end(), 0);
  if (sorted) {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return estimates[a] > estimates[b];
    });
  }
  std::vector<std::vector<int>> assignment(num_workers);
  std::vector<double> load(num_workers, 0.0);
  for (int q : order) {
    const int w = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[w].push_back(q);
    load[w] += estimates[q];
  }
  return assignment;
}

std::vector<int> DynamicDispatchOrder(const std::vector<double>& estimates,
                                      int num_queries, bool sorted) {
  std::vector<int> order(num_queries);
  std::iota(order.begin(), order.end(), 0);
  if (sorted) {
    ODYSSEY_CHECK(static_cast<int>(estimates.size()) == num_queries);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return estimates[a] > estimates[b];
    });
  }
  return order;
}

}  // namespace odyssey
