#ifndef ODYSSEY_CORE_COST_MODEL_H_
#define ODYSSEY_CORE_COST_MODEL_H_

#include <vector>

#include "src/common/linear_regression.h"
#include "src/common/status.h"
#include "src/index/query_engine.h"

namespace odyssey {

/// The paper's query execution-time predictor (Section 3.1, Figure 4):
/// queries with a high initial BSF tend to take longer, and a linear
/// regression on (initial BSF, execution time) calibration pairs gives
/// good-enough per-query estimates for load-balanced scheduling.
class CostModel {
 public:
  CostModel() = default;

  /// Fits the regression. `initial_bsf[i]` is the i-th calibration query's
  /// initial best-so-far (true distance), `exec_seconds[i]` its measured
  /// execution time.
  Status Fit(const std::vector<double>& initial_bsf,
             const std::vector<double>& exec_seconds);

  bool fitted() const { return regression_.fitted(); }
  const LinearRegression& regression() const { return regression_; }

  /// Predicted execution time (seconds, clamped to >= 0) for a query with
  /// the given initial BSF. Must be fitted.
  double PredictSeconds(double initial_bsf) const;

 private:
  LinearRegression regression_;
};

/// One calibration sample.
struct CalibrationSample {
  double initial_bsf = 0.0;       ///< true-distance initial BSF
  double exec_seconds = 0.0;      ///< single-node execution time
  double median_pq_size = 0.0;    ///< median priority-queue size (leaves)
};

/// Runs `queries` one by one against `index` (no BSF sharing, unbounded
/// queues) and records per-query calibration samples. Feeds both the
/// CostModel (Figure 4) and the ThresholdModel (Figure 6a).
std::vector<CalibrationSample> CollectCalibrationSamples(
    const Index& index, const SeriesCollection& queries,
    const QueryOptions& options);

}  // namespace odyssey

#endif  // ODYSSEY_CORE_COST_MODEL_H_
