#ifndef ODYSSEY_CORE_PARTITIONING_H_
#define ODYSSEY_CORE_PARTITIONING_H_

/// Stage-1 partitioning (paper Section 3.4): how the coordinator cuts the
/// raw collection into one chunk per replication group before any index
/// exists — equal contiguous ranges, the RS random-shuffle preprocessing,
/// or the DENSITY-AWARE scheme of Section 3.4.1 (Figures 8-9) that spreads
/// Gray-code-adjacent summarization buffers across chunks so no node ends
/// up the sole owner of a query's neighborhood. Deterministic output is
/// part of the contract: replicas that load the same chunk must build
/// bit-identical indexes (see src/core/shared_chunk.h, which makes that
/// sharing literal).

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dataset/series_collection.h"
#include "src/isax/isax_word.h"

namespace odyssey {

/// How the coordinator cuts the raw collection into chunks (Section 3.4).
enum class PartitioningScheme {
  /// Contiguous equal-size ranges.
  kEquallySplit,
  /// Random shuffle, then equal-size ranges (the paper's RS preprocessing).
  kRandomShuffle,
  /// Gray-code ordering of iSAX summarization buffers + round-robin
  /// assignment, with large-buffer pre-splitting and rebalancing
  /// (Section 3.4.1, Figures 8-9).
  kDensityAware,
};

const char* PartitioningSchemeToString(PartitioningScheme scheme);

/// DENSITY-AWARE knobs.
struct DensityAwareOptions {
  /// Number of largest buffers whose series are split individually before
  /// whole-buffer assignment (the paper's lambda; it uses 400).
  size_t lambda = 400;
  /// Rebalancing stops when max/min chunk sizes are within this factor.
  double balance_tolerance = 1.02;
  /// Safety cap on rebalancing rounds.
  int max_rebalance_rounds = 64;
};

/// Cuts `data` into `num_chunks` disjoint, exhaustive chunks of series ids.
/// Every returned chunk is sorted ascending (determinism: replicas loading
/// the same chunk must build identical indexes). `config` is needed only by
/// kDensityAware (it summarizes the collection); `pool` parallelizes that
/// summarization and may be null. When the caller already summarized `data`
/// (the SharedChunk streaming build computes every chunk's SAX table once,
/// before partitioning), pass the table as `precomputed_sax`
/// (data.size() * config.segments() bytes — checked) and kDensityAware
/// consumes it instead of re-summarizing — partitioning then never
/// recomputes a summary the index build will reuse.
std::vector<std::vector<uint32_t>> PartitionSeries(
    const SeriesCollection& data, int num_chunks, PartitioningScheme scheme,
    const IsaxConfig& config, uint64_t seed, ThreadPool* pool = nullptr,
    const DensityAwareOptions& density_options = {},
    const std::vector<uint8_t>* precomputed_sax = nullptr);

}  // namespace odyssey

#endif  // ODYSSEY_CORE_PARTITIONING_H_
