#include "src/core/shared_chunk.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/common/summary_stats.h"

namespace odyssey {

std::shared_ptr<const SharedChunk> SharedChunk::Build(
    SeriesCollection data, std::vector<uint32_t> global_ids,
    const IsaxConfig& config, ThreadPool* pool) {
  ODYSSEY_CHECK(data.length() == config.series_length());
  ODYSSEY_CHECK(global_ids.empty() || global_ids.size() == data.size());
  Stopwatch watch;
  std::unique_ptr<SharedChunk> chunk(
      new SharedChunk(std::move(data), std::move(global_ids), config));

  const size_t w = static_cast<size_t>(config.segments());
  const size_t n = chunk->data_.size();
  chunk->paa_table_.resize(n * w);
  chunk->sax_table_.resize(n * w);
  auto summarize_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* paa = chunk->paa_table_.data() + i * w;
      ComputePaa(chunk->data_.data(i), config.paa, paa);
      ComputeSaxFromPaa(paa, config, chunk->sax_table_.data() + i * w);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, summarize_range);
  } else {
    summarize_range(0, n);
  }
  return Finish(std::move(chunk), pool, /*build_buffers=*/true,
                watch.ElapsedSeconds());
}

std::shared_ptr<const SharedChunk> SharedChunk::Adopt(
    SeriesCollection data, std::vector<uint32_t> global_ids,
    std::vector<double> paa_table, std::vector<uint8_t> sax_table,
    const IsaxConfig& config, ThreadPool* pool, bool build_buffers) {
  ODYSSEY_CHECK(data.length() == config.series_length());
  ODYSSEY_CHECK(global_ids.empty() || global_ids.size() == data.size());
  const size_t w = static_cast<size_t>(config.segments());
  ODYSSEY_CHECK(sax_table.size() == data.size() * w);
  ODYSSEY_CHECK(paa_table.empty() || paa_table.size() == data.size() * w);
  std::unique_ptr<SharedChunk> chunk(
      new SharedChunk(std::move(data), std::move(global_ids), config));
  chunk->paa_table_ = std::move(paa_table);
  chunk->sax_table_ = std::move(sax_table);
  return Finish(std::move(chunk), pool, build_buffers, 0.0);
}

std::shared_ptr<const SharedChunk> SharedChunk::Finish(
    std::unique_ptr<SharedChunk> chunk, ThreadPool* pool, bool build_buffers,
    double summarize_seconds_so_far) {
  Stopwatch watch;
  if (build_buffers) {
    chunk->buffers_ = BuildBuffers(chunk->sax_table_.data(),
                                   chunk->data_.size(), chunk->config_, pool);
  }
  chunk->summarize_seconds_ = summarize_seconds_so_far + watch.ElapsedSeconds();
  // The summaries counted here are the rows this bundle *owns*, whether it
  // computed them (Build) or inherited them from the streaming scatter
  // (Adopt) — either way they were built exactly once for this data. The
  // deserialization path (no buffers, no build to follow) does not count.
  if (build_buffers) {
    build_stats::CountChunk(chunk->MemoryBytes(), chunk->data_.size());
  }
  return std::shared_ptr<const SharedChunk>(std::move(chunk));
}

size_t SharedChunk::MemoryBytes() const {
  size_t bytes = data_.MemoryBytes() +
                 global_ids_.capacity() * sizeof(uint32_t) +
                 paa_table_.capacity() * sizeof(double) +
                 sax_table_.capacity() * sizeof(uint8_t);
  bytes += buffers_.keys.capacity() * sizeof(uint32_t);
  for (const auto& ids : buffers_.series) {
    bytes += ids.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace odyssey
