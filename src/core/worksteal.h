#ifndef ODYSSEY_CORE_WORKSTEAL_H_
#define ODYSSEY_CORE_WORKSTEAL_H_

#include <cstdint>
#include <vector>

namespace odyssey {

/// Inter-node work-stealing configuration (Section 3.2.2, Algorithms 3-4).
struct WorkStealConfig {
  bool enabled = true;
  /// RS-batches given away per steal request (the paper fixes Nsend = 4).
  int nsend = 4;
  /// Back-off (microseconds) after an empty steal reply before retrying
  /// another victim, so an idle node does not flood a group with requests.
  int retry_backoff_us = 200;
  /// How long a thief waits for a steal reply before counting a timeout
  /// and retrying (microseconds; 0 = wait forever, the pre-fault-model
  /// behaviour). 50ms is ~3 orders of magnitude above a healthy in-process
  /// round trip, so it never fires on a fault-free run.
  int reply_timeout_us = 50000;
  /// Consecutive reply timeouts after which the thief gives up stealing
  /// and proceeds to termination (0 = retry forever). Bounds the work-
  /// stealing phase when a victim has silently died and no kNodeDead
  /// verdict arrives (liveness detection disabled).
  int max_reply_timeouts = 32;
};

/// Chooses a steal victim uniformly at random among still-active group
/// peers. `peers` are the candidate node ids (same replication group,
/// not DONE, not self); returns -1 when none remain.
int ChooseStealVictim(const std::vector<int>& peers, uint64_t* rng_state);

}  // namespace odyssey

#endif  // ODYSSEY_CORE_WORKSTEAL_H_
