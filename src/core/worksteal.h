#ifndef ODYSSEY_CORE_WORKSTEAL_H_
#define ODYSSEY_CORE_WORKSTEAL_H_

#include <cstdint>
#include <vector>

namespace odyssey {

/// Inter-node work-stealing configuration (Section 3.2.2, Algorithms 3-4).
struct WorkStealConfig {
  bool enabled = true;
  /// RS-batches given away per steal request (the paper fixes Nsend = 4).
  int nsend = 4;
  /// Back-off (microseconds) after an empty steal reply before retrying
  /// another victim, so an idle node does not flood a group with requests.
  int retry_backoff_us = 200;
};

/// Chooses a steal victim uniformly at random among still-active group
/// peers. `peers` are the candidate node ids (same replication group,
/// not DONE, not self); returns -1 when none remain.
int ChooseStealVictim(const std::vector<int>& peers, uint64_t* rng_state);

}  // namespace odyssey

#endif  // ODYSSEY_CORE_WORKSTEAL_H_
