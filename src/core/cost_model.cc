#include "src/core/cost_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace odyssey {

Status CostModel::Fit(const std::vector<double>& initial_bsf,
                      const std::vector<double>& exec_seconds) {
  return regression_.Fit(initial_bsf, exec_seconds);
}

double CostModel::PredictSeconds(double initial_bsf) const {
  ODYSSEY_CHECK_MSG(fitted(), "PredictSeconds before Fit");
  return std::max(0.0, regression_.Predict(initial_bsf));
}

std::vector<CalibrationSample> CollectCalibrationSamples(
    const Index& index, const SeriesCollection& queries,
    const QueryOptions& options) {
  QueryOptions calibration_options = options;
  calibration_options.queue_threshold = 0;  // unbounded: observe natural sizes
  const PreparedBatch prepared =
      PrepareBatch(queries, index.config(), calibration_options);
  std::vector<CalibrationSample> samples;
  samples.reserve(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    QueryExecution exec(&index, prepared.query(q), calibration_options);
    CalibrationSample sample;
    sample.initial_bsf = exec.SeedInitialBsf();
    exec.Run();
    const QueryStats stats = exec.stats();
    sample.exec_seconds = stats.elapsed_seconds;
    sample.median_pq_size = stats.median_queue_size;
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace odyssey
