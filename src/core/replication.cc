#include "src/core/replication.h"

namespace odyssey {

StatusOr<ReplicationLayout> ReplicationLayout::Make(int num_nodes,
                                                    int num_groups) {
  if (num_nodes < 1) {
    return Status::InvalidArgument("num_nodes must be >= 1");
  }
  if (num_groups < 1 || num_groups > num_nodes) {
    return Status::InvalidArgument("num_groups must be in [1, num_nodes]");
  }
  if (num_nodes % num_groups != 0) {
    return Status::InvalidArgument(
        "num_groups must divide num_nodes (equal-size replication groups)");
  }
  return ReplicationLayout(num_nodes, num_groups);
}

std::vector<int> ReplicationLayout::GroupMembers(int group) const {
  std::vector<int> members;
  for (int n = group; n < num_nodes_; n += num_groups_) members.push_back(n);
  return members;
}

std::vector<int> ReplicationLayout::ClusterMembers(int cluster) const {
  std::vector<int> members;
  const int begin = cluster * num_groups_;
  for (int n = begin; n < begin + num_groups_; ++n) members.push_back(n);
  return members;
}

std::string ReplicationLayout::ToString() const {
  if (is_full()) return "FULL";
  if (is_equally_split()) return "EQUALLY-SPLIT";
  return "PARTIAL-" + std::to_string(num_groups_);
}

}  // namespace odyssey
