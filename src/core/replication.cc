#include "src/core/replication.h"

namespace odyssey {

StatusOr<ReplicationLayout> ReplicationLayout::Make(int num_nodes,
                                                    int num_groups) {
  if (num_nodes < 1) {
    return Status::InvalidArgument("num_nodes must be >= 1, got " +
                                   std::to_string(num_nodes));
  }
  if (num_groups < 1 || num_groups > num_nodes) {
    return Status::InvalidArgument(
        "num_groups must be in [1, num_nodes] = [1, " +
        std::to_string(num_nodes) + "], got " + std::to_string(num_groups));
  }
  // Direction audit: PARTIAL-k's k is num_groups, and every cluster holds
  // one node of each group, so it is num_groups (k) that must divide
  // num_nodes (Nsn) — Nsn % k == 0, giving Nsn/k equal-size clusters. The
  // reverse reading ("num_nodes divides num_groups") would only admit the
  // degenerate EQUALLY-SPLIT shape. Spell out both operands so a failing
  // caller sees which is which.
  if (num_nodes % num_groups != 0) {
    return Status::InvalidArgument(
        "num_groups (" + std::to_string(num_groups) +
        ") must divide num_nodes (" + std::to_string(num_nodes) +
        ") so PARTIAL-" + std::to_string(num_groups) +
        " forms equal-size replication groups");
  }
  return ReplicationLayout(num_nodes, num_groups);
}

std::vector<int> ReplicationLayout::GroupMembers(int group) const {
  std::vector<int> members;
  for (int n = group; n < num_nodes_; n += num_groups_) members.push_back(n);
  return members;
}

StatusOr<std::vector<int>> ReplicationLayout::SurvivingMembers(
    int group, const std::set<int>& dead) const {
  std::vector<int> survivors;
  for (int n = group; n < num_nodes_; n += num_groups_) {
    if (dead.count(n) == 0) survivors.push_back(n);
  }
  if (survivors.empty()) {
    return Status::FailedPrecondition(
        "all " + std::to_string(replication_degree()) +
        " replicas of chunk " + std::to_string(group) +
        " are dead; the dataset is no longer fully covered");
  }
  return survivors;
}

std::vector<int> ReplicationLayout::ClusterMembers(int cluster) const {
  std::vector<int> members;
  const int begin = cluster * num_groups_;
  for (int n = begin; n < begin + num_groups_; ++n) members.push_back(n);
  return members;
}

std::string ReplicationLayout::ToString() const {
  if (is_full()) return "FULL";
  if (is_equally_split()) return "EQUALLY-SPLIT";
  return "PARTIAL-" + std::to_string(num_groups_);
}

}  // namespace odyssey
