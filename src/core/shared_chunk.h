#ifndef ODYSSEY_CORE_SHARED_CHUNK_H_
#define ODYSSEY_CORE_SHARED_CHUNK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dataset/series_collection.h"
#include "src/index/buffers.h"
#include "src/isax/isax_word.h"

namespace odyssey {

/// One replication group's immutable data bundle (the build-time mirror of
/// PR 2's PreparedQuery): the z-normalized series block, the series'
/// global ids, their PAA table (built through the SIMD KernelTable::paa
/// path), their full-cardinality SAX table, and the summarization buffers
/// the tree build consumes. Built exactly once per group per chunk and
/// handed by shared_ptr to every group member — replicas index *views* of
/// one bundle instead of each materializing a private copy, which is how
/// the paper's PARTIAL-k replication (Section 3.3, Figure 7) avoids paying
/// k× memory and k× summarization for bit-identical data (the same design
/// MESSI uses for its shared in-memory summary array).
///
/// Immutability is the thread-safety contract: after Build/Adopt returns,
/// no member mutates, so any number of concurrent tree builds and query
/// executions may read the bundle without synchronization. The refcount is
/// the lifetime contract: the bundle lives until the last Index drops it.
class SharedChunk {
 public:
  /// Summarizes `data` (one PAA + one SAX row per series, through
  /// ComputePaa's dispatched kernel) and groups the rows into summarization
  /// buffers. `global_ids` may be empty for standalone indexes (local ids
  /// are then global). `pool` parallelizes summarization; may be null.
  static std::shared_ptr<const SharedChunk> Build(
      SeriesCollection data, std::vector<uint32_t> global_ids,
      const IsaxConfig& config, ThreadPool* pool = nullptr);

  /// Wraps pre-computed tables without re-summarizing — the streaming
  /// build scatters per-ingest-chunk tables into per-group tables and
  /// adopts them here; index deserialization adopts its stored table with
  /// an empty PAA table. `paa_table` may be empty (not every producer
  /// retains it); `sax_table` must hold data.size() * config.segments()
  /// bytes. `build_buffers` is false when no tree build will follow (the
  /// deserialization path, which already has its tree).
  static std::shared_ptr<const SharedChunk> Adopt(
      SeriesCollection data, std::vector<uint32_t> global_ids,
      std::vector<double> paa_table, std::vector<uint8_t> sax_table,
      const IsaxConfig& config, ThreadPool* pool = nullptr,
      bool build_buffers = true);

  SharedChunk(const SharedChunk&) = delete;
  SharedChunk& operator=(const SharedChunk&) = delete;

  const IsaxConfig& config() const { return config_; }
  const SeriesCollection& data() const { return data_; }
  /// Original dataset id of local series i; empty when local ids are global.
  const std::vector<uint32_t>& global_ids() const { return global_ids_; }
  size_t size() const { return data_.size(); }

  /// Full-cardinality SAX summary of local series `id` (segments() bytes).
  const uint8_t* sax(uint32_t id) const {
    return sax_table_.data() +
           static_cast<size_t>(id) * static_cast<size_t>(config_.segments());
  }
  const std::vector<uint8_t>& sax_table() const { return sax_table_; }
  /// PAA of local series `id` (segments() doubles), or empty table when the
  /// producer did not retain PAAs (see Adopt). Retained deliberately even
  /// though the tree build only needs the quantized SAX rows: the PAA rows
  /// are the higher-resolution summary that re-partitioning / re-indexing
  /// at a different cardinality would otherwise have to recompute, and
  /// shared once per group they cost segments()*8 bytes per series
  /// (divided by the replication degree). Producers that will never need
  /// them can Adopt with an empty table.
  const std::vector<double>& paa_table() const { return paa_table_; }
  const SummarizationBuffers& buffers() const { return buffers_; }

  /// Wall seconds spent producing this bundle's summaries *here* — the
  /// paper's "buffer time", paid once per group and reported by every
  /// replica that indexes this bundle. For Build that is summarization +
  /// buffer grouping; for Adopt only the grouping (the adopted PAA/SAX
  /// rows were computed upstream, e.g. on the streaming ingest path, and
  /// are timed there).
  double summarize_seconds() const { return summarize_seconds_; }

  /// Heap bytes of the whole bundle (series + ids + PAA + SAX + buffers):
  /// what one group materializes once on the shared path and every node
  /// duplicates on the legacy copy path.
  size_t MemoryBytes() const;

 private:
  SharedChunk(SeriesCollection data, std::vector<uint32_t> global_ids,
              const IsaxConfig& config)
      : config_(config),
        data_(std::move(data)),
        global_ids_(std::move(global_ids)) {}

  /// Shared tail of Build/Adopt: buffers, timing, counters.
  static std::shared_ptr<const SharedChunk> Finish(
      std::unique_ptr<SharedChunk> chunk, ThreadPool* pool,
      bool build_buffers, double summarize_seconds_so_far);

  IsaxConfig config_;
  SeriesCollection data_;
  std::vector<uint32_t> global_ids_;
  std::vector<double> paa_table_;    // size() * segments, may be empty
  std::vector<uint8_t> sax_table_;   // size() * segments
  SummarizationBuffers buffers_;     // empty when !build_buffers
  double summarize_seconds_ = 0.0;
};

}  // namespace odyssey

#endif  // ODYSSEY_CORE_SHARED_CHUNK_H_
