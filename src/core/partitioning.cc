#include "src/core/partitioning.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/common/gray_code.h"
#include "src/common/rng.h"
#include "src/index/buffers.h"

namespace odyssey {
namespace {

std::vector<std::vector<uint32_t>> SplitContiguous(
    const std::vector<uint32_t>& ids, int num_chunks) {
  std::vector<std::vector<uint32_t>> chunks(num_chunks);
  const size_t n = ids.size();
  for (int c = 0; c < num_chunks; ++c) {
    const size_t begin = static_cast<size_t>(c) * n / num_chunks;
    const size_t end = static_cast<size_t>(c + 1) * n / num_chunks;
    chunks[c].assign(ids.begin() + begin, ids.begin() + end);
  }
  return chunks;
}

size_t LargestChunk(const std::vector<std::vector<uint32_t>>& chunks) {
  size_t best = 0;
  for (size_t c = 1; c < chunks.size(); ++c) {
    if (chunks[c].size() > chunks[best].size()) best = c;
  }
  return best;
}

size_t SmallestChunk(const std::vector<std::vector<uint32_t>>& chunks) {
  size_t best = 0;
  for (size_t c = 1; c < chunks.size(); ++c) {
    if (chunks[c].size() < chunks[best].size()) best = c;
  }
  return best;
}

/// DENSITY-AWARE (Figure 9): order summarization buffers by Gray-code rank
/// so that similar buffers are adjacent, then spread them — and the series
/// inside the largest ones — across chunks round-robin, so that similar
/// series land on *different* nodes and no node becomes the sole owner of a
/// query's neighborhood.
std::vector<std::vector<uint32_t>> DensityAwarePartition(
    const SeriesCollection& data, int num_chunks, const IsaxConfig& config,
    ThreadPool* pool, const DensityAwareOptions& options,
    const std::vector<uint8_t>* precomputed_sax) {
  // Steps 1-2: compute iSAX summaries (unless the caller already has them),
  // group into summarization buffers.
  std::vector<uint8_t> owned_table;
  if (precomputed_sax == nullptr) {
    owned_table = ComputeSaxTable(data, config, pool);
    precomputed_sax = &owned_table;
  }
  SummarizationBuffers buffers = BuildBuffers(
      precomputed_sax->data(), data.size(), config, pool);

  // Step 3: order buffers by Gray-code rank of their root key.
  std::vector<size_t> order(buffers.buffer_count());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return GrayRank(buffers.keys[a]) < GrayRank(buffers.keys[b]);
  });

  // Step 4: split the series of the lambda largest buffers individually.
  std::vector<size_t> by_size = order;
  std::sort(by_size.begin(), by_size.end(), [&](size_t a, size_t b) {
    return buffers.series[a].size() > buffers.series[b].size();
  });
  const size_t lambda = std::min(options.lambda, by_size.size());
  std::vector<bool> presplit(buffers.buffer_count(), false);
  std::vector<std::vector<uint32_t>> chunks(num_chunks);
  int rr = 0;  // round-robin cursor shared by steps 4 and 5
  for (size_t i = 0; i < lambda; ++i) {
    const size_t b = by_size[i];
    presplit[b] = true;
    for (uint32_t id : buffers.series[b]) {
      chunks[rr].push_back(id);
      rr = (rr + 1) % num_chunks;
    }
  }

  // Step 5: assign the remaining buffers, whole, in Gray order round-robin.
  for (size_t b : order) {
    if (presplit[b]) continue;
    std::vector<uint32_t>& chunk = chunks[rr];
    rr = (rr + 1) % num_chunks;
    chunk.insert(chunk.end(), buffers.series[b].begin(),
                 buffers.series[b].end());
  }

  // Step 6: while unbalanced, split the largest buffer of the largest chunk
  // across all chunks.
  for (int round = 0; round < options.max_rebalance_rounds; ++round) {
    const size_t largest = LargestChunk(chunks);
    const size_t smallest = SmallestChunk(chunks);
    // An empty chunk is the worst possible imbalance (it would leave a node
    // with nothing to index), so it always triggers rebalancing.
    if (!chunks[smallest].empty() &&
        static_cast<double>(chunks[largest].size()) <=
            options.balance_tolerance *
                static_cast<double>(chunks[smallest].size())) {
      break;
    }
    // Move the tail of the largest chunk (a whole-buffer insertion suffix,
    // i.e., its most recently assigned similar series) onto other chunks,
    // one series at a time, until it reaches the mean.
    size_t total = 0;
    for (const auto& c : chunks) total += c.size();
    const size_t target = total / chunks.size();
    std::vector<uint32_t>& big = chunks[largest];
    int spread = 0;
    while (big.size() > target) {
      if (static_cast<size_t>(spread) == chunks.size() - 1) {
        spread = 0;
      }
      size_t dest = (largest + 1 + spread) % chunks.size();
      ++spread;
      chunks[dest].push_back(big.back());
      big.pop_back();
    }
  }

  for (auto& chunk : chunks) std::sort(chunk.begin(), chunk.end());
  return chunks;
}

}  // namespace

const char* PartitioningSchemeToString(PartitioningScheme scheme) {
  switch (scheme) {
    case PartitioningScheme::kEquallySplit:
      return "EQUALLY-SPLIT";
    case PartitioningScheme::kRandomShuffle:
      return "RANDOM-SHUFFLE";
    case PartitioningScheme::kDensityAware:
      return "DENSITY-AWARE";
  }
  return "Unknown";
}

std::vector<std::vector<uint32_t>> PartitionSeries(
    const SeriesCollection& data, int num_chunks, PartitioningScheme scheme,
    const IsaxConfig& config, uint64_t seed, ThreadPool* pool,
    const DensityAwareOptions& density_options,
    const std::vector<uint8_t>* precomputed_sax) {
  ODYSSEY_CHECK(num_chunks >= 1);
  ODYSSEY_CHECK_MSG(data.size() >= static_cast<size_t>(num_chunks),
                    "fewer series than chunks");
  // A table sized for a different collection or iSAX geometry must fail
  // here, not read out of bounds inside the buffer grouping.
  ODYSSEY_CHECK(precomputed_sax == nullptr ||
                precomputed_sax->size() ==
                    data.size() * static_cast<size_t>(config.segments()));
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);

  std::vector<std::vector<uint32_t>> chunks;
  switch (scheme) {
    case PartitioningScheme::kEquallySplit:
      chunks = SplitContiguous(ids, num_chunks);
      break;
    case PartitioningScheme::kRandomShuffle: {
      Rng rng(seed);
      // Fisher-Yates with the library Rng (deterministic across platforms).
      for (size_t i = ids.size() - 1; i > 0; --i) {
        std::swap(ids[i], ids[rng.NextBounded(i + 1)]);
      }
      chunks = SplitContiguous(ids, num_chunks);
      for (auto& chunk : chunks) std::sort(chunk.begin(), chunk.end());
      break;
    }
    case PartitioningScheme::kDensityAware:
      chunks = DensityAwarePartition(data, num_chunks, config, pool,
                                     density_options, precomputed_sax);
      break;
  }
  return chunks;
}

}  // namespace odyssey
