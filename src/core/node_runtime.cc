#include "src/core/node_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "src/common/check.h"
#include "src/common/numa.h"
#include "src/common/stopwatch.h"
#include "src/common/summary_stats.h"
#include "src/distance/dtw.h"
#include "src/distance/simd.h"

namespace odyssey {
namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}  // namespace

NodeRuntime::NodeRuntime(int node_id, const ReplicationLayout& layout)
    : id_(node_id), layout_(layout) {
  ODYSSEY_CHECK(node_id >= 0 && node_id < layout.num_nodes());
}

NodeRuntime::~NodeRuntime() {
  JoinBatch();
  {
    MutexLock lock(&epoch_mu_);
    stopping_ = true;
  }
  epoch_cv_.SignalAll();
  if (comms_thread_.joinable()) comms_thread_.Join();
  if (main_thread_.joinable()) main_thread_.Join();
}

void NodeRuntime::LoadChunk(SeriesCollection chunk,
                            std::vector<uint32_t> global_ids) {
  ODYSSEY_CHECK(chunk.size() == global_ids.size());
  ODYSSEY_CHECK_MSG(!chunk.empty(), "node received an empty chunk");
  global_ids_ =
      std::make_shared<const std::vector<uint32_t>>(std::move(global_ids));
  // The chunk is stashed inside the index at BuildIndex time; keep it here
  // until then.
  pending_chunk_ = std::make_unique<SeriesCollection>(std::move(chunk));
  pending_shared_.reset();
}

void NodeRuntime::LoadSharedChunk(std::shared_ptr<const SharedChunk> chunk) {
  ODYSSEY_CHECK(chunk != nullptr);
  ODYSSEY_CHECK_MSG(!chunk->data().empty(), "node received an empty chunk");
  ODYSSEY_CHECK(chunk->global_ids().size() == chunk->size());
  // Alias the bundle's id vector: the ids share the bundle's refcount and
  // are never copied per replica.
  global_ids_ = std::shared_ptr<const std::vector<uint32_t>>(
      chunk, &chunk->global_ids());
  pending_shared_ = std::move(chunk);
  pending_chunk_.reset();
}

BuildTimings NodeRuntime::BuildIndex(const IndexOptions& options,
                                     int build_threads) {
  ODYSSEY_CHECK_MSG(pending_chunk_ != nullptr || pending_shared_ != nullptr,
                    "LoadChunk/LoadSharedChunk before BuildIndex");
  ThreadPool pool(static_cast<size_t>(std::max(1, build_threads)));
  if (pending_shared_ != nullptr) {
    index_ = std::make_unique<Index>(Index::BuildFromShared(
        std::move(pending_shared_), options, &pool, &build_timings_));
  } else {
    index_ = std::make_unique<Index>(Index::Build(
        std::move(*pending_chunk_), options, &pool, &build_timings_));
  }
  pending_chunk_.reset();
  pending_shared_.reset();
  return build_timings_;
}

const Index& NodeRuntime::index() const {
  ODYSSEY_CHECK(index_ != nullptr);
  return *index_;
}

NodeBatchStats NodeRuntime::batch_stats() const {
  MutexLock lock(&stats_mu_);
  return batch_stats_;
}

bool NodeRuntime::EpochIdleLocked() const {
  return comms_epochs_done_ == epochs_started_ &&
         main_epochs_done_ == epochs_started_;
}

void NodeRuntime::NoteProtocolProgressLocked() {
  ++state_version_;
  state_cv_.SignalAll();
}

bool NodeRuntime::AllAssignmentsInLocked() const {
  return no_more_queries_ &&
         (transport_closed_ ||
          static_cast<int>(assigned_seen_.size()) >= expected_assignments_);
}

void NodeRuntime::EnsureExecutor() {
  if (options_.use_executor) {
    const size_t want =
        static_cast<size_t>(std::max(1, options_.query_options.num_threads));
    // The pool grows to the widest batch seen and never shrinks; growth
    // spawns only the missing workers, so a wider batch pays exactly the
    // delta and an equal-or-narrower one pays nothing.
    if (workers_ == nullptr) {
      workers_ = std::make_unique<ThreadPool>(want);
    } else {
      workers_->Grow(want);
    }
    PinExecutorWorkers();
    WarmExecutorScratch();
  }
  if (!comms_thread_.joinable()) {
    comms_thread_ = CountedThread([this] { EpochThread(/*comms=*/true); });
    main_thread_ = CountedThread([this] { EpochThread(/*comms=*/false); });
  }
}

void NodeRuntime::WarmExecutorScratch() {
  // Each warm-up task spins on an arrival counter until all of them have
  // started, which forces the pool to hand exactly one task to each of its
  // `width` workers — a worker stuck in the spin cannot pick up a second
  // task, so every worker's thread-local scratch gets reserved. Plain
  // Submit + WaitIdle, deliberately not a TaskGroup: TaskGroup::Wait helps
  // from this thread, which would let the driver thread swallow a warm-up
  // task and leave one worker cold. WaitIdle only blocks.
  const size_t width = workers_->num_threads();
  const size_t batches = options_.query_options.EffectiveBatches();
  // Queue count is data-dependent (leaves inserted per batch); reserve a
  // generous floor and let the grow-only scratch absorb outliers.
  const size_t queues = std::max<size_t>(size_t{64}, batches * 4);
  const size_t lanes =
      options_.batched_scoring
          ? simd::BatchStride(
                static_cast<size_t>(std::max(1, options_.max_inflight)))
          : 0;
  const size_t length = index_ != nullptr ? index_->data().length() : 0;
  if (width <= warmed_scratch_.width && batches <= warmed_scratch_.batches &&
      queues <= warmed_scratch_.queues && lanes <= warmed_scratch_.lanes &&
      length <= warmed_scratch_.length) {
    return;
  }
  auto arrived = std::make_shared<std::atomic<size_t>>(0);
  for (size_t i = 0; i < width; ++i) {
    workers_->Submit([=] {
      QueryScratch::ForThisThread().Reserve(batches, queues, lanes);
      ReserveDtwScratch(length);
      arrived->fetch_add(1, std::memory_order_acq_rel);
      while (arrived->load(std::memory_order_acquire) < width) {
        // Spin until every warm-up task holds a distinct worker.
      }
    });
  }
  workers_->WaitIdle();
  warmed_scratch_ = {width, batches, queues, lanes, length};
}

void NodeRuntime::PinExecutorWorkers() {
  // Runs before WarmExecutorScratch so even the warm-up's scratch pages
  // first-touch on the right socket. Same spin-barrier trick as the
  // warm-up: each task parks its worker until all have started, so every
  // worker binds its own affinity exactly once per pinning pass.
  const int node = numa::NodeForGroup(layout_.GroupOf(id_));
  if (node < 0) return;  // NUMA layer disabled (or off-platform)
  const size_t width = workers_->num_threads();
  if (width <= pinned_width_) return;
  auto arrived = std::make_shared<std::atomic<size_t>>(0);
  for (size_t i = 0; i < width; ++i) {
    workers_->Submit([=] {
      if (numa::BindCurrentThread(node)) {
        executor_stats::CountWorkerPinned();
      }
      arrived->fetch_add(1, std::memory_order_acq_rel);
      while (arrived->load(std::memory_order_acquire) < width) {
        // Spin until every pinning task holds a distinct worker.
      }
    });
  }
  workers_->WaitIdle();
  pinned_width_ = width;
}

void NodeRuntime::EpochThread(bool comms) {
  uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lock(&epoch_mu_);
      while (!stopping_ && epochs_started_ <= seen) epoch_cv_.Wait(&epoch_mu_);
      if (epochs_started_ == seen) return;  // stopping, nothing new to run
      seen = epochs_started_;
    }
    if (comms) {
      CommsLoop();
    } else {
      MainLoop();
    }
    {
      MutexLock lock(&epoch_mu_);
      (comms ? comms_epochs_done_ : main_epochs_done_) = seen;
    }
    epoch_cv_.SignalAll();
  }
}

void NodeRuntime::StartBatch(SimCluster* cluster,
                             const PreparedBatch* queries,
                             const NodeBatchOptions& options) {
  ODYSSEY_CHECK(index_ != nullptr);
  {
    MutexLock lock(&epoch_mu_);
    ODYSSEY_CHECK_MSG(EpochIdleLocked(),
                      "StartBatch while an epoch is still running");
  }
  cluster_ = cluster;
  queries_ = queries;
  options_ = options;
  {
    MutexLock lock(&stats_mu_);
    batch_stats_ = NodeBatchStats();
  }
  bsf_board_ = std::make_unique<std::atomic<float>[]>(queries->size());
  for (size_t q = 0; q < queries->size(); ++q) bsf_board_[q].store(kInf);
  {
    MutexLock lock(&state_mu_);
    assigned_.clear();
    assigned_seen_.clear();
    expected_assignments_ = -1;
    no_more_queries_ = false;
    transport_closed_ = false;
    dead_nodes_.clear();
    done_nodes_.clear();
    steal_replies_.clear();
  }
  steal_grants_.clear();  // comms-thread-owned; both loops are parked here
  steal_replies_sent_.clear();
  {
    MutexLock lock(&inflight_mu_);
    inflight_ = 0;
  }
  EnsureExecutor();
  {
    MutexLock lock(&epoch_mu_);
    ++epochs_started_;
  }
  epoch_cv_.SignalAll();
}

void NodeRuntime::JoinBatch() {
  MutexLock lock(&epoch_mu_);
  while (!EpochIdleLocked()) epoch_cv_.Wait(&epoch_mu_);
}

void NodeRuntime::CommsLoop() {
  // The comms thread doubles as the paper's work-stealing manager
  // (Algorithm 3) and as the keeper of the BSF book-keeping array
  // (Section 3.4): every received BSF improvement is folded into the
  // per-query cell that running executions prune against.
  // With a liveness deadline armed, this thread is also the node's
  // always-on heartbeat: the main thread can disappear into a
  // deadline-length scan (one DTW query is plenty under CPU starvation)
  // while this thread sits parked in Receive — total silence the
  // coordinator would misread as death, cascading a false verdict that
  // can strand a chunk with no live replica. Waking every few
  // milliseconds to ping turns "busy" back into a signal.
  const double hb_interval = options_.liveness_heartbeat_seconds;
  Stopwatch hb_watch;
  double last_heartbeat = 0.0;
  for (;;) {
    Message m;
    bool got;
    if (hb_interval > 0.0) {
      got = cluster_->mailbox(id_).ReceiveFor(
          std::chrono::milliseconds(5), &m);
      if (const double now = hb_watch.ElapsedSeconds();
          now - last_heartbeat >= hb_interval) {
        last_heartbeat = now;
        Message ping;
        ping.type = MessageType::kHeartbeat;
        ping.from = id_;
        cluster_->Send(cluster_->coordinator_id(), std::move(ping));
      }
      // ReceiveFor's false means deadline *or* closure; only closure ends
      // the loop.
      if (!got && !cluster_->mailbox(id_).closed()) continue;
    } else {
      got = cluster_->mailbox(id_).Receive(&m);
    }
    if (!got) {
      // Transport closed under us: this node was killed by the fault
      // injector. Wake the main thread out of every wait (it exits the
      // epoch quietly — a dead host announces nothing) and end the loop.
      MutexLock lock(&state_mu_);
      transport_closed_ = true;
      no_more_queries_ = true;
      NoteProtocolProgressLocked();
      return;
    }
    switch (m.type) {
      case MessageType::kShutdown: {
        // The coordinator has finalized the batch. Normally the main thread
        // has already terminated, but a node the coordinator falsely
        // declared dead can still be mid-loop — e.g. blocked in NextQuery()
        // on a kQueryRequest reply the (quiesced) coordinator will never
        // send. Treat shutdown like transport closure: wake the main thread
        // out of every wait so the epoch can end. Exactness is unaffected —
        // a declared-dead node's queries were all re-dispatched to
        // survivors, whose recovery answers the coordinator has fenced.
        MutexLock lock(&state_mu_);
        transport_closed_ = true;
        no_more_queries_ = true;
        NoteProtocolProgressLocked();
        return;
      }
      case MessageType::kAssignQuery: {
        MutexLock lock(&state_mu_);
        // Dedup by query id: the coordinator assigns a query to a node at
        // most once, so a repeat is an injector duplicate — executing it
        // twice wastes work and double-counting it would satisfy the
        // assignment fence early.
        if (assigned_seen_.insert(m.query_id).second) {
          assigned_.push_back(m.query_id);
        }
        state_cv_.SignalAll();
        break;
      }
      case MessageType::kNoMoreQueries: {
        MutexLock lock(&state_mu_);
        no_more_queries_ = true;
        // Counts only grow (a dynamic coordinator can answer duplicated
        // requests with markers stamped at different times), so keep the
        // largest fence seen.
        expected_assignments_ = std::max(expected_assignments_,
                                         m.assign_count);
        state_cv_.SignalAll();
        break;
      }
      case MessageType::kBsfUpdate:
        AtomicFetchMinFloat(&bsf_board_[m.query_id], m.bsf);
        break;
      case MessageType::kDone: {
        MutexLock lock(&state_mu_);
        done_nodes_.insert(m.from);
        NoteProtocolProgressLocked();  // a peer finished
        break;
      }
      case MessageType::kStealRequest:
        HandleStealRequest(m.from, m.steal_seq);
        break;
      case MessageType::kStealReply: {
        MutexLock lock(&state_mu_);
        steal_replies_.push_back(std::move(m));
        NoteProtocolProgressLocked();  // a reply landed
        break;
      }
      case MessageType::kNodeDead:
        HandleNodeDead(m.subject);
        break;
      case MessageType::kRecoverQuery:
        ExecuteRecoveryQuery(m.query_id);
        break;
      case MessageType::kQueryRequest:
      case MessageType::kLocalAnswer:
      case MessageType::kNodeTerminated:
      case MessageType::kNodeDeadAck:
      case MessageType::kHeartbeat:
        break;  // coordinator-bound messages never arrive here
    }
  }
}

void NodeRuntime::HandleNodeDead(int subject) {
  if (subject == id_) return;  // a false verdict about us; keep working
  {
    MutexLock lock(&state_mu_);
    dead_nodes_.insert(subject);
    done_nodes_.insert(subject);
    NoteProtocolProgressLocked();  // the steal loop must re-plan
  }
  // Re-run every RS-batch granted to the dead thief. The batches left this
  // node's coverage at grant time (StealBatches), so with the thief gone
  // they would run nowhere and the query's answer would silently miss
  // candidates. Running them here on the comms thread delays message
  // handling, which is safe: senders never block, and thieves waiting on
  // our steal replies wait with timeouts.
  uint64_t reassigned = 0;
  for (StealGrant& grant : steal_grants_) {
    if (grant.thief != subject || grant.batch_ids.empty()) continue;
    Message replay;
    replay.type = MessageType::kStealReply;
    replay.from = id_;
    replay.query_id = grant.query_id;
    replay.bsf = bsf_board_[grant.query_id].load(std::memory_order_acquire);
    replay.batch_ids = grant.batch_ids;
    reassigned += grant.batch_ids.size();
    grant.batch_ids.clear();  // never re-run twice
    RunStolenWork(replay);
  }
  if (reassigned > 0) fault_stats::CountBatchesReassigned(reassigned);
  Message ack;
  ack.type = MessageType::kNodeDeadAck;
  ack.from = id_;
  ack.subject = subject;
  cluster_->Send(cluster_->coordinator_id(), std::move(ack));
}

void NodeRuntime::ExecuteRecoveryQuery(int query_id) {
  Stopwatch watch;
  // Share the BSF cell (stolen work may have already tightened it) but do
  // not broadcast improvements: the group is terminating and the cells die
  // with the batch — correctness never depends on BSF sharing.
  std::atomic<float>* cell =
      options_.share_bsf ? &bsf_board_[query_id] : nullptr;
  QueryExecution exec(index_.get(), queries_->query(query_id),
                      options_.query_options, cell, nullptr);
  const float initial_bsf = exec.SeedInitialBsf();
  if (options_.threshold_model != nullptr &&
      options_.threshold_model->calibrated()) {
    exec.set_queue_threshold(
        options_.threshold_model->PredictThreshold(initial_bsf));
  }
  // Score in the node's own mode: a batched-scoring node's answers come
  // from the batched kernels, whose per-lane accumulation order differs
  // from the per-query vector kernels by ULPs. A recovery re-run through
  // the per-query path would then disagree with the answer the dead
  // replica already delivered — a single-member group keeps the re-run
  // bit-identical (lane semantics are independent of group size).
  if (options_.batched_scoring && options_.use_executor &&
      workers_ != nullptr && !options_.query_options.approximate) {
    GroupedQueryExecution group({&exec});
    group.Run(workers_.get());
  } else {
    exec.Run(options_.use_executor ? workers_.get() : nullptr);
  }
  SendLocalAnswer(query_id, exec.results().SortedResults(),
                  /*recovery=*/true);
  {
    MutexLock lock(&stats_mu_);
    ++batch_stats_.queries_executed;
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::HandleStealRequest(int thief, int steal_seq) {
  // Algorithm 3: give away up to Nsend RS-batches of a running query that
  // satisfy the Take-Away property; always reply (an empty reply tells the
  // thief to look elsewhere). With in-flight admission several own queries
  // can be running — the first with stealable batches feeds the thief.
  //
  // Duplicate fence first: a network-duplicated request must not mint a
  // *second* grant under the same seq. The thief retires the seq on the
  // first reply it consumes, so a surprise second grant could arrive after
  // the thief terminated and its batches would run nowhere. Re-sending the
  // original reply verbatim is safe — re-running the same batches is
  // idempotent under MergeAnswers' dedup-by-id.
  const auto key = std::make_pair(thief, steal_seq);
  if (auto it = steal_replies_sent_.find(key);
      it != steal_replies_sent_.end()) {
    Message resend = it->second;
    cluster_->Send(thief, std::move(resend));
    return;
  }
  Message reply;
  reply.type = MessageType::kStealReply;
  reply.from = id_;
  reply.steal_seq = steal_seq;  // retire exactly the request we answer
  if (options_.worksteal.enabled) {
    MutexLock lock(&exec_mu_);
    for (auto& [query_id, exec] : running_execs_) {
      std::vector<int> ids = exec->StealBatches(options_.worksteal.nsend);
      if (ids.empty()) continue;
      reply.query_id = query_id;
      reply.bsf = bsf_board_[query_id].load(std::memory_order_acquire);
      // Ledger the grant before the ids move into the reply: if the thief
      // dies, HandleNodeDead re-runs them from here (both on this thread).
      steal_grants_.push_back({thief, query_id, ids});
      reply.batch_ids = std::move(ids);
      {
        // exec_mu_ -> stats_mu_ is the one sanctioned nesting (see the
        // header's discipline note). The give-away count used to be
        // written under exec_mu_ alone — a different mutex than every
        // other batch_stats_ writer, the kind of split-brain guard the
        // thread-safety analysis now rejects at compile time.
        MutexLock stats(&stats_mu_);
        batch_stats_.batches_given_away +=
            static_cast<int>(reply.batch_ids.size());
      }
      break;
    }
  }
  steal_replies_sent_.emplace(key, reply);  // fence before the send
  cluster_->Send(thief, std::move(reply));
}

int NodeRuntime::NextQuery() {
  if (PolicyIsDynamic(options_.policy)) {
    // DQS: request a query from the coordinator, then wait for the reply.
    Message request;
    request.type = MessageType::kQueryRequest;
    request.from = id_;
    cluster_->Send(cluster_->coordinator_id(), std::move(request));
  }
  MutexLock lock(&state_mu_);
  while (assigned_.empty() && !AllAssignmentsInLocked()) {
    state_cv_.Wait(&state_mu_);
  }
  if (!assigned_.empty()) {
    const int qid = assigned_.front();
    assigned_.pop_front();
    return qid;
  }
  return -1;
}

void NodeRuntime::MainLoop() {
  // Algorithm 1: answer assigned queries — one at a time in the paper's
  // batch model, or up to max_inflight concurrently on the pool when the
  // streaming path admits queries faster than they finish...
  const int max_inflight = std::max(1, options_.max_inflight);
  // Batched scoring groups the queries already delivered to this node (up
  // to max_inflight) into one GroupedQueryExecution instead of running them
  // as independent concurrent executions. Exact executor-backed search
  // only; dynamic policies deliver one query per request, so their groups
  // naturally degrade to size 1 (same answers, no amortization).
  const bool grouped = options_.batched_scoring && options_.use_executor &&
                       workers_ != nullptr &&
                       !options_.query_options.approximate;
  if (grouped) {
    for (;;) {
      const int qid = NextQuery();
      if (qid < 0) break;
      std::vector<int> qids{qid};
      {
        MutexLock lock(&state_mu_);
        // Static policies deliver a node's whole share up front, FIFO-ahead
        // of the no-more-queries marker, so waiting for the marker here
        // makes the group contents deterministic instead of racing the
        // comms thread's mailbox drain (a single-core host can otherwise
        // consume every assignment as a singleton group). Dynamic policies
        // hand out one query per request and send the marker only at the
        // end, so for them the group is whatever is in flight *now* —
        // never a wait for stragglers.
        if (!PolicyIsDynamic(options_.policy)) {
          // The fence, not the bare marker: a delayed assignment the
          // marker overtook still belongs in this node's (only) group.
          while (!AllAssignmentsInLocked()) state_cv_.Wait(&state_mu_);
        }
        while (static_cast<int>(qids.size()) < max_inflight &&
               !assigned_.empty()) {
          qids.push_back(assigned_.front());
          assigned_.pop_front();
        }
      }
      {
        MutexLock lock(&inflight_mu_);
        inflight_ = static_cast<int>(qids.size());
        {
          MutexLock stats(&stats_mu_);
          batch_stats_.inflight_hwm =
              std::max(batch_stats_.inflight_hwm, inflight_);
        }
        executor_stats::RecordQueriesInFlight(
            static_cast<uint64_t>(inflight_));
      }
      ExecuteQueryGroup(qids);
      {
        MutexLock lock(&inflight_mu_);
        inflight_ = 0;
      }
    }
  }
  const bool concurrent =
      !grouped && max_inflight > 1 && options_.use_executor &&
      workers_ != nullptr;
  std::unique_ptr<TaskGroup> inflight_group;
  if (concurrent) inflight_group = std::make_unique<TaskGroup>(workers_.get());
  while (!grouped) {
    const int qid = NextQuery();
    if (qid < 0) break;
    if (!concurrent) {
      ExecuteQuery(qid);
      continue;
    }
    {
      // Admission control: claim an in-flight slot before asking the
      // coordinator for more work.
      MutexLock lock(&inflight_mu_);
      while (inflight_ >= max_inflight) inflight_cv_.Wait(&inflight_mu_);
      ++inflight_;
      {
        MutexLock stats(&stats_mu_);
        batch_stats_.inflight_hwm =
            std::max(batch_stats_.inflight_hwm, inflight_);
      }
      executor_stats::RecordQueriesInFlight(static_cast<uint64_t>(inflight_));
    }
    inflight_group->Submit([this, qid] {
      ExecuteQuery(qid);
      MutexLock lock(&inflight_mu_);
      --inflight_;
      inflight_cv_.SignalAll();
    });
  }
  if (inflight_group != nullptr) inflight_group->Wait();
  {
    MutexLock stats(&stats_mu_);
    batch_stats_.inflight_hwm = std::max(batch_stats_.inflight_hwm,
                                         batch_stats_.queries_executed > 0 ? 1 : 0);
  }
  // ... then announce completion to every node and start stealing. A node
  // whose transport was closed (killed mid-batch) exits the epoch quietly
  // instead: a dead host announces nothing, and the coordinator's liveness
  // deadline — not a protocol message — is what detects it.
  {
    MutexLock lock(&state_mu_);
    if (transport_closed_) return;
  }
  Message done;
  done.type = MessageType::kDone;
  done.from = id_;
  cluster_->Broadcast(done, /*except=*/id_);
  {
    MutexLock lock(&state_mu_);
    done_nodes_.insert(id_);
  }
  PerformWorkStealing();
  {
    MutexLock lock(&state_mu_);
    if (transport_closed_) return;
  }
  Message terminated;
  terminated.type = MessageType::kNodeTerminated;
  terminated.from = id_;
  cluster_->Send(cluster_->coordinator_id(), std::move(terminated));
}

void NodeRuntime::ExecuteQuery(int query_id) {
  Stopwatch watch;
  std::atomic<float>* cell =
      options_.share_bsf ? &bsf_board_[query_id] : nullptr;
  std::function<void(float)> on_improve;
  if (options_.share_bsf) {
    on_improve = [this, query_id](float threshold) {
      Message update;
      update.type = MessageType::kBsfUpdate;
      update.from = id_;
      update.query_id = query_id;
      update.bsf = threshold;
      cluster_->Broadcast(update, /*except=*/id_);
    };
  }
  QueryExecution exec(index_.get(), queries_->query(query_id),
                      options_.query_options, cell, on_improve);
  const float initial_bsf = exec.SeedInitialBsf();
  if (options_.threshold_model != nullptr &&
      options_.threshold_model->calibrated()) {
    exec.set_queue_threshold(
        options_.threshold_model->PredictThreshold(initial_bsf));
  }
  {
    MutexLock lock(&exec_mu_);
    running_execs_.push_back({query_id, &exec});
  }
  exec.Run(options_.use_executor ? workers_.get() : nullptr);
  {
    MutexLock lock(&exec_mu_);
    for (auto it = running_execs_.begin(); it != running_execs_.end(); ++it) {
      if (it->second == &exec) {
        running_execs_.erase(it);
        break;
      }
    }
  }
  SendLocalAnswer(query_id, exec.results().SortedResults());
  {
    MutexLock lock(&stats_mu_);
    ++batch_stats_.queries_executed;
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::ExecuteQueryGroup(const std::vector<int>& query_ids) {
  Stopwatch watch;
  std::vector<std::unique_ptr<QueryExecution>> execs;
  execs.reserve(query_ids.size());
  for (int query_id : query_ids) {
    std::atomic<float>* cell =
        options_.share_bsf ? &bsf_board_[query_id] : nullptr;
    std::function<void(float)> on_improve;
    if (options_.share_bsf) {
      on_improve = [this, query_id](float threshold) {
        Message update;
        update.type = MessageType::kBsfUpdate;
        update.from = id_;
        update.query_id = query_id;
        update.bsf = threshold;
        cluster_->Broadcast(update, /*except=*/id_);
      };
    }
    auto exec = std::make_unique<QueryExecution>(
        index_.get(), queries_->query(query_id), options_.query_options, cell,
        std::move(on_improve));
    const float initial_bsf = exec->SeedInitialBsf();
    if (options_.threshold_model != nullptr &&
        options_.threshold_model->calibrated()) {
      exec->set_queue_threshold(
          options_.threshold_model->PredictThreshold(initial_bsf));
    }
    execs.push_back(std::move(exec));
  }
  std::vector<QueryExecution*> members;
  members.reserve(execs.size());
  for (const auto& exec : execs) members.push_back(exec.get());
  GroupedQueryExecution group(std::move(members));
  // Steal-donation: register every member as a victim for the duration of
  // the run. A kStealRequest landing on a member forwards to the group's
  // DonateBatches, and the grant rides the ordinary steal machinery
  // (ledger, duplicate fence, dead-thief replay) untouched. Registration
  // strictly after group construction and deregistration strictly before
  // its destruction: exec_mu_ fences HandleStealRequest's iteration, so no
  // steal call can observe a member without its group backlink.
  const bool donate = options_.worksteal.enabled && options_.steal_donation;
  if (donate) {
    MutexLock lock(&exec_mu_);
    for (size_t i = 0; i < execs.size(); ++i) {
      running_execs_.push_back({query_ids[i], execs[i].get()});
    }
  }
  group.Run(workers_.get());
  if (donate) {
    MutexLock lock(&exec_mu_);
    for (const auto& exec : execs) {
      for (auto it = running_execs_.begin(); it != running_execs_.end();
           ++it) {
        if (it->second == exec.get()) {
          running_execs_.erase(it);
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < execs.size(); ++i) {
    SendLocalAnswer(query_ids[i], execs[i]->results().SortedResults());
  }
  {
    MutexLock lock(&stats_mu_);
    batch_stats_.queries_executed += static_cast<int>(query_ids.size());
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::PerformWorkStealing() {
  // Algorithm 4: while some group peer is still working, pick one at random,
  // request work, and run whatever RS-batches it gives away.
  //
  // Failure-model hardening on top of the paper's loop: seq-keyed
  // per-victim outstanding-reply accounting (a batch-carrying reply that
  // is merely delayed must be waited out — its RS-batches run nowhere
  // else — and a duplicated reply must not retire a request it did not
  // answer), reply timeouts with a consecutive-timeout bound on *starting
  // new* steal attempts, and write-off of replies owed by peers the
  // coordinator declared dead (their queries are re-run wholesale, which
  // also covers whatever their in-flight replies granted).
  if (!options_.worksteal.enabled || layout_.replication_degree() <= 1) {
    return;
  }
  const std::vector<int> group = layout_.GroupMembers(layout_.GroupOf(id_));
  uint64_t rng_state = options_.seed ^ (0x9E3779B97f4A7C15ULL * (id_ + 1));
  const int timeout_us = options_.worksteal.reply_timeout_us;
  const int max_timeouts = options_.worksteal.max_reply_timeouts;
  // Outstanding request seqs per victim. Seq-keyed (not counted) so an
  // injector-duplicated reply retires its own request exactly once — a
  // counter would let the duplicate of an *empty* reply pay the debt of a
  // later *batch-carrying* one, and the thief would walk away from
  // RS-batches that then run nowhere.
  std::vector<std::set<int>> outstanding(
      static_cast<size_t>(layout_.num_nodes()));
  int next_steal_seq = 0;
  int consecutive_timeouts = 0;
  // The whole steal phase talks only to peers — the coordinator hears
  // nothing from this node until kNodeTerminated. Under a short liveness
  // deadline that silence reads as death and can cascade into declaring
  // every busy thief dead, so ping the coordinator while the phase lasts.
  // (The comms thread pings too, but it can be busy re-running recovery
  // work on behalf of a dead peer — two pingers keep every window short.)
  Stopwatch heartbeat_watch;
  double last_heartbeat = 0.0;
  const double kHeartbeatIntervalSeconds =
      options_.liveness_heartbeat_seconds > 0.0
          ? options_.liveness_heartbeat_seconds
          : std::numeric_limits<double>::infinity();
  for (;;) {
    const double hb_now = heartbeat_watch.ElapsedSeconds();
    if (hb_now - last_heartbeat >= kHeartbeatIntervalSeconds) {
      last_heartbeat = hb_now;
      Message ping;
      ping.type = MessageType::kHeartbeat;
      ping.from = id_;
      cluster_->Send(cluster_->coordinator_id(), std::move(ping));
    }
    std::vector<int> peers;
    // Outstanding replies are *debts*: a victim that granted us RS-batches
    // removed them from its own answer at grant time, so a batch-carrying
    // reply we never consume is coverage that runs nowhere. Hence the one
    // hard rule of this loop: never terminate while a reply is outstanding
    // from a peer that is not declared dead. A live peer's reply always
    // arrives (HandleStealRequest replies unconditionally, answers are
    // never dropped, and a parked Receive force-flushes held messages), no
    // matter how long the injector delays it or how starved the comms
    // thread is — the wait below is woken by its arrival. A peer declared
    // dead has its debts written off: if it really died the coordinator
    // re-runs every query it was dispatched, and if the verdict was false
    // the same re-runs cover the batches its in-flight reply carried,
    // since StealBatches only ever grants from the victim's own queries.
    // The timeout budget bounds *starting new* steal attempts, not the
    // consumption of debts already incurred.
    int pending_active = 0;
    int pending_parked = 0;
    {
      MutexLock lock(&state_mu_);
      if (transport_closed_) return;  // this node was killed; fall silent
      for (int n : group) {
        if (n == id_) continue;
        if (dead_nodes_.count(n) != 0) continue;  // debts written off
        const int owed =
            static_cast<int>(outstanding[static_cast<size_t>(n)].size());
        if (done_nodes_.count(n) == 0) {
          peers.push_back(n);
          pending_active += owed;
        } else {
          pending_parked += owed;
        }
      }
    }
    const bool retries_left =
        max_timeouts <= 0 || consecutive_timeouts < max_timeouts;
    if (pending_active == 0 && pending_parked == 0 &&
        (peers.empty() || !retries_left)) {
      return;
    }
    if (pending_active + pending_parked == 0 && !peers.empty() &&
        retries_left) {
      const int victim = ChooseStealVictim(peers, &rng_state);
      {
        MutexLock lock(&stats_mu_);
        ++batch_stats_.steal_attempts;
      }
      Message request;
      request.type = MessageType::kStealRequest;
      request.from = id_;
      request.steal_seq = next_steal_seq;
      outstanding[static_cast<size_t>(victim)].insert(next_steal_seq);
      ++next_steal_seq;
      cluster_->Send(victim, std::move(request));
    }
    Message reply;
    bool have_reply = false;
    bool timed_out = false;
    {
      MutexLock lock(&state_mu_);
      const uint64_t seen = state_version_;
      const auto deadline =
          std::chrono::steady_clock::now() +
          (timeout_us > 0 ? std::chrono::microseconds(timeout_us)
                          // "Forever", expressed as a deadline so the wait
                          // below stays one code path.
                          : std::chrono::microseconds(int64_t{3600000000}));
      // Also wake on state_version_ (a peer finishing or dying) so a
      // verdict about our victim re-plans the loop instead of waiting out
      // the full timeout — essential when timeout_us is 0.
      while (steal_replies_.empty() && !transport_closed_ &&
             state_version_ == seen) {
        if (state_cv_.WaitUntil(&state_mu_, deadline)) {
          timed_out = steal_replies_.empty();
          break;
        }
      }
      if (!steal_replies_.empty()) {
        reply = std::move(steal_replies_.front());
        steal_replies_.pop_front();
        have_reply = true;
      } else if (transport_closed_) {
        return;
      }
    }
    if (!have_reply) {
      if (timed_out) {
        ++consecutive_timeouts;
        fault_stats::CountStealTimeout();
      }
      continue;  // re-plan: peers/dead sets may have changed
    }
    consecutive_timeouts = 0;
    if (reply.from >= 0 && reply.from < layout_.num_nodes()) {
      // Retires exactly the request this reply answers; the second copy of
      // a duplicated reply finds its seq already erased and retires
      // nothing.
      outstanding[static_cast<size_t>(reply.from)].erase(reply.steal_seq);
    }
    if (reply.batch_ids.empty()) {
      // Timed back-off before retrying another victim — but woken early by
      // the comms thread on protocol progress (a peer finishing, a reply
      // landing) instead of sleeping blind, so an idle node reacts to
      // mailbox arrivals immediately and burns no CPU in between.
      MutexLock lock(&state_mu_);
      const uint64_t seen = state_version_;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.worksteal.retry_backoff_us);
      while (state_version_ == seen) {
        if (state_cv_.WaitUntil(&state_mu_, deadline)) break;
      }
      continue;
    }
    {
      MutexLock lock(&stats_mu_);
      ++batch_stats_.successful_steals;
    }
    // Stolen (and donated) work draws from the same admission budget as
    // the node's own queries: claim an in-flight slot for the re-run so
    // inflight_/the high-water mark account for every unit of work the
    // pool executes. The wait never stalls in practice — stealing starts
    // after the node's own queries drained — but the invariant (at most
    // max_inflight concurrent work items) is enforced, not assumed.
    {
      MutexLock lock(&inflight_mu_);
      const int budget = std::max(1, options_.max_inflight);
      while (inflight_ >= budget) inflight_cv_.Wait(&inflight_mu_);
      ++inflight_;
      {
        MutexLock stats(&stats_mu_);
        batch_stats_.inflight_hwm =
            std::max(batch_stats_.inflight_hwm, inflight_);
      }
      executor_stats::RecordQueriesInFlight(static_cast<uint64_t>(inflight_));
    }
    RunStolenWork(reply);
    {
      MutexLock lock(&inflight_mu_);
      --inflight_;
      inflight_cv_.SignalAll();
    }
  }
}

void NodeRuntime::RunStolenWork(const Message& reply) {
  Stopwatch watch;
  const int query_id = reply.query_id;
  AtomicFetchMinFloat(&bsf_board_[query_id], reply.bsf);
  std::function<void(float)> on_improve;
  if (options_.share_bsf) {
    on_improve = [this, query_id](float threshold) {
      Message update;
      update.type = MessageType::kBsfUpdate;
      update.from = id_;
      update.query_id = query_id;
      update.bsf = threshold;
      cluster_->Broadcast(update, /*except=*/id_);
    };
  }
  // The stolen query's summaries come from the same batch-level prepared
  // artifact the victim used — a steal costs no re-summarization — and the
  // stolen phases run on the same persistent pool (idle by now: stealing
  // only starts after the node's own queries finished).
  QueryExecution exec(index_.get(), queries_->query(query_id),
                      options_.query_options, &bsf_board_[query_id],
                      on_improve);
  const float initial_bsf = exec.SeedInitialBsf();
  if (options_.threshold_model != nullptr &&
      options_.threshold_model->calibrated()) {
    exec.set_queue_threshold(
        options_.threshold_model->PredictThreshold(initial_bsf));
  }
  // Score in the node's own mode, exactly like ExecuteRecoveryQuery: on a
  // batched-scoring cluster the victim (a grouped run, possibly donating)
  // scores every candidate with the batched kernels, so the stolen subset
  // must too — a per-query re-run would report ULP-different distances for
  // the donated candidates and break bit-identity with the non-donated
  // reference. The single-member grouped subset run keeps the family.
  if (options_.batched_scoring && options_.use_executor &&
      workers_ != nullptr && !options_.query_options.approximate) {
    GroupedQueryExecution group({&exec});
    group.RunBatchSubset(reply.batch_ids, workers_.get());
  } else {
    exec.RunBatchSubset(reply.batch_ids,
                        options_.use_executor ? workers_.get() : nullptr);
  }
  {
    MutexLock lock(&stats_mu_);
    batch_stats_.batches_stolen_run +=
        static_cast<int>(reply.batch_ids.size());
  }
  SendLocalAnswer(query_id, exec.results().SortedResults());
  {
    MutexLock lock(&stats_mu_);
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::SendLocalAnswer(int query_id,
                                  const std::vector<Neighbor>& local,
                                  bool recovery) {
  Message answer;
  answer.type = MessageType::kLocalAnswer;
  answer.from = id_;
  answer.query_id = query_id;
  answer.recovery = recovery;
  answer.neighbors.reserve(local.size());
  for (const Neighbor& n : local) {
    answer.neighbors.push_back({n.squared_distance, (*global_ids_)[n.id]});
  }
  cluster_->Send(cluster_->coordinator_id(), std::move(answer));
}

}  // namespace odyssey
