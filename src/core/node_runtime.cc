#include "src/core/node_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/common/summary_stats.h"
#include "src/distance/dtw.h"
#include "src/distance/simd.h"

namespace odyssey {
namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}  // namespace

NodeRuntime::NodeRuntime(int node_id, const ReplicationLayout& layout)
    : id_(node_id), layout_(layout) {
  ODYSSEY_CHECK(node_id >= 0 && node_id < layout.num_nodes());
}

NodeRuntime::~NodeRuntime() {
  JoinBatch();
  {
    MutexLock lock(&epoch_mu_);
    stopping_ = true;
  }
  epoch_cv_.SignalAll();
  if (comms_thread_.joinable()) comms_thread_.Join();
  if (main_thread_.joinable()) main_thread_.Join();
}

void NodeRuntime::LoadChunk(SeriesCollection chunk,
                            std::vector<uint32_t> global_ids) {
  ODYSSEY_CHECK(chunk.size() == global_ids.size());
  ODYSSEY_CHECK_MSG(!chunk.empty(), "node received an empty chunk");
  global_ids_ =
      std::make_shared<const std::vector<uint32_t>>(std::move(global_ids));
  // The chunk is stashed inside the index at BuildIndex time; keep it here
  // until then.
  pending_chunk_ = std::make_unique<SeriesCollection>(std::move(chunk));
  pending_shared_.reset();
}

void NodeRuntime::LoadSharedChunk(std::shared_ptr<const SharedChunk> chunk) {
  ODYSSEY_CHECK(chunk != nullptr);
  ODYSSEY_CHECK_MSG(!chunk->data().empty(), "node received an empty chunk");
  ODYSSEY_CHECK(chunk->global_ids().size() == chunk->size());
  // Alias the bundle's id vector: the ids share the bundle's refcount and
  // are never copied per replica.
  global_ids_ = std::shared_ptr<const std::vector<uint32_t>>(
      chunk, &chunk->global_ids());
  pending_shared_ = std::move(chunk);
  pending_chunk_.reset();
}

BuildTimings NodeRuntime::BuildIndex(const IndexOptions& options,
                                     int build_threads) {
  ODYSSEY_CHECK_MSG(pending_chunk_ != nullptr || pending_shared_ != nullptr,
                    "LoadChunk/LoadSharedChunk before BuildIndex");
  ThreadPool pool(static_cast<size_t>(std::max(1, build_threads)));
  if (pending_shared_ != nullptr) {
    index_ = std::make_unique<Index>(Index::BuildFromShared(
        std::move(pending_shared_), options, &pool, &build_timings_));
  } else {
    index_ = std::make_unique<Index>(Index::Build(
        std::move(*pending_chunk_), options, &pool, &build_timings_));
  }
  pending_chunk_.reset();
  pending_shared_.reset();
  return build_timings_;
}

const Index& NodeRuntime::index() const {
  ODYSSEY_CHECK(index_ != nullptr);
  return *index_;
}

NodeBatchStats NodeRuntime::batch_stats() const {
  MutexLock lock(&stats_mu_);
  return batch_stats_;
}

bool NodeRuntime::EpochIdleLocked() const {
  return comms_epochs_done_ == epochs_started_ &&
         main_epochs_done_ == epochs_started_;
}

void NodeRuntime::NoteProtocolProgressLocked() {
  ++state_version_;
  state_cv_.SignalAll();
}

void NodeRuntime::EnsureExecutor() {
  if (options_.use_executor) {
    const size_t want =
        static_cast<size_t>(std::max(1, options_.query_options.num_threads));
    // The pool grows to the widest batch seen and never shrinks; growth
    // spawns only the missing workers, so a wider batch pays exactly the
    // delta and an equal-or-narrower one pays nothing.
    if (workers_ == nullptr) {
      workers_ = std::make_unique<ThreadPool>(want);
    } else {
      workers_->Grow(want);
    }
    WarmExecutorScratch();
  }
  if (!comms_thread_.joinable()) {
    comms_thread_ = CountedThread([this] { EpochThread(/*comms=*/true); });
    main_thread_ = CountedThread([this] { EpochThread(/*comms=*/false); });
  }
}

void NodeRuntime::WarmExecutorScratch() {
  // Each warm-up task spins on an arrival counter until all of them have
  // started, which forces the pool to hand exactly one task to each of its
  // `width` workers — a worker stuck in the spin cannot pick up a second
  // task, so every worker's thread-local scratch gets reserved. Plain
  // Submit + WaitIdle, deliberately not a TaskGroup: TaskGroup::Wait helps
  // from this thread, which would let the driver thread swallow a warm-up
  // task and leave one worker cold. WaitIdle only blocks.
  const size_t width = workers_->num_threads();
  const size_t batches = options_.query_options.EffectiveBatches();
  // Queue count is data-dependent (leaves inserted per batch); reserve a
  // generous floor and let the grow-only scratch absorb outliers.
  const size_t queues = std::max<size_t>(size_t{64}, batches * 4);
  const size_t lanes =
      options_.batched_scoring
          ? simd::BatchStride(
                static_cast<size_t>(std::max(1, options_.max_inflight)))
          : 0;
  const size_t length = index_ != nullptr ? index_->data().length() : 0;
  if (width <= warmed_scratch_.width && batches <= warmed_scratch_.batches &&
      queues <= warmed_scratch_.queues && lanes <= warmed_scratch_.lanes &&
      length <= warmed_scratch_.length) {
    return;
  }
  auto arrived = std::make_shared<std::atomic<size_t>>(0);
  for (size_t i = 0; i < width; ++i) {
    workers_->Submit([=] {
      QueryScratch::ForThisThread().Reserve(batches, queues, lanes);
      ReserveDtwScratch(length);
      arrived->fetch_add(1, std::memory_order_acq_rel);
      while (arrived->load(std::memory_order_acquire) < width) {
        // Spin until every warm-up task holds a distinct worker.
      }
    });
  }
  workers_->WaitIdle();
  warmed_scratch_ = {width, batches, queues, lanes, length};
}

void NodeRuntime::EpochThread(bool comms) {
  uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lock(&epoch_mu_);
      while (!stopping_ && epochs_started_ <= seen) epoch_cv_.Wait(&epoch_mu_);
      if (epochs_started_ == seen) return;  // stopping, nothing new to run
      seen = epochs_started_;
    }
    if (comms) {
      CommsLoop();
    } else {
      MainLoop();
    }
    {
      MutexLock lock(&epoch_mu_);
      (comms ? comms_epochs_done_ : main_epochs_done_) = seen;
    }
    epoch_cv_.SignalAll();
  }
}

void NodeRuntime::StartBatch(SimCluster* cluster,
                             const PreparedBatch* queries,
                             const NodeBatchOptions& options) {
  ODYSSEY_CHECK(index_ != nullptr);
  {
    MutexLock lock(&epoch_mu_);
    ODYSSEY_CHECK_MSG(EpochIdleLocked(),
                      "StartBatch while an epoch is still running");
  }
  cluster_ = cluster;
  queries_ = queries;
  options_ = options;
  {
    MutexLock lock(&stats_mu_);
    batch_stats_ = NodeBatchStats();
  }
  bsf_board_ = std::make_unique<std::atomic<float>[]>(queries->size());
  for (size_t q = 0; q < queries->size(); ++q) bsf_board_[q].store(kInf);
  {
    MutexLock lock(&state_mu_);
    assigned_.clear();
    no_more_queries_ = false;
    done_nodes_.clear();
    steal_replies_.clear();
  }
  {
    MutexLock lock(&inflight_mu_);
    inflight_ = 0;
  }
  EnsureExecutor();
  {
    MutexLock lock(&epoch_mu_);
    ++epochs_started_;
  }
  epoch_cv_.SignalAll();
}

void NodeRuntime::JoinBatch() {
  MutexLock lock(&epoch_mu_);
  while (!EpochIdleLocked()) epoch_cv_.Wait(&epoch_mu_);
}

void NodeRuntime::CommsLoop() {
  // The comms thread doubles as the paper's work-stealing manager
  // (Algorithm 3) and as the keeper of the BSF book-keeping array
  // (Section 3.4): every received BSF improvement is folded into the
  // per-query cell that running executions prune against.
  for (;;) {
    Message m = cluster_->mailbox(id_).Receive();
    switch (m.type) {
      case MessageType::kShutdown:
        return;
      case MessageType::kAssignQuery: {
        MutexLock lock(&state_mu_);
        assigned_.push_back(m.query_id);
        state_cv_.SignalAll();
        break;
      }
      case MessageType::kNoMoreQueries: {
        MutexLock lock(&state_mu_);
        no_more_queries_ = true;
        state_cv_.SignalAll();
        break;
      }
      case MessageType::kBsfUpdate:
        AtomicFetchMinFloat(&bsf_board_[m.query_id], m.bsf);
        break;
      case MessageType::kDone: {
        MutexLock lock(&state_mu_);
        done_nodes_.insert(m.from);
        NoteProtocolProgressLocked();  // a peer finished
        break;
      }
      case MessageType::kStealRequest:
        HandleStealRequest(m.from);
        break;
      case MessageType::kStealReply: {
        MutexLock lock(&state_mu_);
        steal_replies_.push_back(std::move(m));
        NoteProtocolProgressLocked();  // a reply landed
        break;
      }
      case MessageType::kQueryRequest:
      case MessageType::kLocalAnswer:
      case MessageType::kNodeTerminated:
        break;  // coordinator-bound messages never arrive here
    }
  }
}

void NodeRuntime::HandleStealRequest(int thief) {
  // Algorithm 3: give away up to Nsend RS-batches of a running query that
  // satisfy the Take-Away property; always reply (an empty reply tells the
  // thief to look elsewhere). With in-flight admission several own queries
  // can be running — the first with stealable batches feeds the thief.
  Message reply;
  reply.type = MessageType::kStealReply;
  reply.from = id_;
  if (options_.worksteal.enabled) {
    MutexLock lock(&exec_mu_);
    for (auto& [query_id, exec] : running_execs_) {
      std::vector<int> ids = exec->StealBatches(options_.worksteal.nsend);
      if (ids.empty()) continue;
      reply.query_id = query_id;
      reply.bsf = bsf_board_[query_id].load(std::memory_order_acquire);
      reply.batch_ids = std::move(ids);
      {
        // exec_mu_ -> stats_mu_ is the one sanctioned nesting (see the
        // header's discipline note). The give-away count used to be
        // written under exec_mu_ alone — a different mutex than every
        // other batch_stats_ writer, the kind of split-brain guard the
        // thread-safety analysis now rejects at compile time.
        MutexLock stats(&stats_mu_);
        batch_stats_.batches_given_away +=
            static_cast<int>(reply.batch_ids.size());
      }
      break;
    }
  }
  cluster_->Send(thief, std::move(reply));
}

int NodeRuntime::NextQuery() {
  if (PolicyIsDynamic(options_.policy)) {
    // DQS: request a query from the coordinator, then wait for the reply.
    Message request;
    request.type = MessageType::kQueryRequest;
    request.from = id_;
    cluster_->Send(cluster_->coordinator_id(), std::move(request));
  }
  MutexLock lock(&state_mu_);
  while (assigned_.empty() && !no_more_queries_) state_cv_.Wait(&state_mu_);
  if (!assigned_.empty()) {
    const int qid = assigned_.front();
    assigned_.pop_front();
    return qid;
  }
  return -1;
}

void NodeRuntime::MainLoop() {
  // Algorithm 1: answer assigned queries — one at a time in the paper's
  // batch model, or up to max_inflight concurrently on the pool when the
  // streaming path admits queries faster than they finish...
  const int max_inflight = std::max(1, options_.max_inflight);
  // Batched scoring groups the queries already delivered to this node (up
  // to max_inflight) into one GroupedQueryExecution instead of running them
  // as independent concurrent executions. Exact executor-backed search
  // only; dynamic policies deliver one query per request, so their groups
  // naturally degrade to size 1 (same answers, no amortization).
  const bool grouped = options_.batched_scoring && options_.use_executor &&
                       workers_ != nullptr &&
                       !options_.query_options.approximate;
  if (grouped) {
    for (;;) {
      const int qid = NextQuery();
      if (qid < 0) break;
      std::vector<int> qids{qid};
      {
        MutexLock lock(&state_mu_);
        // Static policies deliver a node's whole share up front, FIFO-ahead
        // of the no-more-queries marker, so waiting for the marker here
        // makes the group contents deterministic instead of racing the
        // comms thread's mailbox drain (a single-core host can otherwise
        // consume every assignment as a singleton group). Dynamic policies
        // hand out one query per request and send the marker only at the
        // end, so for them the group is whatever is in flight *now* —
        // never a wait for stragglers.
        if (!PolicyIsDynamic(options_.policy)) {
          while (!no_more_queries_) state_cv_.Wait(&state_mu_);
        }
        while (static_cast<int>(qids.size()) < max_inflight &&
               !assigned_.empty()) {
          qids.push_back(assigned_.front());
          assigned_.pop_front();
        }
      }
      {
        MutexLock lock(&inflight_mu_);
        inflight_ = static_cast<int>(qids.size());
        {
          MutexLock stats(&stats_mu_);
          batch_stats_.inflight_hwm =
              std::max(batch_stats_.inflight_hwm, inflight_);
        }
        executor_stats::RecordQueriesInFlight(
            static_cast<uint64_t>(inflight_));
      }
      ExecuteQueryGroup(qids);
      {
        MutexLock lock(&inflight_mu_);
        inflight_ = 0;
      }
    }
  }
  const bool concurrent =
      !grouped && max_inflight > 1 && options_.use_executor &&
      workers_ != nullptr;
  std::unique_ptr<TaskGroup> inflight_group;
  if (concurrent) inflight_group = std::make_unique<TaskGroup>(workers_.get());
  while (!grouped) {
    const int qid = NextQuery();
    if (qid < 0) break;
    if (!concurrent) {
      ExecuteQuery(qid);
      continue;
    }
    {
      // Admission control: claim an in-flight slot before asking the
      // coordinator for more work.
      MutexLock lock(&inflight_mu_);
      while (inflight_ >= max_inflight) inflight_cv_.Wait(&inflight_mu_);
      ++inflight_;
      {
        MutexLock stats(&stats_mu_);
        batch_stats_.inflight_hwm =
            std::max(batch_stats_.inflight_hwm, inflight_);
      }
      executor_stats::RecordQueriesInFlight(static_cast<uint64_t>(inflight_));
    }
    inflight_group->Submit([this, qid] {
      ExecuteQuery(qid);
      MutexLock lock(&inflight_mu_);
      --inflight_;
      inflight_cv_.SignalAll();
    });
  }
  if (inflight_group != nullptr) inflight_group->Wait();
  {
    MutexLock stats(&stats_mu_);
    batch_stats_.inflight_hwm = std::max(batch_stats_.inflight_hwm,
                                         batch_stats_.queries_executed > 0 ? 1 : 0);
  }
  // ... then announce completion to every node and start stealing.
  Message done;
  done.type = MessageType::kDone;
  done.from = id_;
  cluster_->Broadcast(done, /*except=*/id_);
  {
    MutexLock lock(&state_mu_);
    done_nodes_.insert(id_);
  }
  PerformWorkStealing();
  Message terminated;
  terminated.type = MessageType::kNodeTerminated;
  terminated.from = id_;
  cluster_->Send(cluster_->coordinator_id(), std::move(terminated));
}

void NodeRuntime::ExecuteQuery(int query_id) {
  Stopwatch watch;
  std::atomic<float>* cell =
      options_.share_bsf ? &bsf_board_[query_id] : nullptr;
  std::function<void(float)> on_improve;
  if (options_.share_bsf) {
    on_improve = [this, query_id](float threshold) {
      Message update;
      update.type = MessageType::kBsfUpdate;
      update.from = id_;
      update.query_id = query_id;
      update.bsf = threshold;
      cluster_->Broadcast(update, /*except=*/id_);
    };
  }
  QueryExecution exec(index_.get(), queries_->query(query_id),
                      options_.query_options, cell, on_improve);
  const float initial_bsf = exec.SeedInitialBsf();
  if (options_.threshold_model != nullptr &&
      options_.threshold_model->calibrated()) {
    exec.set_queue_threshold(
        options_.threshold_model->PredictThreshold(initial_bsf));
  }
  {
    MutexLock lock(&exec_mu_);
    running_execs_.push_back({query_id, &exec});
  }
  exec.Run(options_.use_executor ? workers_.get() : nullptr);
  {
    MutexLock lock(&exec_mu_);
    for (auto it = running_execs_.begin(); it != running_execs_.end(); ++it) {
      if (it->second == &exec) {
        running_execs_.erase(it);
        break;
      }
    }
  }
  SendLocalAnswer(query_id, exec.results().SortedResults());
  {
    MutexLock lock(&stats_mu_);
    ++batch_stats_.queries_executed;
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::ExecuteQueryGroup(const std::vector<int>& query_ids) {
  Stopwatch watch;
  std::vector<std::unique_ptr<QueryExecution>> execs;
  execs.reserve(query_ids.size());
  for (int query_id : query_ids) {
    std::atomic<float>* cell =
        options_.share_bsf ? &bsf_board_[query_id] : nullptr;
    std::function<void(float)> on_improve;
    if (options_.share_bsf) {
      on_improve = [this, query_id](float threshold) {
        Message update;
        update.type = MessageType::kBsfUpdate;
        update.from = id_;
        update.query_id = query_id;
        update.bsf = threshold;
        cluster_->Broadcast(update, /*except=*/id_);
      };
    }
    auto exec = std::make_unique<QueryExecution>(
        index_.get(), queries_->query(query_id), options_.query_options, cell,
        std::move(on_improve));
    const float initial_bsf = exec->SeedInitialBsf();
    if (options_.threshold_model != nullptr &&
        options_.threshold_model->calibrated()) {
      exec->set_queue_threshold(
          options_.threshold_model->PredictThreshold(initial_bsf));
    }
    execs.push_back(std::move(exec));
  }
  std::vector<QueryExecution*> members;
  members.reserve(execs.size());
  for (const auto& exec : execs) members.push_back(exec.get());
  GroupedQueryExecution group(std::move(members));
  group.Run(workers_.get());
  for (size_t i = 0; i < execs.size(); ++i) {
    SendLocalAnswer(query_ids[i], execs[i]->results().SortedResults());
  }
  {
    MutexLock lock(&stats_mu_);
    batch_stats_.queries_executed += static_cast<int>(query_ids.size());
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::PerformWorkStealing() {
  // Algorithm 4: while some group peer is still working, pick one at random,
  // request work, and run whatever RS-batches it gives away.
  if (!options_.worksteal.enabled || layout_.replication_degree() <= 1) {
    return;
  }
  const std::vector<int> group = layout_.GroupMembers(layout_.GroupOf(id_));
  uint64_t rng_state = options_.seed ^ (0x9E3779B97f4A7C15ULL * (id_ + 1));
  for (;;) {
    std::vector<int> peers;
    {
      MutexLock lock(&state_mu_);
      for (int n : group) {
        if (n != id_ && done_nodes_.count(n) == 0) peers.push_back(n);
      }
    }
    const int victim = ChooseStealVictim(peers, &rng_state);
    if (victim < 0) return;  // every group peer is done
    {
      MutexLock lock(&stats_mu_);
      ++batch_stats_.steal_attempts;
    }
    Message request;
    request.type = MessageType::kStealRequest;
    request.from = id_;
    cluster_->Send(victim, std::move(request));
    Message reply;
    {
      MutexLock lock(&state_mu_);
      while (steal_replies_.empty()) state_cv_.Wait(&state_mu_);
      reply = std::move(steal_replies_.front());
      steal_replies_.pop_front();
    }
    if (reply.batch_ids.empty()) {
      // Timed back-off before retrying another victim — but woken early by
      // the comms thread on protocol progress (a peer finishing, a reply
      // landing) instead of sleeping blind, so an idle node reacts to
      // mailbox arrivals immediately and burns no CPU in between.
      MutexLock lock(&state_mu_);
      const uint64_t seen = state_version_;
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.worksteal.retry_backoff_us);
      while (state_version_ == seen) {
        if (state_cv_.WaitUntil(&state_mu_, deadline)) break;
      }
      continue;
    }
    {
      MutexLock lock(&stats_mu_);
      ++batch_stats_.successful_steals;
    }
    RunStolenWork(reply);
  }
}

void NodeRuntime::RunStolenWork(const Message& reply) {
  Stopwatch watch;
  const int query_id = reply.query_id;
  AtomicFetchMinFloat(&bsf_board_[query_id], reply.bsf);
  std::function<void(float)> on_improve;
  if (options_.share_bsf) {
    on_improve = [this, query_id](float threshold) {
      Message update;
      update.type = MessageType::kBsfUpdate;
      update.from = id_;
      update.query_id = query_id;
      update.bsf = threshold;
      cluster_->Broadcast(update, /*except=*/id_);
    };
  }
  // The stolen query's summaries come from the same batch-level prepared
  // artifact the victim used — a steal costs no re-summarization — and the
  // stolen phases run on the same persistent pool (idle by now: stealing
  // only starts after the node's own queries finished).
  QueryExecution exec(index_.get(), queries_->query(query_id),
                      options_.query_options, &bsf_board_[query_id],
                      on_improve);
  const float initial_bsf = exec.SeedInitialBsf();
  if (options_.threshold_model != nullptr &&
      options_.threshold_model->calibrated()) {
    exec.set_queue_threshold(
        options_.threshold_model->PredictThreshold(initial_bsf));
  }
  exec.RunBatchSubset(reply.batch_ids,
                      options_.use_executor ? workers_.get() : nullptr);
  {
    MutexLock lock(&stats_mu_);
    batch_stats_.batches_stolen_run +=
        static_cast<int>(reply.batch_ids.size());
  }
  SendLocalAnswer(query_id, exec.results().SortedResults());
  {
    MutexLock lock(&stats_mu_);
    batch_stats_.busy_seconds += watch.ElapsedSeconds();
  }
}

void NodeRuntime::SendLocalAnswer(int query_id,
                                  const std::vector<Neighbor>& local) {
  Message answer;
  answer.type = MessageType::kLocalAnswer;
  answer.from = id_;
  answer.query_id = query_id;
  answer.neighbors.reserve(local.size());
  for (const Neighbor& n : local) {
    answer.neighbors.push_back({n.squared_distance, (*global_ids_)[n.id]});
  }
  cluster_->Send(cluster_->coordinator_id(), std::move(answer));
}

}  // namespace odyssey
