#ifndef ODYSSEY_INDEX_QUERY_ENGINE_H_
#define ODYSSEY_INDEX_QUERY_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/hotpath.h"
#include "src/common/sync.h"
#include "src/distance/lb_keogh.h"
#include "src/distance/simd.h"
#include "src/index/approx_search.h"
#include "src/index/builder.h"
#include "src/index/rs_batch.h"
#include "src/isax/mindist.h"
#include "src/query/prepared_query.h"

namespace odyssey {

/// Atomically lowers `*cell` to `value` if `value` is smaller. Returns true
/// when the cell was lowered. The basis of BSF sharing between threads and
/// (via the BSF channel) between nodes.
bool AtomicFetchMinFloat(std::atomic<float>* cell, float value);

/// One answer candidate: squared distance + series id local to the chunk.
struct Neighbor {
  float squared_distance = 0.0f;
  uint32_t id = 0;
};

/// Fixed-capacity hash set of series ids: open addressing with linear
/// probing and backward-shift deletion over two flat arrays sized at
/// construction. KnnSet's duplicate check needs set semantics with at most
/// k resident ids, and it runs under the result mutex inside the scoring
/// loops — std::unordered_set pays a node allocation per insert there,
/// this pays none after construction (the hot-path purity contract,
/// src/common/hotpath.h).
class FixedIdSet {
 public:
  /// `capacity` is the maximum number of resident ids (KnnSet passes k).
  /// The bucket count is the next power of two at or above twice that, so
  /// the load factor stays <= 0.5 and probe chains stay short.
  explicit FixedIdSet(size_t capacity) {
    size_t buckets = 8;
    while (buckets < 2 * capacity) buckets <<= 1;
    slots_.assign(buckets, 0);
    used_.assign(buckets, 0);
    mask_ = buckets - 1;
  }

  ODYSSEY_HOT bool Contains(uint32_t id) const {
    size_t i = Hash(id) & mask_;
    while (used_[i] != 0) {
      if (slots_[i] == id) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// `id` must not be present and the set must not be full.
  ODYSSEY_HOT void Add(uint32_t id) {
    size_t i = Hash(id) & mask_;
    while (used_[i] != 0) i = (i + 1) & mask_;
    slots_[i] = id;
    used_[i] = 1;
    ++size_;
  }

  /// `id` must be present. Backward-shift deletion: elements behind the
  /// hole move up while the hole still lies on their probe path, so no
  /// tombstones accumulate and Contains stays a plain probe.
  ODYSSEY_HOT void Remove(uint32_t id) {
    size_t hole = Hash(id) & mask_;
    while (used_[hole] == 0 || slots_[hole] != id) hole = (hole + 1) & mask_;
    used_[hole] = 0;
    size_t j = hole;
    for (;;) {
      j = (j + 1) & mask_;
      if (used_[j] == 0) break;
      const size_t ideal = Hash(slots_[j]) & mask_;
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        used_[hole] = 1;
        used_[j] = 0;
        hole = j;
      }
    }
    --size_;
  }

  size_t size() const { return size_; }

 private:
  static size_t Hash(uint32_t id) {
    // Avalanching 32-bit mix (lowbias32): sequential series ids must not
    // form probe chains.
    uint32_t h = id;
    h ^= h >> 16;
    h *= 0x7feb352dU;
    h ^= h >> 15;
    h *= 0x846ca68bU;
    h ^= h >> 16;
    return h;
  }

  std::vector<uint32_t> slots_;
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Thread-safe k-nearest set. Threshold() is the pruning bound: the k-th
/// best squared distance once k candidates are known, +inf before. With
/// k = 1 this degenerates to the classic single BSF.
class KnnSet {
 public:
  explicit KnnSet(int k);

  /// Offers a candidate; returns true if it entered the set (and therefore
  /// possibly lowered the threshold).
  ODYSSEY_HOT bool Offer(float squared_distance, uint32_t id)
      ODYSSEY_EXCLUDES(mu_)
      ODYSSEY_HOT_ALLOWS(
          "lock,alloc: the result mutex is the k-NN merge point, held for "
          "O(log k) heap work; heap_ is reserved to k in the constructor "
          "so its pushes never reallocate (counting-allocator-asserted)");

  /// Current pruning threshold (squared). Lock-free: the scan loop reads it
  /// per candidate and must not contend with Offer.
  float Threshold() const {
    return threshold_.load(std::memory_order_acquire);
  }

  int k() const { return k_; }

  /// Results sorted by ascending distance (at most k entries).
  std::vector<Neighbor> SortedResults() const ODYSSEY_EXCLUDES(mu_);

 private:
  const int k_;
  mutable Mutex mu_;
  /// Max-heap on squared_distance. Reserved to k in the constructor so the
  /// fill-up pushes never reallocate under the mutex.
  std::vector<Neighbor> heap_ ODYSSEY_GUARDED_BY(mu_);
  /// Ids currently in the heap, so Offer's duplicate check is O(1) instead
  /// of an O(k) scan under the mutex for every candidate.
  FixedIdSet ids_ ODYSSEY_GUARDED_BY(mu_);
  std::atomic<float> threshold_;
};

/// Per-query execution knobs. For work-stealing to be meaningful,
/// `num_batches` must be identical on every node of a replication group
/// (batch ids are exchanged between nodes).
struct QueryOptions {
  int num_threads = 4;
  /// Number of RS-batches (Nsb). 0 means num_threads, the paper's best
  /// setting.
  size_t num_batches = 0;
  /// Priority-queue size threshold TH in leaves; 0 means unbounded.
  size_t queue_threshold = 0;
  /// Max helper threads per RS-batch (HelpTH).
  int help_threshold = 2;
  /// Number of nearest neighbors (k-NN extension; 1 = classic search).
  int k = 1;
  /// DTW extension: when true, all bounds and distances are DTW-based.
  bool use_dtw = false;
  /// Sakoe-Chiba warping window in points (only with use_dtw).
  size_t dtw_window = 0;
  /// Approximate mode (the paper's future-work extension): answer with the
  /// k best series of the single best-matching leaf — the classic iSAX
  /// approximate search — skipping the exact phases entirely.
  bool approximate = false;

  size_t EffectiveBatches() const {
    return num_batches == 0 ? static_cast<size_t>(num_threads) : num_batches;
  }
};

/// Observability counters for one query execution (feeds the cost and
/// threshold models and the benchmarks).
struct QueryStats {
  double initial_bsf = 0.0;       ///< true (non-squared) initial BSF
  size_t leaves_inserted = 0;     ///< leaves pushed into priority queues
  size_t leaves_processed = 0;    ///< leaves popped and scanned
  size_t real_distances = 0;      ///< full distance computations
  size_t queue_count = 0;         ///< priority queues produced
  double median_queue_size = 0.0; ///< median queue size in leaves
  double elapsed_seconds = 0.0;   ///< Run() wall time
};

class GroupedQueryExecution;

/// Executes one similarity-search query against one Index with the paper's
/// three-phase multi-threaded algorithm (Figure 5 / Algorithms 1-2):
///
///   1. tree traversal — threads claim RS-batches with Fetch&Add, traverse
///      their root subtrees, and fill size-bounded priority queues with
///      unprunable leaves; idle threads help incomplete batches (<= HelpTH
///      helpers each);
///   2. priority-queue preprocessing — the queue array is sorted by each
///      queue's minimum lower bound;
///   3. priority-queue processing — threads claim queues with Fetch&Add,
///      skip stolen ones, and scan leaf series (summary filter, then
///      early-abandoning real distance), updating the shared BSF.
///
/// Work-stealing hooks: a work-stealing manager thread calls StealBatches()
/// to give away RS-batches per the Take-Away property; the thief rebuilds
/// and processes those batches on its own replica via RunBatchSubset().
class QueryExecution {
 public:
  /// `index` and `query` (the batch-level prepared artifact, including the
  /// raw series it points to) must outlive the execution. The query must be
  /// prepared against the same iSAX geometry as the index, with an envelope
  /// for options.dtw_window when options.use_dtw is set — replicas and
  /// work-stealing thieves share one PreparedQuery instead of each
  /// re-deriving PAA/SAX/envelope. `shared_bsf` (optional) is the node's
  /// BSF book-keeping cell for this query: it is read for pruning and
  /// lowered on improvement; `on_bsf_improve` (optional) fires after each
  /// lowering with the new squared threshold (the node runtime broadcasts
  /// it on the BSF channel).
  QueryExecution(const Index* index, const PreparedQuery& query,
                 const QueryOptions& options,
                 std::atomic<float>* shared_bsf = nullptr,
                 std::function<void(float)> on_bsf_improve = nullptr);
  ~QueryExecution();

  QueryExecution(const QueryExecution&) = delete;
  QueryExecution& operator=(const QueryExecution&) = delete;

  /// Seeds the BSF from an approximate search against this execution's own
  /// index (the per-index half of the former Initialize(); the batch-level
  /// half — summarization — now lives in PreparedQuery/PreparedBatch).
  /// Returns the initial BSF as a true (non-squared) distance — the
  /// regressor of the paper's cost model. Must be called before Run*.
  float SeedInitialBsf();

  /// Overrides the queue threshold TH after SeedInitialBsf (the per-query
  /// value predicted by the ThresholdModel from the initial BSF). Must be
  /// called before Run*.
  void set_queue_threshold(size_t threshold) {
    options_.queue_threshold = threshold;
  }

  /// Runs the full three-phase search over all RS-batches. With a `pool`,
  /// the phases run as tasks on it — zero thread creation, the persistent
  /// per-node executor path; each of the two parallel phases is one
  /// TaskGroup epoch and the Wait between them is the phase barrier
  /// (executed, helping, by the calling thread). Without one, the legacy
  /// path spawns `options.num_threads` std::threads per call (kept for the
  /// pooled-vs-legacy benchmarks; the spawns are counted in
  /// executor_stats::ThreadsSpawned). Both paths claim work through the
  /// same atomic cursors and produce identical answers.
  void Run(ThreadPool* pool = nullptr);

  /// Thief-side entry: traverses and processes only the given batch ids
  /// (obtained from a victim's StealBatches) on this node's own index.
  void RunBatchSubset(const std::vector<int>& batch_ids,
                      ThreadPool* pool = nullptr);

  /// Work-stealing-manager side: selects up to `nsend` RS-batches per the
  /// Take-Away property, marks their queues stolen, and returns their ids.
  /// Returns an empty vector outside the PQ-processing phase. Thread-safe
  /// with respect to the running workers. When this execution runs as a
  /// grouped member, the call forwards to the group's donation protocol
  /// (GroupedQueryExecution::DonateBatches) — the wire format is the same
  /// batch-id list either way, so the steal machinery cannot tell a
  /// donated grant from a classic one.
  ODYSSEY_HOT std::vector<int> StealBatches(int nsend)
      ODYSSEY_EXCLUDES(steal_mu_)
      ODYSSEY_HOT_ALLOWS(
          "lock,alloc: the steal snapshot holds steal_mu_ by design (it "
          "fences the running claim loops), and the returned batch-id "
          "vector is the steal reply itself — O(nsend), not O(series)");

  /// Total number of RS-batches (same on every replica).
  size_t batch_count() const { return batch_ranges_.size(); }

  const KnnSet& results() const { return knn_; }
  QueryStats stats() const ODYSSEY_EXCLUDES(steal_mu_);

 private:
  friend class GroupedQueryExecution;
  friend class QueryScratch;
  enum class Phase { kInit, kTraversal, kProcessing, kDone };

  struct PqRef {
    BoundedPq* queue = nullptr;
    int batch_id = -1;
    std::atomic<bool> stolen{false};
  };

  /// Worker-thread-local bounded-queue builder for one batch.
  struct QueueBuilder;

  void RunWorkers(const std::vector<int>& batch_ids, ThreadPool* pool)
      ODYSSEY_EXCLUDES(steal_mu_);
  /// Arms batches_/cursors for `batch_ids` and enters Phase::kTraversal.
  void ArmBatches(const std::vector<int>& batch_ids)
      ODYSSEY_EXCLUDES(steal_mu_);
  /// Phase 1 worker body: Fetch&Add batch claims, then helping. Snapshots
  /// the armed batch set under steal_mu_ at entry (into the worker's
  /// QueryScratch); the claim loop itself holds no lock (batches are
  /// claimed through their atomic cursors).
  ODYSSEY_HOT void TraversalPhase() ODYSSEY_EXCLUDES(steal_mu_)
      ODYSSEY_HOT_ALLOWS("lock: one steal_mu_ snapshot at phase entry");
  /// Phase 2 (single-threaded): sorts the queue array, enters kProcessing.
  void PreprocessQueues() ODYSSEY_EXCLUDES(steal_mu_);
  /// Phase 3 worker body: Fetch&Add queue claims, skipping stolen ones.
  /// Snapshots the sorted queue array under steal_mu_ at entry, like
  /// TraversalPhase. The claim loop is the zero-allocation steady state
  /// the counting-allocator tests measure.
  ODYSSEY_HOT void ProcessingPhase() ODYSSEY_EXCLUDES(steal_mu_)
      ODYSSEY_HOT_ALLOWS("lock: one steal_mu_ snapshot at phase entry");
  ODYSSEY_HOT void TraverseBatch(RsBatch* batch);
  ODYSSEY_HOT void TraverseNode(const TreeNode* node, QueueBuilder* builder);
  ODYSSEY_HOT void ProcessQueue(BoundedPq* queue);
  ODYSSEY_HOT void ScanLeaf(const TreeNode* leaf);
  ODYSSEY_HOT void OfferCandidate(float squared_distance, uint32_t id)
      ODYSSEY_HOT_ALLOWS(
          "indirect: on_bsf_improve_ is the sanctioned BSF-broadcast "
          "callback; its invocation runs under a hotpath::ScopedAllowance");
  ODYSSEY_HOT float PruneThreshold() const;
  ODYSSEY_HOT float LeafLowerBound(const TreeNode* node) const;
  ODYSSEY_HOT float SeriesLowerBound(const uint8_t* sax) const;
  ODYSSEY_HOT float RealDistance(const float* series, float threshold) const;

  const Index* index_;
  const PreparedQuery* prepared_;
  const float* query_;  // prepared_->series(), cached for the scan loop
  // DTW-only views into *prepared_, resolved once in the constructor so the
  // per-series bound checks pay no precondition re-validation.
  const Envelope* envelope_ = nullptr;
  const EnvelopePaa* envelope_paa_ = nullptr;
  QueryOptions options_;
  /// Dispatched distance kernels, resolved once per execution so the scan
  /// loop pays no per-distance dispatch cost.
  const simd::KernelTable* const kernels_ = &simd::ActiveTable();
  std::atomic<float>* shared_bsf_;
  std::atomic<float> local_bsf_;  // used when shared_bsf == nullptr
  std::function<void(float)> on_bsf_improve_;

  bool seeded_ = false;  // SeedInitialBsf happened

  // Grouped-membership backlink (set by GroupedQueryExecution's
  // constructor, cleared by its destructor): while attached, StealBatches
  // forwards to the group's donation protocol instead of the per-query
  // stolen-flag machinery. Written only while no steal request can reach
  // this execution (the node registers members under exec_mu_ strictly
  // after group construction and deregisters before destruction).
  GroupedQueryExecution* group_ = nullptr;
  int group_member_ = -1;

  // RS-batch state. batch_ranges_ is identical across replicas and
  // immutable after the constructor. Everything the phase transitions
  // rewrite — the live batch objects, the armed subset, the sorted queue
  // array and the per-batch stolen flags — sits under steal_mu_: phase
  // entry/exit and the work-stealing manager take the mutex, while the
  // phase bodies run against pointer snapshots taken under it (the batch
  // and queue objects themselves are claimed via atomic cursors).
  std::vector<std::pair<size_t, size_t>> batch_ranges_;
  mutable Mutex steal_mu_;
  std::vector<std::unique_ptr<RsBatch>> batches_  // indexed by batch id
      ODYSSEY_GUARDED_BY(steal_mu_);
  std::atomic<size_t> batch_cursor_{0};
  std::vector<int> active_batch_ids_ ODYSSEY_GUARDED_BY(steal_mu_);

  // Sorted priority-queue array (phase 2 output) and processing cursor.
  std::vector<std::unique_ptr<PqRef>> pq_refs_ ODYSSEY_GUARDED_BY(steal_mu_);
  std::atomic<size_t> pq_cursor_{0};
  std::vector<bool> batch_stolen_ ODYSSEY_GUARDED_BY(steal_mu_);
  std::atomic<int> phase_{static_cast<int>(Phase::kInit)};

  KnnSet knn_;
  // Stats (relaxed atomics; read after Run).
  std::atomic<size_t> stat_leaves_inserted_{0};
  std::atomic<size_t> stat_leaves_processed_{0};
  std::atomic<size_t> stat_real_distances_{0};
  double stat_initial_bsf_ = 0.0;
  double stat_elapsed_seconds_ = 0.0;
  std::vector<double> stat_queue_sizes_ ODYSSEY_GUARDED_BY(steal_mu_);
};

/// Per-thread reusable buffers for the query phases — the fix for the
/// hot-path purity contract (src/common/hotpath.h): the phase bodies used
/// to allocate their snapshot and lane vectors on every entry, per worker,
/// per epoch. Each pool worker (and the legacy spawned threads, and the
/// orchestrating caller) owns one QueryScratch via ForThisThread(); the
/// buffers are grow-only and reused across TaskGroup epochs, queries and
/// batches, so the steady state performs zero allocations (asserted by the
/// counting-allocator tests). The persistent executor pre-sizes every
/// worker's scratch at batch start (NodeRuntime::EnsureExecutor), so even
/// a worker's first query of a batch starts warm.
///
/// The checker treats growth of containers reached through a receiver
/// whose path names `scratch` as sanctioned (see tools/check_hot_paths.py);
/// the dynamic backstop keeps that honest.
class QueryScratch {
 public:
  /// The calling thread's scratch (function-local thread_local: created on
  /// first use, destroyed at thread exit).
  static QueryScratch& ForThisThread();

  /// Grow-only pre-sizing, called by the executor warm-up with bounds
  /// derived from the batch options (`queues` is a floor — the real queue
  /// count is data-dependent and growth beyond it stays amortized).
  void Reserve(size_t batches, size_t queues, size_t group_lanes);

  /// Phase-1 armed-batch snapshot (TraversalPhase).
  std::vector<RsBatch*> armed;
  /// Phase-3 sorted-queue snapshot (ProcessingPhase).
  std::vector<QueryExecution::PqRef*> refs;
  /// StealBatches' per-round first-unclaimed-queue-per-batch table.
  std::vector<size_t> first_unclaimed;
  /// Grouped-scan per-member lane buffers (GroupedProcessing).
  std::vector<float> thresholds;
  std::vector<float> out;
  std::vector<uint8_t> pass;
  std::vector<int> active;
  /// Lone-survivor deferral queues (ScanLeafGrouped): when exactly one
  /// member passes a series' summary filter, the candidate is parked here
  /// (simd::kMultiCandidateLanes slots per member) and scored through
  /// simd::MultiSquaredEuclideanEarlyAbandon once the member's queue fills
  /// or its leaf ends — independent scalar-order lanes recover the ILP a
  /// one-candidate scalar pass forfeits while staying in the bit-exact
  /// kernel family.
  std::vector<const float*> lone_series;
  std::vector<uint32_t> lone_ids;
  std::vector<uint8_t> lone_count;
};

/// Runs several QueryExecutions against the same index as one *grouped*
/// execution whose leaf-scan phase scores every candidate series against
/// all member queries with a single batched-kernel call (the series is
/// loaded from memory once per group instead of once per query —
/// scan_stats::SeriesLoadsSaved observes the amortization).
///
/// Phases 1-2 (tree traversal, queue preprocessing) run per member exactly
/// as in the per-query path; the grouped phase 3 then merges all members'
/// priority queues into leaf-level work units — the in-flight queries
/// sharing a leaf — claimed by workers through an atomic cursor. Per leaf,
/// members whose lower bound no longer beats their threshold are dropped;
/// per series, each surviving member applies its own summary filter and
/// early-abandon threshold, so the pruning power matches the per-query
/// path and the final answers are the same exact k-NN sets. Every distance
/// a grouped execution reports comes from the batched kernels — including
/// when only one member survives a leaf's filters — because the batched
/// lanes accumulate in strict point order while the per-query vector
/// kernels reduce lane partials, and the two families differ by ulps.
/// Staying in one family keeps grouped answers bit-identical run to run
/// (the failure-recovery path re-executes a grouped node's queries as
/// single-member groups for the same reason).
///
/// Members are constructed, seeded and read out by the caller as usual;
/// the group only replaces Run(). Grouped members are full work-stealing
/// citizens: each leaf work unit remembers which RS-batch every member
/// contribution came from, and DonateBatches() hands whole (member, batch)
/// slices to thieves over the ordinary steal wire format — local pool
/// workers drain the shared cursor directly, remote kStealRequests arrive
/// through the members' StealBatches, which forwards here. The thief
/// re-executes a donated batch *in full* as a single-member grouped subset
/// run (its own traversal covers every leaf of the batch), so the local
/// scan simply skips a donated slice's remaining contributions: leaves the
/// victim had already scanned before the donation landed become harmless
/// duplicates (MergeAnswers and KnnSet deduplicate by id), never lost
/// coverage. Every distance on both sides comes from the batched kernel
/// family, so donated answers stay bit-identical to non-donated runs.
class GroupedQueryExecution {
 public:
  /// All members must target the same index, share the distance mode
  /// (ED/DTW), the RS-batch partition, not be approximate, and be seeded
  /// (SeedInitialBsf). The pointed-to executions must outlive the group.
  explicit GroupedQueryExecution(std::vector<QueryExecution*> members);
  ~GroupedQueryExecution();

  GroupedQueryExecution(const GroupedQueryExecution&) = delete;
  GroupedQueryExecution& operator=(const GroupedQueryExecution&) = delete;

  /// Runs all members to completion: per-member phases 1-2, then the
  /// merged batched-scoring phase 3. Same pool semantics as
  /// QueryExecution::Run.
  void Run(ThreadPool* pool = nullptr);

  /// Thief-side entry: runs the grouped phases over only the given batch
  /// ids for every member (the grouped analogue of
  /// QueryExecution::RunBatchSubset; the stolen-batch recovery path wraps
  /// a single-member group around it so donated work is re-scored with the
  /// batched kernel family the victim would have used).
  void RunBatchSubset(const std::vector<int>& batch_ids,
                      ThreadPool* pool = nullptr);

  /// Work-stealing-manager side, reached through a member's StealBatches:
  /// selects up to `nsend` of `member`'s not-yet-donated (member, batch)
  /// slices, claims each for the thief with a CAS, and returns their batch
  /// ids. Take-Away analogue: prefers the slice with the most candidate
  /// series in work units the claim cursor has not reached — the most
  /// local scanning the handoff saves. Slices the scan has fully passed
  /// are never donated (nothing left to save). Returns empty before a
  /// build pass publishes a work list and after the scan drains. Runs on
  /// the comms thread under donate_mu_ (serializing against the build
  /// passes); safe against the running scan loop and concurrent donors.
  ODYSSEY_HOT std::vector<int> DonateBatches(int member, int nsend)
      ODYSSEY_EXCLUDES(donate_mu_)
      ODYSSEY_HOT_ALLOWS(
          "alloc: the returned batch-id vector is the steal reply itself — "
          "O(nsend), not O(series); lock: donate_mu_ serializes the comms "
          "thread against the single-threaded build passes");

 private:
  /// One member's stake in a leaf work unit: the member index, its lower
  /// bound for the leaf, and the RS-batch whose queue delivered the leaf
  /// (donation hands whole batches across the steal wire, so provenance
  /// must survive the merge).
  struct Contribution {
    int member = 0;
    float lb = 0.0f;
    int batch = 0;
  };
  /// One merged work unit: a leaf plus the members whose queues contain it.
  struct LeafWork {
    const TreeNode* leaf = nullptr;
    float min_lb = 0.0f;
    std::vector<Contribution> members;
  };

  /// Donation states for a (member, batch) slice. There is no "local"
  /// claim: the scan never owns a slice, it only skips donated ones (the
  /// thief re-runs a donated batch in full, so a victim/thief overlap is a
  /// deduplicated double-scan, not a conflict).
  enum : uint8_t { kSliceOpen = 0, kSliceDonated = 1 };

  size_t SliceIndex(int member, int batch) const {
    return static_cast<size_t>(member) * batch_count_ +
           static_cast<size_t>(batch);
  }

  /// Interleaves the member queries (ED) or envelopes (DTW) into the
  /// point-major layout the batched kernels consume.
  void BuildQueryBlock();
  /// Phase-2.5a: pops only each member's ~kSeedLeavesPerMember most
  /// promising leaves (a k-way merge over its sorted queues) into leaf work
  /// units and arms the donation slice states. Scanning this small wave
  /// first tightens every member's BSF to near-final before the bulk of the
  /// queues is drained. Members stay in kProcessing so thieves keep being
  /// served until the group finishes.
  void BuildSeedWork() ODYSSEY_EXCLUDES(donate_mu_);
  /// Phase-2.5b, after the seed wave has been scanned: drains the rest of
  /// every member's queues into a fresh work list, applying the per-query
  /// path's sorted-queue cutoff — a queue whose head bound no longer beats
  /// its member's (now tight) threshold is dropped whole, unpopped. This is
  /// what keeps the merged scan from paying pop + hash + sort for the long
  /// tail of leaves the per-query path never touches. Queues of already
  /// donated (member, batch) slices are skipped: their leaves belong to the
  /// thief. Does NOT re-arm donation states — donations made during the
  /// seed wave stay claimed.
  void BuildMainWork() ODYSSEY_EXCLUDES(donate_mu_);
  /// Shared slot-map append used by both build passes.
  void AppendLeafEntry(std::unordered_map<const TreeNode*, size_t>* slot,
                       const PqItem& item, int member, int batch);
  /// Sorts work_ most-promising-first and republishes it for the claim loop
  /// and DonateBatches (cursor reset + donation_ready_ release).
  void PublishWork() ODYSSEY_EXCLUDES(donate_mu_);

  /// Seed-wave budget: leaves per member in the first scan wave. Large
  /// enough that every member's BSF is near-final afterwards (budget ×
  /// leaf_size candidates), small enough that the wave costs a sliver of
  /// the scan.
  static constexpr size_t kSeedLeavesPerMember = 16;
  /// Phase-3 worker body: atomic-cursor claims over the leaf work units.
  /// Lane buffers come from the worker's QueryScratch, sized once per
  /// entry, reused across every claimed leaf.
  ODYSSEY_HOT void GroupedProcessing();
  ODYSSEY_HOT void ScanLeafGrouped(const LeafWork& work,
                                   QueryScratch* scratch);
  /// Parks a lone-survivor Euclidean candidate in member q's deferral queue
  /// (QueryScratch::lone_*), flushing through the multi-candidate kernel
  /// when the queue fills.
  ODYSSEY_HOT void QueueLoneCandidate(int q, const float* series, uint32_t id,
                                      QueryScratch* scratch);
  /// Scores member q's parked candidates (1..kMultiCandidateLanes of them)
  /// with one multi-candidate pass and offers the survivors. The threshold
  /// is re-read at flush time: it can only have tightened since the
  /// candidates passed their summary filters, and a full (non-abandoned)
  /// lane's sum is threshold-independent, so deferral never changes a
  /// reported distance — only how early a doomed lane gets to stop.
  ODYSSEY_HOT void FlushLoneCandidates(int q, QueryScratch* scratch);
  void RunImpl(const std::vector<int>* batch_subset, ThreadPool* pool);

  std::vector<QueryExecution*> members_;
  size_t n_ = 0;       ///< series length
  size_t stride_ = 0;  ///< simd::BatchStride(members_.size())
  size_t batch_count_ = 0;  ///< RS-batch count (same for every member)
  /// Scalar kernel table for the lone-survivor DTW fast path: when exactly
  /// one member passes a candidate's summary filter under DTW, the scan
  /// skips the interleaved batched LB_Keogh kernel and bounds through the
  /// per-query *scalar* kernel, whose result the batched lanes are
  /// bit-identical to by contract (property-tested per ISA) — so the
  /// candidate's reported distance never depends on how many members
  /// happened to pass. (Euclidean lone survivors defer into the
  /// multi-candidate kernel instead — same bit-exact family, better ILP.)
  const simd::KernelTable* scalar_ = nullptr;
  /// Interleaved query points (ED mode): values_[i * stride_ + q].
  std::vector<float> values_;
  /// Interleaved envelopes (DTW mode), same layout.
  std::vector<float> upper_;
  std::vector<float> lower_;

  /// Built single-threaded by the build passes (seed wave, then main wave),
  /// read-only for the scan workers in between — the RunImpl phase barriers
  /// are what make those unlocked reads safe. The comms thread's
  /// DonateBatches has no such barrier: it serializes against the build
  /// passes through donate_mu_ below.
  std::vector<LeafWork> work_;
  std::atomic<size_t> work_cursor_{0};

  // Donation slice states, indexed by SliceIndex(member, batch) — the only
  // cells both the scan loop and DonateBatches write (CAS-claimed, never
  // re-armed between waves, so a donation made during the seed wave stays
  // claimed through the main wave's rebuild).
  std::unique_ptr<std::atomic<uint8_t>[]> donate_state_;
  std::atomic<bool> donation_ready_{false};
  /// Serializes DonateBatches (comms thread) against the build passes'
  /// work_ mutation. The scan workers never take it: their reads are
  /// barrier-separated from the builds. donation_ready_ alone cannot gate
  /// this — a donor that loaded `true` could still be walking work_ when a
  /// later build pass starts clearing it.
  mutable Mutex donate_mu_;
};

/// Convenience builders tying PreparedQuery/PreparedBatch to QueryOptions:
/// a DTW envelope is built exactly when `options.use_dtw` is set, with the
/// options' warping window.
PreparedQuery PrepareQuery(const float* series, const IsaxConfig& config,
                           const QueryOptions& options);
PreparedBatch PrepareBatch(const SeriesCollection& queries,
                           const IsaxConfig& config,
                           const QueryOptions& options,
                           ThreadPool* pool = nullptr);

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_QUERY_ENGINE_H_
