#ifndef ODYSSEY_INDEX_SERIALIZE_H_
#define ODYSSEY_INDEX_SERIALIZE_H_

#include <string>

#include "src/index/builder.h"

namespace odyssey {

/// Index persistence. A node can snapshot its built index and reload it on
/// restart instead of re-summarizing and re-inserting its chunk — useful
/// when the same deployment answers many batches across process lifetimes.
///
/// Format (little-endian): header (magic "ODIX", version, series length,
/// segments, max bits, leaf capacity, series count), the raw chunk, the
/// full-cardinality SAX table, then each root subtree (key + pre-order
/// node stream; internal nodes carry their split segment, leaves their id
/// lists — leaf SAX rows are reconstituted from the table).
///
/// A loaded index is bit-identical to the built one (the replica-
/// determinism tests cover this), so it remains a valid work-stealing
/// replica of any node that built the same chunk.

/// Writes `index` to `path`, overwriting any existing file.
Status SaveIndexToFile(const Index& index, const std::string& path);

/// Reads an index previously written by SaveIndexToFile.
StatusOr<Index> LoadIndexFromFile(const std::string& path);

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_SERIALIZE_H_
