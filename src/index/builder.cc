#include "src/index/builder.h"

#include "src/common/stopwatch.h"
#include "src/index/buffers.h"

namespace odyssey {

Index Index::Build(SeriesCollection chunk, const IndexOptions& options,
                   ThreadPool* pool, BuildTimings* timings) {
  ODYSSEY_CHECK(chunk.length() == options.config.series_length());
  Index index(std::move(chunk), options);

  Stopwatch watch;
  index.sax_table_ =
      ComputeSaxTable(index.data_, options.config, pool);
  const SummarizationBuffers buffers = BuildBuffers(
      index.sax_table_, index.data_.size(), options.config, pool);
  const double buffer_seconds = watch.ElapsedSeconds();

  watch.Restart();
  index.tree_ = IndexTree::Build(buffers, index.sax_table_, options.config,
                                 options.leaf_capacity, pool);
  const double tree_seconds = watch.ElapsedSeconds();

  if (timings != nullptr) {
    timings->buffer_seconds = buffer_seconds;
    timings->tree_seconds = tree_seconds;
  }
  return index;
}

size_t Index::IndexMemoryBytes() const {
  return sax_table_.capacity() * sizeof(uint8_t) + tree_.MemoryBytes();
}

}  // namespace odyssey
