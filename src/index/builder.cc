#include "src/index/builder.h"

#include <utility>

#include "src/common/stopwatch.h"

namespace odyssey {

Index Index::Build(SeriesCollection chunk, const IndexOptions& options,
                   ThreadPool* pool, BuildTimings* timings) {
  ODYSSEY_CHECK(chunk.length() == options.config.series_length());
  // The private path is the shared path with a refcount of one: the bundle
  // is built here and referenced only by this index.
  return BuildFromShared(
      SharedChunk::Build(std::move(chunk), {}, options.config, pool), options,
      pool, timings);
}

Index Index::BuildFromShared(std::shared_ptr<const SharedChunk> chunk,
                             const IndexOptions& options, ThreadPool* pool,
                             BuildTimings* timings) {
  ODYSSEY_CHECK(chunk != nullptr);
  const IsaxConfig& config = options.config;
  ODYSSEY_CHECK(chunk->config().series_length() == config.series_length());
  ODYSSEY_CHECK(chunk->config().segments() == config.segments());
  ODYSSEY_CHECK(chunk->config().max_bits == config.max_bits);
  ODYSSEY_CHECK_MSG(
      chunk->buffers().buffer_count() > 0 || chunk->size() == 0,
      "SharedChunk carries no summarization buffers (adopted with "
      "build_buffers=false?)");
  Index index(std::move(chunk), options);

  Stopwatch watch;
  index.tree_ =
      IndexTree::Build(index.chunk_->buffers(), index.chunk_->sax_table().data(),
                       config, options.leaf_capacity, pool);
  const double tree_seconds = watch.ElapsedSeconds();

  if (timings != nullptr) {
    timings->buffer_seconds = index.chunk_->summarize_seconds();
    timings->tree_seconds = tree_seconds;
  }
  return index;
}

size_t Index::IndexMemoryBytes() const {
  return chunk_->sax_table().capacity() * sizeof(uint8_t) +
         tree_.MemoryBytes();
}

}  // namespace odyssey
