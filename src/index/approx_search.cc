#include "src/index/approx_search.h"

#include <limits>

#include "src/common/check.h"
#include "src/distance/dtw.h"
#include "src/distance/simd.h"
#include "src/isax/mindist.h"

namespace odyssey {
namespace {

/// Descends to the best-matching non-empty leaf. If the query's own root
/// key has no subtree, falls back to the root with the smallest word-level
/// lower bound (the standard iSAX approximate-search fallback).
const TreeNode* DescendToLeaf(const Index& index, const double* query_paa,
                              const uint8_t* query_sax) {
  const IndexTree& tree = index.tree();
  ODYSSEY_CHECK(tree.root_count() > 0);
  const IsaxConfig& config = index.config();

  const uint32_t key = RootKey(query_sax, config);
  int root_idx = tree.FindRoot(key);
  if (root_idx < 0) {
    float best = std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < tree.root_count(); ++i) {
      const float lb =
          MindistPaaToWord(query_paa, tree.root(i)->word(), config);
      if (lb < best) {
        best = lb;
        root_idx = static_cast<int>(i);
      }
    }
  }

  const TreeNode* node = tree.root(static_cast<size_t>(root_idx));
  while (!node->is_leaf()) {
    const int s = node->split_segment();
    const int child_bits = node->left()->word().bits[s];
    const uint8_t bit = static_cast<uint8_t>(
                            query_sax[s] >> (config.max_bits - child_bits)) &
                        1u;
    const TreeNode* preferred = (bit == 0) ? node->left() : node->right();
    const TreeNode* other = (bit == 0) ? node->right() : node->left();
    node = (preferred->subtree_size() > 0) ? preferred : other;
  }
  ODYSSEY_CHECK(!node->ids().empty());
  return node;
}

template <typename DistanceFn>
float ScanLeaf(const Index& index, const TreeNode* leaf, const float* query,
               uint32_t* answer_id, const DistanceFn& distance) {
  float best = std::numeric_limits<float>::infinity();
  for (uint32_t id : leaf->ids()) {
    const float d = distance(query, index.data().data(id), best);
    if (d < best) {
      best = d;
      if (answer_id != nullptr) *answer_id = id;
    }
  }
  return best;
}

}  // namespace

const TreeNode* ApproximateSearchLeaf(const Index& index,
                                      const PreparedQuery& query) {
  return DescendToLeaf(index, query.paa(), query.sax());
}

float ApproximateSearchSquared(const Index& index, const PreparedQuery& query,
                               uint32_t* answer_id) {
  const TreeNode* leaf = DescendToLeaf(index, query.paa(), query.sax());
  const size_t n = index.config().series_length();
  const simd::KernelTable& kernels = simd::ActiveTable();
  return ScanLeaf(index, leaf, query.series(), answer_id,
                  [n, &kernels](const float* q, const float* s,
                                float threshold) {
                    return kernels.squared_euclidean_early_abandon(q, s, n,
                                                                   threshold);
                  });
}

float ApproximateSearchSquaredDtw(const Index& index,
                                  const PreparedQuery& query,
                                  uint32_t* answer_id) {
  ODYSSEY_CHECK_MSG(query.has_envelope(),
                    "DTW approximate search needs a DTW-prepared query");
  const TreeNode* leaf = DescendToLeaf(index, query.paa(), query.sax());
  const size_t n = index.config().series_length();
  const size_t window = query.dtw_window();
  return ScanLeaf(index, leaf, query.series(), answer_id,
                  [n, window](const float* q, const float* s, float threshold) {
                    return SquaredDtwEarlyAbandon(q, s, n, window, threshold);
                  });
}

}  // namespace odyssey
