#ifndef ODYSSEY_INDEX_PQUEUE_H_
#define ODYSSEY_INDEX_PQUEUE_H_

#include <cstddef>
#include <vector>

#include "src/index/node.h"

namespace odyssey {

/// One entry of a leaf priority queue: a leaf that could not be pruned at
/// tree-traversal time, keyed by its word-level lower bound.
struct PqItem {
  float lower_bound = 0.0f;
  const TreeNode* leaf = nullptr;
};

/// A size-bounded min-priority queue of index leaves. When a push makes the
/// queue reach its capacity (the paper's threshold TH), the owning thread
/// seals it and starts a new one for the same RS-batch (Section 3.2.1), so
/// every queue holds at most TH leaves of exactly one RS-batch — the unit
/// of work the work-stealing protocol hands out.
class BoundedPq {
 public:
  /// capacity == 0 means unbounded.
  explicit BoundedPq(size_t capacity) : capacity_(capacity) {}

  /// Pushes an item. Returns true if the queue is now full (caller should
  /// seal it and open a new one).
  bool Push(PqItem item);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Smallest lower bound in the queue (the sort key of the PQueues array).
  float MinLowerBound() const { return heap_.front().lower_bound; }

  /// Removes and returns the item with the smallest lower bound.
  PqItem Pop();

 private:
  size_t capacity_;
  std::vector<PqItem> heap_;  // binary min-heap on lower_bound
};

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_PQUEUE_H_
