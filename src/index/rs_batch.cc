#include "src/index/rs_batch.h"

#include "src/common/check.h"

namespace odyssey {

std::vector<std::pair<size_t, size_t>> PartitionRsBatches(size_t root_count,
                                                          size_t num_batches) {
  ODYSSEY_CHECK(num_batches >= 1);
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = b * root_count / num_batches;
    const size_t end = (b + 1) * root_count / num_batches;
    ranges.emplace_back(begin, end);
  }
  return ranges;
}

}  // namespace odyssey
