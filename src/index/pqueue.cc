#include "src/index/pqueue.h"

#include <algorithm>

#include "src/common/check.h"

namespace odyssey {
namespace {

struct MinHeapCompare {
  bool operator()(const PqItem& a, const PqItem& b) const {
    return a.lower_bound > b.lower_bound;  // std::*_heap builds a max-heap
  }
};

}  // namespace

bool BoundedPq::Push(PqItem item) {
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), MinHeapCompare());
  return capacity_ != 0 && heap_.size() >= capacity_;
}

PqItem BoundedPq::Pop() {
  ODYSSEY_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), MinHeapCompare());
  const PqItem item = heap_.back();
  heap_.pop_back();
  return item;
}

}  // namespace odyssey
