#ifndef ODYSSEY_INDEX_NODE_H_
#define ODYSSEY_INDEX_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/isax/isax_word.h"

namespace odyssey {

/// One node of an iSAX index tree. Nodes are labelled with an iSAX word;
/// splitting a full leaf refines one segment of the word by one bit,
/// producing a binary internal node (the classic iSAX2/MESSI scheme).
///
/// Split choice is deterministic (the segment with the fewest bits, lowest
/// index on ties) and insertion order is deterministic (ascending series id),
/// so two replicas indexing the same chunk build bit-identical trees — the
/// property Odyssey's data-free work-stealing relies on (DESIGN.md §5).
class TreeNode {
 public:
  explicit TreeNode(IsaxWord word) : word_(std::move(word)) {}

  TreeNode(const TreeNode&) = delete;
  TreeNode& operator=(const TreeNode&) = delete;

  const IsaxWord& word() const { return word_; }
  bool is_leaf() const { return left_ == nullptr; }
  size_t subtree_size() const { return subtree_size_; }

  /// Children (internal nodes only): left holds the refined bit 0, right
  /// the refined bit 1.
  const TreeNode* left() const { return left_.get(); }
  const TreeNode* right() const { return right_.get(); }
  int split_segment() const { return split_segment_; }

  /// Leaf payload: series ids and their full-cardinality SAX summaries,
  /// stored contiguously (ids_[i] owns leaf_sax_[i*segments .. )).
  const std::vector<uint32_t>& ids() const { return ids_; }
  const uint8_t* leaf_sax(size_t i) const {
    return leaf_sax_.data() + i * word_.symbols.size();
  }

  /// Inserts a series into the subtree rooted here. `sax` must point at the
  /// series' full-cardinality summary (config.segments() bytes) and remain
  /// valid for the call only (the leaf copies it).
  void Insert(uint32_t id, const uint8_t* sax, const IsaxConfig& config,
              size_t leaf_capacity);

  /// Deserialization support (index persistence; see index/serialize.h):
  /// turns this fresh node into an internal node with the given children.
  /// The children's subtree sizes must already be final.
  void AdoptChildren(int split_segment, std::unique_ptr<TreeNode> left,
                     std::unique_ptr<TreeNode> right);
  /// Deserialization support: installs a leaf payload (ids plus their
  /// full-cardinality SAX rows, ids.size() * segments bytes).
  void SetLeafPayload(std::vector<uint32_t> ids, std::vector<uint8_t> sax);

  /// Number of nodes in this subtree (for stats / memory accounting).
  size_t CountNodes() const;
  /// Number of leaves in this subtree.
  size_t CountLeaves() const;
  /// Maximum depth (a lone leaf has depth 1).
  size_t MaxDepth() const;
  /// Approximate heap bytes held by this subtree.
  size_t MemoryBytes() const;

 private:
  /// Splits this (full) leaf into two children, refining the segment with
  /// the fewest bits. No-op when every segment is at max cardinality (the
  /// leaf is then allowed to exceed capacity).
  void Split(const IsaxConfig& config, size_t leaf_capacity);

  /// Which child of this internal node a summary descends into.
  TreeNode* ChildFor(const uint8_t* sax, const IsaxConfig& config) const;

  IsaxWord word_;
  size_t subtree_size_ = 0;

  std::unique_ptr<TreeNode> left_;
  std::unique_ptr<TreeNode> right_;
  int split_segment_ = -1;

  std::vector<uint32_t> ids_;
  std::vector<uint8_t> leaf_sax_;
};

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_NODE_H_
