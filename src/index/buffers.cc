#include "src/index/buffers.h"

#include <algorithm>

#include "src/common/check.h"

namespace odyssey {

std::vector<uint8_t> ComputeSaxTable(const SeriesCollection& data,
                                     const IsaxConfig& config,
                                     ThreadPool* pool) {
  ODYSSEY_CHECK(data.length() == config.series_length());
  const size_t w = static_cast<size_t>(config.segments());
  std::vector<uint8_t> table(data.size() * w);
  auto compute_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ComputeSax(data.data(i), config, table.data() + i * w);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(data.size(), compute_range);
  } else {
    compute_range(0, data.size());
  }
  return table;
}

SummarizationBuffers BuildBuffers(const uint8_t* sax_table,
                                  size_t series_count,
                                  const IsaxConfig& config, ThreadPool* pool) {
  const size_t w = static_cast<size_t>(config.segments());
  ODYSSEY_CHECK(series_count == 0 || sax_table != nullptr);

  // Per-series root keys, computed in parallel.
  std::vector<uint32_t> keys(series_count);
  auto key_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      keys[i] = RootKey(sax_table + i * w, config);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(series_count, key_range);
  } else {
    key_range(0, series_count);
  }

  // Group ids by key. A counting pass followed by bucket fill keeps ids in
  // ascending order within each buffer (determinism for replicas).
  std::vector<uint32_t> order(series_count);
  for (size_t i = 0; i < series_count; ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return keys[a] < keys[b];
  });

  SummarizationBuffers buffers;
  for (size_t i = 0; i < series_count;) {
    const uint32_t key = keys[order[i]];
    buffers.keys.push_back(key);
    std::vector<uint32_t> ids;
    while (i < series_count && keys[order[i]] == key) {
      ids.push_back(order[i]);
      ++i;
    }
    buffers.series.push_back(std::move(ids));
  }
  return buffers;
}

}  // namespace odyssey
