#include "src/index/node.h"

#include <algorithm>

#include "src/common/check.h"

namespace odyssey {

void TreeNode::Insert(uint32_t id, const uint8_t* sax,
                      const IsaxConfig& config, size_t leaf_capacity) {
  TreeNode* node = this;
  for (;;) {
    ++node->subtree_size_;
    if (node->is_leaf()) {
      const size_t w = node->word_.symbols.size();
      node->ids_.push_back(id);
      node->leaf_sax_.insert(node->leaf_sax_.end(), sax, sax + w);
      if (node->ids_.size() > leaf_capacity) {
        node->Split(config, leaf_capacity);
      }
      return;
    }
    node = node->ChildFor(sax, config);
  }
}

TreeNode* TreeNode::ChildFor(const uint8_t* sax,
                             const IsaxConfig& config) const {
  const int s = split_segment_;
  const int child_bits = left_->word_.bits[s];
  const uint8_t bit =
      static_cast<uint8_t>(sax[s] >> (config.max_bits - child_bits)) & 1u;
  return bit == 0 ? left_.get() : right_.get();
}

void TreeNode::Split(const IsaxConfig& config, size_t leaf_capacity) {
  // Deterministic split choice: the segment with the fewest bits that can
  // still be refined; lowest index breaks ties.
  int seg = -1;
  int best_bits = config.max_bits;
  for (size_t i = 0; i < word_.bits.size(); ++i) {
    if (word_.bits[i] < best_bits) {
      best_bits = word_.bits[i];
      seg = static_cast<int>(i);
    }
  }
  if (seg < 0) return;  // fully refined: oversized leaf allowed

  IsaxWord left_word = word_;
  left_word.bits[seg] = static_cast<uint8_t>(word_.bits[seg] + 1);
  left_word.symbols[seg] = static_cast<uint8_t>(word_.symbols[seg] << 1);
  IsaxWord right_word = left_word;
  right_word.symbols[seg] = static_cast<uint8_t>(right_word.symbols[seg] | 1u);

  left_ = std::make_unique<TreeNode>(std::move(left_word));
  right_ = std::make_unique<TreeNode>(std::move(right_word));
  split_segment_ = seg;

  std::vector<uint32_t> ids = std::move(ids_);
  std::vector<uint8_t> sax = std::move(leaf_sax_);
  ids_.clear();
  leaf_sax_.clear();
  const size_t w = word_.symbols.size();
  for (size_t i = 0; i < ids.size(); ++i) {
    TreeNode* child = ChildFor(sax.data() + i * w, config);
    // Children inherit the payload directly (not via Insert) so the parent's
    // subtree_size_ is not double counted.
    child->ids_.push_back(ids[i]);
    child->leaf_sax_.insert(child->leaf_sax_.end(), sax.data() + i * w,
                            sax.data() + (i + 1) * w);
    ++child->subtree_size_;
  }
  // A pathological split can leave one child oversized (all summaries
  // identical at the refined bit). Recurse until balanced or fully refined.
  for (TreeNode* child : {left_.get(), right_.get()}) {
    if (child->ids_.size() > leaf_capacity) {
      child->Split(config, leaf_capacity);
    }
  }
}

void TreeNode::AdoptChildren(int split_segment,
                             std::unique_ptr<TreeNode> left,
                             std::unique_ptr<TreeNode> right) {
  ODYSSEY_CHECK(is_leaf() && ids_.empty());
  ODYSSEY_CHECK(left != nullptr && right != nullptr);
  split_segment_ = split_segment;
  left_ = std::move(left);
  right_ = std::move(right);
  subtree_size_ = left_->subtree_size_ + right_->subtree_size_;
}

void TreeNode::SetLeafPayload(std::vector<uint32_t> ids,
                              std::vector<uint8_t> sax) {
  ODYSSEY_CHECK(is_leaf() && ids_.empty());
  ODYSSEY_CHECK(sax.size() == ids.size() * word_.symbols.size());
  ids_ = std::move(ids);
  leaf_sax_ = std::move(sax);
  subtree_size_ = ids_.size();
}

size_t TreeNode::CountNodes() const {
  if (is_leaf()) return 1;
  return 1 + left_->CountNodes() + right_->CountNodes();
}

size_t TreeNode::CountLeaves() const {
  if (is_leaf()) return 1;
  return left_->CountLeaves() + right_->CountLeaves();
}

size_t TreeNode::MaxDepth() const {
  if (is_leaf()) return 1;
  return 1 + std::max(left_->MaxDepth(), right_->MaxDepth());
}

size_t TreeNode::MemoryBytes() const {
  size_t bytes = sizeof(TreeNode) + word_.symbols.capacity() +
                 word_.bits.capacity() +
                 ids_.capacity() * sizeof(uint32_t) + leaf_sax_.capacity();
  if (!is_leaf()) bytes += left_->MemoryBytes() + right_->MemoryBytes();
  return bytes;
}

}  // namespace odyssey
