#ifndef ODYSSEY_INDEX_RS_BATCH_H_
#define ODYSSEY_INDEX_RS_BATCH_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/hotpath.h"
#include "src/common/sync.h"
#include "src/index/pqueue.h"

namespace odyssey {

/// A root-subtree (RS) batch: a contiguous range of the ordered root array
/// (Section 3.2.1, Figure 5). Batches are the unit of tree-traversal work
/// inside a node and the unit of work-stealing between nodes: because
/// replicas build identical root arrays and cut them into the same number
/// of batches, a batch id alone tells another node exactly which part of
/// the tree to re-traverse — no data needs to move.
struct RsBatch {
  size_t begin_root = 0;  ///< first root index (inclusive)
  size_t end_root = 0;    ///< one past the last root index

  /// Traversal progress. Threads claim roots with Fetch&Add on `cursor`;
  /// `roots_done` counts finished traversals; the batch is complete when
  /// roots_done == end_root - begin_root.
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> roots_done{0};
  /// Number of helper threads that joined this batch (bounded by HelpTH).
  std::atomic<int> helped{0};

  /// Sealed priority queues produced for this batch.
  Mutex mu;
  std::vector<std::unique_ptr<BoundedPq>> queues ODYSSEY_GUARDED_BY(mu);

  /// Both are read per iteration by the traversal claim/help loops
  /// (QueryExecution::TraversalPhase), hence the purity annotation.
  ODYSSEY_HOT size_t root_count() const { return end_root - begin_root; }
  ODYSSEY_HOT bool complete() const {
    return roots_done.load(std::memory_order_acquire) == root_count();
  }
};

/// Cuts `root_count` roots into `num_batches` contiguous, near-equal
/// ranges. Returns the (begin, end) pairs; empty ranges are kept so batch
/// ids are stable across nodes regardless of data skew.
std::vector<std::pair<size_t, size_t>> PartitionRsBatches(size_t root_count,
                                                          size_t num_batches);

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_RS_BATCH_H_
