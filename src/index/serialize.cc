#include "src/index/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>

namespace odyssey {
namespace {

constexpr char kMagic[4] = {'O', 'D', 'I', 'X'};
constexpr uint32_t kVersion = 1;
constexpr uint8_t kLeafTag = 0;
constexpr uint8_t kInternalTag = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

template <typename T>
bool WriteValue(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

bool ReadBytes(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

template <typename T>
bool ReadValue(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

bool WriteNode(std::FILE* f, const TreeNode* node) {
  if (node->is_leaf()) {
    if (!WriteValue<uint8_t>(f, kLeafTag)) return false;
    const uint32_t n = static_cast<uint32_t>(node->ids().size());
    if (!WriteValue(f, n)) return false;
    return n == 0 ||
           WriteBytes(f, node->ids().data(), n * sizeof(uint32_t));
  }
  if (!WriteValue<uint8_t>(f, kInternalTag)) return false;
  if (!WriteValue<uint8_t>(
          f, static_cast<uint8_t>(node->split_segment()))) {
    return false;
  }
  return WriteNode(f, node->left()) && WriteNode(f, node->right());
}

/// Reads one pre-order subtree under the word `word`.
std::unique_ptr<TreeNode> ReadNode(std::FILE* f, IsaxWord word,
                                   const std::vector<uint8_t>& sax_table,
                                   const IsaxConfig& config, bool* ok) {
  uint8_t tag = 0;
  if (!ReadValue(f, &tag)) {
    *ok = false;
    return nullptr;
  }
  auto node = std::make_unique<TreeNode>(word);
  if (tag == kLeafTag) {
    uint32_t n = 0;
    if (!ReadValue(f, &n)) {
      *ok = false;
      return nullptr;
    }
    std::vector<uint32_t> ids(n);
    if (n > 0 && !ReadBytes(f, ids.data(), n * sizeof(uint32_t))) {
      *ok = false;
      return nullptr;
    }
    const size_t w = static_cast<size_t>(config.segments());
    std::vector<uint8_t> leaf_sax;
    leaf_sax.reserve(n * w);
    for (uint32_t id : ids) {
      if (static_cast<size_t>(id) * w + w > sax_table.size()) {
        *ok = false;
        return nullptr;
      }
      leaf_sax.insert(leaf_sax.end(), sax_table.data() + id * w,
                      sax_table.data() + (id + 1) * w);
    }
    node->SetLeafPayload(std::move(ids), std::move(leaf_sax));
    return node;
  }
  if (tag != kInternalTag) {
    *ok = false;
    return nullptr;
  }
  uint8_t split = 0;
  if (!ReadValue(f, &split) || split >= word.symbols.size() ||
      word.bits[split] >= config.max_bits) {
    *ok = false;
    return nullptr;
  }
  IsaxWord left_word = word;
  left_word.bits[split] = static_cast<uint8_t>(word.bits[split] + 1);
  left_word.symbols[split] = static_cast<uint8_t>(word.symbols[split] << 1);
  IsaxWord right_word = left_word;
  right_word.symbols[split] =
      static_cast<uint8_t>(right_word.symbols[split] | 1u);
  auto left = ReadNode(f, std::move(left_word), sax_table, config, ok);
  if (!*ok) return nullptr;
  auto right = ReadNode(f, std::move(right_word), sax_table, config, ok);
  if (!*ok) return nullptr;
  node->AdoptChildren(split, std::move(left), std::move(right));
  return node;
}

}  // namespace

Status SaveIndexToFile(const Index& index, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const IsaxConfig& config = index.config();
  const uint32_t length = static_cast<uint32_t>(config.series_length());
  const uint32_t segments = static_cast<uint32_t>(config.segments());
  const uint32_t max_bits = static_cast<uint32_t>(config.max_bits);
  const uint32_t leaf_capacity =
      static_cast<uint32_t>(index.options().leaf_capacity);
  const uint32_t count = static_cast<uint32_t>(index.data().size());
  if (!WriteBytes(f.get(), kMagic, 4) || !WriteValue(f.get(), kVersion) ||
      !WriteValue(f.get(), length) || !WriteValue(f.get(), segments) ||
      !WriteValue(f.get(), max_bits) || !WriteValue(f.get(), leaf_capacity) ||
      !WriteValue(f.get(), count)) {
    return Status::IoError("short header write: " + path);
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (!WriteBytes(f.get(), index.data().data(i), length * sizeof(float))) {
      return Status::IoError("short data write: " + path);
    }
  }
  if (!WriteBytes(f.get(), index.sax_table().data(),
                  index.sax_table().size())) {
    return Status::IoError("short SAX-table write: " + path);
  }
  const IndexTree& tree = index.tree();
  if (!WriteValue(f.get(), static_cast<uint32_t>(tree.root_count()))) {
    return Status::IoError("short tree write: " + path);
  }
  for (size_t r = 0; r < tree.root_count(); ++r) {
    if (!WriteValue(f.get(), tree.root_key(r)) ||
        !WriteNode(f.get(), tree.root(r))) {
      return Status::IoError("short tree write: " + path);
    }
  }
  return Status::Ok();
}

StatusOr<Index> LoadIndexFromFile(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[4];
  uint32_t version = 0, length = 0, segments = 0, max_bits = 0,
           leaf_capacity = 0, count = 0;
  if (!ReadBytes(f.get(), magic, 4) || !ReadValue(f.get(), &version) ||
      !ReadValue(f.get(), &length) || !ReadValue(f.get(), &segments) ||
      !ReadValue(f.get(), &max_bits) || !ReadValue(f.get(), &leaf_capacity) ||
      !ReadValue(f.get(), &count)) {
    return Status::IoError("short header read: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported index version in " + path);
  }
  if (length == 0 || segments == 0 || segments > length || max_bits == 0 ||
      max_bits > static_cast<uint32_t>(kMaxSaxBits) || leaf_capacity == 0) {
    return Status::InvalidArgument("corrupt index header in " + path);
  }

  IndexOptions options;
  options.config = IsaxConfig(length, static_cast<int>(segments),
                              static_cast<int>(max_bits));
  options.leaf_capacity = leaf_capacity;

  SeriesCollection data(length);
  float* dst = data.AppendUninitialized(count);
  if (!ReadBytes(f.get(), dst,
                 static_cast<size_t>(count) * length * sizeof(float))) {
    return Status::IoError("short data read: " + path);
  }
  std::vector<uint8_t> sax_table(static_cast<size_t>(count) * segments);
  if (!ReadBytes(f.get(), sax_table.data(), sax_table.size())) {
    return Status::IoError("short SAX-table read: " + path);
  }
  // The tree is loaded below, not rebuilt, so the adopted bundle skips the
  // summarization buffers (and carries no PAA table — the file stores none).
  Index index(SharedChunk::Adopt(std::move(data), {}, {}, std::move(sax_table),
                                 options.config, /*pool=*/nullptr,
                                 /*build_buffers=*/false),
              options);

  uint32_t root_count = 0;
  if (!ReadValue(f.get(), &root_count)) {
    return Status::IoError("short tree read: " + path);
  }
  std::vector<uint32_t> keys;
  std::vector<std::unique_ptr<TreeNode>> roots;
  keys.reserve(root_count);
  roots.reserve(root_count);
  for (uint32_t r = 0; r < root_count; ++r) {
    uint32_t key = 0;
    if (!ReadValue(f.get(), &key)) {
      return Status::IoError("short tree read: " + path);
    }
    if (!keys.empty() && key <= keys.back()) {
      return Status::InvalidArgument("root keys out of order in " + path);
    }
    bool ok = true;
    auto root = ReadNode(f.get(), IsaxWord::Root(options.config, key),
                         index.sax_table(), options.config, &ok);
    if (!ok) {
      return Status::InvalidArgument("corrupt subtree in " + path);
    }
    keys.push_back(key);
    roots.push_back(std::move(root));
  }
  index.tree_ = IndexTree::FromRoots(std::move(keys), std::move(roots));
  return index;
}

}  // namespace odyssey
