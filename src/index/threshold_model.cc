#include "src/index/threshold_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace odyssey {

Status ThresholdModel::Calibrate(const std::vector<double>& initial_bsf,
                                 const std::vector<double>& median_pq_size) {
  const Status status = FitSigmoid(initial_bsf, median_pq_size, &sigmoid_,
                                   &rmse_);
  if (!status.ok()) return status;
  calibrated_ = true;
  return Status::Ok();
}

size_t ThresholdModel::PredictThreshold(double initial_bsf) const {
  ODYSSEY_CHECK_MSG(calibrated_, "PredictThreshold before Calibrate");
  const double estimate = sigmoid_.Evaluate(initial_bsf) / division_factor_;
  if (!(estimate > 1.0)) return 1;
  return static_cast<size_t>(std::llround(estimate));
}

}  // namespace odyssey
