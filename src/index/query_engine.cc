#include "src/index/query_engine.h"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"
#include "src/common/math_utils.h"
#include "src/common/stopwatch.h"
#include "src/common/summary_stats.h"
#include "src/common/thread_pool.h"
#include "src/distance/dtw.h"
#include "src/distance/euclidean.h"

namespace odyssey {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Grouped-scan routing cut for Euclidean candidates: series with at least
/// this many surviving members take the interleaved batched kernel (its
/// candidate-load amortization wins once enough lanes are live); series
/// below it defer into the per-member multi-candidate queues. A routing
/// policy, not a kernel property — the deferral queue capacity is the wider
/// simd::kMultiCandidateLanes. Either route produces bit-identical sums, so
/// the cut is a pure performance knob.
constexpr size_t kBatchedRouteOccupancy = 4;
}  // namespace

bool AtomicFetchMinFloat(std::atomic<float>* cell, float value) {
  float current = cell->load(std::memory_order_relaxed);
  while (value < current) {
    if (cell->compare_exchange_weak(current, value,
                                    std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

KnnSet::KnnSet(int k)
    : k_(k), ids_(static_cast<size_t>(k)), threshold_(kInf) {
  ODYSSEY_CHECK(k >= 1);
  // All of Offer's mutations stay allocation-free after this point: the
  // heap never exceeds k entries and FixedIdSet is flat by construction.
  heap_.reserve(static_cast<size_t>(k));
}

ODYSSEY_HOT bool KnnSet::Offer(float squared_distance, uint32_t id) {
  MutexLock lock(&mu_);
  // Lexicographic (distance, id) order: exact-distance ties resolve by the
  // smaller series id instead of by arrival order, so the k-set is a pure
  // function of the offered candidates — replicas and re-executions (the
  // failure-recovery path) reach bit-identical answers regardless of
  // worker interleaving. PruneThreshold()'s one-ulp pad is the other half:
  // it keeps tying candidates from being abandoned before they get here.
  auto compare = [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.id < b.id;
  };
  // The same series can be offered more than once (approximate search plus
  // leaf scan; work-stealing can even process a leaf on two nodes). A
  // duplicate id must not consume a second k-slot.
  if (ids_.Contains(id)) return false;
  if (heap_.size() < static_cast<size_t>(k_)) {
    heap_.push_back({squared_distance, id});
    std::push_heap(heap_.begin(), heap_.end(), compare);
    ids_.Add(id);
    if (heap_.size() == static_cast<size_t>(k_)) {
      threshold_.store(heap_.front().squared_distance,
                       std::memory_order_release);
    }
    return true;
  }
  const Neighbor& worst = heap_.front();
  if (squared_distance > worst.squared_distance ||
      (squared_distance == worst.squared_distance && id > worst.id)) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), compare);
  ids_.Remove(heap_.back().id);
  heap_.back() = {squared_distance, id};
  std::push_heap(heap_.begin(), heap_.end(), compare);
  ids_.Add(id);
  threshold_.store(heap_.front().squared_distance, std::memory_order_release);
  return true;
}

std::vector<Neighbor> KnnSet::SortedResults() const {
  MutexLock lock(&mu_);
  std::vector<Neighbor> out = heap_;
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.squared_distance != b.squared_distance) {
      return a.squared_distance < b.squared_distance;
    }
    return a.id < b.id;
  });
  return out;
}

/// Builds a batch's bounded queues on behalf of one worker thread: pushes
/// seal into the batch's queue list when a queue fills up (the paper's
/// "give up this queue, initiate a new one").
struct QueryExecution::QueueBuilder {
  RsBatch* batch = nullptr;
  size_t capacity = 0;
  std::unique_ptr<BoundedPq> current;

  void Push(PqItem item) {
    if (current == nullptr) current = std::make_unique<BoundedPq>(capacity);
    if (current->Push(item)) Seal();
  }
  void Seal() {
    if (current == nullptr || current->empty()) return;
    MutexLock lock(&batch->mu);
    batch->queues.push_back(std::move(current));
  }
};

QueryExecution::QueryExecution(const Index* index, const PreparedQuery& query,
                               const QueryOptions& options,
                               std::atomic<float>* shared_bsf,
                               std::function<void(float)> on_bsf_improve)
    : index_(index),
      prepared_(&query),
      query_(query.series()),
      options_(options),
      shared_bsf_(shared_bsf),
      local_bsf_(kInf),
      on_bsf_improve_(std::move(on_bsf_improve)),
      knn_(options.k) {
  ODYSSEY_CHECK(index_ != nullptr && query_ != nullptr);
  ODYSSEY_CHECK(options_.num_threads >= 1);
  ODYSSEY_CHECK_MSG(
      query.segments() == index_->config().segments() &&
          query.length() == index_->config().series_length(),
      "query prepared against a different iSAX geometry than the index");
  if (options_.use_dtw) {
    ODYSSEY_CHECK_MSG(
        query.has_envelope() && query.dtw_window() == options_.dtw_window,
        "DTW execution needs a query prepared with the same warping window");
    envelope_ = &query.envelope();
    envelope_paa_ = &query.envelope_paa();
  }
  if (shared_bsf_ == nullptr) shared_bsf_ = &local_bsf_;
  batch_ranges_ = PartitionRsBatches(index_->tree().root_count(),
                                     options_.EffectiveBatches());
  batch_stolen_.assign(batch_ranges_.size(), false);
}

QueryExecution::~QueryExecution() = default;

float QueryExecution::SeedInitialBsf() {
  ODYSSEY_CHECK_MSG(!index_->data().empty(), "query against an empty index");
  uint32_t approx_id = 0;
  float approx_sq = kInf;
  if (options_.use_dtw) {
    approx_sq = ApproximateSearchSquaredDtw(*index_, *prepared_, &approx_id);
  } else {
    approx_sq = ApproximateSearchSquared(*index_, *prepared_, &approx_id);
  }
  OfferCandidate(approx_sq, approx_id);
  if (options_.approximate && options_.k > 1) {
    // Approximate k-NN: the whole best-matching leaf feeds the answer set
    // (the single best is already in).
    ScanLeaf(ApproximateSearchLeaf(*index_, *prepared_));
  }
  seeded_ = true;
  stat_initial_bsf_ = std::sqrt(static_cast<double>(approx_sq));
  return static_cast<float>(stat_initial_bsf_);
}

void QueryExecution::Run(ThreadPool* pool) {
  std::vector<int> all(batch_ranges_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  RunWorkers(all, pool);
}

void QueryExecution::RunBatchSubset(const std::vector<int>& batch_ids,
                                    ThreadPool* pool) {
  RunWorkers(batch_ids, pool);
}

void QueryExecution::ArmBatches(const std::vector<int>& batch_ids) {
  // (Re)arm the traversal state for this subset. Batch objects are indexed
  // by global batch id so steal replies stay meaningful.
  MutexLock lock(&steal_mu_);
  batches_.clear();
  batches_.resize(batch_ranges_.size());
  for (int id : batch_ids) {
    ODYSSEY_CHECK(id >= 0 && static_cast<size_t>(id) < batch_ranges_.size());
    auto batch = std::make_unique<RsBatch>();
    batch->begin_root = batch_ranges_[id].first;
    batch->end_root = batch_ranges_[id].second;
    batches_[id] = std::move(batch);
  }
  active_batch_ids_ = batch_ids;
  pq_refs_.clear();
  pq_cursor_.store(0, std::memory_order_relaxed);
  batch_cursor_.store(0, std::memory_order_relaxed);
  phase_.store(static_cast<int>(Phase::kTraversal), std::memory_order_release);
}

ODYSSEY_HOT void QueryExecution::TraversalPhase() {
  // Snapshot the armed subset once per worker, into the worker's reusable
  // scratch; the batch objects are then claimed through their own atomic
  // cursors, lock-free. ArmBatches never runs concurrently with a phase
  // (RunWorkers arms before submitting workers), so the snapshot cannot go
  // stale.
  QueryScratch& scratch = QueryScratch::ForThisThread();
  scratch.armed.clear();
  {
    MutexLock lock(&steal_mu_);
    scratch.armed.reserve(active_batch_ids_.size());
    for (int id : active_batch_ids_) scratch.armed.push_back(batches_[id].get());
  }
  // --- Phase 1: tree traversal over RS-batches (Fetch&Add claims). ---
  for (;;) {
    const size_t i = batch_cursor_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= scratch.armed.size()) break;
    TraverseBatch(scratch.armed[i]);
  }
  // Helping: join batches that are still incomplete, at most
  // help_threshold helpers per batch.
  for (RsBatch* batch : scratch.armed) {
    if (!batch->complete() &&
        batch->helped.fetch_add(1, std::memory_order_acq_rel) <
            options_.help_threshold) {
      TraverseBatch(batch);
    }
  }
}

void QueryExecution::PreprocessQueues() {
  // --- Phase 2: priority-queue preprocessing (one thread only). ---
  // Held across the whole phase: it reads the armed subset, drains each
  // batch's queue list, and publishes the sorted array. StealBatches
  // blocking for its duration is correct — stealing is only legal in
  // kProcessing, which this phase ends by entering.
  MutexLock lock(&steal_mu_);
  std::vector<std::pair<float, std::pair<BoundedPq*, int>>> sortable;
  for (int id : active_batch_ids_) {
    RsBatch* batch = batches_[id].get();
    MutexLock batch_lock(&batch->mu);
    for (auto& q : batch->queues) {
      if (q->empty()) continue;
      sortable.push_back({q->MinLowerBound(), {q.get(), id}});
    }
  }
  std::sort(sortable.begin(), sortable.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  pq_refs_.clear();
  pq_refs_.reserve(sortable.size());
  stat_queue_sizes_.clear();
  for (auto& entry : sortable) {
    auto ref = std::make_unique<PqRef>();
    ref->queue = entry.second.first;
    ref->batch_id = entry.second.second;
    pq_refs_.push_back(std::move(ref));
    stat_queue_sizes_.push_back(
        static_cast<double>(entry.second.first->size()));
  }
  phase_.store(static_cast<int>(Phase::kProcessing),
               std::memory_order_release);
}

ODYSSEY_HOT void QueryExecution::ProcessingPhase() {
  // Snapshot the sorted queue array once per worker (see TraversalPhase);
  // the PqRef objects themselves are stable for the phase and carry the
  // atomic `stolen` flag the work-stealing manager flips under steal_mu_.
  QueryScratch& scratch = QueryScratch::ForThisThread();
  scratch.refs.clear();
  {
    MutexLock lock(&steal_mu_);
    scratch.refs.reserve(pq_refs_.size());
    for (const auto& r : pq_refs_) scratch.refs.push_back(r.get());
  }
  // --- Phase 3: priority-queue processing (Fetch&Add claims). ---
  // The region marker attributes this loop's heap traffic (there must be
  // none at steady state) to the hot path for the counting-allocator tests.
  hotpath::ScopedHotRegion hot_region;
  for (;;) {
    const size_t i = pq_cursor_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= scratch.refs.size()) break;
    if (scratch.refs[i]->stolen.load(std::memory_order_acquire)) continue;
    ProcessQueue(scratch.refs[i]->queue);
  }
}

void QueryExecution::RunWorkers(const std::vector<int>& batch_ids,
                                ThreadPool* pool) {
  ODYSSEY_CHECK_MSG(seeded_, "Run before SeedInitialBsf");
  if (options_.approximate) {
    // Approximate mode: the Initialize() leaf scan is the whole answer.
    phase_.store(static_cast<int>(Phase::kDone), std::memory_order_release);
    return;
  }
  Stopwatch watch;
  ArmBatches(batch_ids);
  const int num_threads = options_.num_threads;

  if (pool != nullptr) {
    // Executor path: each parallel phase is one TaskGroup epoch on the
    // shared pool; the Wait inside RunTasks is the phase barrier and the
    // calling thread helps run the phase tasks while it waits. No thread is
    // created, and several executions can share one pool concurrently (the
    // claim loops are self-contained: any number of workers, in any
    // interleaving, drain the same atomic cursors).
    TaskGroup group(pool);
    group.RunTasks(num_threads, [this](int) { TraversalPhase(); });
    PreprocessQueues();
    group.RunTasks(num_threads, [this](int) { ProcessingPhase(); });
  } else if (num_threads == 1) {
    TraversalPhase();
    PreprocessQueues();
    ProcessingPhase();
  } else {
    // Legacy path: spawn-and-join per call, with in-thread barriers between
    // the phases — the per-query-spawn baseline the executor benchmarks
    // against. CountedThread counts the spawns so tests can assert the hot
    // path stays at zero.
    std::barrier barrier(num_threads);
    auto worker = [&](int tid) {
      TraversalPhase();
      barrier.arrive_and_wait();
      if (tid == 0) PreprocessQueues();
      barrier.arrive_and_wait();
      ProcessingPhase();
    };
    std::vector<CountedThread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&worker, t] { worker(t); });
    }
    for (auto& t : threads) t.Join();
  }

  {
    MutexLock lock(&steal_mu_);
    phase_.store(static_cast<int>(Phase::kDone), std::memory_order_release);
  }
  stat_elapsed_seconds_ += watch.ElapsedSeconds();
}

ODYSSEY_HOT void QueryExecution::TraverseBatch(RsBatch* batch) {
  QueueBuilder builder;
  builder.batch = batch;
  builder.capacity = options_.queue_threshold;
  const size_t count = batch->root_count();
  for (;;) {
    const size_t r = batch->cursor.fetch_add(1, std::memory_order_acq_rel);
    if (r >= count) break;
    TraverseNode(index_->tree().root(batch->begin_root + r), &builder);
    batch->roots_done.fetch_add(1, std::memory_order_acq_rel);
  }
  builder.Seal();
}

ODYSSEY_HOT void QueryExecution::TraverseNode(const TreeNode* node,
                                              QueueBuilder* builder) {
  if (node->subtree_size() == 0) return;
  const float lb = LeafLowerBound(node);
  if (lb >= PruneThreshold()) return;
  if (node->is_leaf()) {
    builder->Push({lb, node});
    stat_leaves_inserted_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraverseNode(node->left(), builder);
  TraverseNode(node->right(), builder);
}

ODYSSEY_HOT void QueryExecution::ProcessQueue(BoundedPq* queue) {
  while (!queue->empty()) {
    const PqItem item = queue->Pop();
    // The queue is ordered by lower bound: once the head cannot beat the
    // BSF, nothing behind it can either.
    if (item.lower_bound >= PruneThreshold()) break;
    ScanLeaf(item.leaf);
  }
}

ODYSSEY_HOT void QueryExecution::ScanLeaf(const TreeNode* leaf) {
  stat_leaves_processed_.fetch_add(1, std::memory_order_relaxed);
  const auto& ids = leaf->ids();
  for (size_t i = 0; i < ids.size(); ++i) {
    const float threshold = PruneThreshold();
    // Per-series summary filter at full cardinality before the real
    // distance (the tightest summary-level bound).
    if (SeriesLowerBound(leaf->leaf_sax(i)) >= threshold) continue;
    const float d = RealDistance(index_->data().data(ids[i]), threshold);
    stat_real_distances_.fetch_add(1, std::memory_order_relaxed);
    if (d < threshold) OfferCandidate(d, ids[i]);
  }
}

ODYSSEY_HOT void QueryExecution::OfferCandidate(float squared_distance,
                                                uint32_t id) {
  if (!knn_.Offer(squared_distance, id)) return;
  const float threshold = knn_.Threshold();
  if (threshold == kInf) return;
  if (AtomicFetchMinFloat(shared_bsf_, threshold) &&
      on_bsf_improve_ != nullptr) {
    // Sanctioned impurity: the broadcast callback intentionally takes the
    // mailbox lock and enqueues a message. The allowance keeps its heap
    // traffic out of the hot-region allocation count (it fires only on BSF
    // improvements, which dry up as the scan converges).
    hotpath::ScopedAllowance allowance;
    on_bsf_improve_(threshold);
  }
}

ODYSSEY_HOT float QueryExecution::PruneThreshold() const {
  // The node's book-keeping cell already folds in every broadcast BSF; the
  // local k-NN threshold can be momentarily tighter for k > 1 before the
  // k-th best is shared.
  //
  // Padded up by one ulp so pruning (and the >= early-abandon cadence in
  // the kernels this value is passed to) only discards candidates that are
  // *strictly* worse than the k-th best. A candidate whose distance exactly
  // ties the threshold then always completes scoring and reaches
  // KnnSet::Offer, where the (distance, id) order resolves the tie — the
  // same way in every run. Without the pad, whether a tying candidate
  // completes depends on how tight the threshold happened to be when its
  // leaf was scanned, i.e. on worker timing.
  const float t = std::min(shared_bsf_->load(std::memory_order_acquire),
                           knn_.Threshold());
  return std::nextafter(t, kInf);
}

ODYSSEY_HOT float QueryExecution::LeafLowerBound(const TreeNode* node) const {
  if (options_.use_dtw) {
    return MindistEnvelopeToWord(*envelope_paa_, node->word(),
                                 index_->config());
  }
  return MindistPaaToWord(prepared_->paa(), node->word(), index_->config());
}

ODYSSEY_HOT float QueryExecution::SeriesLowerBound(const uint8_t* sax) const {
  if (options_.use_dtw) {
    return MindistEnvelopeToSax(*envelope_paa_, sax, index_->config());
  }
  return MindistPaaToSax(prepared_->paa(), sax, index_->config());
}

ODYSSEY_HOT float QueryExecution::RealDistance(const float* series,
                                               float threshold) const {
  const size_t n = index_->config().series_length();
  if (options_.use_dtw) {
    // LB_Keogh at full resolution first; only survivors pay the DTW DP.
    const float lb = kernels_->lb_keogh_early_abandon(
        envelope_->upper.data(), envelope_->lower.data(), series,
        envelope_->length(), threshold);
    if (lb >= threshold) return lb;
    return SquaredDtwEarlyAbandon(series, query_, n, options_.dtw_window,
                                  threshold);
  }
  return kernels_->squared_euclidean_early_abandon(query_, series, n,
                                                   threshold);
}

ODYSSEY_HOT std::vector<int> QueryExecution::StealBatches(int nsend) {
  // A grouped member's per-query queues were drained into the group's
  // merged work list; its stealable currency is the group's (member,
  // batch) slices, so the group answers on its behalf.
  if (group_ != nullptr) return group_->DonateBatches(group_member_, nsend);
  MutexLock lock(&steal_mu_);
  std::vector<int> given;
  if (phase_.load(std::memory_order_acquire) !=
      static_cast<int>(Phase::kProcessing)) {
    return given;
  }
  // The first-unclaimed table used to be allocated afresh on every round
  // of the nsend loop, all while the running claim loops contend on
  // steal_mu_; the comms thread's scratch reuses one buffer across rounds
  // and steal requests.
  QueryScratch& scratch = QueryScratch::ForThisThread();
  std::vector<size_t>& scratch_first_unclaimed = scratch.first_unclaimed;
  for (int round = 0; round < nsend; ++round) {
    const size_t cursor = pq_cursor_.load(std::memory_order_acquire);
    // Take-Away property: among batches not yet stolen that still have
    // unclaimed queues, pick the one whose first (leftmost) unclaimed queue
    // sits at the rightmost position — the batch least likely to have been
    // processed.
    int best_batch = -1;
    size_t best_first = 0;
    scratch_first_unclaimed.assign(batch_ranges_.size(), pq_refs_.size());
    for (size_t i = cursor; i < pq_refs_.size(); ++i) {
      const int b = pq_refs_[i]->batch_id;
      if (i < scratch_first_unclaimed[b]) scratch_first_unclaimed[b] = i;
    }
    for (size_t b = 0; b < batch_ranges_.size(); ++b) {
      if (batch_stolen_[b]) continue;
      if (scratch_first_unclaimed[b] == pq_refs_.size()) continue;  // empty
      if (best_batch < 0 || scratch_first_unclaimed[b] > best_first) {
        best_batch = static_cast<int>(b);
        best_first = scratch_first_unclaimed[b];
      }
    }
    if (best_batch < 0) break;
    batch_stolen_[best_batch] = true;
    for (size_t i = cursor; i < pq_refs_.size(); ++i) {
      if (pq_refs_[i]->batch_id == best_batch) {
        pq_refs_[i]->stolen.store(true, std::memory_order_release);
      }
    }
    given.push_back(best_batch);
  }
  return given;
}

GroupedQueryExecution::GroupedQueryExecution(
    std::vector<QueryExecution*> members)
    : members_(std::move(members)) {
  ODYSSEY_CHECK_MSG(!members_.empty(),
                    "grouped execution needs at least one member");
  const QueryExecution* first = members_[0];
  n_ = first->index_->config().series_length();
  stride_ = simd::BatchStride(members_.size());
  for (const QueryExecution* m : members_) {
    ODYSSEY_CHECK_MSG(m->index_ == first->index_,
                      "grouped members must target the same index");
    ODYSSEY_CHECK_MSG(m->options_.use_dtw == first->options_.use_dtw &&
                          m->options_.dtw_window == first->options_.dtw_window,
                      "grouped members must share the distance mode");
    ODYSSEY_CHECK_MSG(!m->options_.approximate,
                      "grouped execution is exact-search only");
    ODYSSEY_CHECK_MSG(
        m->batch_ranges_.size() == first->batch_ranges_.size(),
        "grouped members must share the RS-batch partition (donated batch "
        "ids travel the steal wire)");
    if (m->options_.use_dtw) {
      ODYSSEY_CHECK(m->envelope_->length() == n_);
    }
  }
  batch_count_ = first->batch_ranges_.size();
  scalar_ = &simd::ScalarTable();
  for (size_t q = 0; q < members_.size(); ++q) {
    members_[q]->group_ = this;
    members_[q]->group_member_ = static_cast<int>(q);
  }
}

GroupedQueryExecution::~GroupedQueryExecution() {
  for (QueryExecution* m : members_) {
    m->group_ = nullptr;
    m->group_member_ = -1;
  }
}

void GroupedQueryExecution::BuildQueryBlock() {
  // Point-major interleave: lane q of point i lives at [i * stride_ + q].
  // Padding lanes (q_count..stride_) stay zero — the batched kernels never
  // freeze or store them, they only need the loads to be in-bounds.
  if (members_[0]->options_.use_dtw) {
    upper_.assign(n_ * stride_, 0.0f);
    lower_.assign(n_ * stride_, 0.0f);
    for (size_t q = 0; q < members_.size(); ++q) {
      const Envelope* env = members_[q]->envelope_;
      for (size_t i = 0; i < n_; ++i) {
        upper_[i * stride_ + q] = env->upper[i];
        lower_[i * stride_ + q] = env->lower[i];
      }
    }
  } else {
    values_.assign(n_ * stride_, 0.0f);
    for (size_t q = 0; q < members_.size(); ++q) {
      const float* query = members_[q]->query_;
      for (size_t i = 0; i < n_; ++i) {
        values_[i * stride_ + q] = query[i];
      }
    }
  }
}

void GroupedQueryExecution::AppendLeafEntry(
    std::unordered_map<const TreeNode*, size_t>* slot, const PqItem& item,
    int member, int batch) {
  auto [it, inserted] = slot->try_emplace(item.leaf, work_.size());
  if (inserted) {
    work_.push_back({item.leaf, item.lower_bound, {}});
  }
  LeafWork& unit = work_[it->second];
  unit.min_lb = std::min(unit.min_lb, item.lower_bound);
  unit.members.push_back({member, item.lower_bound, batch});
}

void GroupedQueryExecution::PublishWork() {
  // Same global order as the per-query path's phase 2: most promising leaf
  // (smallest lower bound over its members) first, so BSFs tighten early.
  std::sort(work_.begin(), work_.end(),
            [](const LeafWork& a, const LeafWork& b) {
              return a.min_lb < b.min_lb;
            });
  work_cursor_.store(0, std::memory_order_relaxed);
  donation_ready_.store(true, std::memory_order_release);
}

void GroupedQueryExecution::BuildSeedWork() {
  // Merge each member's ~kSeedLeavesPerMember best leaves into the first
  // scan wave. The member's queues are each sorted, so a linear peek over
  // the queue heads per pop is an exact k-way merge; the budget is small
  // enough that the quadratic peek never shows up. Members stay in
  // kProcessing: unlike the pre-donation design, which parked them kDone
  // here, their StealBatches keeps serving thieves through DonateBatches
  // until the group's Run finishes.
  MutexLock donate_lock(&donate_mu_);
  donation_ready_.store(false, std::memory_order_relaxed);
  std::unordered_map<const TreeNode*, size_t> slot;
  work_.clear();
  for (size_t q = 0; q < members_.size(); ++q) {
    QueryExecution* m = members_[q];
    MutexLock lock(&m->steal_mu_);
    for (size_t take = 0; take < kSeedLeavesPerMember; ++take) {
      BoundedPq* best_queue = nullptr;
      int best_batch = 0;
      float best_lb = kInf;
      for (const auto& ref : m->pq_refs_) {
        if (ref->queue->empty()) continue;
        const float lb = ref->queue->MinLowerBound();
        if (best_queue == nullptr || lb < best_lb) {
          best_queue = ref->queue;
          best_batch = ref->batch_id;
          best_lb = lb;
        }
      }
      if (best_queue == nullptr || best_lb >= m->PruneThreshold()) break;
      AppendLeafEntry(&slot, best_queue->Pop(), static_cast<int>(q),
                      best_batch);
    }
  }
  // Arm the donation slice states. Published with a release so the comms
  // thread's DonateBatches reads a complete work list.
  const size_t slices = members_.size() * batch_count_;
  if (donate_state_ == nullptr) {
    donate_state_ = std::make_unique<std::atomic<uint8_t>[]>(slices);
  }
  for (size_t i = 0; i < slices; ++i) {
    donate_state_[i].store(kSliceOpen, std::memory_order_relaxed);
  }
  PublishWork();
}

void GroupedQueryExecution::BuildMainWork() {
  // Drain what the seed wave left of every member's sorted queues into
  // leaf-level work units — with the per-query path's cutoff, now backed by
  // post-seed thresholds: a queue head that cannot beat its member's BSF
  // proves the whole remaining queue cannot (sorted ascending, and the
  // threshold only ever tightens), so the tail is dropped unpopped. This is
  // the lazy pruning the eager single-pass merge used to forfeit — it paid
  // pop + hash + sort for every traversal-surviving leaf, where the
  // per-query path stops popping at the first unbeatable head. A leaf
  // appears at most once per member (the traversal inserts each leaf
  // once), so each (leaf, member) pair lands exactly once across the two
  // waves.
  MutexLock donate_lock(&donate_mu_);
  donation_ready_.store(false, std::memory_order_relaxed);
  std::unordered_map<const TreeNode*, size_t> slot;
  work_.clear();
  for (size_t q = 0; q < members_.size(); ++q) {
    QueryExecution* m = members_[q];
    MutexLock lock(&m->steal_mu_);
    for (const auto& ref : m->pq_refs_) {
      // A slice donated during the seed wave belongs to its thief, which
      // re-runs the whole batch on its own replica — draining it here would
      // only rebuild work the scan is obliged to skip.
      if (donate_state_[SliceIndex(static_cast<int>(q), ref->batch_id)].load(
              std::memory_order_acquire) == kSliceDonated) {
        continue;
      }
      const float threshold = m->PruneThreshold();
      while (!ref->queue->empty()) {
        if (ref->queue->MinLowerBound() >= threshold) break;
        AppendLeafEntry(&slot, ref->queue->Pop(), static_cast<int>(q),
                        ref->batch_id);
      }
    }
  }
  PublishWork();
}

ODYSSEY_HOT void GroupedQueryExecution::GroupedProcessing() {
  // Lane buffers come from the worker's reusable scratch — the per-entry
  // vector constructions this body used to perform (4 per worker per
  // epoch) were a checker finding.
  const size_t q_count = members_.size();
  QueryScratch& scratch = QueryScratch::ForThisThread();
  scratch.thresholds.assign(q_count, 0.0f);
  scratch.out.assign(q_count, 0.0f);
  scratch.pass.assign(q_count, 0);
  scratch.active.clear();
  scratch.active.reserve(q_count);
  scratch.lone_series.assign(q_count * simd::kMultiCandidateLanes, nullptr);
  scratch.lone_ids.assign(q_count * simd::kMultiCandidateLanes, 0);
  scratch.lone_count.assign(q_count, 0);
  hotpath::ScopedHotRegion hot_region;
  for (;;) {
    const size_t i = work_cursor_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= work_.size()) break;
    ScanLeafGrouped(work_[i], &scratch);
  }
  // Work list drained: score whatever deferred candidates are still parked
  // in this worker's lane queues. Queues deliberately span leaves — a leaf
  // rarely yields kMultiCandidateLanes low-occupancy survivors for one
  // member, and partial flushes forfeit the ILP the deferral exists to
  // harvest. Deferring an offer never changes a reported distance (full
  // sums are threshold-independent); it can only delay a BSF improvement by
  // at most kMultiCandidateLanes - 1 candidates per member.
  for (size_t q = 0; q < q_count; ++q) {
    FlushLoneCandidates(static_cast<int>(q), &scratch);
  }
}

ODYSSEY_HOT void GroupedQueryExecution::ScanLeafGrouped(const LeafWork& work,
                                                        QueryScratch* scratch) {
  // Leaf-level pruning per member, mirroring ProcessQueue's head check: a
  // member whose bound for this leaf no longer beats its threshold skips
  // the whole leaf. Before the bound check, each contribution consults its
  // (member, batch) donation state: a donated slice's remaining leaves
  // belong to the thief, which re-runs the whole batch on its replica —
  // skipping here trades the leaf's scan for the thief's (already-scanned
  // leaves of the batch just become deduplicated double-coverage).
  scratch->active.clear();
  for (const Contribution& c : work.members) {
    if (donate_state_[SliceIndex(c.member, c.batch)].load(
            std::memory_order_acquire) == kSliceDonated) {
      continue;
    }
    if (c.lb < members_[c.member]->PruneThreshold()) {
      scratch->active.push_back(c.member);
    }
  }
  if (scratch->active.empty()) return;
  for (int q : scratch->active) {
    members_[q]->stat_leaves_processed_.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  const TreeNode* leaf = work.leaf;
  const QueryExecution* first = members_[0];
  const bool use_dtw = first->options_.use_dtw;
  const simd::KernelTable* kernels = first->kernels_;
  const size_t q_count = members_.size();
  const auto& ids = leaf->ids();
  if (scratch->active.size() == 1) {
    // One active member for the whole leaf — the common case in a mixed
    // batch, where co-resident queries rarely want the same leaves. Run
    // the lean per-query scan shape (threshold, summary filter, distance)
    // with none of the lane bookkeeping: no threshold/pass resets per
    // series, no interleaved block traffic. Euclidean candidates are
    // deferred in lanes of simd::kMultiCandidateLanes and scored through
    // the multi-candidate kernel — strict scalar point order per lane, so
    // answers cannot depend on how many members happened to share the
    // leaf, but the independent add chains run at near-vector throughput.
    const int lone = scratch->active[0];
    QueryExecution* m = members_[lone];
    for (size_t s = 0; s < ids.size(); ++s) {
      const float threshold = m->PruneThreshold();
      if (m->SeriesLowerBound(leaf->leaf_sax(s)) >= threshold) continue;
      const float* series = first->index_->data().data(ids[s]);
      m->stat_real_distances_.fetch_add(1, std::memory_order_relaxed);
      if (use_dtw) {
        const float lb = scalar_->lb_keogh_early_abandon(
            m->envelope_->upper.data(), m->envelope_->lower.data(), series,
            n_, threshold);
        if (lb >= threshold) continue;
        const float d = SquaredDtwEarlyAbandon(series, m->query_, n_,
                                               m->options_.dtw_window,
                                               threshold);
        if (d < threshold) m->OfferCandidate(d, ids[s]);
      } else {
        QueueLoneCandidate(lone, series, ids[s], scratch);
      }
    }
    return;
  }
  for (size_t s = 0; s < ids.size(); ++s) {
    // Per-series summary filter per member, as in ScanLeaf. Members that
    // filter out (or were inactive for the leaf) get a 0.0 threshold: their
    // lane freezes after the first abandon check and its output is ignored
    // (squared distances are never < 0), so one batched call serves exactly
    // the surviving subset.
    std::fill(scratch->thresholds.begin(), scratch->thresholds.end(), 0.0f);
    std::fill(scratch->pass.begin(), scratch->pass.end(), uint8_t{0});
    size_t passing = 0;
    int lone = -1;
    for (int q : scratch->active) {
      const float threshold = members_[q]->PruneThreshold();
      if (members_[q]->SeriesLowerBound(leaf->leaf_sax(s)) >= threshold) {
        continue;
      }
      scratch->thresholds[q] = threshold;
      scratch->pass[q] = 1;
      lone = q;
      ++passing;
    }
    if (passing == 0) continue;
    const float* series = first->index_->data().data(ids[s]);
    if (use_dtw && passing == 1) {
      // Lone DTW survivor: the batched LB_Keogh block doesn't amortize for
      // one live lane — bound through the per-query *scalar* kernel, which
      // the batched lanes are bit-identical to by contract.
      QueryExecution* m = members_[lone];
      const float threshold = scratch->thresholds[lone];
      m->stat_real_distances_.fetch_add(1, std::memory_order_relaxed);
      const float lb = scalar_->lb_keogh_early_abandon(
          m->envelope_->upper.data(), m->envelope_->lower.data(), series, n_,
          threshold);
      if (lb >= threshold) continue;
      const float d = SquaredDtwEarlyAbandon(series, m->query_, n_,
                                             m->options_.dtw_window,
                                             threshold);
      if (d < threshold) m->OfferCandidate(d, ids[s]);
      continue;
    }
    if (!use_dtw && passing < kBatchedRouteOccupancy) {
      // Low occupancy: the interleaved block is 16 lanes wide regardless of
      // how few are live, so at 1-3 survivors the batched kernel drags
      // mostly-dead lanes through the cache. Defer the candidate into each
      // survivor's multi-candidate lane queue instead (capacity
      // simd::kMultiCandidateLanes, deliberately wider than this routing
      // cut so full flushes feed the kernel's widest pass); the flush
      // passes accumulate in strict scalar point order, so a candidate's
      // reported distance still never depends on how many members happened
      // to pass the filter. Mixed batches share little — most of their
      // series land here, which is where the Fig13d mixed-batch panel
      // loses against the per-query path without this fork. The per-query
      // *vector* kernels stay off-limits: they reduce lane partials and
      // differ from the scalar family by ulps.
      for (int q : scratch->active) {
        if (scratch->pass[q] == 0) continue;
        members_[q]->stat_real_distances_.fetch_add(
            1, std::memory_order_relaxed);
        QueueLoneCandidate(q, series, ids[s], scratch);
      }
      continue;
    }
    // Enough survivors to fill the block's live lanes (Euclidean:
    // kBatchedRouteOccupancy or more; DTW: two or more): the batched kernel
    // amortizes the candidate load across them.
    scan_stats::CountBatchedScore(passing);
    if (use_dtw) {
      // Batched LB_Keogh; only survivors pay their member's DTW DP, exactly
      // like RealDistance.
      kernels->batched_lb_keogh_early_abandon(
          series, upper_.data(), lower_.data(), n_, stride_, q_count,
          scratch->thresholds.data(), scratch->out.data());
      for (int q : scratch->active) {
        if (scratch->pass[q] == 0) continue;
        QueryExecution* m = members_[q];
        m->stat_real_distances_.fetch_add(1, std::memory_order_relaxed);
        const float threshold = scratch->thresholds[q];
        if (scratch->out[q] >= threshold) continue;
        const float d = SquaredDtwEarlyAbandon(series, m->query_, n_,
                                               m->options_.dtw_window,
                                               threshold);
        if (d < threshold) m->OfferCandidate(d, ids[s]);
      }
    } else {
      kernels->batched_squared_euclidean_early_abandon(
          series, values_.data(), n_, stride_, q_count,
          scratch->thresholds.data(), scratch->out.data());
      for (int q : scratch->active) {
        if (scratch->pass[q] == 0) continue;
        QueryExecution* m = members_[q];
        m->stat_real_distances_.fetch_add(1, std::memory_order_relaxed);
        if (scratch->out[q] < scratch->thresholds[q]) {
          m->OfferCandidate(scratch->out[q], ids[s]);
        }
      }
    }
  }
}

ODYSSEY_HOT void GroupedQueryExecution::QueueLoneCandidate(
    int q, const float* series, uint32_t id, QueryScratch* scratch) {
  const size_t base = static_cast<size_t>(q) * simd::kMultiCandidateLanes;
  uint8_t& count = scratch->lone_count[q];
  scratch->lone_series[base + count] = series;
  scratch->lone_ids[base + count] = id;
  if (++count == simd::kMultiCandidateLanes) FlushLoneCandidates(q, scratch);
}

ODYSSEY_HOT void GroupedQueryExecution::FlushLoneCandidates(
    int q, QueryScratch* scratch) {
  uint8_t& count = scratch->lone_count[q];
  if (count == 0) return;
  QueryExecution* m = members_[q];
  const size_t base = static_cast<size_t>(q) * simd::kMultiCandidateLanes;
  const float threshold = m->PruneThreshold();
  float out[simd::kMultiCandidateLanes];
  scan_stats::CountMultiScore(count);
  simd::MultiSquaredEuclideanEarlyAbandon(
      m->query_, &scratch->lone_series[base], count, n_, threshold, out);
  const uint8_t pending = count;
  count = 0;
  for (uint8_t c = 0; c < pending; ++c) {
    if (out[c] < threshold) {
      m->OfferCandidate(out[c], scratch->lone_ids[base + c]);
    }
  }
}

void GroupedQueryExecution::Run(ThreadPool* pool) { RunImpl(nullptr, pool); }

void GroupedQueryExecution::RunBatchSubset(const std::vector<int>& batch_ids,
                                           ThreadPool* pool) {
  RunImpl(&batch_ids, pool);
}

ODYSSEY_HOT std::vector<int> GroupedQueryExecution::DonateBatches(int member,
                                                                  int nsend) {
  std::vector<int> given;
  // donate_mu_ serializes this walk of work_ against the build passes: the
  // ready flag alone says a list exists, not that the next build pass will
  // wait for us to finish reading it.
  MutexLock donate_lock(&donate_mu_);
  if (!donation_ready_.load(std::memory_order_acquire)) return given;
  // Take-Away analogue of StealBatches: rank this member's still-open
  // slices by the candidate series in work units the claim cursor has not
  // reached — the local scanning a handoff actually saves. Computed once
  // per request against the immutable work list (the cursor only moves
  // forward, so a stale snapshot can only *overestimate* savings, never
  // donate a drained slice as a fresh one). The remaining-series
  // accumulator reuses the comms thread's steal-snapshot scratch buffer.
  const size_t cursor =
      std::min(work_cursor_.load(std::memory_order_acquire), work_.size());
  QueryScratch& scratch = QueryScratch::ForThisThread();
  std::vector<size_t>& remaining = scratch.first_unclaimed;
  remaining.assign(batch_count_, 0);
  for (size_t i = cursor; i < work_.size(); ++i) {
    for (const Contribution& c : work_[i].members) {
      if (c.member == member) {
        remaining[static_cast<size_t>(c.batch)] +=
            work_[i].leaf->ids().size();
      }
    }
  }
  for (int round = 0; round < nsend; ++round) {
    int best = -1;
    size_t best_remaining = 0;
    for (size_t b = 0; b < batch_count_; ++b) {
      const size_t s = SliceIndex(member, static_cast<int>(b));
      if (remaining[b] == 0) continue;  // drained or absent: nothing to save
      if (donate_state_[s].load(std::memory_order_acquire) != kSliceOpen) {
        continue;
      }
      if (best < 0 || remaining[b] > best_remaining) {
        best = static_cast<int>(b);
        best_remaining = remaining[b];
      }
    }
    if (best < 0) break;
    uint8_t expected = kSliceOpen;
    if (!donate_state_[SliceIndex(member, best)].compare_exchange_strong(
            expected, kSliceDonated, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      continue;  // a concurrent donor beat us; spend the round elsewhere
    }
    scan_stats::CountBatchDonated(best_remaining);
    remaining[static_cast<size_t>(best)] = 0;
    given.push_back(best);
  }
  return given;
}

void GroupedQueryExecution::RunImpl(const std::vector<int>* batch_subset,
                                    ThreadPool* pool) {
  int num_threads = 1;
  for (QueryExecution* m : members_) {
    ODYSSEY_CHECK_MSG(m->seeded_, "grouped Run before SeedInitialBsf");
    num_threads = std::max(num_threads, m->options_.num_threads);
  }
  Stopwatch watch;
  BuildQueryBlock();
  if (batch_subset != nullptr) {
    for (QueryExecution* m : members_) m->ArmBatches(*batch_subset);
  } else {
    std::vector<int> all_ids(batch_count_);
    for (size_t i = 0; i < all_ids.size(); ++i) {
      all_ids[i] = static_cast<int>(i);
    }
    for (QueryExecution* m : members_) m->ArmBatches(all_ids);
  }
  auto traverse_all = [this](int) {
    for (QueryExecution* m : members_) m->TraversalPhase();
  };
  auto preprocess_and_seed = [this] {
    for (QueryExecution* m : members_) m->PreprocessQueues();
    BuildSeedWork();
  };
  // The scan runs in two waves: a small seed wave (each member's most
  // promising leaves) whose scanning tightens every BSF to near-final, then
  // the main wave, whose build can therefore drop the long queue tails the
  // per-query path never pops either.
  if (pool != nullptr) {
    // Executor path, as in QueryExecution::Run: each parallel phase is one
    // TaskGroup epoch, the Wait is the phase barrier.
    TaskGroup group(pool);
    group.RunTasks(num_threads, traverse_all);
    preprocess_and_seed();
    group.RunTasks(num_threads, [this](int) { GroupedProcessing(); });
    BuildMainWork();
    group.RunTasks(num_threads, [this](int) { GroupedProcessing(); });
  } else if (num_threads == 1) {
    traverse_all(0);
    preprocess_and_seed();
    GroupedProcessing();
    BuildMainWork();
    GroupedProcessing();
  } else {
    // Legacy spawn-and-join path, kept so the grouped scan can be
    // benchmarked without the executor (spawns counted via CountedThread).
    std::barrier barrier(num_threads);
    auto worker = [&](int tid) {
      traverse_all(tid);
      barrier.arrive_and_wait();
      if (tid == 0) preprocess_and_seed();
      barrier.arrive_and_wait();
      GroupedProcessing();
      barrier.arrive_and_wait();
      if (tid == 0) BuildMainWork();
      barrier.arrive_and_wait();
      GroupedProcessing();
    };
    std::vector<CountedThread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&worker, t] { worker(t); });
    }
    for (auto& t : threads) t.Join();
  }
  // Only now do the members go kDone (the pre-donation design parked them
  // in BuildLeafWork): a steal request landing between merge and drain was
  // dead weight then, and is a donation now.
  for (QueryExecution* m : members_) {
    MutexLock lock(&m->steal_mu_);
    m->phase_.store(static_cast<int>(QueryExecution::Phase::kDone),
                    std::memory_order_release);
  }
  const double elapsed = watch.ElapsedSeconds();
  for (QueryExecution* m : members_) m->stat_elapsed_seconds_ += elapsed;
}

QueryScratch& QueryScratch::ForThisThread() {
  // Function-local so construction is lazy (only threads that run query
  // phases pay for it) and destruction is tied to thread exit.
  static thread_local QueryScratch scratch;
  return scratch;
}

void QueryScratch::Reserve(size_t batches, size_t queues, size_t group_lanes) {
  armed.reserve(batches);
  first_unclaimed.reserve(batches);
  refs.reserve(queues);
  thresholds.reserve(group_lanes);
  out.reserve(group_lanes);
  pass.reserve(group_lanes);
  active.reserve(group_lanes);
  lone_series.reserve(group_lanes * simd::kMultiCandidateLanes);
  lone_ids.reserve(group_lanes * simd::kMultiCandidateLanes);
  lone_count.reserve(group_lanes);
}

PreparedQuery PrepareQuery(const float* series, const IsaxConfig& config,
                           const QueryOptions& options) {
  return PreparedQuery::Prepare(series, config, options.use_dtw,
                                options.dtw_window);
}

PreparedBatch PrepareBatch(const SeriesCollection& queries,
                           const IsaxConfig& config,
                           const QueryOptions& options, ThreadPool* pool) {
  return PreparedBatch::Prepare(queries, config, options.use_dtw,
                                options.dtw_window, pool);
}

QueryStats QueryExecution::stats() const {
  QueryStats stats;
  stats.initial_bsf = stat_initial_bsf_;
  stats.leaves_inserted = stat_leaves_inserted_.load();
  stats.leaves_processed = stat_leaves_processed_.load();
  stats.real_distances = stat_real_distances_.load();
  {
    MutexLock lock(&steal_mu_);
    stats.queue_count = stat_queue_sizes_.size();
    stats.median_queue_size = Median(stat_queue_sizes_);
  }
  stats.elapsed_seconds = stat_elapsed_seconds_;
  return stats;
}

}  // namespace odyssey
