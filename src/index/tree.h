#ifndef ODYSSEY_INDEX_TREE_H_
#define ODYSSEY_INDEX_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/buffers.h"
#include "src/index/node.h"

namespace odyssey {

/// The forest of root subtrees of an iSAX index: one subtree per non-empty
/// root key, ordered by key. The ordered array of roots is what RS-batches
/// partition, so its determinism across replicas matters.
class IndexTree {
 public:
  IndexTree() = default;
  IndexTree(IndexTree&&) = default;
  IndexTree& operator=(IndexTree&&) = default;

  /// Builds all subtrees from summarization buffers. Each subtree is
  /// independent, so construction parallelizes over buffers (the paper's
  /// "tree time" phase). `sax_table` is a *view* of the chunk's
  /// full-cardinality summary rows (one row of config.segments() bytes per
  /// series, covering every id the buffers mention) — typically a
  /// SharedChunk's table, read concurrently by every replica's build.
  static IndexTree Build(const SummarizationBuffers& buffers,
                         const uint8_t* sax_table, const IsaxConfig& config,
                         size_t leaf_capacity, ThreadPool* pool);

  /// Deserialization support: adopts pre-built subtrees. `keys` must be
  /// sorted ascending and parallel to `roots`.
  static IndexTree FromRoots(std::vector<uint32_t> keys,
                             std::vector<std::unique_ptr<TreeNode>> roots);

  size_t root_count() const { return roots_.size(); }
  const TreeNode* root(size_t i) const { return roots_[i].get(); }
  uint32_t root_key(size_t i) const { return keys_[i]; }

  /// Index (into the root array) of the subtree for `key`, or -1 if no
  /// series maps to that key.
  int FindRoot(uint32_t key) const;

  /// Aggregate statistics across all subtrees.
  struct Stats {
    size_t roots = 0;
    size_t nodes = 0;
    size_t leaves = 0;
    size_t max_depth = 0;
    size_t series = 0;
  };
  Stats ComputeStats() const;

  /// Approximate heap bytes of all subtrees.
  size_t MemoryBytes() const;

 private:
  std::vector<uint32_t> keys_;                    // sorted ascending
  std::vector<std::unique_ptr<TreeNode>> roots_;  // parallel to keys_
};

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_TREE_H_
