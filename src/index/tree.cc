#include "src/index/tree.h"

#include <algorithm>

#include "src/common/check.h"

namespace odyssey {

IndexTree IndexTree::Build(const SummarizationBuffers& buffers,
                           const uint8_t* sax_table, const IsaxConfig& config,
                           size_t leaf_capacity, ThreadPool* pool) {
  ODYSSEY_CHECK(leaf_capacity >= 1);
  IndexTree tree;
  tree.keys_ = buffers.keys;
  tree.roots_.resize(buffers.buffer_count());
  const size_t w = static_cast<size_t>(config.segments());

  auto build_range = [&](size_t begin, size_t end) {
    for (size_t b = begin; b < end; ++b) {
      auto root = std::make_unique<TreeNode>(
          IsaxWord::Root(config, buffers.keys[b]));
      for (uint32_t id : buffers.series[b]) {
        root->Insert(id, sax_table + static_cast<size_t>(id) * w, config,
                     leaf_capacity);
      }
      tree.roots_[b] = std::move(root);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(buffers.buffer_count(), build_range);
  } else {
    build_range(0, buffers.buffer_count());
  }
  return tree;
}

IndexTree IndexTree::FromRoots(std::vector<uint32_t> keys,
                               std::vector<std::unique_ptr<TreeNode>> roots) {
  ODYSSEY_CHECK(keys.size() == roots.size());
  ODYSSEY_CHECK(std::is_sorted(keys.begin(), keys.end()));
  IndexTree tree;
  tree.keys_ = std::move(keys);
  tree.roots_ = std::move(roots);
  return tree;
}

int IndexTree::FindRoot(uint32_t key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return -1;
  return static_cast<int>(it - keys_.begin());
}

IndexTree::Stats IndexTree::ComputeStats() const {
  Stats stats;
  stats.roots = roots_.size();
  for (const auto& root : roots_) {
    stats.nodes += root->CountNodes();
    stats.leaves += root->CountLeaves();
    stats.max_depth = std::max(stats.max_depth, root->MaxDepth());
    stats.series += root->subtree_size();
  }
  return stats;
}

size_t IndexTree::MemoryBytes() const {
  size_t bytes = keys_.capacity() * sizeof(uint32_t) +
                 roots_.capacity() * sizeof(roots_[0]);
  for (const auto& root : roots_) bytes += root->MemoryBytes();
  return bytes;
}

}  // namespace odyssey
