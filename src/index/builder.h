#ifndef ODYSSEY_INDEX_BUILDER_H_
#define ODYSSEY_INDEX_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/dataset/series_collection.h"
#include "src/index/tree.h"
#include "src/isax/isax_word.h"

namespace odyssey {

/// Index construction knobs.
struct IndexOptions {
  IsaxConfig config;
  /// Leaf split threshold in series.
  size_t leaf_capacity = 128;
};

/// Timing breakdown of index construction, matching the paper's evaluation
/// measures: "buffer time" (summaries + summarization buffers) and
/// "tree time" (building the subtrees). Their sum is the index time.
struct BuildTimings {
  double buffer_seconds = 0.0;
  double tree_seconds = 0.0;

  double index_seconds() const { return buffer_seconds + tree_seconds; }
};

/// A complete single-node index over one data chunk: the raw series, their
/// full-cardinality SAX table, and the iSAX tree. This is what every system
/// node holds, and what the QueryEngine executes against.
class Index {
 public:
  /// Builds an index over `chunk` (taking ownership). `pool` may be null
  /// for single-threaded construction; `timings` (optional) receives the
  /// buffer/tree breakdown.
  static Index Build(SeriesCollection chunk, const IndexOptions& options,
                     ThreadPool* pool = nullptr,
                     BuildTimings* timings = nullptr);

  Index(Index&&) = default;
  Index& operator=(Index&&) = default;

  const IsaxConfig& config() const { return options_.config; }
  const IndexOptions& options() const { return options_; }
  const SeriesCollection& data() const { return data_; }
  const IndexTree& tree() const { return tree_; }

  /// Full-cardinality SAX summary of series `id` (config().segments() bytes).
  const uint8_t* sax(uint32_t id) const {
    return sax_table_.data() +
           static_cast<size_t>(id) * static_cast<size_t>(config().segments());
  }

  /// Index-structure footprint (SAX table + tree), excluding the raw data —
  /// the quantity of the paper's Figure 14.
  size_t IndexMemoryBytes() const;
  /// Raw-data footprint.
  size_t DataMemoryBytes() const { return data_.MemoryBytes(); }

 private:
  Index(SeriesCollection data, IndexOptions options)
      : data_(std::move(data)), options_(options) {}

  // Index persistence (index/serialize.h) reads/writes the private state.
  friend Status SaveIndexToFile(const Index& index, const std::string& path);
  friend StatusOr<Index> LoadIndexFromFile(const std::string& path);

  SeriesCollection data_;
  IndexOptions options_;
  std::vector<uint8_t> sax_table_;
  IndexTree tree_;
};

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_BUILDER_H_
