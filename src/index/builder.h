#ifndef ODYSSEY_INDEX_BUILDER_H_
#define ODYSSEY_INDEX_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/shared_chunk.h"
#include "src/dataset/series_collection.h"
#include "src/index/tree.h"
#include "src/isax/isax_word.h"

namespace odyssey {

/// Index construction knobs.
struct IndexOptions {
  IsaxConfig config;
  /// Leaf split threshold in series.
  size_t leaf_capacity = 128;
};

/// Timing breakdown of index construction, matching the paper's evaluation
/// measures: "buffer time" (summaries + summarization buffers) and
/// "tree time" (building the subtrees). Their sum is the index time.
/// For an index built from a SharedChunk, buffer time is the bundle's
/// once-per-group summarize_seconds(), reported identically by every
/// replica (the build's critical path runs through that one bundle). Note
/// the streaming caveat: an Adopt-ed bundle's summarize_seconds() covers
/// only the buffer grouping — its PAA/SAX rows were computed on the ingest
/// path and are charged to OdysseyCluster::partition_seconds(), so compare
/// streaming and in-memory builds on partition + index totals, not on
/// buffer_seconds alone.
struct BuildTimings {
  double buffer_seconds = 0.0;
  double tree_seconds = 0.0;

  double index_seconds() const { return buffer_seconds + tree_seconds; }
};

/// A complete single-node index over one data chunk: a refcounted view of
/// the chunk bundle (raw series + full-cardinality SAX table, see
/// src/core/shared_chunk.h) plus this node's iSAX tree. This is what every
/// system node holds, and what the QueryEngine executes against. Replicas
/// of one replication group hold shared_ptrs to the *same* bundle and
/// differ only in their (bit-identical) trees.
class Index {
 public:
  /// Builds a private index over `chunk` (taking ownership): the series are
  /// summarized here, into a bundle only this index references. `pool` may
  /// be null for single-threaded construction; `timings` (optional)
  /// receives the buffer/tree breakdown.
  static Index Build(SeriesCollection chunk, const IndexOptions& options,
                     ThreadPool* pool = nullptr,
                     BuildTimings* timings = nullptr);

  /// Builds an index over an existing bundle without copying or
  /// re-summarizing anything: only the tree is constructed. This is the
  /// replica path — every member of a replication group calls this with
  /// the group's one SharedChunk. The bundle's geometry must match
  /// `options.config` and it must carry summarization buffers.
  static Index BuildFromShared(std::shared_ptr<const SharedChunk> chunk,
                               const IndexOptions& options,
                               ThreadPool* pool = nullptr,
                               BuildTimings* timings = nullptr);

  Index(Index&&) = default;
  Index& operator=(Index&&) = default;

  const IsaxConfig& config() const { return options_.config; }
  const IndexOptions& options() const { return options_; }
  const SeriesCollection& data() const { return chunk_->data(); }
  const IndexTree& tree() const { return tree_; }
  /// The underlying (possibly group-shared) chunk bundle.
  const std::shared_ptr<const SharedChunk>& chunk() const { return chunk_; }

  /// Full-cardinality SAX summary of series `id` (config().segments() bytes).
  const uint8_t* sax(uint32_t id) const { return chunk_->sax(id); }
  const std::vector<uint8_t>& sax_table() const { return chunk_->sax_table(); }

  /// Index-structure footprint (SAX table + tree), excluding the raw data —
  /// the quantity of the paper's Figure 14. The SAX table is counted here
  /// even when shared (each node of a real cluster would store it).
  size_t IndexMemoryBytes() const;
  /// Raw-data footprint this node serves (counted per node even when the
  /// simulation shares the bytes: a real deployment stores them per node).
  size_t DataMemoryBytes() const { return data().MemoryBytes(); }

 private:
  explicit Index(std::shared_ptr<const SharedChunk> chunk,
                 IndexOptions options)
      : chunk_(std::move(chunk)), options_(options) {}

  // Index persistence (index/serialize.h) reads/writes the private state.
  friend Status SaveIndexToFile(const Index& index, const std::string& path);
  friend StatusOr<Index> LoadIndexFromFile(const std::string& path);

  std::shared_ptr<const SharedChunk> chunk_;
  IndexOptions options_;
  IndexTree tree_;
};

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_BUILDER_H_
