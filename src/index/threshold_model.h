#ifndef ODYSSEY_INDEX_THRESHOLD_MODEL_H_
#define ODYSSEY_INDEX_THRESHOLD_MODEL_H_

#include <cstddef>
#include <vector>

#include "src/common/sigmoid_fit.h"
#include "src/common/status.h"

namespace odyssey {

/// The paper's priority-queue size-threshold model (Section 3.2.1,
/// Figure 6): the median priority-queue size a query produces correlates
/// with its initial BSF; fitting a sigmoid to calibration samples and
/// dividing the prediction by a dataset-specific factor (16 for Seismic)
/// yields a per-query TH that keeps queue sizes — and therefore thread
/// load — balanced.
class ThresholdModel {
 public:
  ThresholdModel() = default;

  /// Fits the sigmoid on calibration samples: `initial_bsf[i]` is query i's
  /// initial best-so-far (true distance) and `median_pq_size[i]` the median
  /// size (in leaves) of the priority queues produced while answering it
  /// with unbounded queues. Requires >= 5 samples.
  Status Calibrate(const std::vector<double>& initial_bsf,
                   const std::vector<double>& median_pq_size);

  bool calibrated() const { return calibrated_; }
  const SigmoidParams& sigmoid() const { return sigmoid_; }
  double rmse() const { return rmse_; }

  /// Division factor applied to the sigmoid's median-size estimate
  /// (Figure 6b; the paper uses 16 for Seismic).
  void set_division_factor(double factor) { division_factor_ = factor; }
  double division_factor() const { return division_factor_; }

  /// Predicted queue threshold TH (in leaves, >= 1) for a query whose
  /// initial BSF is `initial_bsf`. Must be calibrated.
  size_t PredictThreshold(double initial_bsf) const;

 private:
  bool calibrated_ = false;
  SigmoidParams sigmoid_;
  double rmse_ = 0.0;
  double division_factor_ = 16.0;
};

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_THRESHOLD_MODEL_H_
