#ifndef ODYSSEY_INDEX_APPROX_SEARCH_H_
#define ODYSSEY_INDEX_APPROX_SEARCH_H_

#include <cstdint>

#include "src/index/builder.h"
#include "src/query/prepared_query.h"

namespace odyssey {

/// Approximate search: descends the index tree to the single leaf whose
/// iSAX word best matches the query and returns the minimum real distance
/// inside it. The result initializes the query's best-so-far (BSF) — the
/// quantity the paper's scheduler predicts execution time from (Figure 4).
///
/// All entry points take a PreparedQuery, so the query's PAA and SAX word
/// are computed once per batch (not once per descent): the driver's
/// scheduling estimates, every replica's BSF seeding and the baselines all
/// share the same prepared artifact.
///
/// Returns the squared Euclidean distance of the approximate answer, and
/// the matching series id via `*answer_id` (optional). The index must be
/// non-empty.
float ApproximateSearchSquared(const Index& index, const PreparedQuery& query,
                               uint32_t* answer_id = nullptr);

/// DTW variant: identical descent, but real distances are squared DTW with
/// the query's warping window. The query must be prepared with an envelope.
float ApproximateSearchSquaredDtw(const Index& index,
                                  const PreparedQuery& query,
                                  uint32_t* answer_id = nullptr);

/// The leaf an approximate search would scan: the non-empty leaf whose iSAX
/// word best matches the query. Exposed so the approximate query mode (the
/// paper's future-work extension) can report the whole leaf's k best
/// candidates instead of a single distance.
const TreeNode* ApproximateSearchLeaf(const Index& index,
                                      const PreparedQuery& query);

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_APPROX_SEARCH_H_
