#ifndef ODYSSEY_INDEX_BUFFERS_H_
#define ODYSSEY_INDEX_BUFFERS_H_

#include <cstdint>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dataset/series_collection.h"
#include "src/isax/isax_word.h"

namespace odyssey {

/// The flat table of full-cardinality SAX summaries for a chunk: one row of
/// config.segments() bytes per series. Computed in parallel; this is the
/// first half of the paper's "buffer time".
std::vector<uint8_t> ComputeSaxTable(const SeriesCollection& data,
                                     const IsaxConfig& config,
                                     ThreadPool* pool);

/// Summarization buffers: series ids grouped by root key (the top bit of
/// each segment), i.e., by root subtree. Keys are sorted ascending and ids
/// within a buffer are ascending — both deterministic so replicas group
/// identically. This is the second half of "buffer time", and the structure
/// the DENSITY-AWARE partitioner operates on.
struct SummarizationBuffers {
  std::vector<uint32_t> keys;                    ///< sorted distinct root keys
  std::vector<std::vector<uint32_t>> series;     ///< ids per key (parallel)

  size_t buffer_count() const { return keys.size(); }
};

/// Groups all series of `sax_table` (a view of `series_count` rows of
/// config.segments() bytes — e.g. a SharedChunk's table) by root key.
SummarizationBuffers BuildBuffers(const uint8_t* sax_table,
                                  size_t series_count,
                                  const IsaxConfig& config, ThreadPool* pool);

}  // namespace odyssey

#endif  // ODYSSEY_INDEX_BUFFERS_H_
