#include "src/dataset/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

namespace odyssey {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + ": " + path + " (" + std::strerror(errno) + ")";
}

bool MmapDisabledByEnv() {
  const char* env = std::getenv("ODYSSEY_NO_MMAP");
  return env != nullptr && *env != '\0' && *env != '0';
}

}  // namespace

StatusOr<MappedFile> MappedFile::Open(const std::string& path, Mode mode) {
  MappedFile file;
  file.path_ = path;
  file.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd_ < 0) {
    return Status::IoError(Errno("cannot open for reading", path));
  }
  struct stat st;
  if (::fstat(file.fd_, &st) != 0) {
    return Status::IoError(Errno("cannot stat", path));
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  file.size_ = static_cast<uint64_t>(st.st_size);
  // On an ILP32 build a >4 GiB file exceeds what one mmap (size_t length)
  // can address: fall back to positioned reads rather than silently mapping
  // a truncated prefix that ReadAt's 64-bit bounds check would overrun.
  const bool addressable =
      file.size_ <= std::numeric_limits<size_t>::max();
  if (mode == Mode::kAuto && file.size_ > 0 && addressable &&
      !MmapDisabledByEnv()) {
    void* map = ::mmap(nullptr, static_cast<size_t>(file.size_), PROT_READ,
                       MAP_PRIVATE, file.fd_,
                       /*offset=*/0);
    if (map != MAP_FAILED) {
      file.map_ = map;
      // Advisory only: ingestion sweeps the archive front to back, so ask
      // the kernel for aggressive read-ahead. Failure is harmless.
      (void)::posix_madvise(map, file.size_, POSIX_MADV_SEQUENTIAL);
    }
    // mmap failure (e.g. a filesystem without mapping support) is not an
    // error: the fd stays open and every ReadAt goes through pread.
  }
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      map_(std::exchange(other.map_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    map_ = std::exchange(other.map_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() { Close(); }

void MappedFile::Close() {
  if (map_ != nullptr) {
    // A live mapping implies size_ fit a size_t (checked at Open).
    ::munmap(map_, static_cast<size_t>(size_));
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MappedFile::ReadAt(uint64_t offset, void* dst, size_t n) const {
  if (n == 0) return Status::Ok();
  if (offset > size_ || n > size_ - offset) {
    return Status::IoError("read past end of file: " + path_);
  }
  if (map_ != nullptr) {
    std::memcpy(dst, static_cast<const uint8_t*>(map_) + offset, n);
    return Status::Ok();
  }
  uint8_t* out = static_cast<uint8_t*>(dst);
  size_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    if (pos > static_cast<uint64_t>(std::numeric_limits<off_t>::max())) {
      // 32-bit off_t without _FILE_OFFSET_BITS=64 cannot address this
      // byte; fail loudly instead of wrapping the offset.
      return Status::IoError("offset exceeds this platform's off_t: " +
                             path_);
    }
    const ssize_t got = ::pread(fd_, out + done, n - done,
                                static_cast<off_t>(pos));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("read failed", path_));
    }
    if (got == 0) {
      // The file shrank underneath us (fstat said the bytes existed).
      return Status::IoError("short read (file truncated?): " + path_);
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

}  // namespace odyssey
