#ifndef ODYSSEY_DATASET_INGEST_H_
#define ODYSSEY_DATASET_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/dataset/mapped_file.h"
#include "src/dataset/series_collection.h"

namespace odyssey {

/// On-disk formats of the paper's public archives (Table 1). All multi-byte
/// fields are little-endian (the archives are produced on x86).
enum class DataFormat {
  /// Pick by file extension: .fvecs, .bvecs, .bin (Odyssey-headered),
  /// anything else raw floats.
  kAuto,
  /// Headerless float32 series, back to back (Seismic/Astro archives). The
  /// series length cannot be derived from the file and must be supplied.
  kRawFloat,
  /// TEXMEX fvecs (SIFT/Deep1B slices): per vector, an int32 dimension
  /// header followed by that many float32 components.
  kFvecs,
  /// TEXMEX bvecs (SIFT1B): per vector, an int32 dimension header followed
  /// by that many uint8 components (widened to float on ingest).
  kBvecs,
  /// This library's own headered format ("ODSY" magic; see file_io.h).
  kOdyssey,
};

const char* DataFormatToString(DataFormat format);

/// Guesses the format from the file extension (see DataFormat::kAuto).
DataFormat FormatFromPath(const std::string& path);

/// How one archive is pulled into SeriesCollections.
struct IngestOptions {
  DataFormat format = DataFormat::kAuto;
  /// Series length in points. Required for kRawFloat; for the
  /// self-describing formats it is optional and, when non-zero, validated
  /// against the file's own headers.
  size_t length = 0;
  /// Z-normalize every series on ingest. The iSAX breakpoints are N(0,1)
  /// quantiles, so indexes assume z-normalized input; raw archives
  /// (especially SIFT/Deep embeddings) are not stored normalized.
  bool znormalize = true;
  /// Series per NextChunk() pull. Bounds the ingestion pipeline's heap:
  /// a chunk never allocates more than chunk_size * length * sizeof(float)
  /// bytes of series storage.
  size_t chunk_size = 1 << 16;
  /// kBuffered forces the pread fallback (tests cover both paths with it).
  MappedFile::Mode io_mode = MappedFile::Mode::kAuto;
  /// Skip this many series from the front of the archive before reading.
  size_t skip_series = 0;
  /// Stop after this many series (0 = the whole archive). Slicing knob for
  /// the billion-scale archives the paper subsamples.
  size_t max_series = 0;
};

/// Pull-based, bounded-memory reader over one on-disk archive. Validates
/// the file geometry at Open — header counts are checked against the actual
/// fstat size before any allocation, so a corrupt header can never trigger
/// an unbounded allocation; per-vector dimension headers are re-validated
/// as each chunk is read. Yields fixed-size SeriesCollection chunks so
/// collections larger than RAM can feed partitioning and index build chunk
/// by chunk.
class SeriesIngestor {
 public:
  /// Opens and validates `path`. Errors: IoError for missing/unreadable
  /// files, InvalidArgument for geometry that contradicts the file size.
  static StatusOr<SeriesIngestor> Open(const std::string& path,
                                       const IngestOptions& options);

  SeriesIngestor(SeriesIngestor&&) = default;
  SeriesIngestor& operator=(SeriesIngestor&&) = default;

  /// Series length in points (from the options or the file's headers).
  size_t length() const { return length_; }
  /// Series this ingestor will yield in total (after skip/max slicing).
  size_t total_series() const { return total_; }
  /// Series yielded so far.
  size_t series_read() const { return next_; }
  bool exhausted() const { return next_ >= total_; }
  /// True when reads go through the memory map (false = pread fallback).
  bool using_mmap() const { return file_.mapped(); }
  DataFormat format() const { return format_; }
  const std::string& path() const { return file_.path(); }

  /// Pulls the next at-most-chunk_size series. An empty collection signals
  /// end of archive. The returned chunk owns exactly
  /// min(chunk_size, remaining) * length floats of series heap.
  StatusOr<SeriesCollection> NextChunk();

  /// Convenience for archives that fit in RAM: concatenates every remaining
  /// chunk into one collection.
  StatusOr<SeriesCollection> ReadAll();

  /// Rewinds to the first (post-skip) series.
  void Reset() { next_ = 0; }

 private:
  SeriesIngestor(MappedFile file, const IngestOptions& options);

  Status Validate();
  Status FillChunk(size_t begin, size_t count, float* dst);

  MappedFile file_;
  IngestOptions options_;
  DataFormat format_ = DataFormat::kRawFloat;
  size_t length_ = 0;
  size_t total_ = 0;       ///< series to yield (after skip/max)
  size_t first_ = 0;       ///< absolute index of the first yielded series
  size_t next_ = 0;        ///< relative cursor in [0, total_]
  uint64_t data_offset_ = 0;   ///< bytes before series 0 (ODSY header)
  uint64_t record_bytes_ = 0;  ///< on-disk stride of one series
  std::vector<uint8_t> scratch_;  ///< bvecs byte buffer (one record)
};

/// One-call ingest of a whole archive (Open + ReadAll).
StatusOr<SeriesCollection> IngestFile(const std::string& path,
                                      const IngestOptions& options);

/// Double-buffered pull pipeline over one SeriesIngestor: a background
/// thread keeps exactly one chunk in flight, so the consumer's processing
/// of chunk i (partitioning + summarization in the streaming index build)
/// overlaps with the disk read of chunk i+1. Peak heap therefore stays at
/// two chunks (the one being processed + the one being pulled) — still
/// bounded, unlike read-ahead queues that can outrun a slow consumer.
///
/// Single-consumer: Next() must be called from one thread. The wrapped
/// ingestor must outlive the prefetcher and must not be touched by anyone
/// else while the prefetcher is alive (the background thread owns it).
class ChunkPrefetcher {
 public:
  explicit ChunkPrefetcher(SeriesIngestor* source);
  /// Joins the background thread. At most the one in-flight pull completes
  /// first — remaining chunks are left unread (early abort of a streaming
  /// consumer must not cost a full archive scan).
  ~ChunkPrefetcher();

  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;

  /// The next chunk, in archive order — blocking only for whatever part of
  /// its pull has not already overlapped the caller's processing. Mirrors
  /// SeriesIngestor::NextChunk: an empty collection signals end of archive,
  /// and after an error every further Next() re-reports that error (a
  /// partially read archive never masquerades as a complete one).
  StatusOr<SeriesCollection> Next() ODYSSEY_EXCLUDES(mu_);

  /// Total wall seconds the background thread spent inside NextChunk — the
  /// streaming build's ingest_seconds when prefetching.
  double pull_seconds() const ODYSSEY_EXCLUDES(mu_);
  /// Seconds of pulling that overlapped the consumer (pull time the
  /// consumer never waited for): pull_seconds() minus the time Next()
  /// spent blocked.
  double overlap_seconds() const ODYSSEY_EXCLUDES(mu_);

 private:
  void PullLoop() ODYSSEY_EXCLUDES(mu_);

  SeriesIngestor* const source_;
  CountedThread puller_;

  // One mutex guards the whole slot protocol; the two condvars split the
  // wake directions (producer waits on slot_emptied_, consumer on
  // slot_filled_) so neither side's Signal wakes the wrong party.
  mutable Mutex mu_;
  CondVar slot_filled_;
  CondVar slot_emptied_;
  bool has_chunk_ ODYSSEY_GUARDED_BY(mu_) = false;  // slot_ unconsumed
  bool finished_ ODYSSEY_GUARDED_BY(mu_) = false;   // puller exited
  bool cancelled_ ODYSSEY_GUARDED_BY(mu_) = false;  // dtor ran: stop pulling
  StatusOr<SeriesCollection> slot_ ODYSSEY_GUARDED_BY(mu_) =
      SeriesCollection(1);
  /// Sticky error for re-reporting after a failed pull.
  Status terminal_error_ ODYSSEY_GUARDED_BY(mu_) = Status::Ok();
  double pull_seconds_ ODYSSEY_GUARDED_BY(mu_) = 0.0;
  /// Time Next() spent blocked on the slot.
  double wait_seconds_ ODYSSEY_GUARDED_BY(mu_) = 0.0;
};

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_INGEST_H_
