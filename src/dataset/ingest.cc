#include "src/dataset/ingest.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>

#include "src/common/math_utils.h"
#include "src/common/stopwatch.h"

namespace odyssey {
namespace {

// Matches file_io.cc's headered format.
constexpr char kOdsyMagic[4] = {'O', 'D', 'S', 'Y'};
constexpr uint32_t kOdsyVersion = 1;
constexpr uint64_t kOdsyHeaderBytes = 16;

// Sanity cap on a per-vector dimension header: anything above this is a
// corrupt or hostile file, not a data series (the paper's longest series is
// 256 points; embedding archives top out in the low thousands).
constexpr uint32_t kMaxVectorDim = 1u << 20;

std::string LowerExtension(const std::string& path) {
  const size_t dot = path.find_last_of('.');
  const size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return "";
  }
  std::string ext = path.substr(dot + 1);
  for (char& c : ext) c = static_cast<char>(std::tolower(c));
  return ext;
}

}  // namespace

const char* DataFormatToString(DataFormat format) {
  switch (format) {
    case DataFormat::kAuto: return "auto";
    case DataFormat::kRawFloat: return "raw-float";
    case DataFormat::kFvecs: return "fvecs";
    case DataFormat::kBvecs: return "bvecs";
    case DataFormat::kOdyssey: return "odyssey";
  }
  return "?";
}

DataFormat FormatFromPath(const std::string& path) {
  const std::string ext = LowerExtension(path);
  if (ext == "fvecs") return DataFormat::kFvecs;
  if (ext == "bvecs") return DataFormat::kBvecs;
  if (ext == "bin" || ext == "odsy") return DataFormat::kOdyssey;
  return DataFormat::kRawFloat;
}

SeriesIngestor::SeriesIngestor(MappedFile file, const IngestOptions& options)
    : file_(std::move(file)), options_(options) {}

StatusOr<SeriesIngestor> SeriesIngestor::Open(const std::string& path,
                                              const IngestOptions& options) {
  StatusOr<MappedFile> file = MappedFile::Open(path, options.io_mode);
  if (!file.ok()) return file.status();
  SeriesIngestor ingestor(std::move(*file), options);
  ingestor.format_ = options.format == DataFormat::kAuto
                         ? FormatFromPath(path)
                         : options.format;
  Status validated = ingestor.Validate();
  if (!validated.ok()) return validated;
  return ingestor;
}

Status SeriesIngestor::Validate() {
  const std::string& path = file_.path();
  const uint64_t size = file_.size();
  size_t total_in_file = 0;
  switch (format_) {
    case DataFormat::kRawFloat: {
      if (options_.length == 0) {
        return Status::InvalidArgument(
            "raw-float archives are headerless; IngestOptions.length is "
            "required: " + path);
      }
      length_ = options_.length;
      record_bytes_ = static_cast<uint64_t>(length_) * sizeof(float);
      if (size % record_bytes_ != 0) {
        return Status::InvalidArgument(
            "file size is not a multiple of the series length: " + path);
      }
      total_in_file = static_cast<size_t>(size / record_bytes_);
      break;
    }
    case DataFormat::kFvecs:
    case DataFormat::kBvecs: {
      const uint64_t elem =
          format_ == DataFormat::kFvecs ? sizeof(float) : sizeof(uint8_t);
      if (size < sizeof(uint32_t)) {
        return Status::InvalidArgument(
            "file too small for a vector dimension header: " + path);
      }
      uint32_t dim = 0;
      Status read = file_.ReadAt(0, &dim, sizeof(dim));
      if (!read.ok()) return read;
      if (dim == 0 || dim > kMaxVectorDim) {
        return Status::InvalidArgument(
            "implausible vector dimension header (" + std::to_string(dim) +
            ") in " + path);
      }
      if (options_.length != 0 && options_.length != dim) {
        return Status::InvalidArgument(
            "requested length " + std::to_string(options_.length) +
            " but the file's vectors have dimension " + std::to_string(dim) +
            ": " + path);
      }
      length_ = dim;
      record_bytes_ = sizeof(uint32_t) + static_cast<uint64_t>(dim) * elem;
      if (size % record_bytes_ != 0) {
        return Status::InvalidArgument(
            "file size is not a multiple of the vector record size: " + path);
      }
      total_in_file = static_cast<size_t>(size / record_bytes_);
      if (format_ == DataFormat::kBvecs) scratch_.resize(length_);
      break;
    }
    case DataFormat::kOdyssey: {
      if (size < kOdsyHeaderBytes) {
        return Status::IoError("short header read: " + path);
      }
      char magic[4];
      uint32_t version = 0, count = 0, length32 = 0;
      Status read = file_.ReadAt(0, magic, 4);
      if (read.ok()) read = file_.ReadAt(4, &version, sizeof(version));
      if (read.ok()) read = file_.ReadAt(8, &count, sizeof(count));
      if (read.ok()) read = file_.ReadAt(12, &length32, sizeof(length32));
      if (!read.ok()) return read;
      if (std::memcmp(magic, kOdsyMagic, 4) != 0) {
        return Status::InvalidArgument("bad magic in " + path);
      }
      if (version != kOdsyVersion) {
        return Status::InvalidArgument("unsupported version in " + path);
      }
      if (length32 == 0) {
        return Status::InvalidArgument("zero series length in " + path);
      }
      if (options_.length != 0 && options_.length != length32) {
        return Status::InvalidArgument(
            "requested length " + std::to_string(options_.length) +
            " but the file header says " + std::to_string(length32) + ": " +
            path);
      }
      // The header's count is untrusted until it agrees with the actual
      // file size — a corrupt count must never size an allocation. u32*u32
      // fits a u64; only the *sizeof(float) step needs an explicit guard.
      const uint64_t payload_floats =
          static_cast<uint64_t>(count) * length32;
      if (payload_floats >
          (std::numeric_limits<uint64_t>::max() - kOdsyHeaderBytes) /
              sizeof(float)) {
        return Status::InvalidArgument(
            "header count/length overflow a 64-bit byte size: " + path);
      }
      if (kOdsyHeaderBytes + payload_floats * sizeof(float) != size) {
        return Status::InvalidArgument(
            "header count disagrees with the file size (count=" +
            std::to_string(count) + ", length=" + std::to_string(length32) +
            ", bytes=" + std::to_string(size) + "): " + path);
      }
      length_ = length32;
      record_bytes_ = static_cast<uint64_t>(length_) * sizeof(float);
      data_offset_ = kOdsyHeaderBytes;
      total_in_file = count;
      break;
    }
    case DataFormat::kAuto:
      return Status::Internal("unresolved auto format for " + path);
  }
  first_ = std::min(options_.skip_series, total_in_file);
  total_ = total_in_file - first_;
  if (options_.max_series != 0) total_ = std::min(total_, options_.max_series);
  if (options_.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  return Status::Ok();
}

Status SeriesIngestor::FillChunk(size_t begin, size_t count, float* dst) {
  const uint64_t abs = first_ + begin;
  switch (format_) {
    case DataFormat::kRawFloat:
    case DataFormat::kOdyssey:
      // Contiguous on disk: one straight copy (a single memcpy out of the
      // map, or one pread run in the buffered fallback).
      return file_.ReadAt(data_offset_ + abs * record_bytes_, dst,
                          count * static_cast<size_t>(record_bytes_));
    case DataFormat::kFvecs: {
      for (size_t i = 0; i < count; ++i) {
        const uint64_t off = (abs + i) * record_bytes_;
        uint32_t dim = 0;
        Status read = file_.ReadAt(off, &dim, sizeof(dim));
        if (!read.ok()) return read;
        if (dim != length_) {
          return Status::InvalidArgument(
              "vector " + std::to_string(abs + i) +
              " has dimension " + std::to_string(dim) + ", expected " +
              std::to_string(length_) + ": " + file_.path());
        }
        read = file_.ReadAt(off + sizeof(dim), dst + i * length_,
                            length_ * sizeof(float));
        if (!read.ok()) return read;
      }
      return Status::Ok();
    }
    case DataFormat::kBvecs: {
      for (size_t i = 0; i < count; ++i) {
        const uint64_t off = (abs + i) * record_bytes_;
        uint32_t dim = 0;
        Status read = file_.ReadAt(off, &dim, sizeof(dim));
        if (!read.ok()) return read;
        if (dim != length_) {
          return Status::InvalidArgument(
              "vector " + std::to_string(abs + i) +
              " has dimension " + std::to_string(dim) + ", expected " +
              std::to_string(length_) + ": " + file_.path());
        }
        read = file_.ReadAt(off + sizeof(dim), scratch_.data(), length_);
        if (!read.ok()) return read;
        float* row = dst + i * length_;
        for (size_t t = 0; t < length_; ++t) {
          row[t] = static_cast<float>(scratch_[t]);
        }
      }
      return Status::Ok();
    }
    case DataFormat::kAuto:
      break;
  }
  return Status::Internal("unresolved format");
}

StatusOr<SeriesCollection> SeriesIngestor::NextChunk() {
  SeriesCollection out(length_);
  const size_t n = std::min(options_.chunk_size, total_ - next_);
  if (n == 0) return out;  // empty collection = end of archive
  out.Reserve(n);
  float* dst = out.AppendUninitialized(n);
  Status filled = FillChunk(next_, n, dst);
  if (!filled.ok()) return filled;
  if (options_.znormalize) {
    for (size_t i = 0; i < n; ++i) ZNormalize(dst + i * length_, length_);
  }
  next_ += n;
  return out;
}

StatusOr<SeriesCollection> SeriesIngestor::ReadAll() {
  // Single allocation of the full remainder: this is the explicit
  // fits-in-RAM convenience; bounded-memory callers pull NextChunk.
  SeriesCollection out(length_);
  const size_t n = total_ - next_;
  if (n == 0) return out;
  out.Reserve(n);
  float* dst = out.AppendUninitialized(n);
  Status filled = FillChunk(next_, n, dst);
  if (!filled.ok()) return filled;
  if (options_.znormalize) {
    for (size_t i = 0; i < n; ++i) ZNormalize(dst + i * length_, length_);
  }
  next_ = total_;
  return out;
}

StatusOr<SeriesCollection> IngestFile(const std::string& path,
                                      const IngestOptions& options) {
  StatusOr<SeriesIngestor> ingestor = SeriesIngestor::Open(path, options);
  if (!ingestor.ok()) return ingestor.status();
  return ingestor->ReadAll();
}

ChunkPrefetcher::ChunkPrefetcher(SeriesIngestor* source) : source_(source) {
  ODYSSEY_CHECK(source != nullptr);
  // CountedThread folds the puller into executor_stats::ThreadsSpawned —
  // this spawn used to be invisible to the accounting, understating the
  // streaming build's thread cost by one per prefetcher.
  puller_ = CountedThread([this] { PullLoop(); });
}

ChunkPrefetcher::~ChunkPrefetcher() {
  // Cancel rather than drain: at most the pull already in flight finishes;
  // an early-aborting consumer must not pay for reading the whole archive.
  {
    MutexLock lock(&mu_);
    cancelled_ = true;
    slot_emptied_.SignalAll();
  }
  if (puller_.joinable()) puller_.Join();
}

void ChunkPrefetcher::PullLoop() {
  Stopwatch watch;
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (cancelled_) {
        finished_ = true;
        return;
      }
    }
    watch.Restart();
    StatusOr<SeriesCollection> chunk = source_->NextChunk();
    const double pulled = watch.ElapsedSeconds();
    const bool terminal = !chunk.ok() || chunk->empty();
    MutexLock lock(&mu_);
    pull_seconds_ += pulled;
    while (has_chunk_ && !cancelled_) slot_emptied_.Wait(&mu_);
    if (cancelled_) {
      finished_ = true;
      return;
    }
    if (!chunk.ok()) terminal_error_ = chunk.status();
    slot_ = std::move(chunk);
    has_chunk_ = true;
    if (terminal) finished_ = true;
    slot_filled_.SignalAll();
    if (terminal) return;
  }
}

StatusOr<SeriesCollection> ChunkPrefetcher::Next() {
  Stopwatch watch;
  MutexLock lock(&mu_);
  while (!has_chunk_ && !finished_) slot_filled_.Wait(&mu_);
  wait_seconds_ += watch.ElapsedSeconds();
  if (!has_chunk_) {
    // The terminal chunk was already consumed: keep mirroring NextChunk,
    // which re-reports an error (next_ never advanced past it) and reports
    // end-of-archive again after a clean EOF.
    if (!terminal_error_.ok()) return terminal_error_;
    return SeriesCollection(source_->length());
  }
  StatusOr<SeriesCollection> chunk = std::move(slot_);
  has_chunk_ = false;
  slot_emptied_.SignalAll();
  return chunk;
}

double ChunkPrefetcher::pull_seconds() const {
  MutexLock lock(&mu_);
  return pull_seconds_;
}

double ChunkPrefetcher::overlap_seconds() const {
  MutexLock lock(&mu_);
  return pull_seconds_ > wait_seconds_ ? pull_seconds_ - wait_seconds_ : 0.0;
}

}  // namespace odyssey
