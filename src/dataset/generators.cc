#include "src/dataset/generators.h"

#include <cmath>
#include <vector>

#include "src/common/math_utils.h"
#include "src/common/rng.h"

namespace odyssey {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

SeriesCollection GenerateRandomWalk(size_t count, size_t length,
                                    uint64_t seed) {
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    float* s = dst + i * length;
    double acc = 0.0;
    for (size_t t = 0; t < length; ++t) {
      acc += rng.NextGaussian();
      s[t] = static_cast<float>(acc);
    }
    ZNormalize(s, length);
  }
  return out;
}

SeriesCollection GenerateSeismicLike(size_t count, size_t length,
                                     uint64_t seed) {
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(count);
  Rng rng(seed);
  // A small dictionary of "event shapes" shared by many records produces the
  // high inter-series similarity seen in seismic archives.
  constexpr size_t kTemplates = 32;
  std::vector<double> template_freq(kTemplates), template_decay(kTemplates);
  for (size_t k = 0; k < kTemplates; ++k) {
    template_freq[k] = 2.0 + 14.0 * rng.NextDouble();   // cycles per series
    template_decay[k] = 2.0 + 6.0 * rng.NextDouble();   // burst damping
  }
  for (size_t i = 0; i < count; ++i) {
    float* s = dst + i * length;
    const size_t k = rng.NextBounded(kTemplates);
    const double onset = 0.1 + 0.5 * rng.NextDouble();  // burst start (frac)
    const double amp = 0.5 + 2.5 * rng.NextDouble();
    const double noise = 0.05 + 0.4 * rng.NextDouble();
    double ar = 0.0;  // AR(1) correlated background noise
    for (size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t) / static_cast<double>(length);
      ar = 0.9 * ar + noise * rng.NextGaussian();
      double v = ar;
      if (x >= onset) {
        const double u = x - onset;
        v += amp * std::exp(-template_decay[k] * u) *
             std::sin(2.0 * kPi * template_freq[k] * u);
      }
      s[t] = static_cast<float>(v);
    }
    ZNormalize(s, length);
  }
  return out;
}

SeriesCollection GenerateAstroLike(size_t count, size_t length,
                                   uint64_t seed) {
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    float* s = dst + i * length;
    // Slowly varying baseline (long-term AGN variability) plus a heavy-tailed
    // number of flares. Many series are near-flat (dense iSAX buffers) while
    // a few are dominated by large flares (sparse buffers).
    const double slope = 0.5 * rng.NextGaussian();
    const size_t flares = static_cast<size_t>(
        std::floor(std::pow(rng.NextDouble(), 3.0) * 6.0));  // skewed 0..5
    std::vector<double> flare_pos(flares), flare_amp(flares), flare_w(flares);
    for (size_t f = 0; f < flares; ++f) {
      flare_pos[f] = rng.NextDouble();
      // Pareto-ish amplitudes: heavy tail.
      flare_amp[f] = 1.0 / std::pow(1.0 - 0.95 * rng.NextDouble(), 0.8);
      flare_w[f] = 0.01 + 0.05 * rng.NextDouble();
    }
    for (size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t) / static_cast<double>(length);
      double v = slope * x + 0.2 * rng.NextGaussian();
      for (size_t f = 0; f < flares; ++f) {
        const double u = (x - flare_pos[f]) / flare_w[f];
        v += flare_amp[f] * std::exp(-0.5 * u * u);
      }
      s[t] = static_cast<float>(v);
    }
    ZNormalize(s, length);
  }
  return out;
}

SeriesCollection GenerateEmbeddingLike(size_t count, size_t length,
                                       size_t clusters, uint64_t seed) {
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(count);
  Rng rng(seed);
  // Cluster centroids drawn once; members are centroid + isotropic noise.
  std::vector<float> centroids(clusters * length);
  for (float& v : centroids) v = static_cast<float>(rng.NextGaussian());
  for (size_t i = 0; i < count; ++i) {
    float* s = dst + i * length;
    const size_t c = rng.NextBounded(clusters);
    const float* mu = centroids.data() + c * length;
    for (size_t t = 0; t < length; ++t) {
      s[t] = mu[t] + static_cast<float>(0.7 * rng.NextGaussian());
    }
    ZNormalize(s, length);
  }
  return out;
}

SeriesCollection GenerateCrossModalLike(size_t count, size_t length,
                                        uint64_t seed) {
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(count);
  Rng rng(seed);
  // Two modalities sharing one space: "image" embeddings form tight clusters,
  // "text" embeddings form fewer, much more diffuse clusters.
  constexpr size_t kImageClusters = 64;
  constexpr size_t kTextClusters = 8;
  std::vector<float> image_centroids(kImageClusters * length);
  std::vector<float> text_centroids(kTextClusters * length);
  for (float& v : image_centroids) v = static_cast<float>(rng.NextGaussian());
  for (float& v : text_centroids) v = static_cast<float>(rng.NextGaussian());
  for (size_t i = 0; i < count; ++i) {
    float* s = dst + i * length;
    const bool image = rng.NextDouble() < 0.5;
    const float* mu = image
                          ? image_centroids.data() +
                                rng.NextBounded(kImageClusters) * length
                          : text_centroids.data() +
                                rng.NextBounded(kTextClusters) * length;
    const double sigma = image ? 0.3 : 1.2;
    for (size_t t = 0; t < length; ++t) {
      s[t] = mu[t] + static_cast<float>(sigma * rng.NextGaussian());
    }
    ZNormalize(s, length);
  }
  return out;
}

}  // namespace odyssey
