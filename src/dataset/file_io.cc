#include "src/dataset/file_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace odyssey {
namespace {

constexpr char kMagic[4] = {'O', 'D', 'S', 'Y'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteCollection(const SeriesCollection& collection,
                       const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const uint32_t count = static_cast<uint32_t>(collection.size());
  const uint32_t length = static_cast<uint32_t>(collection.length());
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fwrite(&length, sizeof(length), 1, f.get()) != 1) {
    return Status::IoError("short header write: " + path);
  }
  for (size_t i = 0; i < collection.size(); ++i) {
    if (std::fwrite(collection.data(i), sizeof(float), length, f.get()) !=
        length) {
      return Status::IoError("short data write: " + path);
    }
  }
  return Status::Ok();
}

StatusOr<SeriesCollection> ReadCollection(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[4];
  uint32_t version = 0, count = 0, length = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::fread(&version, sizeof(version), 1, f.get()) != 1 ||
      std::fread(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fread(&length, sizeof(length), 1, f.get()) != 1) {
    return Status::IoError("short header read: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported version in " + path);
  }
  if (length == 0) {
    return Status::InvalidArgument("zero series length in " + path);
  }
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(count);
  if (std::fread(dst, sizeof(float), static_cast<size_t>(count) * length,
                 f.get()) != static_cast<size_t>(count) * length) {
    return Status::IoError("short data read: " + path);
  }
  return out;
}

StatusOr<SeriesCollection> ReadRawFloats(const std::string& path,
                                         size_t length) {
  if (length == 0) return Status::InvalidArgument("length must be positive");
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::fseek(f.get(), 0, SEEK_END);
  const long bytes = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (bytes < 0) return Status::IoError("cannot stat: " + path);
  const size_t total_floats = static_cast<size_t>(bytes) / sizeof(float);
  if (total_floats % length != 0) {
    return Status::InvalidArgument(
        "file size is not a multiple of the series length: " + path);
  }
  SeriesCollection out(length);
  const size_t count = total_floats / length;
  float* dst = out.AppendUninitialized(count);
  if (std::fread(dst, sizeof(float), total_floats, f.get()) != total_floats) {
    return Status::IoError("short data read: " + path);
  }
  return out;
}

}  // namespace odyssey
