#include "src/dataset/file_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/dataset/ingest.h"

namespace odyssey {
namespace {

constexpr char kMagic[4] = {'O', 'D', 'S', 'Y'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// fclose flushes stdio buffers; an unchecked close can silently drop the
/// tail of a write. Every writer finishes through this.
Status CloseChecked(FilePtr f, const std::string& path) {
  std::FILE* raw = f.release();
  if (raw != nullptr && std::fclose(raw) != 0) {
    return Status::IoError("close failed (data may be incomplete): " + path);
  }
  return Status::Ok();
}

}  // namespace

Status WriteCollection(const SeriesCollection& collection,
                       const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const uint32_t count = static_cast<uint32_t>(collection.size());
  const uint32_t length = static_cast<uint32_t>(collection.length());
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1 ||
      std::fwrite(&length, sizeof(length), 1, f.get()) != 1) {
    return Status::IoError("short header write: " + path);
  }
  for (size_t i = 0; i < collection.size(); ++i) {
    if (std::fwrite(collection.data(i), sizeof(float), length, f.get()) !=
        length) {
      return Status::IoError("short data write: " + path);
    }
  }
  return CloseChecked(std::move(f), path);
}

StatusOr<SeriesCollection> ReadCollection(const std::string& path) {
  IngestOptions options;
  options.format = DataFormat::kOdyssey;
  options.znormalize = false;  // bit-preserving read of what was written
  return IngestFile(path, options);
}

StatusOr<SeriesCollection> ReadRawFloats(const std::string& path,
                                         size_t length) {
  if (length == 0) return Status::InvalidArgument("length must be positive");
  IngestOptions options;
  options.format = DataFormat::kRawFloat;
  options.length = length;
  options.znormalize = false;  // bit-preserving read of the archive
  return IngestFile(path, options);
}

Status WriteRawFloats(const SeriesCollection& collection,
                      const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t length = collection.length();
  for (size_t i = 0; i < collection.size(); ++i) {
    if (std::fwrite(collection.data(i), sizeof(float), length, f.get()) !=
        length) {
      return Status::IoError("short data write: " + path);
    }
  }
  return CloseChecked(std::move(f), path);
}

Status WriteFvecs(const SeriesCollection& collection,
                  const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const uint32_t dim = static_cast<uint32_t>(collection.length());
  for (size_t i = 0; i < collection.size(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(collection.data(i), sizeof(float), dim, f.get()) != dim) {
      return Status::IoError("short data write: " + path);
    }
  }
  return CloseChecked(std::move(f), path);
}

Status WriteBvecs(const SeriesCollection& collection,
                  const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const uint32_t dim = static_cast<uint32_t>(collection.length());
  std::vector<uint8_t> row(dim);
  for (size_t i = 0; i < collection.size(); ++i) {
    const float* values = collection.data(i);
    for (uint32_t t = 0; t < dim; ++t) {
      const float clamped = std::min(255.0f, std::max(0.0f, values[t]));
      row[t] = static_cast<uint8_t>(std::lround(clamped));
    }
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(row.data(), 1, dim, f.get()) != dim) {
      return Status::IoError("short data write: " + path);
    }
  }
  return CloseChecked(std::move(f), path);
}

}  // namespace odyssey
