#include "src/dataset/registry.h"

#include "src/common/check.h"
#include "src/dataset/generators.h"

namespace odyssey {

std::vector<DatasetSpec> Table1Datasets(double scale) {
  auto scaled = [scale](size_t base) {
    const size_t n = static_cast<size_t>(static_cast<double>(base) * scale);
    return n < 128 ? 128 : n;
  };
  std::vector<DatasetSpec> specs;
  specs.push_back({"Seismic", "seismic records (stand-in)", 256,
                   scaled(40000), 100'000'000, 100.0,
                   [](size_t c, uint64_t s) { return GenerateSeismicLike(c, 256, s); }});
  specs.push_back({"Astro", "astronomical data (stand-in)", 256,
                   scaled(40000), 270'000'000, 265.0,
                   [](size_t c, uint64_t s) { return GenerateAstroLike(c, 256, s); }});
  specs.push_back({"Deep", "deep embeddings (stand-in)", 96,
                   scaled(100000), 1'000'000'000, 358.0,
                   [](size_t c, uint64_t s) { return GenerateEmbeddingLike(c, 96, 256, s); }});
  specs.push_back({"Sift", "image descriptors (stand-in)", 128,
                   scaled(80000), 1'000'000'000, 477.0,
                   [](size_t c, uint64_t s) { return GenerateEmbeddingLike(c, 128, 512, s); }});
  specs.push_back({"Yan-TtI", "image and text embeddings (stand-in)", 200,
                   scaled(50000), 1'000'000'000, 800.0,
                   [](size_t c, uint64_t s) { return GenerateCrossModalLike(c, 200, s); }});
  specs.push_back({"Random", "random walks (as in the paper)", 256,
                   scaled(40000), 100'000'000, 100.0,
                   [](size_t c, uint64_t s) { return GenerateRandomWalk(c, 256, s); }});
  return specs;
}

DatasetSpec Table1Dataset(const std::string& name, double scale) {
  for (auto& spec : Table1Datasets(scale)) {
    if (spec.name == name) return spec;
  }
  ODYSSEY_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  return {};
}

}  // namespace odyssey
