#include "src/dataset/registry.h"

#include <sys/stat.h>

#include <cctype>
#include <cstdlib>

#include "src/dataset/generators.h"

namespace odyssey {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

IngestOptions SpecIngestOptions(const DatasetSpec& spec, size_t chunk_size) {
  IngestOptions options;
  options.format = spec.source_format;
  // Self-describing formats validate the spec's length against their own
  // headers; raw floats require it.
  options.length = spec.length;
  options.znormalize = true;
  options.max_series = spec.count;
  if (chunk_size != 0) options.chunk_size = chunk_size;
  return options;
}

}  // namespace

std::string FindDatasetFile(const std::string& name) {
  const char* dir = std::getenv("ODYSSEY_DATA_DIR");
  if (dir == nullptr || *dir == '\0') return "";
  std::string stem(dir);
  if (!stem.empty() && stem.back() != '/') stem += '/';
  for (char c : name) stem += static_cast<char>(std::tolower(c));
  for (const char* ext : {".fvecs", ".bvecs", ".bin", ".raw", ".f32"}) {
    const std::string candidate = stem + ext;
    if (FileExists(candidate)) return candidate;
  }
  return "";
}

StatusOr<SeriesCollection> DatasetSpec::Load(uint64_t seed) const {
  if (!file_backed()) return Generate(seed);
  return IngestFile(source_path, SpecIngestOptions(*this, /*chunk_size=*/0));
}

StatusOr<SeriesIngestor> DatasetSpec::OpenIngestor(size_t chunk_size) const {
  if (!file_backed()) {
    return Status::FailedPrecondition(
        "dataset " + name + " is not file-backed (set ODYSSEY_DATA_DIR)");
  }
  return SeriesIngestor::Open(source_path,
                              SpecIngestOptions(*this, chunk_size));
}

std::vector<DatasetSpec> Table1Datasets(double scale) {
  auto scaled = [scale](size_t base) {
    const size_t n = static_cast<size_t>(static_cast<double>(base) * scale);
    return n < 128 ? 128 : n;
  };
  std::vector<DatasetSpec> specs;
  auto add = [&](const char* name, const char* description, size_t length,
                 size_t count, size_t paper_count, double paper_size_gb,
                 std::function<SeriesCollection(size_t, uint64_t)> generate) {
    DatasetSpec spec;
    spec.name = name;
    spec.description = description;
    spec.length = length;
    spec.count = count;
    spec.paper_count = paper_count;
    spec.paper_size_gb = paper_size_gb;
    spec.generate = std::move(generate);
    specs.push_back(std::move(spec));
  };
  add("Seismic", "seismic records (stand-in)", 256, scaled(40000),
      100'000'000, 100.0,
      [](size_t c, uint64_t s) { return GenerateSeismicLike(c, 256, s); });
  add("Astro", "astronomical data (stand-in)", 256, scaled(40000),
      270'000'000, 265.0,
      [](size_t c, uint64_t s) { return GenerateAstroLike(c, 256, s); });
  add("Deep", "deep embeddings (stand-in)", 96, scaled(100000),
      1'000'000'000, 358.0,
      [](size_t c, uint64_t s) { return GenerateEmbeddingLike(c, 96, 256, s); });
  add("Sift", "image descriptors (stand-in)", 128, scaled(80000),
      1'000'000'000, 477.0,
      [](size_t c, uint64_t s) { return GenerateEmbeddingLike(c, 128, 512, s); });
  add("Yan-TtI", "image and text embeddings (stand-in)", 200, scaled(50000),
      1'000'000'000, 800.0,
      [](size_t c, uint64_t s) { return GenerateCrossModalLike(c, 200, s); });
  add("Random", "random walks (as in the paper)", 256, scaled(40000),
      100'000'000, 100.0,
      [](size_t c, uint64_t s) { return GenerateRandomWalk(c, 256, s); });
  // Real archives override the generators wherever ODYSSEY_DATA_DIR holds
  // one. The env var is re-read on every call (not cached) so tests and
  // long-lived tools can re-point it.
  for (DatasetSpec& spec : specs) {
    spec.source_path = FindDatasetFile(spec.name);
    if (spec.file_backed()) {
      spec.source_format = FormatFromPath(spec.source_path);
      spec.description = "real archive: " + spec.source_path;
    }
  }
  return specs;
}

StatusOr<DatasetSpec> Table1Dataset(const std::string& name, double scale) {
  for (auto& spec : Table1Datasets(scale)) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace odyssey
