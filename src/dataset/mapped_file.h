#ifndef ODYSSEY_DATASET_MAPPED_FILE_H_
#define ODYSSEY_DATASET_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace odyssey {

/// RAII wrapper around one read-only data file. Preferred access is a
/// memory map (`mmap` + `madvise(SEQUENTIAL)`, so the kernel read-ahead
/// streams the archive without double-buffering it in heap); when mapping
/// is unavailable — exotic filesystems, `ODYSSEY_NO_MMAP=1`, or an explicit
/// `Mode::kBuffered` — every access degrades gracefully to positioned
/// buffered reads (`pread`) through the same `ReadAt` API, so callers never
/// branch on the access mode.
///
/// Sizes are 64-bit throughout (`fstat`, never `long ftell`), so >2 GiB
/// archives work on every platform where they fit the filesystem.
class MappedFile {
 public:
  enum class Mode {
    kAuto,      ///< try mmap, silently fall back to buffered reads
    kBuffered,  ///< never mmap (tests force this to cover the fallback)
  };

  /// Opens `path` read-only and stats it. Never reads data eagerly.
  static StatusOr<MappedFile> Open(const std::string& path,
                                   Mode mode = Mode::kAuto);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Total file size in bytes (from fstat; 64-bit).
  uint64_t size() const { return size_; }

  /// True when the file is memory-mapped (data() is non-null).
  bool mapped() const { return map_ != nullptr; }

  /// Base of the mapping, or nullptr in buffered mode (and for empty
  /// files). Valid for `size()` bytes.
  const uint8_t* data() const { return static_cast<const uint8_t*>(map_); }

  /// Copies `n` bytes starting at `offset` into `dst`. Works identically in
  /// mapped (memcpy) and buffered (pread) mode; reading past EOF is an
  /// IoError, never a short read.
  Status ReadAt(uint64_t offset, void* dst, size_t n) const;

  const std::string& path() const { return path_; }

 private:
  MappedFile() = default;
  void Close();

  std::string path_;
  int fd_ = -1;
  void* map_ = nullptr;
  uint64_t size_ = 0;
};

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_MAPPED_FILE_H_
