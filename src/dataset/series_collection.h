#ifndef ODYSSEY_DATASET_SERIES_COLLECTION_H_
#define ODYSSEY_DATASET_SERIES_COLLECTION_H_

#include <stdlib.h>

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "src/common/check.h"

namespace odyssey {

/// A read-only view of one data series: `length` consecutive floats.
/// The pointed-to storage is owned by a SeriesCollection and is 64-byte
/// aligned at collection granularity.
struct SeriesView {
  const float* values = nullptr;
  size_t length = 0;

  const float* begin() const { return values; }
  const float* end() const { return values + length; }
  float operator[](size_t i) const { return values[i]; }
};

/// An in-memory collection of fixed-length data series stored contiguously
/// (row-major: series i occupies [i*length, (i+1)*length)). This is the raw
/// data every system node keeps for its chunk. Storage is 64-byte aligned so
/// the AVX2 distance kernels can use aligned loads on series boundaries when
/// the length is a multiple of 16.
class SeriesCollection {
 public:
  /// Creates an empty collection of series of `length` points each.
  explicit SeriesCollection(size_t length) : length_(length) {
    ODYSSEY_CHECK(length > 0);
  }

  SeriesCollection(const SeriesCollection&) = default;
  SeriesCollection& operator=(const SeriesCollection&) = default;
  SeriesCollection(SeriesCollection&&) = default;
  SeriesCollection& operator=(SeriesCollection&&) = default;

  size_t length() const { return length_; }
  size_t size() const { return data_.size() / length_; }
  bool empty() const { return data_.empty(); }

  /// Pre-allocates room for `count` series.
  void Reserve(size_t count) { data_.reserve(count * length_); }

  /// Appends one series; `values` must hold length() floats.
  void Append(const float* values) {
    data_.insert(data_.end(), values, values + length_);
  }

  /// Appends `count` uninitialized series and returns a pointer to the first
  /// new value, for generator-style bulk filling.
  float* AppendUninitialized(size_t count) {
    const size_t old = data_.size();
    data_.resize(old + count * length_);
    return data_.data() + old;
  }

  /// Pointer to series i.
  const float* data(size_t i) const {
    ODYSSEY_CHECK(i < size());
    return data_.data() + i * length_;
  }
  float* mutable_data(size_t i) {
    ODYSSEY_CHECK(i < size());
    return data_.data() + i * length_;
  }

  SeriesView view(size_t i) const { return SeriesView{data(i), length_}; }

  /// Builds a new collection containing the selected series, in the order of
  /// `indices`. This is how data chunks are materialized on system nodes
  /// (the simulation of physically shipping raw data during partitioning).
  SeriesCollection Subset(const std::vector<uint32_t>& indices) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return data_.capacity() * sizeof(float); }

 private:
  // 64-byte-aligned allocator so SIMD kernels may assume aligned collection
  // bases. Uses posix_memalign rather than aligned operator new: the
  // sanitizer runtimes intercept the former reliably, keeping TSAN/ASAN
  // reports on this hot allocation trustworthy.
  template <typename T>
  struct AlignedAllocator {
    using value_type = T;
    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT
    T* allocate(size_t n) {
      void* p = nullptr;
      if (posix_memalign(&p, 64, n * sizeof(T)) != 0) throw std::bad_alloc();
      return static_cast<T*>(p);
    }
    void deallocate(T* p, size_t) { std::free(p); }
    bool operator==(const AlignedAllocator&) const { return true; }
  };

  size_t length_;
  std::vector<float, AlignedAllocator<float>> data_;
};

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_SERIES_COLLECTION_H_
