#ifndef ODYSSEY_DATASET_WORKLOAD_H_
#define ODYSSEY_DATASET_WORKLOAD_H_

#include <cstdint>

#include "src/dataset/series_collection.h"

namespace odyssey {

/// Query workload generation, following the established data-series
/// benchmarking methodology (Zoumpatianos et al., "Query workloads for data
/// series indexes"): a query of controlled difficulty is a dataset member
/// perturbed by noise — small noise keeps the nearest neighbor close (easy,
/// heavy pruning), large noise pushes the query away from the collection
/// (hard, little pruning).
struct WorkloadOptions {
  size_t count = 100;
  /// Minimum/maximum noise standard deviation added to the sampled series
  /// (before re-z-normalization). The i-th query's noise level is drawn
  /// uniformly from this range, yielding a batch of mixed difficulty like
  /// the paper's Seismic query batches.
  double min_noise = 0.0;
  double max_noise = 2.0;
  /// Fraction of queries that are pure random walks unrelated to the data
  /// (the hardest kind; Figure 10's discussion of skewed batches).
  double unrelated_fraction = 0.0;
  uint64_t seed = 7;
};

/// Builds a query batch against `data`.
SeriesCollection GenerateQueries(const SeriesCollection& data,
                                 const WorkloadOptions& options);

/// Convenience: a batch of uniform difficulty (noise == `noise` for all).
SeriesCollection GenerateUniformQueries(const SeriesCollection& data,
                                        size_t count, double noise,
                                        uint64_t seed);

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_WORKLOAD_H_
