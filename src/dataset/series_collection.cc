#include "src/dataset/series_collection.h"

namespace odyssey {

SeriesCollection SeriesCollection::Subset(
    const std::vector<uint32_t>& indices) const {
  SeriesCollection out(length_);
  out.Reserve(indices.size());
  for (uint32_t idx : indices) {
    out.Append(data(idx));
  }
  return out;
}

}  // namespace odyssey
