#ifndef ODYSSEY_DATASET_FILE_IO_H_
#define ODYSSEY_DATASET_FILE_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/dataset/series_collection.h"

namespace odyssey {

/// Binary collection format: a 16-byte header (magic "ODSY", version u32,
/// count u32, length u32) followed by count*length little-endian floats.
/// Matches the flat raw-float layout of the public data-series archives the
/// paper uses, plus a small header for safety.

/// Writes `collection` to `path`, overwriting any existing file.
Status WriteCollection(const SeriesCollection& collection,
                       const std::string& path);

/// Reads a collection previously written by WriteCollection.
StatusOr<SeriesCollection> ReadCollection(const std::string& path);

/// Reads a headerless raw-float file (the archive format: count*length
/// floats). `length` must be supplied by the caller.
StatusOr<SeriesCollection> ReadRawFloats(const std::string& path,
                                         size_t length);

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_FILE_IO_H_
