#ifndef ODYSSEY_DATASET_FILE_IO_H_
#define ODYSSEY_DATASET_FILE_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/dataset/series_collection.h"

namespace odyssey {

/// Binary collection format: a 16-byte header (magic "ODSY", version u32,
/// count u32, length u32) followed by count*length little-endian floats.
/// Matches the flat raw-float layout of the public data-series archives the
/// paper uses, plus a small header for safety.
///
/// All readers here go through the memory-mapped ingestion layer
/// (src/dataset/ingest.h): 64-bit sizes from fstat (no long-ftell
/// truncation on >2 GiB archives), header counts validated against the
/// actual file size before any allocation, and graceful fallback to
/// buffered reads when mmap is unavailable. For bounded-memory chunked
/// ingest (and z-normalize-on-ingest) use SeriesIngestor directly.

/// Writes `collection` to `path`, overwriting any existing file.
Status WriteCollection(const SeriesCollection& collection,
                       const std::string& path);

/// Reads a collection previously written by WriteCollection.
StatusOr<SeriesCollection> ReadCollection(const std::string& path);

/// Reads a headerless raw-float file (the archive format: count*length
/// floats). `length` must be supplied by the caller.
StatusOr<SeriesCollection> ReadRawFloats(const std::string& path,
                                         size_t length);

/// Writes `collection` as a headerless raw-float archive (Seismic/Astro
/// style: series back to back, no header).
Status WriteRawFloats(const SeriesCollection& collection,
                      const std::string& path);

/// Writes `collection` in TEXMEX fvecs layout (per vector: int32 dimension
/// header + that many float32s) — the SIFT/Deep1B interchange format.
Status WriteFvecs(const SeriesCollection& collection, const std::string& path);

/// Writes `collection` in TEXMEX bvecs layout (per vector: int32 dimension
/// header + that many uint8s). Values are clamped to [0, 255] and rounded;
/// intended for fixture generation and SIFT1B-style byte archives.
Status WriteBvecs(const SeriesCollection& collection, const std::string& path);

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_FILE_IO_H_
