#include "src/dataset/workload.h"

#include "src/common/check.h"
#include "src/common/math_utils.h"
#include "src/common/rng.h"

namespace odyssey {

SeriesCollection GenerateQueries(const SeriesCollection& data,
                                 const WorkloadOptions& options) {
  ODYSSEY_CHECK(!data.empty());
  const size_t length = data.length();
  SeriesCollection out(length);
  float* dst = out.AppendUninitialized(options.count);
  Rng rng(options.seed);
  for (size_t i = 0; i < options.count; ++i) {
    float* q = dst + i * length;
    if (rng.NextDouble() < options.unrelated_fraction) {
      // Unrelated random walk: worst-case pruning.
      double acc = 0.0;
      for (size_t t = 0; t < length; ++t) {
        acc += rng.NextGaussian();
        q[t] = static_cast<float>(acc);
      }
    } else {
      const size_t src = rng.NextBounded(data.size());
      const double noise =
          options.min_noise +
          (options.max_noise - options.min_noise) * rng.NextDouble();
      const float* s = data.data(src);
      for (size_t t = 0; t < length; ++t) {
        q[t] = s[t] + static_cast<float>(noise * rng.NextGaussian());
      }
    }
    ZNormalize(q, length);
  }
  return out;
}

SeriesCollection GenerateUniformQueries(const SeriesCollection& data,
                                        size_t count, double noise,
                                        uint64_t seed) {
  WorkloadOptions options;
  options.count = count;
  options.min_noise = noise;
  options.max_noise = noise;
  options.seed = seed;
  return GenerateQueries(data, options);
}

}  // namespace odyssey
