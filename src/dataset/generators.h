#ifndef ODYSSEY_DATASET_GENERATORS_H_
#define ODYSSEY_DATASET_GENERATORS_H_

#include <cstdint>

#include "src/dataset/series_collection.h"

namespace odyssey {

/// Synthetic data generators. `Random` reproduces the paper's synthetic
/// dataset exactly (random walks with N(0,1) steps). The others are
/// distribution-preserving stand-ins for the paper's real datasets
/// (Table 1), built so that the *property each experiment depends on*
/// survives the substitution — see DESIGN.md §2 for the mapping.
///
/// All generators z-normalize every series (the iSAX breakpoints are
/// quantiles of N(0,1), so indexes assume z-normalized input) and are
/// bit-deterministic for a given seed.

/// Random walk: cumulative sum of Gaussian steps, as in the paper's Random
/// dataset (models stock-market-like sequences).
SeriesCollection GenerateRandomWalk(size_t count, size_t length, uint64_t seed);

/// Seismic stand-in: damped oscillation bursts over correlated noise.
/// Key property: clustered, highly self-similar records, so query difficulty
/// varies widely (this skew drives the paper's scheduling experiments).
SeriesCollection GenerateSeismicLike(size_t count, size_t length, uint64_t seed);

/// Astro stand-in: heavy-tailed bursty light curves (baseline + flares).
/// Key property: density skew in iSAX space (a few summarization buffers
/// hold an outsized share of the series), exercising DENSITY-AWARE.
SeriesCollection GenerateAstroLike(size_t count, size_t length, uint64_t seed);

/// Deep/Sift stand-in: cluster-structured embedding vectors (mixture of
/// `clusters` Gaussians in series space). Key property: near-isotropic
/// high-dimensional vectors with low pruning power.
SeriesCollection GenerateEmbeddingLike(size_t count, size_t length,
                                       size_t clusters, uint64_t seed);

/// Yan-TtI stand-in: two-modality embedding mixture (image-like tight
/// clusters + text-like diffuse clusters in the same space). Key property:
/// bimodal density, typical of cross-modal retrieval.
SeriesCollection GenerateCrossModalLike(size_t count, size_t length,
                                        uint64_t seed);

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_GENERATORS_H_
