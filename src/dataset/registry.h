#ifndef ODYSSEY_DATASET_REGISTRY_H_
#define ODYSSEY_DATASET_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/dataset/series_collection.h"

namespace odyssey {

/// One row of the paper's Table 1, scaled to in-memory reproduction size.
/// `paper_count`/`paper_size_gb` record what the paper used; `Generate`
/// produces our stand-in at `count` series (a configurable fraction).
struct DatasetSpec {
  std::string name;
  std::string description;
  size_t length;              ///< series length in floats
  size_t count;               ///< reproduction size (series)
  size_t paper_count;         ///< paper size (series)
  double paper_size_gb;       ///< paper on-disk size
  std::function<SeriesCollection(size_t count, uint64_t seed)> generate;

  SeriesCollection Generate(uint64_t seed) const { return generate(count, seed); }
};

/// The Table-1 datasets (Seismic, Astro, Deep, Sift, Yan-TtI, Random) as
/// scaled stand-ins. `scale` multiplies the default reproduction counts
/// (default counts are sized so every Table-1 bench finishes in seconds).
std::vector<DatasetSpec> Table1Datasets(double scale = 1.0);

/// Looks up one dataset by (case-sensitive) name; aborts if absent.
DatasetSpec Table1Dataset(const std::string& name, double scale = 1.0);

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_REGISTRY_H_
