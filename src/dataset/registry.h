#ifndef ODYSSEY_DATASET_REGISTRY_H_
#define ODYSSEY_DATASET_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dataset/ingest.h"
#include "src/dataset/series_collection.h"

namespace odyssey {

/// One row of the paper's Table 1, scaled to in-memory reproduction size.
/// `paper_count`/`paper_size_gb` record what the paper used; `Generate`
/// produces our stand-in at `count` series (a configurable fraction).
///
/// When the environment variable ODYSSEY_DATA_DIR points at a directory
/// holding the real archives (see FindDatasetFile for the naming scheme),
/// the spec becomes *file-backed*: `Load` ingests up to `count` series from
/// the archive through the memory-mapped ingestion layer, z-normalizing on
/// ingest, instead of generating the synthetic stand-in.
struct DatasetSpec {
  std::string name;
  std::string description;
  size_t length;              ///< series length in floats
  size_t count;               ///< reproduction size (series)
  size_t paper_count;         ///< paper size (series)
  double paper_size_gb;       ///< paper on-disk size
  std::function<SeriesCollection(size_t count, uint64_t seed)> generate;
  /// Real archive behind this spec (empty = synthetic stand-in only).
  std::string source_path;
  DataFormat source_format = DataFormat::kAuto;

  bool file_backed() const { return !source_path.empty(); }

  /// Synthetic stand-in, always available.
  SeriesCollection Generate(uint64_t seed) const { return generate(count, seed); }

  /// The dataset this spec actually stands for: the real archive when
  /// file-backed (first `count` series, z-normalized on ingest; `seed` is
  /// ignored), the synthetic stand-in otherwise.
  StatusOr<SeriesCollection> Load(uint64_t seed) const;

  /// Chunked access to a file-backed spec for bounded-memory index builds.
  /// Fails with FailedPrecondition when the spec is synthetic.
  StatusOr<SeriesIngestor> OpenIngestor(size_t chunk_size) const;
};

/// The Table-1 datasets (Seismic, Astro, Deep, Sift, Yan-TtI, Random) as
/// scaled stand-ins. `scale` multiplies the default reproduction counts
/// (default counts are sized so every Table-1 bench finishes in seconds).
/// Specs come back file-backed wherever ODYSSEY_DATA_DIR holds a matching
/// archive.
std::vector<DatasetSpec> Table1Datasets(double scale = 1.0);

/// Looks up one dataset by (case-sensitive) name. Unknown names are a
/// NotFound error in every build mode — never a default-constructed spec.
StatusOr<DatasetSpec> Table1Dataset(const std::string& name,
                                    double scale = 1.0);

/// Probes ODYSSEY_DATA_DIR for a real archive backing dataset `name`:
/// <dir>/<lowercased-name>.{fvecs,bvecs,bin,raw,f32} (e.g. sift.fvecs,
/// seismic.raw). Returns the first match, or "" when the variable is unset
/// or no file exists.
std::string FindDatasetFile(const std::string& name);

}  // namespace odyssey

#endif  // ODYSSEY_DATASET_REGISTRY_H_
