#ifndef ODYSSEY_BASELINES_DMESSI_H_
#define ODYSSEY_BASELINES_DMESSI_H_

#include "src/core/driver.h"

namespace odyssey {

/// The paper's DMESSI baselines (Section 5, "Algorithms"): one independent
/// MESSI index per node over a disjoint equal split of the data; every node
/// answers every query on its chunk; the coordinator merges partial
/// answers. There is no scheduling (there is nothing to schedule — all
/// nodes process the whole batch), no work-stealing, and:
///
///   DMESSI         no BSF exchange between nodes;
///   DMESSI-SW-BSF  system-wide BSF sharing added on top.
///
/// Both are realized as restricted OdysseyCluster configurations —
/// EQUALLY-SPLIT with one node per group — which is exactly the "run a SotA
/// single-node index per node" construction the paper describes.

/// Options for DMESSI. Pass to OdysseyCluster.
OdysseyOptions MakeDMessiOptions(int num_nodes, const IndexOptions& index,
                                 const QueryOptions& query,
                                 bool system_wide_bsf);

}  // namespace odyssey

#endif  // ODYSSEY_BASELINES_DMESSI_H_
