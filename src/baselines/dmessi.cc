#include "src/baselines/dmessi.h"

namespace odyssey {

OdysseyOptions MakeDMessiOptions(int num_nodes, const IndexOptions& index,
                                 const QueryOptions& query,
                                 bool system_wide_bsf) {
  OdysseyOptions options;
  options.num_nodes = num_nodes;
  options.num_groups = num_nodes;  // EQUALLY-SPLIT: every node answers all
  options.partitioning = PartitioningScheme::kEquallySplit;
  options.index_options = index;
  options.query_options = query;
  // STATIC degenerates to "each (single-node) group runs the whole batch in
  // order" — i.e., no scheduling, as in the baseline.
  options.scheduling = SchedulingPolicy::kStatic;
  options.worksteal.enabled = false;
  options.share_bsf = system_wide_bsf;
  return options;
}

}  // namespace odyssey
