#ifndef ODYSSEY_BASELINES_DPISAX_H_
#define ODYSSEY_BASELINES_DPISAX_H_

#include <cstdint>
#include <vector>

#include "src/core/driver.h"

namespace odyssey {

/// The DPiSAX baseline (Yagoubi et al., TKDE 2020), as re-implemented by
/// the paper for its comparison: DPiSAX's sample-based data partitioning,
/// with MESSI-style query answering per node and coordinator-side merging
/// of partial exact answers.
///
/// Partitioning: a random sample of the collection is summarized with iSAX;
/// the sample's word space is cut into `num_chunks` equal-frequency regions
/// (by lexicographic word order), and every series is routed to the region
/// containing its word. Unlike DENSITY-AWARE this *concentrates* similar
/// series on the same node — the behaviour the paper's Figure 17d shows
/// losing to Odyssey.

/// Computes the DPiSAX chunk assignment. Chunks are disjoint, exhaustive,
/// and sorted ascending. `sample_fraction` in (0, 1].
std::vector<std::vector<uint32_t>> DpisaxPartition(
    const SeriesCollection& data, int num_chunks, const IsaxConfig& config,
    double sample_fraction, uint64_t seed);

/// Options for the full DPiSAX baseline over `dataset`.
OdysseyOptions MakeDpisaxOptions(const SeriesCollection& dataset,
                                 int num_nodes, const IndexOptions& index,
                                 const QueryOptions& query,
                                 double sample_fraction = 0.1,
                                 uint64_t seed = 42);

}  // namespace odyssey

#endif  // ODYSSEY_BASELINES_DPISAX_H_
