#include "src/baselines/dpisax.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace odyssey {
namespace {

/// Lexicographic order on full-cardinality SAX words.
struct WordLess {
  size_t width;
  bool operator()(const uint8_t* a, const uint8_t* b) const {
    return std::memcmp(a, b, width) < 0;
  }
};

}  // namespace

std::vector<std::vector<uint32_t>> DpisaxPartition(
    const SeriesCollection& data, int num_chunks, const IsaxConfig& config,
    double sample_fraction, uint64_t seed) {
  ODYSSEY_CHECK(num_chunks >= 1);
  ODYSSEY_CHECK(sample_fraction > 0.0 && sample_fraction <= 1.0);
  ODYSSEY_CHECK(data.size() >= static_cast<size_t>(num_chunks));
  const size_t w = static_cast<size_t>(config.segments());

  // 1. Sample the collection and summarize the sample.
  const size_t sample_size = std::max<size_t>(
      num_chunks,
      static_cast<size_t>(sample_fraction * static_cast<double>(data.size())));
  Rng rng(seed);
  std::vector<uint8_t> sample_words(sample_size * w);
  for (size_t i = 0; i < sample_size; ++i) {
    const size_t id = rng.NextBounded(data.size());
    ComputeSax(data.data(id), config, sample_words.data() + i * w);
  }

  // 2. Cut the sampled word space into equal-frequency regions: the
  //    boundaries are the words at the sample's chunk quantiles.
  std::vector<const uint8_t*> sorted(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sorted[i] = sample_words.data() + i * w;
  }
  std::sort(sorted.begin(), sorted.end(), WordLess{w});
  std::vector<std::vector<uint8_t>> boundaries;  // num_chunks - 1 words
  for (int c = 1; c < num_chunks; ++c) {
    const uint8_t* word = sorted[c * sample_size / num_chunks];
    boundaries.emplace_back(word, word + w);
  }

  // 3. Route every series to the region containing its word.
  std::vector<std::vector<uint32_t>> chunks(num_chunks);
  std::vector<uint8_t> word(w);
  for (size_t id = 0; id < data.size(); ++id) {
    ComputeSax(data.data(id), config, word.data());
    int chunk = 0;
    while (chunk < num_chunks - 1 &&
           std::memcmp(word.data(), boundaries[chunk].data(), w) >= 0) {
      ++chunk;
    }
    chunks[chunk].push_back(static_cast<uint32_t>(id));
  }

  // Sample-boundary skew can leave a region empty on tiny inputs; steal one
  // series from the largest region so every node has data to index.
  for (auto& chunk : chunks) {
    if (!chunk.empty()) continue;
    auto largest = std::max_element(
        chunks.begin(), chunks.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    chunk.push_back(largest->back());
    largest->pop_back();
  }
  for (auto& chunk : chunks) std::sort(chunk.begin(), chunk.end());
  return chunks;
}

OdysseyOptions MakeDpisaxOptions(const SeriesCollection& dataset,
                                 int num_nodes, const IndexOptions& index,
                                 const QueryOptions& query,
                                 double sample_fraction, uint64_t seed) {
  OdysseyOptions options;
  options.num_nodes = num_nodes;
  options.num_groups = num_nodes;
  options.custom_chunks = DpisaxPartition(dataset, num_nodes, index.config,
                                          sample_fraction, seed);
  options.index_options = index;
  options.query_options = query;
  options.scheduling = SchedulingPolicy::kStatic;
  options.worksteal.enabled = false;
  // The paper's DPiSAX re-implementation exchanges only final partial
  // answers through the coordinator, not intermediate BSFs.
  options.share_bsf = false;
  options.seed = seed;
  return options;
}

}  // namespace odyssey
