#ifndef ODYSSEY_DISTANCE_SIMD_H_
#define ODYSSEY_DISTANCE_SIMD_H_

#include <cstddef>

#include "src/common/hotpath.h"

namespace odyssey {
namespace simd {

/// Runtime-dispatched SIMD kernels for the distance hot path. Every kernel
/// exists at four ISA levels — portable scalar, SSE (x86-64 baseline),
/// AVX2+FMA and AVX-512 — grouped into per-ISA tables so that call sites
/// pay for dispatch once, not per distance computation. The active table is
/// chosen at first use from CPUID, overridable with the ODYSSEY_SIMD
/// environment variable ("scalar", "sse", "avx2", "avx512", "auto");
/// requesting an ISA the CPU lacks silently degrades to the best supported
/// one, so CI machines without AVX2/AVX-512 run the same binaries. Set
/// ODYSSEY_SIMD_LOG=1 to print the resolved tier to stderr once, so bench
/// JSON runs are attributable to an ISA.
///
/// All kernels share the library's conventions: squared distances, float
/// series, and early-abandoning variants that return some value >=
/// `threshold` once the running sum provably crosses it (checked every 16
/// points at every ISA level, so all levels abandon at the same cadence).

enum class Isa {
  kScalar = 0,
  kSse = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Human-readable ISA name ("scalar", "sse", "avx2", "avx512").
const char* IsaName(Isa isa);

/// Lane stride of the interleaved multi-query blocks consumed by the
/// batched kernels: q_count rounded up to 16 floats, so every ISA level
/// (widest vector: 16 lanes) may load full lane groups without reading past
/// the block. Padding lanes are never compared or stored; callers only need
/// them readable (a zero-filled std::vector<float> of n * stride suffices —
/// no alignment requirement, the batched kernels use unaligned loads).
constexpr size_t BatchStride(size_t q_count) {
  return (q_count + 15) / 16 * 16;
}

/// Every function bound into a KernelTable slot is a purity-checked hot
/// path (ODYSSEY_HOT, src/common/hotpath.h): kernels never allocate, lock,
/// throw or touch the OS. tools/check_hot_paths.py resolves the indirect
/// kernels_->xxx(...) call edges through these tables' positional
/// initializers in simd.cc and verifies the closure — a new kernel wired
/// into a slot without the annotation fails the static-analysis CI job.
struct KernelTable {
  Isa isa;

  /// Squared Euclidean distance over length-n series.
  float (*squared_euclidean)(const float* a, const float* b, size_t n);

  /// Early-abandoning squared Euclidean: exact when < threshold, otherwise
  /// some value >= threshold as soon as the running sum crosses it.
  float (*squared_euclidean_early_abandon)(const float* a, const float* b,
                                           size_t n, float threshold);

  /// Squared LB_Keogh of `candidate` against a precomputed warping envelope
  /// (upper/lower, both length n): sum of squared gaps outside the band.
  float (*lb_keogh)(const float* upper, const float* lower,
                    const float* candidate, size_t n);

  /// Early-abandoning squared LB_Keogh.
  float (*lb_keogh_early_abandon)(const float* upper, const float* lower,
                                  const float* candidate, size_t n,
                                  float threshold);

  /// Batched early-abandoning squared Euclidean: one candidate series
  /// against q_count queries at once, so the candidate is loaded once per
  /// q_count distance computations. Queries are interleaved point-major:
  /// queries[i * stride + q] is point i of query q, with stride =
  /// BatchStride(q_count) lanes readable at every point. out[q] receives
  /// exactly what the per-query *scalar* early-abandon kernel would return
  /// for (query q, candidate, thresholds[q]) — bit-identical at every ISA
  /// level, because each lane accumulates in point order with mul+add
  /// (never FMA) and freezes at the same 16-point abandon cadence.
  void (*batched_squared_euclidean_early_abandon)(
      const float* candidate, const float* queries, size_t n, size_t stride,
      size_t q_count, const float* thresholds, float* out);

  /// Batched early-abandoning squared LB_Keogh: one candidate against
  /// q_count precomputed warping envelopes, interleaved like the queries
  /// above (upper[i * stride + q] / lower[i * stride + q] bound point i of
  /// query q's band). Same layout, cadence and bit-identity contract as the
  /// batched Euclidean kernel.
  void (*batched_lb_keogh_early_abandon)(
      const float* candidate, const float* upper, const float* lower,
      size_t n, size_t stride, size_t q_count, const float* thresholds,
      float* out);

  /// PAA summarization: the mean of each of `segments` contiguous ranges of
  /// the length-n float series, written to out[0..segments). Boundaries are
  /// the integer partition [floor(i*n/w), floor((i+1)*n/w)) shared with
  /// PaaConfig. Accumulation is double at every ISA level; the vector
  /// levels stripe the per-segment sum across lanes, so results can differ
  /// from scalar by ordinary FP reassociation (property-tested to the same
  /// relative tolerance as the distance kernels).
  void (*paa)(const float* series, size_t n, int segments, double* out);

  /// One banded DTW dynamic-programming row for row index i >= 1:
  ///
  ///   cur[j] = (ai - b[j])^2 + min(prev[j], prev[j-1], cur[j-1])
  ///
  /// for j in [jlo, jhi] (inclusive), returning the row minimum. Caller
  /// contract: prev/cur are full-length arrays with +inf outside the
  /// previous/current band (so out-of-band reads are harmless), and
  /// cur[jlo-1] is +inf when jlo > 0. When jlo == 0 the j == 0 cell takes
  /// only prev[0] (no j-1 neighbors exist).
  float (*dtw_row)(float ai, const float* b, const float* prev, float* cur,
                   size_t jlo, size_t jhi);
};

/// Portable scalar reference kernels — always available, the ground truth
/// the vector kernels are property-tested against.
const KernelTable& ScalarTable();

/// SSE kernels; nullptr on non-x86 builds.
const KernelTable* SseTable();

/// AVX2+FMA kernels; nullptr when the CPU (or build) lacks them.
const KernelTable* Avx2Table();

/// AVX-512 (F+DQ) kernels; nullptr when the CPU (or build) lacks them.
const KernelTable* Avx512Table();

/// The dispatched table: best supported ISA, clamped by ODYSSEY_SIMD.
/// Resolved once per process; the returned reference is immutable.
const KernelTable& ActiveTable();

/// ISA of ActiveTable(), for logging / benchmark counters.
Isa ActiveIsa();

/// Candidate lanes per MultiSquaredEuclideanEarlyAbandon call (the grouped
/// scan's deferral-queue capacity).
constexpr size_t kMultiCandidateLanes = 8;

/// Scores up to kMultiCandidateLanes candidate series against ONE query in a
/// single pass: out[c] accumulates (query[i] - series[c][i])^2 in strict
/// point order with separate mul+add, so every lane is bit-identical to the
/// per-query scalar early-abandon kernel — the same family the batched lanes
/// reproduce. The lanes are independent add chains; on x86 they ride in
/// vector ELEMENTS (candidate data transposed on the fly, every arithmetic
/// op element-wise), which parallelizes across lanes without reassociating
/// any single lane's sum — the reassociating per-query vector kernels stay
/// banned from grouped scoring, this is the bit-exact way to vectorize it.
/// A lane whose partial crosses `threshold` at a 16-point boundary is frozen
/// there (its further contributions are exact +0.0f no-ops), so an abandoned
/// lane reports the same partial the scalar kernel would have returned; the
/// pass stops early only once every lane froze. The x86 paths need only
/// baseline SSE2 and results are ISA-independent by construction — the
/// grouped scan's lone-survivor path calls it directly, no table dispatch.
ODYSSEY_HOT void MultiSquaredEuclideanEarlyAbandon(
    const float* query, const float* const* series, size_t count, size_t n,
    float threshold, float* out);

}  // namespace simd
}  // namespace odyssey

#endif  // ODYSSEY_DISTANCE_SIMD_H_
