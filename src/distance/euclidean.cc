#include "src/distance/euclidean.h"

#if defined(ODYSSEY_BUILD_AVX2)
#include <immintrin.h>
#endif

namespace odyssey {

float SquaredEuclideanScalar(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredEuclideanEarlyAbandonScalar(const float* a, const float* b,
                                         size_t n, float threshold) {
  float sum = 0.0f;
  size_t i = 0;
  // Check the threshold once per 16-point block: frequent enough to abandon
  // early, rare enough not to serialize the loop.
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; ++j) {
      const float d = a[i + j] - b[i + j];
      sum += d * d;
    }
    i += 16;
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#if defined(ODYSSEY_BUILD_AVX2)

namespace {

// Horizontal sum of the 8 lanes of an AVX register.
inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

}  // namespace

bool HasAvx2Kernels() { return true; }

float SquaredEuclidean(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256 d = _mm256_sub_ps(va, vb);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float sum = HorizontalSum(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b, size_t n,
                                   float threshold) {
  __m256 acc = _mm256_setzero_ps();
  float sum = 0.0f;
  size_t i = 0;
  // Two unrolled 8-lane FMAs per iteration, threshold check per 16 points —
  // the same cadence as the scalar variant so both abandon identically.
  while (i + 16 <= n) {
    const __m256 va0 = _mm256_loadu_ps(a + i);
    const __m256 vb0 = _mm256_loadu_ps(b + i);
    const __m256 d0 = _mm256_sub_ps(va0, vb0);
    acc = _mm256_fmadd_ps(d0, d0, acc);
    const __m256 va1 = _mm256_loadu_ps(a + i + 8);
    const __m256 vb1 = _mm256_loadu_ps(b + i + 8);
    const __m256 d1 = _mm256_sub_ps(va1, vb1);
    acc = _mm256_fmadd_ps(d1, d1, acc);
    i += 16;
    sum = HorizontalSum(acc);
    if (sum >= threshold) return sum;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

#else  // !defined(ODYSSEY_BUILD_AVX2)

bool HasAvx2Kernels() { return false; }

float SquaredEuclidean(const float* a, const float* b, size_t n) {
  return SquaredEuclideanScalar(a, b, n);
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b, size_t n,
                                   float threshold) {
  return SquaredEuclideanEarlyAbandonScalar(a, b, n, threshold);
}

#endif  // defined(ODYSSEY_BUILD_AVX2)

}  // namespace odyssey
