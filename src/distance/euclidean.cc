#include "src/distance/euclidean.h"

#include "src/distance/simd.h"

namespace odyssey {

/// Thin wrappers over the runtime-dispatched kernel layer (simd.h). Hot
/// call sites (query_engine, approx_search) cache simd::ActiveTable() and
/// call the kernels directly; these free functions remain the convenient
/// entry points for tests, examples, and cold paths.

float SquaredEuclidean(const float* a, const float* b, size_t n) {
  return simd::ActiveTable().squared_euclidean(a, b, n);
}

float SquaredEuclideanEarlyAbandon(const float* a, const float* b, size_t n,
                                   float threshold) {
  return simd::ActiveTable().squared_euclidean_early_abandon(a, b, n,
                                                             threshold);
}

float SquaredEuclideanScalar(const float* a, const float* b, size_t n) {
  return simd::ScalarTable().squared_euclidean(a, b, n);
}

float SquaredEuclideanEarlyAbandonScalar(const float* a, const float* b,
                                         size_t n, float threshold) {
  return simd::ScalarTable().squared_euclidean_early_abandon(a, b, n,
                                                             threshold);
}

bool HasAvx2Kernels() { return simd::ActiveIsa() == simd::Isa::kAvx2; }

}  // namespace odyssey
