#ifndef ODYSSEY_DISTANCE_DTW_H_
#define ODYSSEY_DISTANCE_DTW_H_

#include <cstddef>

#include "src/common/hotpath.h"

namespace odyssey {

/// Dynamic Time Warping under a Sakoe-Chiba band (the paper's Section 4
/// extension). All values are *squared* accumulated point costs, mirroring
/// the squared-Euclidean convention of the rest of the library: the true
/// DTW distance is sqrt(SquaredDtw(...)).

/// Squared DTW between two length-n series with warping window `window`
/// (in points; 0 reduces to squared Euclidean). O(n * window) time. The DP
/// rows live in grow-only thread-local scratch (see ReserveDtwScratch), so
/// steady-state calls are allocation-free.
ODYSSEY_HOT float SquaredDtw(const float* a, const float* b, size_t n,
                             size_t window);

/// Early-abandoning variant: returns the exact squared DTW if it is
/// < `threshold`, otherwise returns some value >= `threshold` once every
/// cell of a DP row is provably above it.
ODYSSEY_HOT float SquaredDtwEarlyAbandon(const float* a, const float* b,
                                         size_t n, size_t window,
                                         float threshold);

/// Pre-sizes the calling thread's DTW DP-row scratch for length-n series —
/// the executor warm-up calls this on every pool worker so even a worker's
/// first DTW distance of a batch allocates nothing.
void ReserveDtwScratch(size_t n);

/// Converts a warping fraction (e.g. 0.05 for the paper's "5% warping") to
/// a window in points, rounding up, minimum 1 when fraction > 0.
size_t WarpingWindowFromFraction(size_t length, double fraction);

}  // namespace odyssey

#endif  // ODYSSEY_DISTANCE_DTW_H_
